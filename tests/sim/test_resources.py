"""Tests for counted resources."""

import pytest

from repro.sim import Resource, Simulator


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_grant_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    first, second, third = resource.request(), resource.request(), resource.request()
    sim.run()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.in_use == 2
    assert resource.queue_length == 1


def test_release_grants_next_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    sim.run()
    resource.release(first)
    sim.run()
    assert second.triggered
    assert resource.in_use == 1


def test_release_unowned_rejected():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    stranger = resource.request()
    sim.run()
    other = Resource(sim, capacity=1)
    with pytest.raises(ValueError):
        other.release(stranger)


def test_fifo_grant_order():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def worker(sim, name):
        request = resource.request()
        yield request
        order.append(name)
        yield sim.timeout(10)
        resource.release(request)

    for name in ("a", "b", "c"):
        sim.spawn(worker(sim, name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_context_manager_releases():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def worker(sim):
        request = resource.request()
        yield request
        with request:
            yield sim.timeout(5)
        return resource.in_use

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == 0


def test_cancel_pending_request():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    holder = resource.request()
    waiter = resource.request()
    sim.run()
    waiter.cancel()
    resource.release(holder)
    sim.run()
    assert not waiter.triggered
    assert resource.in_use == 0


def test_cancel_granted_request_is_noop():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    granted = resource.request()
    sim.run()
    granted.cancel()  # no exception, still held
    assert resource.in_use == 1


def test_mutual_exclusion_invariant():
    """No more than `capacity` holders at any instant."""
    sim = Simulator()
    resource = Resource(sim, capacity=3)
    high_watermark = []

    def worker(sim, hold):
        request = resource.request()
        yield request
        high_watermark.append(resource.in_use)
        yield sim.timeout(hold)
        resource.release(request)

    for i in range(10):
        sim.spawn(worker(sim, hold=7 + i))
    sim.run()
    assert max(high_watermark) <= 3
    assert resource.in_use == 0
