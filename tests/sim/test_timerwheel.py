"""The timer wheel must be invisible: same order, same bits, less work.

Near-future entries land in O(1) wheel slots; far-future ones overflow
to the heap and cascade in as the cursor approaches. These tests pin the
merge invariants — pop order identical to one global heap, slot-boundary
and horizon edges, stale interrupt tokens parked in wheel slots — and
the :class:`PeriodicTask` primitive's contract: generator-identical tick
times, FIFO interleaving, one sequence number per tick in both fastpath
modes, and lazy cancellation. Plus the satellite regressions: ``peek``
skipping lazily-cancelled heads and exact compaction accounting under
cancel-heavy mixed wheel/heap load.
"""

import random

import pytest

from repro.sim import (
    Interrupt,
    PeriodicTask,
    SchedulingInPastError,
    Simulator,
)
from repro.sim.core import _WHEEL_SHIFT, _WHEEL_SLOTS

#: One wheel slot's span in ticks (~65.5 us).
SLOT = 1 << _WHEEL_SHIFT
#: The wheel horizon (~33.6 ms): delays beyond this overflow to the heap.
HORIZON = _WHEEL_SLOTS << _WHEEL_SHIFT


class TestWheelRouting:
    def test_near_future_entry_lands_in_wheel(self):
        sim = Simulator()
        sim.timeout(SLOT * 3)
        assert sim._wheel_count == 1
        assert not sim._heap

    def test_same_slot_entry_goes_to_ready(self):
        # Offset 0 from the cursor — the wheel cannot distinguish "this
        # slot, not yet popped" from "this slot, already drained", so the
        # entry merges straight into the ready heap.
        sim = Simulator()
        sim.timeout(SLOT - 1)
        assert sim._ready and sim._wheel_count == 0 and not sim._heap

    def test_far_future_entry_overflows_to_heap(self):
        sim = Simulator()
        sim.timeout(HORIZON + SLOT)
        assert sim._heap
        assert sim._wheel_count == 0

    def test_audit_mode_never_uses_wheel_slots(self):
        sim = Simulator(fastpath=False)
        sim.timeout(SLOT * 3)
        sim.timeout(HORIZON * 2)
        assert sim._wheel_count == 0
        assert len(sim._heap) + len(sim._ready) == 2


def _scattered_timers(sim, log):
    """Timers spread across ready/wheel/heap, with same-time collisions."""
    rng = random.Random(0xC0FFEE)
    delays = (
        [rng.randrange(0, SLOT) for _ in range(10)]          # ready-bound
        + [rng.randrange(SLOT, HORIZON) for _ in range(25)]  # wheel-bound
        + [rng.randrange(HORIZON, HORIZON * 3) for _ in range(10)]  # heap
        + [SLOT * 7] * 3                                     # same-time FIFO
        + [k << _WHEEL_SHIFT for k in (1, 2, 511, 512, 513)]  # boundaries
    )
    for i, delay in enumerate(delays):
        sim.call_in(delay, lambda i=i, d=delay: log.append((sim.now, i, d)))
    return delays


class TestWheelVsHeapOrdering:
    def test_pop_order_matches_classic_heap(self):
        logs = []
        for fastpath in (True, False):
            sim = Simulator(fastpath=fastpath)
            log = []
            _scattered_timers(sim, log)
            sim.run()
            logs.append((log, sim.now, sim.events))
        assert logs[0] == logs[1]

    def test_all_entries_fire_in_time_then_fifo_order(self):
        sim = Simulator()
        log = []
        delays = _scattered_timers(sim, log)
        sim.run()
        assert len(log) == len(delays)
        # Time-sorted, and FIFO (ascending schedule index) within a time.
        assert log == sorted(log, key=lambda r: (r[0], r[1]))

    def test_slot_boundary_entries(self):
        # Times exactly on k << SHIFT must land in slot k, not k-1 or k+1.
        sim = Simulator()
        fired = []
        for k in (1, 2, 3, 511):
            sim.call_at(k << _WHEEL_SHIFT, lambda k=k: fired.append((sim.now, k)))
        sim.run()
        assert fired == [(k << _WHEEL_SHIFT, k) for k in (1, 2, 3, 511)]

    def test_far_future_cascades_into_order(self):
        # A heap-parked entry must interleave correctly with wheel entries
        # scheduled later but due sooner.
        sim = Simulator()
        log = []
        sim.call_in(HORIZON + SLOT * 5, lambda: log.append("far"))
        sim.call_in(SLOT * 2, lambda: log.append("near"))
        sim.call_in(HORIZON + SLOT * 2, lambda: log.append("mid"))
        sim.run()
        assert log == ["near", "mid", "far"]

    def test_reschedule_past_the_cursor_goes_to_ready(self):
        # Once the cursor has advanced, a new entry due in an already-
        # drained slot's span must merge into ready, not wrap the wheel.
        sim = Simulator()
        log = []

        def late_arrival():
            # Scheduled at pop time (cursor has advanced to slot 10).
            sim.call_in(1, lambda: log.append(("inner", sim.now)))

        sim.call_in(SLOT * 10, late_arrival)
        sim.call_in(SLOT * 10 + 2, lambda: log.append(("outer", sim.now)))
        sim.run()
        assert log == [("inner", SLOT * 10 + 1), ("outer", SLOT * 10 + 2)]

    def test_interrupt_abandoned_token_in_wheel_slot(self):
        # An interrupted delay leaves its stale token parked in a wheel
        # slot; the token must pop harmlessly and not wake anyone.
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield SLOT * 100  # parks a token deep in the wheel
            except Interrupt:
                log.append(("interrupted", sim.now))
            yield 5
            log.append(("resumed", sim.now))

        def poker(victim):
            yield 50
            victim.interrupt()

        victim = sim.spawn(sleeper())
        sim.spawn(poker(victim))
        sim.run()
        assert log == [("interrupted", 50), ("resumed", 55)]
        # The run drains through the stale token's slot without effect.
        assert sim.now == SLOT * 100


class TestPeriodicTask:
    def test_ticks_at_fixed_period(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 100, lambda: times.append(sim.now))
        sim.run(until=550)
        assert times == [100, 200, 300, 400, 500]
        assert task.ticks == 5

    def test_wheel_scale_period_ticks_exactly(self):
        # A period wider than one slot exercises wheel re-arming per tick.
        sim = Simulator()
        times = []
        sim.periodic(SLOT * 3, lambda: times.append(sim.now))
        sim.run(until=SLOT * 10)
        assert times == [SLOT * 3, SLOT * 6, SLOT * 9]

    def test_first_delay_offsets_only_the_first_tick(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 100, lambda: times.append(sim.now), first_delay=30)
        sim.run(until=350)
        assert times == [30, 130, 230, 330]

    def test_zero_first_delay_fires_at_construction_instant(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 50, lambda: times.append(sim.now), first_delay=0)
        sim.run(until=120)
        assert times == [0, 50, 100]

    def test_invalid_arguments_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="period must be positive"):
            PeriodicTask(sim, 0, lambda: None)
        with pytest.raises(SchedulingInPastError):
            PeriodicTask(sim, 10, lambda: None, first_delay=-1)

    def test_fifo_interleaving_with_same_time_timers(self):
        # Armed first -> fires first at the shared instant; the re-armed
        # next tick then queues after anything scheduled inside the tick.
        sim = Simulator()
        log = []
        sim.periodic(100, lambda: log.append("task"))
        sim.call_at(100, lambda: log.append("timer"))
        sim.run(until=100)
        assert log == ["task", "timer"]

    def test_cancel_stops_ticking_and_is_idempotent(self):
        sim = Simulator()
        times = []
        task = sim.periodic(100, lambda: times.append(sim.now))
        sim.call_at(250, task.cancel)
        sim.run(until=1_000)
        assert times == [100, 200]
        assert task.cancelled
        assert task.cancel() is True  # idempotent, like Timeout.cancel
        assert sim.now == 1_000

    def test_cancel_from_inside_fn(self):
        sim = Simulator()
        task = sim.periodic(100, lambda: task.cancel())
        sim.run()
        assert task.ticks == 1

    def test_fn_exception_propagates(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("tick failed")

        sim.periodic(100, boom)
        with pytest.raises(RuntimeError, match="tick failed"):
            sim.run()

    def test_name_defaults_to_fn_name(self):
        sim = Simulator()

        def sample_window():
            pass

        task = sim.periodic(10, sample_window)
        task.cancel()
        assert task.name == "sample_window"
        assert "sample_window" in repr(task)


def _periodic_workload(sim, log):
    """Periodic tasks racing one-shot timers and a spawned process."""
    sim.periodic(SLOT // 2, lambda: log.append((sim.now, "fast")))
    sim.periodic(SLOT * 5, lambda: log.append((sim.now, "slow")))
    sim.periodic(SLOT * 3, lambda: log.append((sim.now, "mid")), first_delay=7)
    doomed = sim.periodic(SLOT, lambda: log.append((sim.now, "doomed")))
    sim.call_at(SLOT * 4, doomed.cancel)

    def proc():
        for i in range(20):
            yield SLOT
            log.append((sim.now, f"proc-{i}"))

    sim.spawn(proc())
    for k in range(8):
        sim.call_in(SLOT * k + 3, lambda k=k: log.append((sim.now, f"timer-{k}")))


class TestPeriodicTaskAuditEquality:
    def test_fastpath_modes_bit_identical(self):
        # The strongest determinism witness: identical event logs, final
        # clocks AND sequence counters across the wheel and the classic
        # heap — every scheduling decision happened at the same point.
        results = []
        for fastpath in (True, False):
            sim = Simulator(fastpath=fastpath)
            log = []
            _periodic_workload(sim, log)
            sim.run(until=SLOT * 25)
            results.append((log, sim.now, sim.events))
        assert results[0] == results[1]

    def test_mid_run_fastpath_flip_migrates_tasks(self):
        # Experiments set sim._fastpath after construction; a task armed
        # in one mode must re-arm correctly in the other at its next tick.
        sim = Simulator(fastpath=True)
        times = []
        sim.periodic(100, lambda: times.append(sim.now))
        sim.call_at(250, lambda: setattr(sim, "_fastpath", False))
        sim.run(until=600)
        assert times == [100, 200, 300, 400, 500, 600]


class TestPeekSkipsCancelled:
    def test_peek_skips_cancelled_head(self):
        sim = Simulator()
        doomed = sim.call_in(10, lambda: None)
        sim.call_in(40, lambda: None)
        doomed.cancel()
        assert sim.peek() == 40

    def test_peek_returns_none_when_only_cancelled_remain(self):
        sim = Simulator()
        for timer in [sim.timeout(10), sim.timeout(20)]:
            timer.cancel()
        assert sim.peek() is None

    def test_peek_skips_cancelled_wheel_entries(self):
        sim = Simulator()
        doomed = sim.call_in(SLOT * 3, lambda: None)
        sim.call_in(SLOT * 9, lambda: None)
        doomed.cancel()
        assert sim.peek() == SLOT * 9

    def test_step_is_noop_on_cancelled_only_schedule(self):
        sim = Simulator()
        sim.timeout(10).cancel()
        sim.step()
        assert sim.now == 0

    def test_run_until_does_not_burn_steps_on_cancelled(self):
        sim = Simulator()
        fired = []
        doomed = sim.call_in(10, lambda: fired.append("doomed"))
        sim.call_in(30, lambda: fired.append("kept"))
        doomed.cancel()
        sim.run(until=20)
        assert fired == []
        assert sim.now == 20
        sim.run(until=50)
        assert fired == ["kept"]


class TestCancelHeavyStress:
    def test_mixed_wheel_heap_cancellation_accounting(self):
        # Cancel a pseudo-random half of a large mixed population (ready,
        # wheel, and heap residents), crossing the compaction threshold
        # repeatedly; surviving timers must fire in order and the lazy-
        # cancel ledger must balance to exactly zero once drained.
        sim = Simulator()
        rng = random.Random(1234)
        fired = []
        timers = []
        for i in range(400):
            delay = rng.randrange(1, HORIZON * 2)
            timers.append((delay, sim.call_in(delay, lambda d=delay: fired.append(d))))
        doomed = rng.sample(timers, 200)
        for _, timer in doomed:
            timer.cancel()
        sim.run()
        survivors = sorted(d for d, t in timers if (d, t) not in doomed)
        assert fired == survivors
        assert sim._cancelled_pending == 0
        assert not sim._ready and not sim._heap and sim._wheel_count == 0

    def test_cancel_while_running_mixed_population(self):
        sim = Simulator()
        rng = random.Random(99)
        fired = []
        timers = []
        for i in range(100):
            delay = rng.randrange(1, HORIZON)
            timers.append(sim.call_in(delay, lambda d=delay, i=i: fired.append((d, i))))
        # A periodic saboteur cancels the not-yet-fired tail in waves.
        def sabotage():
            for timer in timers[60:]:
                timer.cancel()
        sim.call_in(HORIZON // 4, sabotage)
        sim.run()
        assert sim._cancelled_pending == 0
        assert fired == sorted(fired)
