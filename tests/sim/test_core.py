"""Tests for the simulation core: events, timeouts, conditions, the loop."""

import pytest

from repro.sim import (
    EventAlreadyTriggeredError,
    SchedulingInPastError,
    Simulator,
    all_of,
    any_of,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0

    def test_custom_start_time(self):
        assert Simulator(start_time=500).now == 500

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=1000)
        assert sim.now == 1000

    def test_run_until_in_past_rejected(self):
        sim = Simulator(start_time=100)
        with pytest.raises(SchedulingInPastError):
            sim.run(until=50)

    def test_back_to_back_runs_compose(self):
        sim = Simulator()
        ticks = []
        sim.call_in(300, lambda: ticks.append(sim.now))
        sim.run(until=200)
        assert ticks == []
        sim.run(until=400)
        assert ticks == [300]


class TestTimeout:
    def test_fires_at_the_right_time(self):
        sim = Simulator()
        fired = []
        timeout = sim.timeout(250)
        timeout.callbacks.append(lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [250]

    def test_carries_value(self):
        sim = Simulator()
        timeout = sim.timeout(10, value="payload")
        sim.run()
        assert timeout.value == "payload"

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingInPastError):
            sim.timeout(-1)

    def test_zero_delay_fires_immediately(self):
        sim = Simulator()
        timeout = sim.timeout(0)
        sim.run()
        assert timeout.processed
        assert sim.now == 0


class TestEvent:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        event = sim.event()
        seen = []
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed(42)
        sim.run()
        assert seen == [42]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(EventAlreadyTriggeredError):
            event.succeed()

    def test_fail_then_succeed_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(EventAlreadyTriggeredError):
            event.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_unhandled_failure_propagates_from_run(self):
        sim = Simulator()
        sim.event().fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            sim.run()

    def test_defused_failure_does_not_propagate(self):
        sim = Simulator()
        event = sim.event()
        event.fail(ValueError("handled"))
        event.defused()
        sim.run()  # no raise

    def test_value_unavailable_before_trigger(self):
        sim = Simulator()
        with pytest.raises(AttributeError):
            _ = sim.event().value

    def test_states(self):
        sim = Simulator()
        event = sim.event()
        assert not event.triggered and not event.processed
        event.succeed(1)
        assert event.triggered and not event.processed
        sim.run()
        assert event.processed


class TestOrdering:
    def test_fifo_among_simultaneous_events(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            sim.call_in(100, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_time_ordering_dominates(self):
        sim = Simulator()
        order = []
        sim.call_in(200, lambda: order.append("late"))
        sim.call_in(100, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_peek_reports_next_event_time(self):
        sim = Simulator()
        sim.timeout(70)
        assert sim.peek() == 70

    def test_peek_empty_queue(self):
        assert Simulator().peek() is None


class TestStop:
    def test_stop_aborts_run(self):
        sim = Simulator()
        seen = []
        sim.call_in(10, lambda: seen.append(1))
        sim.call_in(20, sim.stop)
        sim.call_in(30, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        assert sim.now == 20


class TestConditions:
    def test_all_of_collects_all_values(self):
        sim = Simulator()
        t1, t2 = sim.timeout(5, value="x"), sim.timeout(9, value="y")
        cond = all_of(sim, [t1, t2])
        sim.run()
        assert set(cond.value.values()) == {"x", "y"}
        assert sim.now == 9

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        fast, slow = sim.timeout(3, value="fast"), sim.timeout(50, value="slow")
        cond = any_of(sim, [fast, slow])
        fired_at = []
        cond.callbacks.append(lambda ev: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [3]
        assert fast in cond.value

    def test_operators(self):
        sim = Simulator()
        both = sim.timeout(1) & sim.timeout(2)
        either = sim.timeout(3) | sim.timeout(4)
        sim.run()
        assert both.triggered and either.triggered

    def test_condition_over_already_processed_event(self):
        sim = Simulator()
        done = sim.timeout(1, value="v")
        sim.run()
        cond = all_of(sim, [done])
        sim.run()
        assert cond.value == {done: "v"}

    def test_empty_any_of_fires(self):
        sim = Simulator()
        cond = any_of(sim, [])
        sim.run()
        assert cond.triggered

    def test_failed_child_fails_condition(self):
        sim = Simulator()
        bad = sim.event()
        cond = all_of(sim, [bad, sim.timeout(5)])
        bad.fail(RuntimeError("child failed"))
        cond.defused()
        sim.run()
        assert not cond.ok

    def test_cross_simulator_events_rejected(self):
        sim_a, sim_b = Simulator(), Simulator()
        with pytest.raises(ValueError):
            all_of(sim_a, [sim_a.timeout(1), sim_b.timeout(1)])


class TestCallbacks:
    def test_call_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(123, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [123]

    def test_call_at_past_rejected(self):
        sim = Simulator(start_time=10)
        with pytest.raises(SchedulingInPastError):
            sim.call_at(5, lambda: None)
