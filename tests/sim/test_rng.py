"""Tests for deterministic random streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(42).stream("x")
    b = RandomStreams(42).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_adding_consumer_does_not_perturb_existing():
    """Creating stream 'b' must not change what 'a' later draws."""
    one = RandomStreams(42)
    first = one.stream("a")
    baseline = [first.random() for _ in range(3)]

    two = RandomStreams(42)
    stream_a = two.stream("a")
    two.stream("b").random()  # extra consumer
    assert [stream_a.random() for _ in range(3)] == baseline


def test_fork_namespaces():
    root = RandomStreams(42)
    child = root.fork("sub")
    assert child.seed != root.seed
    assert child.stream("x").random() != root.stream("x").random()


def test_exponential_positive_and_mean():
    stream = RandomStreams(3).stream("exp")
    samples = [stream.exponential(100.0) for _ in range(4000)]
    assert all(s >= 0 for s in samples)
    mean = sum(samples) / len(samples)
    assert 90 < mean < 110


def test_exponential_rejects_bad_mean():
    with pytest.raises(ValueError):
        RandomStreams(1).stream("x").exponential(0)


def test_bounded_normal_respects_minimum():
    stream = RandomStreams(5).stream("norm")
    samples = [stream.bounded_normal(10.0, 50.0, minimum=2.0) for _ in range(500)]
    assert all(s >= 2.0 for s in samples)


def test_weighted_choice_respects_weights():
    stream = RandomStreams(9).stream("choice")
    draws = [stream.weighted_choice(["rare", "common"], [1, 99]) for _ in range(1000)]
    assert draws.count("common") > 900


def test_weighted_choice_length_mismatch():
    with pytest.raises(ValueError):
        RandomStreams(1).stream("x").weighted_choice(["a"], [1, 2])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_property_reproducible_for_any_seed_and_name(seed, name):
    a = RandomStreams(seed).stream(name).random()
    b = RandomStreams(seed).stream(name).random()
    assert a == b
