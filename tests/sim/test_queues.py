"""Tests for stores: FIFO semantics, capacity blocking, priority order."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import PriorityItem, PriorityStore, Simulator, Store


class TestStoreBasics:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        get = store.get()
        sim.run()
        assert get.value == "item"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        get = store.get()
        sim.run()
        assert not get.triggered
        store.put("late")
        sim.run()
        assert get.value == "late"

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        results = [store.get() for _ in range(5)]
        sim.run()
        assert [g.value for g in results] == [0, 1, 2, 3, 4]

    def test_getters_served_in_arrival_order(self):
        sim = Simulator()
        store = Store(sim)
        first, second = store.get(), store.get()
        store.put("a")
        store.put("b")
        sim.run()
        assert first.value == "a"
        assert second.value == "b"

    def test_len_tracks_contents(self):
        sim = Simulator()
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1

    def test_peek_does_not_remove(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        assert store.peek() == "x"
        assert len(store) == 1

    def test_peek_empty(self):
        assert Store(Simulator()).peek() is None


class TestCapacity:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Store(Simulator(), capacity=0)

    def test_put_blocks_when_full(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        first = store.put("a")
        second = store.put("b")
        sim.run()
        assert first.triggered
        assert not second.triggered
        get = store.get()
        sim.run()
        assert get.value == "a"
        assert second.triggered  # admitted once space freed
        assert store.peek() == "b"

    def test_is_full(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        store.put(1)
        assert not store.is_full
        store.put(2)
        assert store.is_full

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert store.try_put("a") is True
        assert store.try_put("b") is False
        assert len(store) == 1

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_try_get_admits_blocked_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        store.put("a")
        blocked = store.put("b")
        assert store.try_get() == "a"
        assert blocked.triggered


class TestCancelGet:
    def test_cancel_pending_get(self):
        sim = Simulator()
        store = Store(sim)
        get = store.get()
        assert store.cancel_get(get) is True
        store.put("x")
        sim.run()
        assert not get.triggered  # cancelled getter never receives
        assert store.peek() == "x"

    def test_cancel_fired_get_returns_false(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        get = store.get()
        assert store.cancel_get(get) is False


class TestPriorityStore:
    def test_smallest_first(self):
        sim = Simulator()
        store = PriorityStore(sim)
        for value in (5, 1, 3):
            store.put(value)
        gets = [store.get() for _ in range(3)]
        sim.run()
        assert [g.value for g in gets] == [1, 3, 5]

    def test_priority_item_wrapper(self):
        sim = Simulator()
        store = PriorityStore(sim)
        store.put(PriorityItem(2, "second"))
        store.put(PriorityItem(1, "first"))
        get = store.get()
        sim.run()
        assert get.value.item == "first"

    def test_priority_item_ordering(self):
        assert PriorityItem(1, "a") < PriorityItem(2, "b")
        assert PriorityItem(3, "x") == PriorityItem(3, "y")


class TestStoreWithProcesses:
    def test_producer_consumer_pipeline(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        consumed = []

        def producer(sim):
            for i in range(10):
                yield store.put(i)

        def consumer(sim):
            while len(consumed) < 10:
                item = yield store.get()
                consumed.append(item)
                yield sim.timeout(5)

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert consumed == list(range(10))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=1, max_size=40))
def test_property_store_preserves_fifo(items):
    """Whatever goes in comes out in the same order."""
    sim = Simulator()
    store = Store(sim)
    for item in items:
        store.put(item)
    gets = [store.get() for _ in items]
    sim.run()
    assert [g.value for g in gets] == items


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=1, max_size=40))
def test_property_priority_store_sorts(items):
    """Priority store always yields ascending order."""
    sim = Simulator()
    store = PriorityStore(sim)
    for item in items:
        store.put(item)
    gets = [store.get() for _ in items]
    sim.run()
    assert [g.value for g in gets] == sorted(items)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(), min_size=1, max_size=30),
)
def test_property_capacity_never_exceeded(capacity, items):
    """A bounded store never holds more than its capacity."""
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    observed = []

    def producer(sim):
        for item in items:
            yield store.put(item)
            observed.append(len(store))

    def consumer(sim):
        for _ in items:
            yield store.get()
            yield sim.timeout(1)

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert all(count <= capacity for count in observed)
