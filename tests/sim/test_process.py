"""Tests for generator processes: lifecycle, joins, interrupts, errors."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(10)
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done"
    assert not proc.is_alive


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_process_receives_event_values():
    sim = Simulator()

    def worker(sim):
        value = yield sim.timeout(5, value="payload")
        return value

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "payload"


def test_join_on_another_process():
    sim = Simulator()

    def fast(sim):
        yield sim.timeout(5)
        return 99

    def waiter(sim, other):
        result = yield other
        return result + 1

    fast_proc = sim.spawn(fast(sim))
    waiter_proc = sim.spawn(waiter(sim, fast_proc))
    sim.run()
    assert waiter_proc.value == 100


def test_join_on_finished_process():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)
        return "early"

    quick_proc = sim.spawn(quick(sim))
    sim.run()

    def late_joiner(sim):
        result = yield quick_proc
        return result

    late = sim.spawn(late_joiner(sim))
    sim.run()
    assert late.value == "early"


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    stamps = []

    def worker(sim):
        for _ in range(3):
            yield sim.timeout(10)
            stamps.append(sim.now)

    sim.spawn(worker(sim))
    sim.run()
    assert stamps == [10, 20, 30]


def test_exception_in_process_fails_it():
    sim = Simulator()

    def broken(sim):
        yield sim.timeout(1)
        raise ValueError("kaput")

    proc = sim.spawn(broken(sim))
    with pytest.raises(ValueError, match="kaput"):
        sim.run()
    assert proc.triggered and not proc.ok


def test_failed_process_join_raises_in_joiner():
    sim = Simulator()

    def broken(sim):
        yield sim.timeout(1)
        raise ValueError("inner")

    def joiner(sim, other):
        try:
            yield other
        except ValueError as exc:
            return f"caught {exc}"

    broken_proc = sim.spawn(broken(sim))
    joiner_proc = sim.spawn(joiner(sim, broken_proc))
    sim.run()
    assert joiner_proc.value == "caught inner"


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield "not an event"

    proc = sim.spawn(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()
    assert not proc.ok


def test_interrupt_delivers_cause():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(1000)
            return "overslept"
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    proc = sim.spawn(sleeper(sim))
    sim.call_in(100, lambda: proc.interrupt("wake up"))
    sim.run()
    assert proc.value == ("interrupted", "wake up", 100)


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    proc = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_stale_target_after_interrupt_is_dropped():
    """After an interrupt, the original target firing must not resume the
    process a second time."""
    sim = Simulator()
    resumed = []

    def sleeper(sim):
        try:
            yield sim.timeout(50)
        except Interrupt:
            pass
        resumed.append(sim.now)
        yield sim.timeout(500)
        resumed.append(sim.now)

    proc = sim.spawn(sleeper(sim))
    sim.call_in(10, lambda: proc.interrupt())
    sim.run()
    # resumed exactly twice: once after the interrupt, once after the
    # second timeout; the stale 50-tick timeout must not count.
    assert resumed == [10, 510]


def test_active_process_tracking():
    sim = Simulator()
    observed = []

    def worker(sim):
        observed.append(sim.active_process)
        yield sim.timeout(1)

    proc = sim.spawn(worker(sim))
    sim.run()
    assert observed == [proc]
    assert sim.active_process is None


def test_many_processes_interleave():
    sim = Simulator()
    log = []

    def worker(sim, name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((sim.now, name))

    sim.spawn(worker(sim, "a", 10))
    sim.spawn(worker(sim, "b", 15))
    sim.run()
    # At t=30 both fire; b's timeout was scheduled first (at t=15 vs t=20)
    # so FIFO tie-breaking runs it first.
    assert log == [
        (10, "a"), (15, "b"), (20, "a"), (30, "b"), (30, "a"), (45, "b")
    ]
