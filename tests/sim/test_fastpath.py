"""The integer-delay fast path must be indistinguishable from Timeout.

``yield n`` and ``yield sim.timeout(n)`` are two spellings of the same
sleep. These tests run paired scenarios — one process tree per spelling,
or the same int-yielding tree under ``Simulator(fastpath=False)`` — and
assert bit-identical behaviour: event ordering, final clock, trace
streams. Plus the sharp edges: interrupts landing mid-delay (stale token
recycling), ``Timeout.cancel`` lazy deletion and heap compaction, the
``Tracer.wants`` memo, and the yield-type guardrails.
"""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator
from repro.sim.core import _DelayWakeup
from repro.sim.tracing import TraceLog, Tracer


def _mixed_workload(sim, log, use_fastpath_spelling):
    """A process clique exercising delays, events, joins and interrupts."""

    def delay(n):
        # The only difference between the paired runs is this spelling.
        return n if use_fastpath_spelling else sim.timeout(n)

    gate = sim.event("gate")

    def ticker(name, period, count):
        for i in range(count):
            yield delay(period)
            log.append((sim.now, name, i))

    def gatekeeper():
        yield delay(25)
        gate.succeed("open")
        log.append((sim.now, "gatekeeper", "opened"))

    def waiter():
        word = yield gate
        log.append((sim.now, "waiter", word))
        yield delay(10)
        log.append((sim.now, "waiter", "done"))

    def sleeper():
        try:
            yield delay(10_000)
            log.append((sim.now, "sleeper", "overslept"))
        except Interrupt as interrupt:
            log.append((sim.now, "sleeper", f"poked:{interrupt.cause}"))
            yield delay(7)
            log.append((sim.now, "sleeper", "back"))

    def poker(victim):
        yield delay(33)
        victim.interrupt("hey")

    sim.spawn(ticker("a", 10, 6), name="ticker-a")
    sim.spawn(ticker("b", 15, 4), name="ticker-b")
    sim.spawn(gatekeeper(), name="gatekeeper")
    sim.spawn(waiter(), name="waiter")
    victim = sim.spawn(sleeper(), name="sleeper")
    sim.spawn(poker(victim), name="poker")


def _run_mixed(fastpath_sim, fastpath_spelling):
    sim = Simulator(fastpath=fastpath_sim)
    log = []
    _mixed_workload(sim, log, fastpath_spelling)
    sim.run()
    return log, sim.now


class TestPairedDeterminism:
    def test_int_yield_matches_timeout_yield(self):
        fast_log, fast_end = _run_mixed(True, True)
        classic_log, classic_end = _run_mixed(True, False)
        assert fast_log == classic_log
        assert fast_end == classic_end

    def test_fastpath_off_audit_knob_matches(self):
        # Same int-yield spelling, routed through the allocating path.
        fast_log, fast_end = _run_mixed(True, True)
        audit_log, audit_end = _run_mixed(False, True)
        assert fast_log == audit_log
        assert fast_end == audit_end

    def test_sequence_numbers_consumed_identically(self):
        # Equal _seq after equal scenarios means every scheduling decision
        # happened at the same points — the strongest ordering witness.
        sims = []
        for spelling in (True, False):
            sim = Simulator()
            log = []
            _mixed_workload(sim, log, spelling)
            sim.run()
            sims.append(sim)
        assert sims[0]._seq == sims[1]._seq


class TestFastDelaySemantics:
    def test_zero_delay_resumes_same_instant_after_others(self):
        sim = Simulator()
        order = []

        def zero_hopper():
            yield 0
            order.append("hop")

        def plain():
            yield sim.timeout(0)
            order.append("plain")

        sim.spawn(zero_hopper())
        sim.spawn(plain())
        sim.run()
        assert sim.now == 0
        assert order == ["hop", "plain"]

    def test_delay_value_is_none(self):
        sim = Simulator()
        seen = []

        def proc():
            seen.append((yield 5))

        sim.spawn(proc())
        sim.run()
        assert seen == [None]

    def test_yield_already_processed_event_gets_its_value(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("payload")
        seen = []

        def late_joiner():
            yield sim.timeout(10)  # `done` is long processed by now
            seen.append((yield done))

        sim.spawn(late_joiner())
        sim.run()
        assert seen == ["payload"]

    def test_token_reused_across_consecutive_delays(self):
        sim = Simulator()
        tokens = []

        def proc():
            for _ in range(3):
                yield 5
                tokens.append(sim._active_process._delay_wakeup)

        sim.spawn(proc())
        sim.run()
        assert len({id(t) for t in tokens}) == 1

    def test_interrupt_during_fast_delay(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield 1_000
            except Interrupt:
                log.append(("interrupted", sim.now))
            yield 5
            log.append(("resumed", sim.now))

        def poker(victim):
            yield 100
            victim.interrupt()

        victim = sim.spawn(sleeper())
        sim.spawn(poker(victim))
        sim.run()
        assert log == [("interrupted", 100), ("resumed", 105)]
        # The abandoned 1000-tick token eventually pops and is ignored —
        # the run ends at the stale token's time with no further effect.
        assert sim.now == 1_000

    def test_stale_token_recycled_not_duplicated(self):
        sim = Simulator()

        def sleeper():
            try:
                yield 1_000
            except Interrupt:
                pass
            # Re-arming while the stale token is still heap-parked must
            # allocate a fresh token (the stale one is dead, not reusable).
            yield 50
            yield 2_000  # outlives the stale pop at t=1000

        def poker(victim):
            yield 100
            victim.interrupt()

        victim = sim.spawn(sleeper())
        sim.spawn(poker(victim))
        sim.run()
        assert victim.triggered
        assert sim.now == 2_150
        # After the stale pop recycled itself, the process holds one token.
        assert isinstance(victim._delay_wakeup, _DelayWakeup)

    def test_negative_int_yield_fails_process(self):
        sim = Simulator()

        def proc():
            yield -5

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="negative delay"):
            sim.run()
        assert not process.ok

    def test_bool_yield_is_rejected(self):
        # bool is an int subclass, but `yield True` is a bug, not a delay.
        sim = Simulator()

        def proc():
            yield True

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="not an Event"):
            sim.run()
        assert not process.ok


class TestTimeoutCancel:
    def test_cancelled_timer_never_fires(self):
        sim = Simulator()
        fired = []
        timer = sim.call_in(50, lambda: fired.append(sim.now))
        assert timer.cancel() is True
        sim.run()
        assert fired == []
        # Cancelled entries are skip-popped without advancing the clock.
        assert sim.now == 0

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        fired = []
        timer = sim.call_in(10, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10]
        assert timer.cancel() is False

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        timer = sim.timeout(10)
        assert timer.cancel() is True
        assert timer.cancel() is True
        assert sim._cancelled_pending == 1

    def test_other_timers_survive_a_cancel(self):
        sim = Simulator()
        fired = []
        doomed = sim.call_in(20, lambda: fired.append("doomed"))
        sim.call_in(30, lambda: fired.append("kept"))
        doomed.cancel()
        sim.run()
        assert fired == ["kept"]

    def test_heap_compaction_drops_cancelled_entries(self):
        sim = Simulator()
        fired = []
        doomed = [sim.timeout(1_000 + i) for i in range(100)]
        sim.call_in(5, lambda: fired.append("early"))
        sim.call_in(2_000, lambda: fired.append("late"))
        for timer in doomed:
            timer.cancel()
        # The 64th cancel crosses the >=64-and-majority threshold and
        # rebuilds the containers without the dead entries; the stragglers
        # cancelled after that stay lazily pending.
        assert sim._cancelled_pending == 36
        queued = len(sim._ready) + sim._wheel_count + len(sim._heap)
        assert queued == 2 + sim._cancelled_pending
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 2_000

    def test_compaction_preserves_ordering(self):
        sim = Simulator()
        fired = []
        for i in range(40):
            sim.call_in(10 + i, lambda i=i: fired.append(i))
        doomed = [sim.timeout(5_000 + i) for i in range(80)]
        for timer in doomed:
            timer.cancel()
        sim.run()
        assert fired == list(range(40))


class TestTracerWants:
    def test_wants_false_without_sinks(self):
        tracer = Tracer(Simulator())
        assert tracer.wants("ctxsw-in") is False

    def test_subscribe_invalidates_memo(self):
        tracer = Tracer(Simulator())
        assert tracer.wants("tick") is False  # memoized False
        tracer.subscribe(TraceLog(), kinds=["tick"])
        assert tracer.wants("tick") is True
        assert tracer.wants("other") is False

    def test_global_sink_wants_everything(self):
        tracer = Tracer(Simulator())
        assert tracer.wants("anything") is False
        tracer.subscribe(TraceLog())
        assert tracer.wants("anything") is True

    def test_enabled_toggle_invalidates_memo(self):
        tracer = Tracer(Simulator())
        tracer.subscribe(TraceLog(), kinds=["tick"])
        assert tracer.wants("tick") is True
        tracer.enabled = False
        assert tracer.wants("tick") is False
        tracer.enabled = True
        assert tracer.wants("tick") is True


class TestTraceLogHelpers:
    def test_count_by_kind_and_clear(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log)
        tracer.emit("src", "a")
        tracer.emit("src", "a")
        tracer.emit("src", "b")
        assert log.count_by_kind() == {"a": 2, "b": 1}
        assert len(log) == 3
        log.clear()
        assert len(log) == 0
        assert log.count_by_kind() == {}
