"""Tests for time helpers and the tracing hub."""

from repro.sim import (
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    Simulator,
    TraceLog,
    Tracer,
    ms,
    ns,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    us,
)


class TestTimeUnits:
    def test_conversions(self):
        assert us(1) == NS_PER_US
        assert ms(1) == NS_PER_MS
        assert seconds(1) == NS_PER_S
        assert ns(5.4) == 5

    def test_fractions(self):
        assert ms(1.5) == 1_500_000
        assert us(0.5) == 500

    def test_roundtrip(self):
        assert to_ms(ms(125)) == 125
        assert to_us(us(9)) == 9
        assert to_seconds(seconds(3)) == 3

    def test_integer_results(self):
        assert isinstance(ms(2.7), int)
        assert isinstance(seconds(0.001), int)


class TestTracer:
    def test_emit_reaches_kind_subscriber(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log, kinds=["alpha"])
        tracer.emit("src", "alpha", detail=1)
        tracer.emit("src", "beta", detail=2)
        assert len(log) == 1
        assert log.records[0].kind == "alpha"
        assert log.records[0].payload == {"detail": 1}

    def test_global_subscriber_sees_everything(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log)
        tracer.emit("a", "x")
        tracer.emit("b", "y")
        assert len(log) == 2

    def test_records_stamped_with_sim_time(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log, kinds=["tick"])
        sim.call_in(500, lambda: tracer.emit("clock", "tick"))
        sim.run()
        assert log.records[0].time == 500

    def test_disabled_tracer_emits_nothing(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=False)
        log = TraceLog()
        tracer.subscribe(log)
        tracer.emit("src", "kind")
        assert len(log) == 0

    def test_of_kind_filter(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log)
        tracer.emit("s", "a")
        tracer.emit("s", "b")
        tracer.emit("s", "a")
        assert len(log.of_kind("a")) == 2

    def test_no_subscribers_is_cheap_and_safe(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.emit("s", "unwatched")  # must not raise
