"""The sharded fabric experiment: bit-equal arms, fault story, sweep."""

import pytest

from repro.experiments import (
    run_fabric_sharded,
    run_fabric_sharded_arm,
    render_fabric_sharded,
    sharded_topology,
)
from repro.sim import ms, seconds

K = 16
FANOUT = 4
DURATION = seconds(2)


def arm(shards, fastpath=True, blackout=True):
    return run_fabric_sharded_arm(
        K, shards=shards, duration=DURATION, seed=3,
        fastpath=fastpath, blackout=blackout, fanout=FANOUT,
    )


@pytest.fixture(scope="module")
def reference():
    return arm(shards=1)


class TestBitEquality:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_metrics_match_single_process(self, reference, shards):
        sharded = arm(shards=shards)
        assert sharded.metrics == reference.metrics
        assert sharded.shards == shards

    def test_audit_path_matches_fast_path(self, reference):
        assert arm(shards=2, fastpath=False).metrics == reference.metrics

    def test_execution_side_reported_separately(self, reference):
        sharded = arm(shards=2)
        assert sharded.events == reference.events
        assert sharded.windows == reference.windows
        assert sharded.wall_seconds > 0
        assert sharded.events_per_second > 0


class TestFaultStory:
    def test_partition_detected_at_both_uplink_endpoints(self, reference):
        target = f"cluster-{K // FANOUT - 1}"
        health = reference.metrics["clusters"][target]["health"]
        assert "down" in [state for _t, state, _r in health["transitions"]]
        downlinks = reference.metrics["root"]["downlinks"]
        target_agg = f"isle-{K - FANOUT}"
        root_states = [
            state for _t, state, _r in downlinks[target_agg]["transitions"]
        ]
        assert "down" in root_states
        assert reference.detect_ms == pytest.approx(200.0)

    def test_reports_suppressed_while_down(self, reference):
        target = f"cluster-{K // FANOUT - 1}"
        assert reference.metrics["clusters"][target]["reports_suppressed"] > 0

    def test_recovery_bumps_epoch_and_converges(self, reference):
        assert reference.recovery_epoch == 1
        assert reference.convergence_ms is not None
        # The spare registered mid-blackout; every cluster eventually saw it.
        for name, data in reference.metrics["clusters"].items():
            assert "spare" in data["seen_at"], name

    def test_blackout_dropped_boundary_messages(self, reference):
        assert reference.metrics["boundary"]["dropped"] > 0
        calm = arm(shards=1, blackout=False)
        assert calm.metrics["boundary"]["dropped"] == 0
        assert calm.convergence_ms is None
        assert calm.detect_ms is None


class TestSweep:
    def test_sweep_asserts_equality_and_renders(self):
        results = run_fabric_sharded(
            island_counts=(16,), shards=4, duration=seconds(1), seed=1
        )
        reference, sharded = results[16]
        assert reference.shards == 1
        assert sharded.shards == 2  # 16 islands / fanout 8 = 2 clusters
        table = render_fabric_sharded(results)
        assert "16" in table and "bit-identical" in table

    def test_single_cluster_topology_rejected(self):
        with pytest.raises(ValueError, match="single cluster"):
            sharded_topology(8, fanout=8)


class TestTopology:
    def test_ring_and_uplinks_give_expected_lookahead(self):
        topo = sharded_topology(32, fanout=8)
        assert topo.min_cross_cluster_latency() == ms(5)
        aggregators = topo.aggregators
        assert len(aggregators) == 4
        # Every aggregator reaches its ring successor over a declared link.
        declared = {
            frozenset((a, b)) for a, b, _l in topo.cross_cluster_links()
        }
        for i, agg in enumerate(aggregators):
            succ = aggregators[(i + 1) % len(aggregators)]
            assert frozenset((agg, succ)) in declared
