"""Smoke tests for the experiment drivers (short runs).

Full-length, shape-asserting reproductions live in ``benchmarks/``; here
we verify the drivers produce complete, renderable results quickly.
"""

import pytest

from repro.apps.rubis import RubisConfig
from repro.experiments import (
    render_figure2,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table1,
    render_table2,
    render_table3,
    run_rubis_pair,
)
from repro.experiments.mplayer import QoSLadderResult, TriggerPairResult, TriggerRunResult
from repro.sim import ms, seconds


@pytest.fixture(scope="module")
def small_pair():
    config = RubisConfig(
        num_sessions=16,
        requests_per_session=6,
        think_time_mean=ms(150),
        warmup=seconds(2),
    )
    return run_rubis_pair(duration=seconds(10), config=config)


class TestRubisDrivers:
    def test_pair_has_both_arms(self, small_pair):
        assert not small_pair.base.coordinated
        assert small_pair.coord.coordinated
        assert small_pair.coord.tunes_applied > 0
        assert small_pair.base.tunes_applied == 0

    def test_common_types_in_catalogue_order(self, small_pair):
        names = small_pair.common_types()
        assert len(names) >= 5
        from repro.apps.rubis import REQUEST_TYPES

        order = [rt.name for rt in REQUEST_TYPES]
        assert names == [n for n in order if n in names]

    def test_throughput_and_utilization_populated(self, small_pair):
        for arm in (small_pair.base, small_pair.coord):
            assert arm.throughput > 0
            assert arm.total_utilization > 0
            assert arm.efficiency > 0
            assert set(arm.utilization) == {
                "Domain-0", "web-server", "app-server", "db-server"
            }

    def test_renderers_produce_rows_for_each_type(self, small_pair):
        table1 = render_table1(small_pair)
        for name in small_pair.common_types():
            assert name in table1
        assert "Base(ms)" in table1

    def test_table2_contains_all_metrics(self, small_pair):
        table2 = render_table2(small_pair)
        for label in ("Throughput", "Sessions completed", "Avg session time",
                      "Platform efficiency"):
            assert label in table2

    def test_figures_render(self, small_pair):
        assert "Figure 2" in render_figure2(small_pair)
        assert "Figure 4" in render_figure4(small_pair)
        assert "Figure 5" in render_figure5(small_pair)


class TestMPlayerRenderers:
    def test_figure6_from_synthetic_result(self):
        result = QoSLadderResult(
            stage_a=(17.0, 18.5),
            stage_b=(20.1, 25.2),
            stage_c=(20.0, 25.5),
            weights={"mplayer-1": 384, "mplayer-2": 640},
            ixp_threads={"mplayer-1": 2, "mplayer-2": 6},
        )
        out = render_figure6(result)
        assert "256-256" in out and "384-512" in out and "384-640" in out
        assert "17.0" in out and "25.5" in out

    def test_figure7_and_table3_from_synthetic_result(self):
        def arm(trigger, fps1, fps2):
            return TriggerRunResult(
                buffer_trigger=trigger,
                dom1_fps=fps1,
                dom2_fps=fps2,
                triggers_sent=100 if trigger else 0,
                dom1_cpu_series=[(i, 50.0 + (i % 3)) for i in range(60)],
                buffer_series=[(i, (i % 10) * 50_000) for i in range(60)],
                buffer_high_watermark=600 * 1024,
            )

        pair = TriggerPairResult(base=arm(False, 24.0, 80.0), coord=arm(True, 26.6, 75.0))
        table3 = render_table3(pair)
        assert "+10.83%" in table3 or "+10.8" in table3  # 24 -> 26.6
        assert "-6.25%" in table3
        fig7 = render_figure7(pair)
        assert "Figure 7" in fig7
        assert "triggers sent: 100" in fig7

    def test_pair_percent_helpers(self):
        pair = TriggerPairResult(
            base=TriggerRunResult(False, 24.0, 80.0, 0, [], [], 0),
            coord=TriggerRunResult(True, 26.4, 75.2, 9, [], [], 0),
        )
        assert pair.dom1_change_percent == pytest.approx(10.0)
        assert pair.dom2_change_percent == pytest.approx(-6.0)
