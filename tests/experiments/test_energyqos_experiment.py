"""Tests for the energy/QoS co-optimization experiment driver.

Short-duration arms: the full-length acceptance run lives in the CI
smoke job (tools/energyqos_smoke.py); here we check the driver wiring,
the renderer, and the fastpath/classic determinism contract.
"""

import dataclasses

import pytest

from repro.experiments.energyqos import (
    GUEST_SPECS,
    EnergyQosArmResult,
    EnergyQosResult,
    render_energy_qos,
    run_energy_qos_arm,
)
from repro.sim import seconds


class TestDriver:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_energy_qos_arm("greedy")

    def test_coordinated_arm_produces_a_full_scoreboard(self):
        arm = run_energy_qos_arm("coordinated", duration=seconds(6))
        assert arm.mode == "coordinated"
        assert arm.energy_j > 0
        assert arm.checks > 0
        assert set(arm.p95_ms) == {spec.name for spec in GUEST_SPECS}
        assert set(arm.actuations) == {
            "dvfs-level", "llc-ways", "bw-share", "prefetch-throttle"
        }
        assert arm.governor["epochs"] > 0

    def test_partition_only_arm_stays_at_nominal_frequency(self):
        arm = run_energy_qos_arm("partition-only", duration=seconds(6))
        assert arm.final_speed == 1.0
        assert arm.actuations["dvfs-level"] == 0


class TestDeterminism:
    def test_arm_is_bit_identical_across_kernel_fastpath(self):
        fast = run_energy_qos_arm(
            "coordinated", seed=3, duration=seconds(6), fastpath=True
        )
        classic = run_energy_qos_arm(
            "coordinated", seed=3, duration=seconds(6), fastpath=False
        )
        assert fast == classic  # every field, floats bit-equal

    def test_same_seed_reproduces_exactly(self):
        first = run_energy_qos_arm("dvfs-only", seed=5, duration=seconds(4))
        second = run_energy_qos_arm("dvfs-only", seed=5, duration=seconds(4))
        assert first == second


class TestRenderer:
    def _fake_arm(self, mode, energy):
        return EnergyQosArmResult(
            mode=mode, energy_j=energy, mean_power_w=energy / 40.0,
            violations=0, checks=100, violations_by_vm={},
            p95_ms={spec.name: 10.0 for spec in GUEST_SPECS},
            final_speed=0.85,
            actuations={"dvfs-level": 1, "llc-ways": 2, "bw-share": 0,
                        "prefetch-throttle": 1},
            governor={},
        )

    def test_renderer_lists_all_modes_and_targets(self):
        result = EnergyQosResult(
            targets={spec.name: spec.p95_target_ms for spec in GUEST_SPECS},
            arms={
                mode: self._fake_arm(mode, energy)
                for mode, energy in (
                    ("coordinated", 1300.0),
                    ("dvfs-only", 1600.0),
                    ("partition-only", 1480.0),
                )
            },
        )
        table = render_energy_qos(result)
        for mode in ("coordinated", "dvfs-only", "partition-only"):
            assert mode in table
        for spec in GUEST_SPECS:
            assert spec.name in table

    def test_arm_result_is_a_plain_dataclass(self):
        # The smoke tool serialises fields; keep the shape stable.
        fields = {f.name for f in dataclasses.fields(EnergyQosArmResult)}
        assert {"mode", "energy_j", "violations", "checks", "final_speed",
                "actuations", "governor"} <= fields
