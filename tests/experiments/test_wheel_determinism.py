"""Wheel-vs-heap determinism at the experiment level.

The kernel-level tests (``tests/sim/test_timerwheel.py``) prove pop-order
equality on synthetic schedules; here the full RUBiS deployment — credit
scheduler ticks, samplers, power meter, background load, coordination
channel — runs once through the timer wheel and once through the classic
heap (``fastpath=False``), and the *rendered paper artefacts* must be
bit-identical. Chaos and energy/QoS arms have the same paired assertion
in their own test modules; RUBiS closes the set named by the roadmap.
"""

import pytest

from repro.apps.rubis import RubisConfig
from repro.experiments import (
    render_figure2,
    render_figure4,
    render_table1,
    run_rubis_pair,
)
from repro.sim import ms, seconds


@pytest.fixture(scope="module")
def wheel_and_heap_pairs():
    config = RubisConfig(
        num_sessions=12,
        requests_per_session=5,
        think_time_mean=ms(150),
        warmup=seconds(2),
    )
    shared = dict(duration=seconds(8), seed=7, config=config)
    return (
        run_rubis_pair(fastpath=True, **shared),
        run_rubis_pair(fastpath=False, **shared),
    )


class TestRubisWheelVsHeap:
    def test_rendered_artefacts_bit_identical(self, wheel_and_heap_pairs):
        wheel, heap = wheel_and_heap_pairs
        for render in (render_figure2, render_figure4, render_table1):
            assert render(wheel) == render(heap)

    def test_metrics_bit_identical(self, wheel_and_heap_pairs):
        wheel, heap = wheel_and_heap_pairs
        for arm_w, arm_h in ((wheel.base, heap.base), (wheel.coord, heap.coord)):
            assert arm_w.per_type == arm_h.per_type
            assert arm_w.tunes_applied == arm_h.tunes_applied
            assert arm_w.sessions_completed == arm_h.sessions_completed
            assert arm_w.utilization == arm_h.utilization
