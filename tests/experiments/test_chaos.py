"""Chaos experiment: the full fault arc, deterministically."""

from repro.experiments import render_chaos, run_chaos_arm
from repro.sim import ms


class TestChaosArm:
    """One 500 ms blackout arm (module-scoped budget: ~2 s per run)."""

    def test_full_arc_and_determinism_across_kernel_fastpath(self):
        fast = run_chaos_arm(blackout=ms(500), seed=1, fastpath=True)
        classic = run_chaos_arm(blackout=ms(500), seed=1, fastpath=False)

        # The acceptance criterion: same seed + same plan -> identical
        # health timelines and identical reconverged state, regardless of
        # the simulation kernel's execution mode.
        assert fast.transitions == classic.transitions
        assert fast.final_weights == classic.final_weights
        assert fast.epoch == classic.epoch
        assert fast.replays_sent == classic.replays_sent
        assert fast.tunes_suppressed == classic.tunes_suppressed

        # The arc itself: detect -> fallback -> recover -> reconverge.
        for side in ("ixp", "x86"):
            assert fast.detection_ms[side] > 0
            assert fast.recovery_ms[side] > 0
            assert fast.epoch[side] == 1
        assert fast.fallback_ms >= fast.detection_ms["x86"]
        assert fast.reconverge_ms >= 0
        assert fast.replays_sent > 0
        assert fast.tunes_suppressed > 0
        # Lease hygiene: every transient boost expired, none stuck.
        assert fast.stuck_leases == 0
        assert fast.boost_triggers_sent > 0

        rendered = render_chaos([fast, classic])
        assert "Chaos" in rendered
        assert "all boost leases expired cleanly" in rendered
