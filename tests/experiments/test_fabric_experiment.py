"""Small-K smoke of the control-plane fabric sweep."""

import pytest

from repro.experiments.fabric import (
    ARMS,
    FabricArmResult,
    render_fabric,
    run_fabric_arm,
)
from repro.sim import seconds

K = 8
K_BIG = 32


@pytest.fixture(scope="module")
def results():
    return {
        (arm, K): run_fabric_arm(arm, K, duration=seconds(2), seed=1)
        for arm in ARMS
    }


class TestFabricArms:
    def test_all_arms_produce_results(self, results):
        for arm in ARMS:
            r = results[(arm, K)]
            assert isinstance(r, FabricArmResult)
            assert r.arm == arm
            assert r.num_islands == K
            assert r.total_messages > 0

    def test_qos_holds_across_arms(self, results):
        """The fabrics move control messages, not work: probe latency
        must be within a tight band regardless of directory shape."""
        means = [results[(arm, K)].mean_probe_latency_ms for arm in ARMS]
        assert max(means) - min(means) < 0.5

    def test_gossip_has_no_hot_spot(self, results):
        """Central piles everything on the hub; gossip's busiest node is
        barely busier than its average one."""
        central = results[("central", K)]
        gossip = results[("gossip", K)]
        assert central.root_messages == central.max_node_messages
        assert gossip.max_node_messages <= 3 * gossip.mean_node_messages

    def test_concentration_scaling(self, results):
        """Growing the fabric 4x grows the central hub's load ~4x but
        leaves gossip's busiest node flat — the O(K) vs O(1) story."""
        central_small = results[("central", K)]
        gossip_small = results[("gossip", K)]
        central_big = run_fabric_arm(
            "central", K_BIG, duration=seconds(2), seed=1
        )
        gossip_big = run_fabric_arm(
            "gossip", K_BIG, duration=seconds(2), seed=1
        )
        assert central_big.max_node_messages > 2 * central_small.max_node_messages
        assert gossip_big.max_node_messages < 1.5 * gossip_small.max_node_messages

    def test_partition_heals_and_discovery_converges(self, results):
        for arm in ARMS:
            r = results[(arm, K)]
            assert r.convergence_ms is not None, arm
            # Bounded: well under the remaining second of the run.
            assert r.convergence_ms < 1000.0

    def test_no_dead_letters_at_zero_loss(self, results):
        for arm in ARMS:
            assert results[(arm, K)].dead_letters == 0

    def test_unknown_arm_rejected(self):
        with pytest.raises(ValueError, match="unknown arm"):
            run_fabric_arm("mesh", 4)

    def test_render_mentions_every_arm(self, results):
        table = render_fabric(results)
        for arm in ARMS:
            assert arm in table
        assert "Converge" in table
