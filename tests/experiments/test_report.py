"""Tests for the ASCII renderers and experiment result helpers."""

import pytest

from repro.experiments import (
    percent_change,
    render_bars,
    render_minmax,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_header_and_rows(self):
        out = render_table(["a", "bb"], [("1", "2"), ("333", "4")], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "333" in lines[4]

    def test_column_alignment(self):
        out = render_table(["col"], [("short",), ("a-much-longer-cell",)])
        lines = out.splitlines()
        rule = lines[1]
        assert len(rule) == len("a-much-longer-cell")

    def test_non_string_cells(self):
        out = render_table(["n"], [(42,), (3.5,)])
        assert "42" in out and "3.5" in out


class TestRenderBars:
    def test_scaling(self):
        out = render_bars([("a", 50.0), ("b", 100.0)], width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("#") == 10
        assert a_line.count("#") == 5

    def test_empty(self):
        assert render_bars([], title="nothing") == "nothing"

    def test_explicit_maximum(self):
        out = render_bars([("a", 50.0)], width=10, maximum=100.0)
        assert out.count("#") == 5


class TestRenderMinMax:
    def test_span_positions(self):
        out = render_minmax([("x", 10.0, 100.0)], width=20)
        assert "min=10" in out and "max=100" in out
        assert "=" in out

    def test_multiple_rows_aligned(self):
        out = render_minmax([("short", 1, 2), ("much-longer-label", 1, 2)])
        lines = [l for l in out.splitlines() if "min=" in l]
        assert len(lines) == 2


class TestRenderSeries:
    def test_contains_extremes(self):
        points = [(i, float(i % 7)) for i in range(100)]
        out = render_series(points, title="wave")
        assert "wave" in out
        assert "*" in out

    def test_flat_series(self):
        out = render_series([(0, 5.0), (1, 5.0)])
        assert "*" in out

    def test_empty_series(self):
        assert render_series([], title="t") == "t"


class TestPercentChange:
    def test_signs(self):
        assert percent_change(100, 150) == 50
        assert percent_change(100, 75) == -25

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            percent_change(0, 10)
