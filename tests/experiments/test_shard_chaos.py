"""The shard-chaos experiment: scripted faults, bit-equal recovery."""

import pytest

from repro.experiments import (
    chaos_scenarios,
    render_shard_chaos,
    run_shard_chaos,
)
from repro.experiments.shard_chaos import CHAOS_KNOBS
from repro.shard import FaultScript
from repro.sim import ms

K = 16
FANOUT = 4
DURATION = ms(250)


@pytest.fixture(scope="module")
def results():
    return run_shard_chaos(
        island_counts=(K,), shards=2, duration=DURATION, seed=3,
        workers=2, fanout=FANOUT,
    )


class TestScenarios:
    def test_every_scenario_survived_bit_identical(self, results):
        arms = results[K]
        assert [arm.scenario for arm in arms] == [
            "none", "crash", "hang", "exhaust",
        ]
        assert all(arm.bit_identical for arm in arms)

    def test_clean_run_shows_no_recovery(self, results):
        clean = results[K][0]
        assert clean.engine == "process"
        assert clean.crashes == clean.hangs == clean.respawns == 0
        assert clean.recovery_seconds == 0

    def test_crash_respawns_and_replays(self, results):
        crash = results[K][1]
        assert crash.engine == "process"
        assert crash.crashes == 1
        assert crash.respawns == 1
        assert crash.replayed_windows > 0
        assert crash.degraded == 0

    def test_hang_detected_and_recovered(self, results):
        hang = results[K][2]
        assert hang.engine == "process"
        assert hang.hangs == 1
        assert hang.respawns == 1
        # Detection is bounded by the configured barrier deadline.
        assert hang.recovery_seconds < CHAOS_KNOBS["barrier_timeout_s"] + 5.0

    def test_exhaustion_degrades_to_inline(self, results):
        exhaust = results[K][3]
        assert exhaust.engine == "inline"
        assert exhaust.degraded == 1
        assert exhaust.respawns == 1  # the overridden budget, fully spent
        assert exhaust.crashes >= 2  # first life + the respawned one


class TestScripts:
    def test_scenarios_are_picklable(self):
        import pickle

        for _name, script, _overrides in chaos_scenarios(100, 2):
            assert pickle.loads(pickle.dumps(script)) == script

    def test_exhaust_scenario_is_persistent(self):
        by_name = {
            name: script for name, script, _ in chaos_scenarios(100, 2)
        }
        assert isinstance(by_name["exhaust"], FaultScript)
        assert by_name["exhaust"].persistent
        assert not by_name["crash"].persistent

    def test_windows_stay_in_range_for_tiny_runs(self):
        for _name, script, _overrides in chaos_scenarios(4, 2):
            if script is None:
                continue
            for _shard, window in script.kills:
                assert 0 < window < 4
            for _shard, window, _sleep in script.hangs:
                assert 0 < window < 4


class TestRendering:
    def test_table_reports_recovery_and_overhead(self, results):
        table = render_shard_chaos(results)
        assert "bit-identical" in table
        for scenario in ("none", "crash", "hang", "exhaust"):
            assert scenario in table
        assert "Respawns" in table and "Overhead" in table
