"""The experiment registry and the ``trace`` CLI path (this ISSUE).

Covers the registry contract (decorator registration, latest-wins,
``list``/``all`` derivation), and smokes ``python -m repro trace`` plus the
standalone ``tools/export_trace.py`` end to end: a tiny traced run must
write Chrome-trace JSON that passes schema validation.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.__main__ import main
from repro.apps.rubis import RubisConfig
from repro.experiments import (
    Experiment,
    all_experiments,
    experiment,
    get,
    names,
    register,
    render_control_loops,
    run_traced_rubis,
)
from repro.experiments.registry import _REGISTRY
from repro.obs import validate_chrome_trace
from repro.sim import ms, seconds
from repro.testbed import TestbedConfig


@pytest.fixture
def scratch_registry():
    """Snapshot the registry so test registrations don't leak."""
    snapshot = dict(_REGISTRY)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(snapshot)


class TestRegistry:
    def test_cli_experiments_registered(self):
        assert {"rubis", "mplayer-qos", "buffer-trigger", "power-cap",
                "trace"} <= set(names())

    def test_decorator_registers_and_returns_fn(self, scratch_registry):
        @experiment("scratch", help="nothing", artefacts=("x",))
        def cmd(args):
            return "ran"

        assert cmd(None) == "ran"  # decorator is transparent
        entry = get("scratch")
        assert entry.help == "nothing"
        assert entry.artefacts == ("x",)
        assert entry.in_all is True

    def test_help_falls_back_to_docstring(self, scratch_registry):
        @experiment("scratch")
        def cmd(args):
            """First line becomes help.

            Not this one.
            """

        assert get("scratch").help == "First line becomes help."

    def test_latest_registration_wins(self, scratch_registry):
        register(Experiment(name="scratch", run=lambda a: "old"))
        register(Experiment(name="scratch", run=lambda a: "new"))
        assert get("scratch").run(None) == "new"
        assert names().count("scratch") == 1

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="rubis"):
            get("no-such-experiment")

    def test_trace_opts_out_of_all(self):
        assert get("trace").in_all is False
        # Diagnostics (trace), fault-injection (chaos) and the scale
        # sweeps (scalability, fabric) stay out of the artefact run;
        # every paper artefact remains in `all`.
        assert all(exp.in_all for exp in all_experiments()
                   if exp.name not in ("trace", "chaos", "scalability",
                                       "fabric", "fabric-sharded",
                                       "shard-chaos"))


TINY = RubisConfig(
    num_sessions=10,
    requests_per_session=4,
    think_time_mean=ms(300),
    warmup=seconds(2),
    testbed=TestbedConfig(seed=2),
)


class TestTraceCommand:
    def test_cli_trace_writes_valid_chrome_json(self, tmp_path, capsys,
                                                monkeypatch):
        destination = tmp_path / "trace.json"
        # Shrink the captured run so the smoke stays fast.
        monkeypatch.setattr(
            "repro.__main__.run_traced_rubis",
            lambda duration, seed, destination: run_traced_rubis(
                duration=duration, seed=seed, destination=destination,
                config=TINY,
            ),
        )
        assert main(["trace", "--out", str(destination),
                     "--trace-duration", "4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Control-loop latency breakdown" in out
        assert "span-linked" in out
        document = json.loads(destination.read_text())
        validate_chrome_trace(document)
        assert document["otherData"]["experiment"] == "rubis"
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_render_mentions_every_stage(self, tmp_path):
        result = run_traced_rubis(
            duration=seconds(4), seed=2,
            destination=str(tmp_path / "trace.json"), config=TINY,
        )
        rendered = render_control_loops(result)
        for stage in ("classify-send", "ring", "wire", "handle", "apply"):
            assert stage in rendered
        assert f"{result.events_written} Chrome events" in rendered


class TestExportTraceTool:
    def test_tool_runs_and_validates(self, tmp_path, capsys, monkeypatch):
        tool_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "tools" / "export_trace.py"
        )
        spec = importlib.util.spec_from_file_location("export_trace", tool_path)
        tool = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(tool)
        monkeypatch.setattr(
            tool, "run_traced_rubis",
            lambda duration, seed, destination: run_traced_rubis(
                duration=duration, seed=seed, destination=destination,
                config=TINY,
            ),
        )
        destination = tmp_path / "trace.json"
        assert tool.main(["--out", str(destination), "--duration", "4",
                          "--seed", "2", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "well-formed Chrome-trace JSON" in out
        assert destination.exists()
