"""The parallel runner must change wall time only, never results.

Covers the typed Sweep/Job fan-out machinery (ordering, caching, the
plan_execution serial-degradation rules, REPRO_WORKERS validation, the
logged pool-failure fallback) and the acceptance criterion for the whole
optimisation effort: a short RUBiS pair renders bit-identical paper
artefacts whether it runs serial, parallel, fast path or audit path.
"""

import logging
import os

import pytest

from repro.apps.rubis import RubisConfig
from repro.experiments import (
    Job,
    Sweep,
    default_workers,
    parallelism_enabled,
    plan_execution,
    render_figure2,
    render_figure4,
    render_table2,
    run_jobs,
    run_rubis_pair,
)
from repro.experiments.runner import _IN_WORKER_ENV, PARALLEL_ENV, WORKERS_ENV
from repro.sim import ms, seconds


def square(x):
    return x * x


def whoami(tag):
    return (tag, os.getpid(), _IN_WORKER_ENV in os.environ)


class TestSweep:
    def test_results_in_submission_order(self):
        results = run_jobs([Job(square, args=(i,)) for i in range(8)])
        assert results == [i * i for i in range(8)]

    def test_kwargs_and_labels(self):
        sweep = Sweep([Job(square, kwargs={"x": 3}, label="a"), Job(square, args=(4,))])
        assert sweep.run() == [9, 16]
        assert repr(sweep.jobs[0]) == "Job(a)"

    def test_sweep_of_points(self):
        assert Sweep.of(square, [{"x": 2}, {"x": 5}]).run() == [4, 25]

    def test_serial_when_single_job(self):
        assert run_jobs([Job(square, args=(7,))]) == [49]

    def test_max_workers_one_forces_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        parent = os.getpid()
        results = run_jobs([Job(whoami, args=(i,)) for i in range(3)], max_workers=1)
        assert all(pid == parent and not worker for _, pid, worker in results)

    def test_parallel_env_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        monkeypatch.setenv(PARALLEL_ENV, "0")
        assert not parallelism_enabled()
        parent = os.getpid()
        results = run_jobs([Job(whoami, args=(i,)) for i in range(3)])
        assert all(pid == parent for _, pid, _ in results)

    def test_nested_fanout_goes_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        monkeypatch.setenv(_IN_WORKER_ENV, "1")
        assert not parallelism_enabled()
        assert not plan_execution(4)
        assert plan_execution(4).reason == "nested inside a pool worker"

    def test_forced_pool_runs_in_workers(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        if not parallelism_enabled():
            pytest.skip("parallelism unavailable in this environment")
        results = run_jobs([Job(whoami, args=(i,)) for i in range(2)])
        tags = [tag for tag, _, _ in results]
        assert tags == [0, 1]
        # Either arms genuinely landed in marked worker processes, or the
        # pool failed and the serial fallback ran them here — both give
        # correct results; only the former marks the worker env.
        parent = os.getpid()
        for _, pid, in_worker in results:
            assert in_worker == (pid != parent)

    def test_unpicklable_job_falls_back_and_logs_once(self, monkeypatch, caplog):
        monkeypatch.setenv(WORKERS_ENV, "2")
        import repro.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_logged_fallbacks", set())
        jobs = [Job(lambda: 10), Job(lambda: 20)]  # lambdas: unpicklable
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            assert run_jobs(jobs) == [10, 20]
            first = [r for r in caplog.records if "serially" in r.message]
            assert run_jobs(jobs) == [10, 20]
            again = [r for r in caplog.records if "serially" in r.message]
        # The fallback is no longer silent, but each cause logs only once.
        assert len(first) == 1
        assert len(again) == 1

    def test_cache_short_circuits_repeat_keys(self):
        cache = {}
        jobs = [Job(square, args=(3,), cache_key=("sq", 3))]
        assert Sweep(jobs).run(cache=cache) == [9]
        assert cache == {("sq", 3): 9}
        # Poison the cache: a hit must be returned without re-running.
        cache[("sq", 3)] = "cached"
        assert Sweep(jobs).run(cache=cache) == ["cached"]


class TestWorkerBudget:
    def test_workers_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_workers() == 3
        monkeypatch.delenv(WORKERS_ENV)
        assert default_workers() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", ["garbage", "0", "-2", "1.5", " "])
    def test_invalid_workers_env_rejected_at_parse_time(self, monkeypatch, bad):
        monkeypatch.setenv(WORKERS_ENV, bad)
        with pytest.raises(ValueError, match=WORKERS_ENV):
            default_workers()

    def test_empty_workers_env_means_unset(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "")
        assert default_workers() == (os.cpu_count() or 1)


class TestExecutionPlan:
    def test_single_job_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        plan = plan_execution(1)
        assert (plan.parallel, plan.workers) == (False, 1)
        assert plan.reason == "fewer than two jobs"

    def test_parallel_plan_caps_workers_at_jobs(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        monkeypatch.delenv(_IN_WORKER_ENV, raising=False)
        plan = plan_execution(3)
        assert plan.parallel and plan.workers == 3

    def test_parallel_env_reason(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        monkeypatch.setenv(PARALLEL_ENV, "0")
        assert plan_execution(4).reason == f"{PARALLEL_ENV}=0"

    def test_capped_budget_reason(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert plan_execution(4, max_workers=1).reason == "worker budget capped at 1"


@pytest.fixture(scope="module")
def tiny_config():
    return RubisConfig(
        num_sessions=12,
        requests_per_session=5,
        think_time_mean=ms(150),
        warmup=seconds(1),
    )


def _render_all(pair):
    return render_figure2(pair) + render_figure4(pair) + render_table2(pair)


class TestPairBitReproducibility:
    """The acceptance test: artefacts identical across every execution mode."""

    def test_serial_parallel_and_audit_paths_agree(self, tiny_config):
        kwargs = dict(duration=seconds(6), seed=7, config=tiny_config)
        reference = _render_all(
            run_rubis_pair(parallel=False, fastpath=True, **kwargs)
        )
        audit = _render_all(
            run_rubis_pair(parallel=False, fastpath=False, **kwargs)
        )
        parallel = _render_all(
            run_rubis_pair(parallel=True, fastpath=True, **kwargs)
        )
        assert audit == reference, "fast path changed simulation results"
        assert parallel == reference, "parallel execution changed results"
