"""The parallel runner must change wall time only, never results.

Covers the fan-out machinery itself (ordering, serial degradation, the
unpicklable-fallback) and the acceptance criterion for this whole
optimisation effort: a short RUBiS pair renders bit-identical paper
artefacts whether it runs serial, parallel, fast path or audit path.
"""

import os

import pytest

from repro.apps.rubis import RubisConfig
from repro.experiments import (
    Call,
    default_workers,
    parallelism_enabled,
    render_figure2,
    render_figure4,
    render_table2,
    run_calls,
    run_pair,
    run_rubis_pair,
    run_sweep,
)
from repro.experiments.runner import _IN_WORKER_ENV, PARALLEL_ENV, WORKERS_ENV
from repro.sim import ms, seconds


def square(x):
    return x * x


def whoami(tag):
    return (tag, os.getpid(), _IN_WORKER_ENV in os.environ)


class TestRunCalls:
    def test_results_in_submission_order(self):
        results = run_calls([Call(square, args=(i,)) for i in range(8)])
        assert results == [i * i for i in range(8)]

    def test_kwargs_and_run_pair(self):
        a, b = run_pair(Call(square, kwargs={"x": 3}), Call(square, args=(4,)))
        assert (a, b) == (9, 16)

    def test_run_sweep(self):
        assert run_sweep(square, [{"x": 2}, {"x": 5}]) == [4, 25]

    def test_serial_when_single_call(self):
        assert run_calls([Call(square, args=(7,))]) == [49]

    def test_max_workers_one_forces_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        parent = os.getpid()
        results = run_calls(
            [Call(whoami, args=(i,)) for i in range(3)], max_workers=1
        )
        assert all(pid == parent and not worker for _, pid, worker in results)

    def test_parallel_env_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        monkeypatch.setenv(PARALLEL_ENV, "0")
        assert not parallelism_enabled()
        parent = os.getpid()
        results = run_calls([Call(whoami, args=(i,)) for i in range(3)])
        assert all(pid == parent for _, pid, _ in results)

    def test_nested_fanout_goes_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        monkeypatch.setenv(_IN_WORKER_ENV, "1")
        assert not parallelism_enabled()

    def test_workers_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_workers() == 3
        monkeypatch.setenv(WORKERS_ENV, "garbage")
        assert default_workers() == (os.cpu_count() or 1)

    def test_forced_pool_runs_in_workers(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        if not parallelism_enabled():
            pytest.skip("parallelism unavailable in this environment")
        results = run_calls([Call(whoami, args=(i,)) for i in range(2)])
        tags = [tag for tag, _, _ in results]
        assert tags == [0, 1]
        # Either arms genuinely landed in marked worker processes, or the
        # pool failed and the serial fallback ran them here — both give
        # correct results; only the former marks the worker env.
        parent = os.getpid()
        for _, pid, in_worker in results:
            assert in_worker == (pid != parent)

    def test_unpicklable_call_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        calls = [Call(lambda: 10), Call(lambda: 20)]  # lambdas: unpicklable
        assert run_calls(calls) == [10, 20]


@pytest.fixture(scope="module")
def tiny_config():
    return RubisConfig(
        num_sessions=12,
        requests_per_session=5,
        think_time_mean=ms(150),
        warmup=seconds(1),
    )


def _render_all(pair):
    return render_figure2(pair) + render_figure4(pair) + render_table2(pair)


class TestPairBitReproducibility:
    """The acceptance test: artefacts identical across every execution mode."""

    def test_serial_parallel_and_audit_paths_agree(self, tiny_config):
        kwargs = dict(duration=seconds(6), seed=7, config=tiny_config)
        reference = _render_all(
            run_rubis_pair(parallel=False, fastpath=True, **kwargs)
        )
        audit = _render_all(
            run_rubis_pair(parallel=False, fastpath=False, **kwargs)
        )
        parallel = _render_all(
            run_rubis_pair(parallel=True, fastpath=True, **kwargs)
        )
        assert audit == reference, "fast path changed simulation results"
        assert parallel == reference, "parallel execution changed results"
