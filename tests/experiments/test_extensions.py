"""Smoke tests for the extension experiment drivers (short runs)."""

import pytest

from repro.experiments.power import render_power_cap, run_power_cap_arm, PowerCapResult
from repro.experiments.scalability import (
    render_scalability,
    run_scalability_arm,
)
from repro.sim import seconds


class TestPowerCapDriver:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_power_cap_arm("turbo")

    def test_uncapped_arm_runs_at_nominal_speed(self):
        arm = run_power_cap_arm("none", duration=seconds(12))
        assert arm.final_speed == 1.0
        assert arm.throughput > 0
        assert arm.mean_power_w > 20  # static floor + load

    def test_local_arm_throttles(self):
        arm = run_power_cap_arm("local", cap_w=44.0, duration=seconds(12))
        assert arm.final_speed < 1.0
        assert arm.mean_power_w < 44.0

    def test_renderer_contains_all_arms(self):
        arms = {
            mode: run_power_cap_arm(mode, duration=seconds(6))
            for mode in ("none", "local")
        }
        arms["coord"] = run_power_cap_arm("coord", duration=seconds(6))
        table = render_power_cap(PowerCapResult(cap_w=48.0, arms=arms))
        for mode in ("none", "local", "coord"):
            assert mode in table


class TestScalabilityDriver:
    def test_unknown_arm_rejected(self):
        with pytest.raises(ValueError):
            run_scalability_arm("federated", 2)

    def test_none_arm_has_no_messages(self):
        result = run_scalability_arm("none", 2, duration=seconds(5))
        assert result.total_messages == 0
        assert result.mean_probe_latency_ms >= 0

    def test_centralized_arm_concentrates_at_hub(self):
        result = run_scalability_arm("centralized", 3, duration=seconds(6))
        assert result.hub_messages > 0
        assert result.hub_messages == result.max_cell_messages

    def test_distributed_arm_spreads_messages(self):
        result = run_scalability_arm("distributed", 4, duration=seconds(6))
        assert result.max_cell_messages > 0
        assert result.max_cell_messages < result.total_messages

    def test_renderer(self):
        results = {
            ("none", 2): run_scalability_arm("none", 2, duration=seconds(4)),
            ("distributed", 2): run_scalability_arm("distributed", 2, duration=seconds(4)),
        }
        table = render_scalability(results)
        assert "distributed" in table and "none" in table
