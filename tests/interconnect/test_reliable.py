"""Tests for the reliable delivery layer over the coordination mailbox."""

import pytest

from repro.interconnect import (
    AckFrame,
    CoordinationChannel,
    DataFrame,
    ReliableChannel,
    ReliableConfig,
)
from repro.sim import RandomStreams, Simulator, TraceLog, Tracer, ms, us


def build_reliable(sim, loss=0.0, seed=11, latency=us(100), config=None, tracer=None):
    rng = RandomStreams(seed).stream("loss") if loss > 0 else None
    raw = CoordinationChannel(
        sim, latency=latency, loss_probability=loss, rng=rng, tracer=tracer
    )
    return ReliableChannel(raw, config, tracer=tracer)


class TestFrames:
    def test_repr(self):
        assert "#3" in repr(DataFrame(3, "hello"))
        assert "#3" in repr(AckFrame(3))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReliableConfig(initial_rto=0)
        with pytest.raises(ValueError):
            ReliableConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ReliableConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ReliableConfig(max_rto=0)


class TestLosslessDelivery:
    def test_messages_delivered_and_acked(self):
        sim = Simulator()
        reliable = build_reliable(sim)
        received = []
        reliable.endpoint("x86").set_receiver(received.append)
        for i in range(10):
            reliable.endpoint("ixp").send(i)
        sim.run()
        assert received == list(range(10))
        sender = reliable.endpoint("ixp")
        assert sender.frames_sent == 10
        assert sender.frames_acked == 10
        assert sender.retransmits == 0
        assert sender.dead_lettered == 0
        assert sender.inflight == 0

    def test_bidirectional(self):
        sim = Simulator()
        reliable = build_reliable(sim)
        to_x86, to_ixp = [], []
        reliable.endpoint("x86").set_receiver(to_x86.append)
        reliable.endpoint("ixp").set_receiver(to_ixp.append)
        reliable.endpoint("ixp").send("a")
        reliable.endpoint("x86").send("b")
        sim.run()
        assert to_x86 == ["a"] and to_ixp == ["b"]

    def test_endpoint_lookup(self):
        sim = Simulator()
        reliable = build_reliable(sim)
        assert reliable.endpoint("ixp").name == "ixp"
        with pytest.raises(KeyError):
            reliable.endpoint("gpu")


class TestLossRecovery:
    def test_all_messages_recovered_despite_loss(self):
        sim = Simulator()
        # At 40% loss a round trip fails with p = 1 - 0.6^2 = 0.64; a
        # budget of 16 retries makes per-frame dead-letter odds ~ 5e-4.
        reliable = build_reliable(sim, loss=0.4, config=ReliableConfig(max_retries=16))
        received = []
        reliable.endpoint("x86").set_receiver(received.append)
        for i in range(100):
            reliable.endpoint("ixp").send(i)
        sim.run()
        sender = reliable.endpoint("ixp")
        assert sorted(received) == list(range(100))  # exactly once each
        assert sender.retransmits > 0
        assert sender.dead_lettered == 0
        assert reliable.channel.messages_lost > 0

    def test_duplicates_suppressed_and_reacked(self):
        """A lost ack makes the sender retransmit; the receiver must drop
        the duplicate payload but ack it again."""
        sim = Simulator()
        reliable = build_reliable(
            sim, loss=0.4, seed=3, config=ReliableConfig(max_retries=16)
        )
        received = []
        reliable.endpoint("x86").set_receiver(received.append)
        for i in range(200):
            reliable.endpoint("ixp").send(i)
        sim.run()
        receiver = reliable.endpoint("x86")
        assert sorted(received) == list(range(200))
        assert receiver.dups_dropped > 0
        assert receiver.acks_sent == receiver.received + receiver.dups_dropped

    def test_backoff_grows_rto(self):
        """With the peer unreachable, retransmissions must space out
        exponentially: 6 retries at backoff 2 take >= (2^6 - 1) RTOs."""
        sim = Simulator()
        config = ReliableConfig(initial_rto=ms(1), backoff=2.0, max_retries=6)
        raw = CoordinationChannel(
            sim,
            latency=us(100),
            loss_probability=0.99,
            rng=RandomStreams(2).stream("loss"),
        )
        wrapped = ReliableChannel(raw, config)
        wrapped.endpoint("x86").set_receiver(lambda m: None)
        wrapped.endpoint("ixp").send("x")
        sim.run()
        sender = wrapped.endpoint("ixp")
        # Whether or not the frame eventually got through, the last timer
        # fires after sum(rto * 2^k) ~ 63 ms; the run must span that.
        assert sim.now >= ms(1) * (2 ** config.max_retries - 1)
        assert sender.retransmits <= config.max_retries


class TestDeadLetter:
    def _blackout_pair(self, sim, config):
        """A channel that loses (almost) everything, so retries exhaust."""
        raw = CoordinationChannel(
            sim,
            latency=us(100),
            loss_probability=0.999,
            rng=RandomStreams(9).stream("loss"),
        )
        wrapped = ReliableChannel(raw, config)
        wrapped.endpoint("x86").set_receiver(lambda m: None)
        return wrapped

    def test_exhausted_retries_dead_letter_without_raising(self):
        sim = Simulator()
        wrapped = self._blackout_pair(sim, ReliableConfig(max_retries=3))
        for i in range(30):
            wrapped.endpoint("ixp").send(i)
        sim.run()  # must complete without exceptions
        sender = wrapped.endpoint("ixp")
        assert sender.dead_lettered > 0
        assert sender.dead_lettered + sender.frames_acked == sender.frames_sent
        assert sender.inflight == 0

    def test_zero_retry_budget_is_ack_observer(self):
        sim = Simulator()
        wrapped = self._blackout_pair(sim, ReliableConfig(max_retries=0))
        wrapped.endpoint("ixp").send("only-try")
        sim.run()
        sender = wrapped.endpoint("ixp")
        assert sender.retransmits == 0
        assert sender.dead_lettered == 1


class TestCoalescing:
    def _coalescing_endpoint(self, sim, loss=0.0, seed=5):
        reliable = build_reliable(sim, loss=loss, seed=seed)
        sender = reliable.endpoint("ixp")
        sender.set_coalescer(
            lambda m: m[0],  # key: first tuple element
            lambda old, new: (old[0], old[1] + new[1]) if old[1] + new[1] else None,
        )
        return reliable, sender

    def test_burst_collapses_to_two_frames(self):
        sim = Simulator()
        reliable, sender = self._coalescing_endpoint(sim)
        received = []
        reliable.endpoint("x86").set_receiver(received.append)
        for _ in range(50):
            sender.send(("web", 1))
        sim.run()
        # First send goes out immediately; the other 49 merge into one
        # follow-up frame released by the first ack.
        assert sender.frames_sent == 2
        assert sender.coalesced == 49
        assert sum(delta for _key, delta in received) == 50

    def test_distinct_keys_do_not_merge(self):
        sim = Simulator()
        reliable, sender = self._coalescing_endpoint(sim)
        reliable.endpoint("x86").set_receiver(lambda m: None)
        sender.send(("web", 1))
        sender.send(("db", 1))
        sim.run()
        assert sender.frames_sent == 2
        assert sender.coalesced == 0

    def test_cancelling_deltas_drop_pending_frame(self):
        sim = Simulator()
        reliable, sender = self._coalescing_endpoint(sim)
        received = []
        reliable.endpoint("x86").set_receiver(received.append)
        sender.send(("web", 4))    # in flight
        sender.send(("web", 8))    # pending
        sender.send(("web", -8))   # cancels the pending frame
        sim.run()
        assert sender.frames_sent == 1
        assert received == [("web", 4)]
        assert sender.pending_coalesced == 0

    def test_delta_conserved_under_loss(self):
        sim = Simulator()
        reliable, sender = self._coalescing_endpoint(sim, loss=0.3)
        received = []
        reliable.endpoint("x86").set_receiver(received.append)
        for _ in range(200):
            sender.send(("web", 1))
        sim.run()
        assert sender.dead_lettered == 0
        assert sum(delta for _key, delta in received) == 200

    def test_dead_letter_releases_queued_merge(self):
        """A dead-lettered frame must not strand the deltas merged behind
        it: the pending frame gets its own transmission attempts."""
        sim = Simulator()
        raw = CoordinationChannel(
            sim,
            latency=us(100),
            loss_probability=0.999,
            rng=RandomStreams(9).stream("loss"),
        )
        wrapped = ReliableChannel(raw, ReliableConfig(max_retries=2))
        sender = wrapped.endpoint("ixp")
        sender.set_coalescer(lambda m: m[0], lambda a, b: (a[0], a[1] + b[1]))
        wrapped.endpoint("x86").set_receiver(lambda m: None)
        sender.send(("web", 1))
        sender.send(("web", 1))
        sim.run()
        assert sender.frames_sent == 2  # the merged frame was attempted
        assert sender.dead_lettered == 2
        assert sender.pending_coalesced == 0


class TestTracing:
    def test_reliability_trace_kinds_emitted(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log)
        reliable = build_reliable(sim, loss=0.4, seed=7, tracer=tracer)
        sender = reliable.endpoint("ixp")
        reliable.endpoint("x86").set_receiver(lambda m: None)
        for i in range(40):
            sender.send(i)  # distinct frames: loss must trigger retries
        sim.run()
        counts = log.count_by_kind()
        assert counts.get("frame-sent", 0) == sender.frames_sent == 40
        assert counts.get("frame-retransmit", 0) == sender.retransmits >= 1
        assert counts.get("frame-acked", 0) == sender.frames_acked >= 1
        assert counts.get("msg-dropped", 0) == reliable.channel.messages_lost >= 1

    def test_coalesce_trace_kind_emitted(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log, kinds=["frame-coalesced"])
        reliable = build_reliable(sim, tracer=tracer)
        sender = reliable.endpoint("ixp")
        sender.set_coalescer(lambda m: "k", lambda a, b: a + b)
        reliable.endpoint("x86").set_receiver(lambda m: None)
        for _ in range(5):
            sender.send(1)
        sim.run()
        assert len(log.of_kind("frame-coalesced")) == sender.coalesced == 4


class TestRawChannelAccounting:
    def test_dropped_counter_and_trace(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log, kinds=["msg-dropped", "msg-sent"])
        rng = RandomStreams(7).stream("loss")
        channel = CoordinationChannel(
            sim, latency=0, loss_probability=0.5, rng=rng, tracer=tracer
        )
        channel.endpoint("x86").set_receiver(lambda m: None)
        for i in range(100):
            channel.endpoint("ixp").send(i)
        sim.run()
        ixp = channel.endpoint("ixp")
        x86 = channel.endpoint("x86")
        # sent counts attempts: drops + deliveries + (0 in flight at end).
        assert ixp.sent == 100
        assert ixp.dropped == channel.messages_lost
        assert ixp.sent - ixp.dropped == x86.received
        assert len(log.of_kind("msg-dropped")) == ixp.dropped
        assert len(log.of_kind("msg-sent")) == ixp.sent - ixp.dropped

    def test_stats_snapshot(self):
        sim = Simulator()
        channel = CoordinationChannel(sim, latency=0)
        channel.endpoint("x86").set_receiver(lambda m: None)
        channel.endpoint("ixp").send("m")
        sim.run()
        stats = channel.stats()
        assert stats["sent"] == 1 and stats["received"] == 1
        assert stats["dropped"] == 0 and stats["raw_lost"] == 0


class TestDeadLetterSurfacing:
    """The on_dead_letter hook and per-entity counts (fault-domain feed)."""

    def _blackout_pair(self, sim, config):
        raw = CoordinationChannel(
            sim,
            latency=us(100),
            loss_probability=0.999,
            rng=RandomStreams(9).stream("loss"),
        )
        wrapped = ReliableChannel(raw, config)
        wrapped.endpoint("x86").set_receiver(lambda m: None)
        return wrapped

    def test_on_dead_letter_hook_fires_per_dead_frame(self):
        sim = Simulator()
        wrapped = self._blackout_pair(sim, ReliableConfig(max_retries=1))
        seen = []
        sender = wrapped.endpoint("ixp")
        sender.on_dead_letter = seen.append
        for i in range(20):
            sender.send(i)
        sim.run()
        assert sender.dead_lettered > 0
        assert len(seen) == sender.dead_lettered
        assert all(message in range(20) for message in seen)

    def test_dead_letters_keyed_per_entity(self):
        from repro.coordination import TuneMessage
        from repro.platform import EntityId

        sim = Simulator()
        wrapped = self._blackout_pair(sim, ReliableConfig(max_retries=1))
        sender = wrapped.endpoint("ixp")
        web = EntityId("x86", "web")
        db = EntityId("x86", "db")
        for _ in range(6):
            sender.send(TuneMessage(entity=web, delta=1))
        for _ in range(3):
            sender.send(TuneMessage(entity=db, delta=-1))
        sender.send("no-entity-attribute")
        sim.run()
        per_entity = wrapped.dead_letters_by_entity()
        # Only entity-bearing messages are keyed; totals never exceed the
        # dead-letter counter and every key is a stringified entity id.
        assert sum(per_entity.values()) <= sender.dead_lettered
        assert set(per_entity) <= {"x86/web", "x86/db"}
        assert per_entity.get("x86/web", 0) > 0

    def test_controller_channel_health_exposes_per_entity_counts(self):
        from repro.coordination import TuneMessage
        from repro.platform import EntityId, GlobalController

        sim = Simulator()
        wrapped = self._blackout_pair(sim, ReliableConfig(max_retries=1))
        controller = GlobalController(sim)
        controller.register_channel("ixp-x86", wrapped)
        for _ in range(8):
            wrapped.endpoint("ixp").send(TuneMessage(entity=EntityId("x86", "web"), delta=1))
        sim.run()
        health = controller.channel_health()["ixp-x86"]
        assert "dead_letters_by_entity" in health
        assert health["dead_letters_by_entity"] == wrapped.dead_letters_by_entity()
        assert health["dead_lettered"] > 0
