"""FramedConnection: seq-numbered integrity framing over pipes."""

from collections import deque

import pytest

from repro.interconnect import FramedConnection, ShardFrame, ShardProtocolError


class _FakePipe:
    """An in-memory stand-in for one end of a multiprocessing pipe."""

    def __init__(self, rx: deque, tx: deque):
        self.rx = rx
        self.tx = tx
        self.closed = False

    def send(self, obj):
        self.tx.append(obj)

    def recv(self):
        return self.rx.popleft()

    def poll(self, timeout=0.0):
        return bool(self.rx)

    def close(self):
        self.closed = True


def pipe_pair():
    a_to_b, b_to_a = deque(), deque()
    return (
        FramedConnection(_FakePipe(b_to_a, a_to_b)),
        FramedConnection(_FakePipe(a_to_b, b_to_a)),
    )


class TestFraming:
    def test_roundtrip_preserves_kind_and_payload(self):
        a, b = pipe_pair()
        a.send("grant", (10, ["batch"]))
        frame = b.recv()
        assert (frame.kind, frame.payload) == ("grant", (10, ["batch"]))

    def test_each_direction_numbers_independently(self):
        a, b = pipe_pair()
        a.send("one")
        a.send("two")
        b.send("ack")
        assert [b.recv().seq for _ in range(2)] == [0, 1]
        assert a.recv().seq == 0

    def test_gap_is_a_protocol_error(self):
        a, b = pipe_pair()
        a.send("one")
        a.send("two")
        b.recv()
        b._conn.rx.appendleft(ShardFrame(5, "stray"))
        with pytest.raises(ShardProtocolError, match="gap"):
            b.recv()

    def test_unexpected_kind_is_a_protocol_error(self):
        a, b = pipe_pair()
        a.send("grant")
        with pytest.raises(ShardProtocolError, match="kind"):
            b.recv(expect=("done", "error"))

    def test_non_frame_is_a_protocol_error(self):
        a, b = pipe_pair()
        a._conn.tx.append("raw garbage")
        with pytest.raises(ShardProtocolError, match="ShardFrame"):
            b.recv()

    def test_poll_and_close_pass_through(self):
        a, b = pipe_pair()
        assert not b.poll()
        a.send("x")
        assert b.poll()
        b.close()
        assert b._conn.closed
