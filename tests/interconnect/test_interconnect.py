"""Tests for PCIe, message rings, the messaging driver and the channel."""

import pytest

from repro.interconnect import (
    CoordinationChannel,
    MessageRing,
    MessagingDriver,
    PCIeBus,
)
from repro.net import Packet
from repro.sim import Simulator, ms, seconds, us
from repro.x86 import CreditScheduler, VirtualMachine


class TestPCIe:
    def test_transfer_time(self):
        sim = Simulator()
        bus = PCIeBus(sim, bandwidth_bytes_per_ns=1.0, latency=us(2))
        assert bus.transfer_time(1000) == us(2) + 1000

    def test_dma_serializes(self):
        sim = Simulator()
        bus = PCIeBus(sim, bandwidth_bytes_per_ns=1.0, latency=0)
        finish_times = []

        def transfer(sim, size):
            yield from bus.dma(size)
            finish_times.append(sim.now)

        sim.spawn(transfer(sim, 1000))
        sim.spawn(transfer(sim, 1000))
        sim.run()
        assert finish_times == [1000, 2000]
        assert bus.transfers == 2
        assert bus.bytes_moved == 2000

    def test_rejects_bad_sizes(self):
        sim = Simulator()
        bus = PCIeBus(sim)

        def bad(sim):
            yield from bus.dma(0)

        proc = sim.spawn(bad(sim))
        with pytest.raises(ValueError):
            sim.run()


class TestMessageRing:
    def test_push_pop(self):
        sim = Simulator()
        ring = MessageRing(sim, "ring", capacity=4)
        packet = Packet(src="a", dst="b", size=10)
        assert ring.push(packet)
        assert ring.pop() is packet
        assert ring.pop() is None

    def test_capacity_rejection(self):
        sim = Simulator()
        ring = MessageRing(sim, "ring", capacity=2)
        for _ in range(2):
            assert ring.push(Packet(src="a", dst="b", size=10))
        assert not ring.push(Packet(src="a", dst="b", size=10))
        assert ring.full_rejections == 1

    def test_first_descriptor_notification(self):
        sim = Simulator()
        ring = MessageRing(sim, "ring")
        pokes = []
        ring.on_first_descriptor = lambda: pokes.append(sim.now)
        ring.push(Packet(src="a", dst="b", size=10))
        ring.push(Packet(src="a", dst="b", size=10))  # not empty: no poke
        assert pokes == [0]
        ring.pop()
        ring.pop()
        ring.push(Packet(src="a", dst="b", size=10))  # empty again: poke
        assert len(pokes) == 2

    def test_blocking_get(self):
        sim = Simulator()
        ring = MessageRing(sim, "ring")
        get = ring.get()
        packet = Packet(src="a", dst="b", size=10)
        ring.push(packet)
        sim.run()
        assert get.value is packet


class TestMessagingDriver:
    def _make(self, **kwargs):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        dom0 = VirtualMachine(sim, "dom0")
        scheduler.add_domain(dom0)
        rx_ring = MessageRing(sim, "rx")
        tx_ring = MessageRing(sim, "tx", capacity=kwargs.pop("tx_capacity", 1024))
        driver = MessagingDriver(sim, dom0, rx_ring, tx_ring, **kwargs)
        return sim, dom0, rx_ring, tx_ring, driver

    def test_interrupt_mode_delivers(self):
        sim, dom0, rx_ring, tx_ring, driver = self._make(interrupt_delay=us(50))
        delivered = []
        driver.connect_stack(delivered.append)
        rx_ring.push(Packet(src="a", dst="b", size=100))
        sim.run(until=ms(5))
        assert len(delivered) == 1
        assert driver.rx_delivered == 1
        assert dom0.cpu_time() > 0

    def test_interrupt_moderation_delay(self):
        sim, dom0, rx_ring, tx_ring, driver = self._make(interrupt_delay=us(200))
        delivered = []
        driver.connect_stack(lambda p: delivered.append(sim.now))
        rx_ring.push(Packet(src="a", dst="b", size=100))
        sim.run(until=ms(5))
        assert delivered[0] >= us(200)

    def test_batch_drains_multiple(self):
        sim, dom0, rx_ring, tx_ring, driver = self._make()
        delivered = []
        driver.connect_stack(delivered.append)
        for _ in range(10):
            rx_ring.push(Packet(src="a", dst="b", size=100))
        sim.run(until=ms(10))
        assert len(delivered) == 10
        assert len(rx_ring) == 0

    def test_polling_mode(self):
        sim, dom0, rx_ring, tx_ring, driver = self._make(poll_period=ms(1))
        delivered = []
        driver.connect_stack(lambda p: delivered.append(sim.now))
        rx_ring.push(Packet(src="a", dst="b", size=100))
        sim.run(until=ms(10))
        assert len(delivered) == 1
        assert delivered[0] >= ms(1)

    def test_transmit_posts_to_tx_ring(self):
        sim, dom0, rx_ring, tx_ring, driver = self._make()
        driver.transmit(Packet(src="b", dst="a", size=100))
        sim.run(until=ms(5))
        assert len(tx_ring) == 1
        assert driver.tx_posted == 1

    def test_transmit_drop_when_ring_full(self):
        sim, dom0, rx_ring, tx_ring, driver = self._make(tx_capacity=1)
        driver.transmit(Packet(src="b", dst="a", size=100))
        driver.transmit(Packet(src="b", dst="a", size=100))
        sim.run(until=ms(5))
        assert driver.tx_dropped == 1

    def test_poll_burn_consumes_dom0(self):
        sim, dom0, rx_ring, tx_ring, driver = self._make(poll_burn_duty=0.5)
        sim.run(until=seconds(1))
        utilization = dom0.cpu_time() / seconds(1)
        assert 0.4 < utilization < 0.6

    def test_invalid_poll_burn_duty(self):
        with pytest.raises(ValueError):
            self._make(poll_burn_duty=1.5)


class TestCoordinationChannel:
    def test_latency_applied(self):
        sim = Simulator()
        channel = CoordinationChannel(sim, latency=us(150))
        received = []
        channel.endpoint("x86").set_receiver(lambda m: received.append((sim.now, m)))
        channel.endpoint("ixp").send("hello")
        sim.run()
        assert received == [(us(150), "hello")]

    def test_bidirectional(self):
        sim = Simulator()
        channel = CoordinationChannel(sim, latency=us(10))
        got = {}
        channel.endpoint("x86").set_receiver(lambda m: got.setdefault("x86", m))
        channel.endpoint("ixp").set_receiver(lambda m: got.setdefault("ixp", m))
        channel.endpoint("ixp").send("to-x86")
        channel.endpoint("x86").send("to-ixp")
        sim.run()
        assert got == {"x86": "to-x86", "ixp": "to-ixp"}

    def test_counters(self):
        sim = Simulator()
        channel = CoordinationChannel(sim, latency=0)
        channel.endpoint("x86").set_receiver(lambda m: None)
        channel.endpoint("ixp").send("one")
        channel.endpoint("ixp").send("two")
        sim.run()
        assert channel.endpoint("ixp").sent == 2
        assert channel.endpoint("x86").received == 2

    def test_unknown_endpoint_rejected(self):
        channel = CoordinationChannel(Simulator())
        with pytest.raises(KeyError):
            channel.endpoint("gpu")

    def test_receive_without_handler_raises(self):
        sim = Simulator()
        channel = CoordinationChannel(sim, latency=0)
        channel.endpoint("ixp").send("orphan")
        with pytest.raises(RuntimeError):
            sim.run()

    def test_message_ordering_preserved(self):
        sim = Simulator()
        channel = CoordinationChannel(sim, latency=us(100))
        received = []
        channel.endpoint("x86").set_receiver(received.append)
        for i in range(5):
            channel.endpoint("ixp").send(i)
        sim.run()
        assert received == [0, 1, 2, 3, 4]
