"""Tests for the GPU island: device runlist, contexts, coordination."""

import pytest

from repro.coordination import CoordinationAgent, GpuCoschedulePolicy
from repro.gpu import GPUIsland, GpuDevice, LAUNCH_OVERHEAD
from repro.interconnect import CoordinationChannel
from repro.platform import EntityId
from repro.sim import Simulator, ms, seconds, us
from repro.x86 import X86Island, X86Params


class TestGpuDevice:
    def test_kernel_executes_with_overhead(self):
        sim = Simulator()
        device = GpuDevice(sim)
        context = device.create_context("vm")
        finished = []
        done = context.launch(ms(5))
        done.callbacks.append(lambda ev: finished.append(sim.now))
        sim.run(until=seconds(1))
        assert finished == [ms(5) + LAUNCH_OVERHEAD]
        assert context.kernels_completed == 1

    def test_kernels_serialize_per_device(self):
        sim = Simulator()
        device = GpuDevice(sim)
        context = device.create_context("vm")
        first = context.launch(ms(5))
        second = context.launch(ms(5))
        finish = []
        second.callbacks.append(lambda ev: finish.append(sim.now))
        sim.run(until=seconds(1))
        assert finish[0] == 2 * (ms(5) + LAUNCH_OVERHEAD)

    def test_invalid_demand_rejected(self):
        sim = Simulator()
        device = GpuDevice(sim)
        device.create_context("vm")
        with pytest.raises(ValueError):
            device.submit("vm", 0)

    def test_duplicate_context_rejected(self):
        device = GpuDevice(Simulator())
        device.create_context("vm")
        with pytest.raises(ValueError):
            device.create_context("vm")

    def test_weighted_runlist_shares(self):
        sim = Simulator()
        device = GpuDevice(sim)
        light = device.create_context("light", weight=100)
        heavy = device.create_context("heavy", weight=300)

        def feeder(sim, context):
            while True:
                yield context.launch(ms(2))

        for _ in range(3):
            sim.spawn(feeder(sim, light))
            sim.spawn(feeder(sim, heavy))
        sim.run(until=seconds(4))
        assert heavy.kernels_completed > light.kernels_completed * 2

    def test_device_utilization(self):
        sim = Simulator()
        device = GpuDevice(sim)
        context = device.create_context("vm")
        context.launch(ms(100))
        sim.run(until=seconds(1))
        assert device.utilization(seconds(1)) == pytest.approx(0.1, rel=0.01)

    def test_prioritize_jumps_runlist(self):
        sim = Simulator()
        device = GpuDevice(sim)
        busy = device.create_context("busy")
        urgent = device.create_context("urgent")

        def feeder(sim):
            while True:
                yield busy.launch(ms(3))

        for _ in range(4):
            sim.spawn(feeder(sim))
        sim.run(until=ms(10))  # runlist saturated by `busy`
        finish = []
        done = urgent.launch(ms(1))
        done.callbacks.append(lambda ev: finish.append(sim.now))
        device.prioritize("urgent")
        sim.run(until=seconds(1))
        # Served right after the in-flight kernel (<= one kernel + own).
        assert finish[0] - ms(10) < ms(3) + ms(1) + 3 * LAUNCH_OVERHEAD


class TestGPUIsland:
    def _pair(self):
        sim = Simulator()
        x86 = X86Island(sim, X86Params(num_cpus=1))
        gpu = GPUIsland(sim)
        channel = CoordinationChannel(sim, latency=us(100), a_name="gpu", b_name="x86")
        gpu_agent = CoordinationAgent(sim, gpu, channel.endpoint("gpu"))
        x86_agent = CoordinationAgent(sim, x86, channel.endpoint("x86"),
                                      handler_vm=x86.dom0)
        return sim, x86, gpu, gpu_agent, x86_agent

    def test_tune_adjusts_context_weight(self):
        sim, x86, gpu, gpu_agent, x86_agent = self._pair()
        context = gpu.create_context("vm")
        gpu.apply_tune(EntityId("gpu", "vm"), +50)
        assert context.weight == 150

    def test_x86_can_tune_gpu_over_channel(self):
        sim, x86, gpu, gpu_agent, x86_agent = self._pair()
        context = gpu.create_context("vm")
        x86_agent.send_tune(EntityId("gpu", "vm"), +25)
        sim.run(until=ms(5))
        assert context.weight == 125

    def test_trigger_translates_to_runlist_jump(self):
        sim, x86, gpu, gpu_agent, x86_agent = self._pair()
        context = gpu.create_context("vm")
        gpu.apply_trigger(EntityId("gpu", "vm"))
        assert context._deficit > 0

    def test_hybrid_pipeline_end_to_end(self):
        """CPU phase -> kernel -> CPU phase across both islands."""
        sim, x86, gpu, gpu_agent, x86_agent = self._pair()
        vm = x86.create_vm("hybrid")
        context = gpu.create_context("hybrid")
        iterations = []

        def app(sim):
            for _ in range(5):
                yield vm.execute(ms(2), "user")
                done = context.launch(ms(4))
                yield from vm.io_wait(done)
                yield vm.execute(ms(2), "user")
                iterations.append(sim.now)

        sim.spawn(app(sim))
        sim.run(until=seconds(1))
        assert len(iterations) == 5
        assert vm.accounting.iowait > 4 * ms(4)  # waited on the GPU

    def test_coschedule_policy_triggers_on_completion(self):
        sim, x86, gpu, gpu_agent, x86_agent = self._pair()
        vm = x86.create_vm("hybrid")
        context = gpu.create_context("hybrid")
        policy = GpuCoschedulePolicy(
            sim, gpu, gpu_agent, {"hybrid": EntityId("x86", "hybrid")}
        )
        context.launch(ms(3))
        sim.run(until=ms(20))
        assert policy.triggers_sent == 1
        assert x86_agent.triggers_applied == 1

    def test_policy_ignores_unmapped_contexts(self):
        sim, x86, gpu, gpu_agent, x86_agent = self._pair()
        context = gpu.create_context("stranger")
        policy = GpuCoschedulePolicy(sim, gpu, gpu_agent, {})
        context.launch(ms(1))
        sim.run(until=ms(20))
        assert policy.triggers_sent == 0
