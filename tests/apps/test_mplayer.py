"""Tests for the MPlayer application model."""

import pytest

from repro.apps.mplayer import (
    BurstProfile,
    DISK_CLIP,
    DOM1,
    DOM2,
    HIGH_RATE_STREAM,
    LOW_RATE_STREAM,
    MPlayerConfig,
    StreamSpec,
    deploy_mplayer,
)
from repro.sim import ms, seconds


class TestStreamSpec:
    def test_frame_geometry(self):
        assert LOW_RATE_STREAM.frame_bytes == round(300_000 / 8 / 20)
        assert LOW_RATE_STREAM.frame_interval == 50_000_000  # 50 ms

    def test_decode_share_orders_streams(self):
        assert HIGH_RATE_STREAM.cpu_share_required() > LOW_RATE_STREAM.cpu_share_required()
        assert 0 < LOW_RATE_STREAM.cpu_share_required() < 1

    def test_disk_clip_is_light(self):
        assert DISK_CLIP.cpu_share_required() < LOW_RATE_STREAM.cpu_share_required()

    def test_invalid_stream_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec("bad", bitrate_bps=0, framerate_fps=25)


class TestBurstProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurstProfile(factor=0.5)
        with pytest.raises(ValueError):
            BurstProfile(period_s=5, duration_s=6)


class TestStreamingDeployment:
    def test_frames_arrive_and_decode(self):
        deployment = deploy_mplayer(MPlayerConfig())
        deployment.run(seconds(10))
        assert deployment.dom1_player.frames_decoded > 0
        assert deployment.dom2_player.frames_decoded > 0
        assert deployment.server.sessions_started == 2

    def test_fps_near_nominal_for_uncontended_stream(self):
        """With no Dom0 poll burn, both streams decode at full rate."""
        from repro.testbed import TestbedConfig

        config = MPlayerConfig(testbed=TestbedConfig(driver_poll_burn_duty=0.0))
        deployment = deploy_mplayer(config)
        deployment.run(seconds(20))
        fps1 = deployment.dom1_fps(seconds(5), seconds(20))
        fps2 = deployment.dom2_fps(seconds(5), seconds(20))
        assert 19.0 <= fps1 <= 21.0
        assert 24.0 <= fps2 <= 26.0

    def test_rtsp_setup_reaches_policy(self):
        deployment = deploy_mplayer(MPlayerConfig())
        deployment.run(seconds(2))
        assert set(deployment.qos_policy.streams) == {DOM1, DOM2}
        state = deployment.qos_policy.streams[DOM2]
        assert state.is_high_bitrate
        assert state.is_high_framerate

    def test_streams_classified_per_vm(self):
        deployment = deploy_mplayer(MPlayerConfig())
        deployment.run(seconds(5))
        flows = deployment.testbed.ixp.classifier.by_flow
        assert DOM1 in flows and DOM2 in flows

    def test_disk_player_touches_no_ixp(self):
        deployment = deploy_mplayer(MPlayerConfig(dom2_disk=True))
        deployment.run(seconds(5))
        assert DOM2 not in deployment.testbed.ixp.flow_queues
        assert deployment.dom2_disk_player.frames_decoded > 0

    def test_disk_player_is_cpu_bound_hog(self):
        deployment = deploy_mplayer(MPlayerConfig(dom2_disk=True))
        deployment.run(seconds(10))
        vm2 = deployment.testbed.x86.vm(DOM2)
        assert vm2.cpu_time() > seconds(4)  # large CPU consumer

    def test_bursty_stream_builds_ixp_buffer(self):
        config = MPlayerConfig(
            dom1_stream=HIGH_RATE_STREAM,
            dom2_disk=True,
            dom1_burst=BurstProfile(period_s=10, duration_s=2, factor=3.0),
            dom1_ixp_poll_interval=ms(57),
        )
        deployment = deploy_mplayer(config)
        deployment.run(seconds(15))
        queue = deployment.testbed.ixp.flow_queues[DOM1]
        assert queue.bytes_high_watermark > 64 * 1024

    def test_frame_skipping_bounds_decode_backlog(self):
        from repro.apps.mplayer.player import DECODE_QUEUE_LIMIT

        config = MPlayerConfig(dom2_disk=True, dom1_burst=BurstProfile(factor=4.0))
        deployment = deploy_mplayer(config)
        deployment.run(seconds(30))
        assert deployment.dom1_player.backlog_frames <= DECODE_QUEUE_LIMIT

    def test_trigger_policy_only_when_enabled(self):
        assert deploy_mplayer(MPlayerConfig()).trigger_policy is None
        assert deploy_mplayer(MPlayerConfig(buffer_trigger=True)).trigger_policy is not None
