"""Tests for the RUBiS application model."""


from repro.apps.rubis import (
    BIDDING_MIX,
    BROWSING_MIX,
    BY_NAME,
    READ_TYPES,
    REQUEST_TYPES,
    WRITE_TYPES,
    RubisConfig,
    deploy_rubis,
)
from repro.apps.rubis.workload import PhaseSpec
from repro.sim import RandomStreams, ms, seconds


class TestRequestCatalogue:
    def test_sixteen_types_as_in_table1(self):
        assert len(REQUEST_TYPES) == 16

    def test_classes_partition(self):
        assert set(READ_TYPES) | set(WRITE_TYPES) == set(REQUEST_TYPES)
        assert not set(READ_TYPES) & set(WRITE_TYPES)

    def test_read_types_are_web_heavy(self):
        """Offline profile: browsing is web-tier-heavy, db nearly idle."""
        for rt in READ_TYPES:
            assert rt.web_demand > rt.db_demand

    def test_write_types_are_db_heavy(self):
        for rt in WRITE_TYPES:
            assert rt.db_demand > rt.web_demand

    def test_heaviest_write_is_putcomment(self):
        heaviest = max(WRITE_TYPES, key=lambda rt: rt.total_demand)
        assert heaviest.name == "PutComment"

    def test_by_name_lookup(self):
        assert BY_NAME["ViewItem"].request_class == "read"

    def test_call_chain_flags(self):
        browse = BY_NAME["Browse"]
        assert browse.uses_app and not browse.uses_db
        put_bid = BY_NAME["PutBid"]
        assert put_bid.uses_app and put_bid.uses_db


class TestWorkloadMix:
    def test_browsing_mix_is_read_only(self):
        rng = RandomStreams(1).stream("t")
        for _ in range(50):
            assert BROWSING_MIX.next_class("read", rng) == "read"
        assert BROWSING_MIX.initial_class(rng) == "read"

    def test_bidding_mix_visits_both_classes(self):
        rng = RandomStreams(1).stream("t")
        classes = set()
        current = "read"
        for _ in range(200):
            current = BIDDING_MIX.next_class(current, rng)
            classes.add(current)
        assert classes == {"read", "write"}

    def test_draw_type_respects_class(self):
        rng = RandomStreams(2).stream("t")
        for _ in range(20):
            assert BIDDING_MIX.draw_type("read", rng).request_class == "read"
            assert BIDDING_MIX.draw_type("write", rng).request_class == "write"

    def test_phase_class_probabilities(self):
        rng = RandomStreams(3).stream("t")
        storm = next(p for p in BIDDING_MIX.phases if "storm" in p.name)
        draws = [BIDDING_MIX.class_in_phase(storm, rng) for _ in range(500)]
        write_share = draws.count("write") / len(draws)
        assert write_share > 0.7

    def test_deterministic_phase_duration(self):
        phase = PhaseSpec("p", 0.5, 10.0)
        rng = RandomStreams(1).stream("t")
        assert phase.duration(rng) == 10.0

    def test_jittered_phase_duration(self):
        phase = PhaseSpec("p", 0.5, 10.0, jitter=0.5)
        rng = RandomStreams(1).stream("t")
        samples = {phase.duration(rng) for _ in range(10)}
        assert len(samples) > 1
        assert all(5.0 <= s <= 15.0 for s in samples)


class TestDeployment:
    def _quick_config(self, **kwargs):
        return RubisConfig(
            num_sessions=kwargs.pop("num_sessions", 10),
            requests_per_session=5,
            think_time_mean=ms(100),
            warmup=seconds(1),
            **kwargs,
        )

    def test_requests_flow_end_to_end(self):
        deployment = deploy_rubis(self._quick_config())
        deployment.run(seconds(8))
        stats = deployment.client.stats
        assert stats.responses.count() > 10
        assert deployment.web.handled > 0
        assert deployment.app.handled > 0
        assert deployment.db.handled > 0

    def test_tier_call_graph(self):
        """Inner tiers complete first; db only sees db-using requests."""
        deployment = deploy_rubis(self._quick_config())
        deployment.run(seconds(8))
        # Every web request delegates to the app tier, and the app handler
        # completes before its caller, so app >= web at any snapshot.
        assert deployment.app.handled >= deployment.web.handled > 0
        # Not every request touches the database.
        assert deployment.db.handled <= deployment.app.handled

    def test_all_tiers_burn_cpu(self):
        deployment = deploy_rubis(self._quick_config())
        deployment.run(seconds(8))
        for vm_name in ("web-server", "app-server", "db-server"):
            assert deployment.testbed.x86.vm(vm_name).cpu_time() > 0

    def test_coordination_reaches_tier_weights(self):
        deployment = deploy_rubis(self._quick_config(coordinated=True))
        deployment.run(seconds(8))
        assert deployment.policy is not None
        assert deployment.policy.tunes_sent > 0
        weights = {vm.name: vm.weight for vm in deployment.testbed.x86.guest_vms()}
        assert any(w != 256 for w in weights.values())

    def test_baseline_has_no_policy(self):
        deployment = deploy_rubis(self._quick_config(coordinated=False))
        assert deployment.policy is None

    def test_ixp_classifies_request_types(self):
        deployment = deploy_rubis(self._quick_config())
        deployment.run(seconds(5))
        flows = deployment.testbed.ixp.classifier.by_flow
        assert any(flow.startswith("rubis:") for flow in flows)

    def test_sessions_complete_and_are_timed(self):
        deployment = deploy_rubis(self._quick_config())
        deployment.run(seconds(15))
        stats = deployment.client.stats
        assert stats.sessions_completed > 0
        assert stats.mean_session_time_s() > 0
