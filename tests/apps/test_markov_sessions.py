"""Tests for the per-type Markov session model."""

import pytest
from collections import Counter

from repro.apps.rubis import BY_NAME, MarkovSession, RubisConfig, TRANSITIONS, deploy_rubis
from repro.sim import RandomStreams, ms, seconds


class TestTransitionTable:
    def test_every_row_and_target_is_a_known_type(self):
        for source, row in TRANSITIONS.items():
            assert source in BY_NAME
            for target in row:
                assert target in BY_NAME

    def test_every_type_has_a_row(self):
        assert set(TRANSITIONS) == set(BY_NAME)

    def test_bid_funnel_present(self):
        """The paper-relevant write funnel must exist in the chain."""
        assert "PutBid" in TRANSITIONS["PutBidAuth"]
        assert "StoreBid" in TRANSITIONS["PutBid"]


class TestMarkovSession:
    def test_unknown_start_rejected(self):
        with pytest.raises(ValueError):
            MarkovSession(RandomStreams(1).stream("x"), start="TeleportHome")

    def test_chain_is_deterministic_per_seed(self):
        def walk(seed):
            chain = MarkovSession(RandomStreams(seed).stream("x"))
            return [chain.next_type().name for _ in range(50)]

        assert walk(3) == walk(3)
        assert walk(3) != walk(4)

    def test_visits_entire_catalogue(self):
        chain = MarkovSession(RandomStreams(1).stream("x"))
        visited = {chain.next_type().name for _ in range(3000)}
        assert visited == set(BY_NAME)

    def test_funnel_statistics(self):
        """From PutBidAuth, PutBid follows most of the time."""
        rng = RandomStreams(2).stream("x")
        followed = 0
        trials = 500
        for _ in range(trials):
            chain = MarkovSession(rng, start="PutBidAuth")
            if chain.next_type().name == "PutBid":
                followed += 1
        assert followed > trials * 0.6

    def test_stationary_mix_is_browse_heavy(self):
        chain = MarkovSession(RandomStreams(5).stream("x"))
        counts = Counter(chain.next_type().name for _ in range(5000))
        reads = sum(c for name, c in counts.items() if BY_NAME[name].request_class == "read")
        assert reads > 0.55 * 5000


class TestClientIntegration:
    def test_markov_mode_end_to_end(self):
        config = RubisConfig(
            num_sessions=8,
            requests_per_session=6,
            think_time_mean=ms(80),
            warmup=0,
            markov_sessions=True,
        )
        deployment = deploy_rubis(config)
        deployment.run(seconds(6))
        stats = deployment.client.stats
        assert stats.responses.count() > 20
        # Browse is the hub state: it must appear.
        assert "Browse" in stats.responses.keys()
