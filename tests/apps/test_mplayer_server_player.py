"""Tests for the streaming server's pacing/bursts and the player's
frame assembly and skipping."""


from repro.apps.mplayer import (
    BurstProfile,
    DOM1,
    LOW_RATE_STREAM,
    MPlayerConfig,
    deploy_mplayer,
)
from repro.apps.mplayer.player import DECODE_QUEUE_LIMIT, MPlayerClient
from repro.net import Packet, VirtualNIC
from repro.sim import Simulator, ms, seconds
from repro.testbed import TestbedConfig
from repro.x86 import CreditScheduler, VirtualMachine


class TestServerPacing:
    def test_nominal_rate_matches_stream_fps(self):
        deployment = deploy_mplayer(
            MPlayerConfig(testbed=TestbedConfig(driver_poll_burn_duty=0.0))
        )
        deployment.run(seconds(10))
        sent = deployment.server.frames_sent[DOM1]
        # ~20 fps for ~9.85s of streaming (0.15s session setup).
        assert 185 <= sent <= 205

    def test_burst_profile_raises_mean_rate(self):
        burst = BurstProfile(period_s=5, duration_s=2.5, factor=3.0)
        config = MPlayerConfig(
            testbed=TestbedConfig(driver_poll_burn_duty=0.0),
            dom1_burst=burst,
        )
        deployment = deploy_mplayer(config)
        deployment.run(seconds(10))
        sent = deployment.server.frames_sent[DOM1]
        # Half the time at 3x: mean rate ~2x nominal.
        assert sent > 300

    def test_rtsp_setup_precedes_rtp(self):
        deployment = deploy_mplayer(
            MPlayerConfig(testbed=TestbedConfig(driver_poll_burn_duty=0.0))
        )
        kinds = []
        deployment.testbed.ixp.add_classified_hook(
            lambda p, f: kinds.append(p.kind) if p.dst == DOM1 else None
        )
        deployment.run(seconds(2))
        assert kinds[0] == "rtsp-setup"
        assert "rtp" in kinds


def make_player(num_vcpus=1):
    sim = Simulator()
    scheduler = CreditScheduler(sim, num_cpus=2)
    vm = VirtualMachine(sim, "player", num_vcpus=num_vcpus)
    scheduler.add_domain(vm)
    nic = VirtualNIC(sim, "player")
    player = MPlayerClient(sim, vm, nic, cost_model=LOW_RATE_STREAM.cost_model)
    return sim, nic, player


def rtp(frame_id, frag_index, frag_count, frame_bytes=1875):
    return Packet(
        src="server",
        dst="player",
        size=min(1400, frame_bytes),
        kind="rtp",
        payload={
            "session": 1,
            "frame_id": frame_id,
            "frag_index": frag_index,
            "frag_count": frag_count,
            "frame_bytes": frame_bytes,
        },
    )


class TestFrameAssembly:
    def test_frame_decodes_when_all_fragments_arrive(self):
        sim, nic, player = make_player()
        nic.deliver(rtp(0, 0, 2))
        nic.deliver(rtp(0, 1, 2))
        sim.run(until=seconds(1))
        assert player.frames_decoded == 1

    def test_fragments_out_of_order_still_assemble(self):
        sim, nic, player = make_player()
        nic.deliver(rtp(0, 1, 2))
        nic.deliver(rtp(0, 0, 2))
        sim.run(until=seconds(1))
        assert player.frames_decoded == 1

    def test_partial_frame_garbage_collected(self):
        sim, nic, player = make_player()
        nic.deliver(rtp(0, 0, 2))  # second fragment never arrives
        sim.run(until=seconds(3))
        assert player.frames_decoded == 0
        assert player.frames_dropped == 1
        assert len(player._assembly) == 0

    def test_non_rtp_packets_ignored(self):
        sim, nic, player = make_player()
        nic.deliver(Packet(src="s", dst="player", size=100, kind="rtsp-setup",
                           payload={"rtsp_setup": {}}))
        sim.run(until=seconds(1))
        assert player.packets_received == 0

    def test_single_vcpu_intake_serializes_with_decode(self):
        """On one VCPU, packet intake interleaves with the owned decode
        item, so every flooded frame is eventually decoded — no skips."""
        sim, nic, player = make_player(num_vcpus=1)
        for frame_id in range(DECODE_QUEUE_LIMIT * 3):
            nic.deliver(rtp(frame_id, 0, 1))
        sim.run(until=seconds(5))
        assert player.frames_decoded == DECODE_QUEUE_LIMIT * 3
        assert player.frames_skipped == 0

    def test_skip_to_live_bounds_queue_and_counts(self):
        """With concurrent intake (2 VCPUs), a flood outruns the decoder
        and the player skips to the live edge instead of buffering."""
        sim, nic, player = make_player(num_vcpus=2)
        for frame_id in range(DECODE_QUEUE_LIMIT * 5):
            nic.deliver(rtp(frame_id, 0, 1))
        sim.run(until=ms(50))  # intake done, decoding barely started
        assert player.backlog_frames <= DECODE_QUEUE_LIMIT
        assert player.frames_skipped > 0
        sim.run(until=seconds(5))
        total = player.frames_decoded + player.frames_skipped
        assert total == DECODE_QUEUE_LIMIT * 5
