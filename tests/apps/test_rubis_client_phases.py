"""Tests for the RUBiS client's global phase machinery and bookkeeping."""

from repro.apps.rubis import BIDDING_MIX, BROWSING_MIX, RubisConfig, deploy_rubis
from repro.apps.rubis.workload import PhaseSpec
from dataclasses import replace

from repro.sim import ms, seconds


def quick_config(**kwargs):
    return RubisConfig(
        num_sessions=kwargs.pop("num_sessions", 6),
        requests_per_session=4,
        think_time_mean=ms(80),
        warmup=kwargs.pop("warmup", 0),
        **kwargs,
    )


class TestGlobalPhases:
    def test_phase_machine_cycles_in_order(self):
        mix = replace(
            BIDDING_MIX,
            phases=(
                PhaseSpec("one", 1.0, 0.5),
                PhaseSpec("two", 0.0, 0.5),
            ),
        )
        deployment = deploy_rubis(quick_config(mix=mix))
        client = deployment.client
        seen = []

        def watcher(sim):
            while True:
                seen.append(client.current_phase.name)
                yield sim.timeout(ms(250))

        deployment.sim.spawn(watcher(deployment.sim))
        deployment.run(seconds(2))
        assert seen[:8] == ["one", "one", "two", "two", "one", "one", "two", "two"]

    def test_storm_phase_produces_write_heavy_requests(self):
        mix = replace(
            BIDDING_MIX,
            phases=(PhaseSpec("storm", 0.0, 100.0),),  # writes only, forever
        )
        deployment = deploy_rubis(quick_config(mix=mix))
        deployment.run(seconds(5))
        from repro.apps.rubis import BY_NAME

        for name in deployment.client.stats.responses.keys():
            assert BY_NAME[name].request_class == "write"

    def test_markov_mode_when_no_phases(self):
        deployment = deploy_rubis(quick_config(mix=BROWSING_MIX))
        assert deployment.client.current_phase is None
        deployment.run(seconds(3))
        from repro.apps.rubis import BY_NAME

        for name in deployment.client.stats.responses.keys():
            assert BY_NAME[name].request_class == "read"


class TestClientBookkeeping:
    def test_warmup_excludes_early_samples(self):
        cold = deploy_rubis(quick_config(warmup=seconds(3)))
        cold.run(seconds(2))
        assert cold.client.stats.responses.count() == 0
        assert cold.client.requests_sent > 0

    def test_throughput_counts_only_measured_requests(self):
        deployment = deploy_rubis(quick_config(warmup=seconds(1)))
        deployment.run(seconds(4))
        stats = deployment.client.stats
        assert stats.throughput.total == stats.responses.count()

    def test_sessions_restart_after_completion(self):
        deployment = deploy_rubis(quick_config())
        deployment.run(seconds(12))
        # 6 sessions x 4 requests at ~100-200 ms per cycle: several rounds.
        assert deployment.client.stats.sessions_completed > 6
