"""Tests for the command-line entry point's argument handling."""

import pytest

from repro.__main__ import COMMANDS, main


def test_list_prints_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_option_parsing_defaults():

    # Smoke the parser wiring by reaching into main's parser via a dry run.
    with pytest.raises(SystemExit):
        main(["--seed", "not-a-number", "list"])
