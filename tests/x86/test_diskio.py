"""Tests for the disk model and weighted I/O scheduler."""

import pytest

from repro.platform import EntityId
from repro.sim import Simulator, ms, seconds
from repro.x86 import X86Island
from repro.x86.diskio import DiskParams, WeightedIOScheduler


def make_host():
    sim = Simulator()
    island = X86Island(sim)
    scheduler = WeightedIOScheduler(sim)
    island.attach_disk(scheduler)
    return sim, island, scheduler


class TestDiskService:
    def test_random_read_pays_seek(self):
        sim, island, scheduler = make_host()
        scheduler.register_vm("vm")
        done = scheduler.submit("vm", 80_000)  # 1 ms transfer at 80 MB/s
        sim.run(until=seconds(1))
        assert done.processed
        # seek (8 ms) + transfer (1 ms)
        assert done.value.done is done

    def test_sequential_read_skips_seek(self):
        sim, island, scheduler = make_host()
        scheduler.register_vm("vm")
        times = {}

        def reader(sim):
            start = sim.now
            yield scheduler.submit("vm", 80_000, sequential=True)
            times["seq"] = sim.now - start
            start = sim.now
            yield scheduler.submit("vm", 80_000, sequential=False)
            times["rand"] = sim.now - start

        sim.spawn(reader(sim))
        sim.run(until=seconds(1))
        assert times["rand"] - times["seq"] == pytest.approx(DiskParams().seek_time, rel=0.01)

    def test_invalid_size_rejected(self):
        sim, island, scheduler = make_host()
        scheduler.register_vm("vm")
        with pytest.raises(ValueError):
            scheduler.submit("vm", 0)

    def test_unregistered_vm_rejected(self):
        sim, island, scheduler = make_host()
        with pytest.raises(KeyError):
            scheduler.submit("ghost", 100)

    def test_duplicate_registration_rejected(self):
        sim, island, scheduler = make_host()
        scheduler.register_vm("vm")
        with pytest.raises(ValueError):
            scheduler.register_vm("vm")


class TestWeightedService:
    def _run_contention(self, weight_a, weight_b, duration=seconds(20)):
        sim, island, scheduler = make_host()
        scheduler.register_vm("a", weight=weight_a)
        scheduler.register_vm("b", weight=weight_b)
        served = {"a": 0, "b": 0}

        def hammer(sim, name):
            while True:
                yield scheduler.submit(name, 400_000)  # 5 ms transfer + seek
                served[name] += 1

        # Keep several requests in flight per queue: weights only matter
        # when both queues are genuinely backlogged.
        for _ in range(4):
            sim.spawn(hammer(sim, "a"))
            sim.spawn(hammer(sim, "b"))
        sim.run(until=duration)
        return served

    def test_equal_weights_equal_service(self):
        served = self._run_contention(100, 100)
        assert abs(served["a"] - served["b"]) <= 2

    def test_heavier_queue_served_more(self):
        served = self._run_contention(300, 100)
        assert served["a"] > served["b"] * 1.5

    def test_work_conserving_when_one_idle(self):
        sim, island, scheduler = make_host()
        scheduler.register_vm("busy", weight=50)
        scheduler.register_vm("idle", weight=1000)
        served = {"busy": 0}

        def hammer(sim):
            while True:
                yield scheduler.submit("busy", 400_000)
                served["busy"] += 1

        sim.spawn(hammer(sim))
        sim.run(until=seconds(5))
        # ~5s / 13ms per request; the idle queue's weight reserves nothing.
        assert served["busy"] >= 350


class TestPollInterval:
    def test_polling_adds_idle_latency(self):
        sim, island, scheduler = make_host()
        scheduler.set_poll_interval(ms(20))
        scheduler.register_vm("vm")
        # allow the dispatcher to go idle-poll first
        sim.run(until=ms(5))
        latency = {}

        def reader(sim):
            start = sim.now
            yield scheduler.submit("vm", 80_000)
            latency["value"] = sim.now - start

        sim.spawn(reader(sim))
        sim.run(until=seconds(1))
        # seek+transfer is 9 ms; the poll adds up to 20 ms on top.
        assert latency["value"] > ms(9)

    def test_event_driven_has_no_poll_latency(self):
        sim, island, scheduler = make_host()
        scheduler.register_vm("vm")
        sim.run(until=ms(5))
        latency = {}

        def reader(sim):
            start = sim.now
            yield scheduler.submit("vm", 80_000)
            latency["value"] = sim.now - start

        sim.spawn(reader(sim))
        sim.run(until=seconds(1))
        assert latency["value"] == pytest.approx(ms(9), rel=0.02)

    def test_negative_interval_rejected(self):
        sim, island, scheduler = make_host()
        with pytest.raises(ValueError):
            scheduler.set_poll_interval(-1)


class TestIslandIntegration:
    def test_tune_targets_io_queue(self):
        sim, island, scheduler = make_host()
        vm = island.create_vm("guest")
        interface = island.create_disk_interface(vm, weight=100)
        island.apply_tune(EntityId("x86", "disk:guest"), +50)
        assert interface.queue.weight == 150
        island.apply_tune(EntityId("x86", "disk:guest"), -500)
        assert interface.queue.weight == 1  # floor

    def test_vm_tune_still_targets_credit_weight(self):
        sim, island, scheduler = make_host()
        vm = island.create_vm("guest")
        island.create_disk_interface(vm)
        island.apply_tune(EntityId("x86", "guest"), +64)
        assert vm.weight == 320

    def test_disk_interface_requires_attached_disk(self):
        sim = Simulator()
        island = X86Island(sim)
        vm = island.create_vm("guest")
        with pytest.raises(RuntimeError):
            island.create_disk_interface(vm)

    def test_read_attributed_to_iowait(self):
        sim, island, scheduler = make_host()
        vm = island.create_vm("guest")
        interface = island.create_disk_interface(vm)

        def reader(sim):
            yield from interface.read(800_000)  # 10 ms transfer + seek

        sim.spawn(reader(sim))
        sim.run(until=seconds(1))
        assert vm.accounting.iowait >= ms(17)
