"""Tests for working sets, paging pressure and the balloon driver."""

import pytest

from repro.platform import EntityId
from repro.sim import Simulator, ms, seconds
from repro.x86 import X86Island
from repro.x86.memory import BalloonDriver, MemoryBalancerPolicy, PagingModel


class TestPagingModel:
    def test_no_pressure_when_allocation_covers_working_set(self):
        model = PagingModel()
        assert model.factor(256, 256) == 1.0
        assert model.factor(256, 512) == 1.0

    def test_linear_inflation_with_deficit(self):
        model = PagingModel(slope=4.0)
        assert model.factor(256, 128) == pytest.approx(3.0)  # 50% deficit

    def test_capped_at_max_factor(self):
        model = PagingModel(slope=10.0, max_factor=6.0)
        assert model.factor(1000, 1) == 6.0
        assert model.factor(1000, 0) == 6.0

    def test_zero_working_set_is_free(self):
        assert PagingModel().factor(0, 0) == 1.0


def build_host(total_mb=1024):
    sim = Simulator()
    island = X86Island(sim)
    driver = BalloonDriver(sim, total_mb=total_mb)
    island.attach_balloon(driver)
    return sim, island, driver


class TestBalloonDriver:
    def test_manage_and_adjust(self):
        sim, island, driver = build_host()
        vm = island.create_vm("guest")  # 256 MB default
        island.balloon_manage(vm)
        assert driver.adjust("guest", +128) == 384
        assert vm.memory_mb == 384

    def test_growth_limited_by_free_memory(self):
        sim, island, driver = build_host(total_mb=512)
        vm_a = island.create_vm("a")
        vm_b = island.create_vm("b")
        island.balloon_manage(vm_a)
        island.balloon_manage(vm_b)
        assert driver.free_mb == 0
        assert driver.adjust("a", +100) == 256  # nothing free

    def test_shrink_floor(self):
        sim, island, driver = build_host()
        vm = island.create_vm("guest")
        island.balloon_manage(vm)
        assert driver.adjust("guest", -10_000) == driver.min_allocation_mb

    def test_overcommitted_start_rejected(self):
        sim, island, driver = build_host(total_mb=300)
        vm_a = island.create_vm("a")
        vm_b = island.create_vm("b")
        island.balloon_manage(vm_a)
        with pytest.raises(ValueError):
            island.balloon_manage(vm_b)

    def test_duplicate_manage_rejected(self):
        sim, island, driver = build_host()
        vm = island.create_vm("guest")
        island.balloon_manage(vm)
        with pytest.raises(ValueError):
            driver.manage(vm)

    def test_pressure_inflates_cpu_demands(self):
        sim, island, driver = build_host()
        vm = island.create_vm("guest")
        island.balloon_manage(vm, working_set_mb=512)  # 2x the allocation
        done = vm.execute(ms(10))
        sim.run(until=seconds(1))
        assert done.processed
        # factor = 1 + 4 * 0.5 = 3 -> 30 ms of CPU
        assert vm.cpu_time() == pytest.approx(ms(30), rel=0.01)

    def test_tune_targets_balloon(self):
        sim, island, driver = build_host()
        vm = island.create_vm("guest")
        island.balloon_manage(vm)
        island.apply_tune(EntityId("x86", "mem:guest"), +64)
        assert vm.memory_mb == 320

    def test_manage_requires_attached_driver(self):
        sim = Simulator()
        island = X86Island(sim)
        vm = island.create_vm("guest")
        with pytest.raises(RuntimeError):
            island.balloon_manage(vm)


class TestMemoryBalancer:
    def test_moves_memory_to_the_thrashing_domain(self):
        sim, island, driver = build_host(total_mb=512)
        comfortable = island.create_vm("comfortable")
        thrashing = island.create_vm("thrashing")
        island.balloon_manage(comfortable, working_set_mb=64)
        island.balloon_manage(thrashing, working_set_mb=512)
        policy = MemoryBalancerPolicy(sim, driver, period=ms(100))
        sim.run(until=seconds(2))
        assert policy.moves > 0
        assert thrashing.memory_mb > 256
        assert comfortable.memory_mb < 256
        assert driver.pressure("thrashing") < PagingModel().factor(512, 256)

    def test_no_moves_when_balanced(self):
        sim, island, driver = build_host()
        vm_a = island.create_vm("a")
        vm_b = island.create_vm("b")
        island.balloon_manage(vm_a)
        island.balloon_manage(vm_b)
        policy = MemoryBalancerPolicy(sim, driver, period=ms(100))
        sim.run(until=seconds(1))
        assert policy.moves == 0

    def test_coordinated_balancing_improves_throughput(self):
        """The end-to-end claim: balancing completes more memory-bound
        work than a static split."""

        def run(balanced):
            sim, island, driver = build_host(total_mb=512)
            worker = island.create_vm("worker")
            idleish = island.create_vm("idleish")
            island.balloon_manage(worker, working_set_mb=448)
            island.balloon_manage(idleish, working_set_mb=64)
            if balanced:
                MemoryBalancerPolicy(sim, driver, period=ms(100))
            completed = {"count": 0}

            def loop(sim):
                while True:
                    yield worker.execute(ms(5))
                    completed["count"] += 1

            sim.spawn(loop(sim))
            sim.run(until=seconds(5))
            return completed["count"]

        assert run(True) > run(False) * 1.3
