"""Tests for the shared LLC + memory-bandwidth model and its knobs.

Covers the ISSUE-6 tentpole plumbing (miss-ratio ramp, exclusive way
partitions, weighted max-min bandwidth, prefetch hide/waste trade-off,
DVFS-invariant memory stalls, the three typed knobs) and the DVFS
read/actuation bugfix satellites (authoritative ladder index, zero-delta
no-ops on the new knobs).
"""

import pytest

from repro.platform import EntityId
from repro.sim import Simulator, ms, seconds
from repro.x86 import (
    DVFS_LADDER,
    MAX_BW_SHARE,
    CreditScheduler,
    MemoryProfile,
    MemorySystem,
    MemorySystemParams,
    VirtualMachine,
    X86Island,
)


def make_island(sim=None):
    sim = sim or Simulator()
    island = X86Island(sim)
    return sim, island


def managed_pair(total_ways=16, capacity=6.0):
    """A bare scheduler with two managed VMs (no island plumbing)."""
    sim = Simulator()
    scheduler = CreditScheduler(sim, num_cpus=1)
    system = MemorySystem(MemorySystemParams(total_ways=total_ways, capacity_gbps=capacity))
    a = VirtualMachine(sim, "a")
    b = VirtualMachine(sim, "b")
    scheduler.add_domain(a)
    scheduler.add_domain(b)
    return sim, scheduler, system, a, b


class TestMemoryProfile:
    def test_miss_ratio_ramps_down_to_floor(self):
        profile = MemoryProfile(ways_needed=8, base_miss=0.1)
        assert profile.miss_ratio(8) == pytest.approx(0.1)
        assert profile.miss_ratio(16) == pytest.approx(0.1)
        assert profile.miss_ratio(4) == pytest.approx(0.1 + 0.9 * 0.5)
        assert profile.miss_ratio(0) == pytest.approx(1.0)
        # Strictly monotone until the knee.
        assert profile.miss_ratio(2) > profile.miss_ratio(5) > profile.miss_ratio(7)

    def test_profile_validates(self):
        with pytest.raises(ValueError):
            MemoryProfile(mem_fraction=1.5)
        with pytest.raises(ValueError):
            MemoryProfile(ways_needed=0)


class TestWayPartitions:
    def test_ways_are_exclusive_and_growth_is_clamped(self):
        sim, scheduler, system, a, b = managed_pair(total_ways=8)
        system.manage(a, ways=4)
        system.manage(b, ways=3)
        assert system.free_ways == 1
        # Growing past what is free clamps to current + free.
        assert system.set_ways("a", 99) == 5
        assert system.free_ways == 0
        # Shrinking frees ways for the neighbour; floor is one way.
        assert system.set_ways("a", 0) == 1
        assert system.set_ways("b", 7) == 7

    def test_fewer_ways_raise_predicted_stall(self):
        sim, scheduler, system, a, b = managed_pair()
        system.manage(a, MemoryProfile(ways_needed=10), ways=8)
        system.manage(b, ways=4)
        assert system.predict_stall("a", ways=4) > system.predict_stall("a", ways=8)
        assert system.predict_stall("a", ways=10) == pytest.approx(
            system.predict_stall("a", ways=12)
        )

    def test_double_manage_rejected(self):
        sim, scheduler, system, a, b = managed_pair()
        system.manage(a)
        with pytest.raises(ValueError):
            system.manage(a)


class TestBandwidthPipe:
    def test_uncontended_pipe_grants_full_demand(self):
        sim, scheduler, system, a, b = managed_pair(capacity=100.0)
        system.manage(a, MemoryProfile(bw_demand_gbps=2.0))
        system.manage(b, MemoryProfile(bw_demand_gbps=3.0))
        allocations = system._allocations()
        for demand, got in allocations.values():
            assert got == pytest.approx(demand)
        assert not system.pipe_congested()

    def test_contended_pipe_splits_by_share_weighted_max_min(self):
        sim, scheduler, system, a, b = managed_pair(capacity=3.0)
        profile = MemoryProfile(mem_fraction=0.5, ways_needed=2, base_miss=1.0,
                                bw_demand_gbps=4.0)
        system.manage(a, profile, ways=2, bw_share=100, prefetch_throttle=100)
        system.manage(b, profile, ways=2, bw_share=300, prefetch_throttle=100)
        allocations = system._allocations()
        assert system.pipe_congested()
        # Both insatiable: split 1:3 over the 3 GB/s pipe.
        assert allocations["a"][1] == pytest.approx(0.75)
        assert allocations["b"][1] == pytest.approx(2.25)
        # The squeezed domain stalls harder.
        assert system.predict_stall("a") > system.predict_stall("b")
        # A bigger share buys the squeezed domain its stall back.
        assert system.predict_stall("a", bw_share=900) < system.predict_stall("a")

    def test_bw_share_bounds(self):
        sim, scheduler, system, a, b = managed_pair()
        system.manage(a)
        assert system.set_bw_share("a", 0) == 1
        assert system.set_bw_share("a", 10**6) == MAX_BW_SHARE


class TestPrefetcher:
    def test_prefetch_hides_stalls_when_pipe_is_fed(self):
        sim, scheduler, system, a, b = managed_pair(capacity=100.0)
        system.manage(a, MemoryProfile(ways_needed=8, base_miss=0.4), ways=4)
        system.manage(b, ways=4)
        aggressive = system.predict_stall("a", prefetch_throttle=0)
        off = system.predict_stall("a", prefetch_throttle=100)
        assert aggressive < off

    def test_prefetch_waste_congests_a_tight_pipe(self):
        sim, scheduler, system, a, b = managed_pair(capacity=2.0)
        profile = MemoryProfile(mem_fraction=0.5, ways_needed=2, base_miss=1.0,
                                bw_demand_gbps=1.3)
        system.manage(a, profile, ways=2, prefetch_throttle=0)
        system.manage(b, profile, ways=2, prefetch_throttle=0)
        # Demand misses alone fit (2.6 * no waste would be 2.6 > 2 — use
        # throttled demand to compare): with both prefetchers off the pipe
        # sees 2.6 GB/s of demand misses; aggressive prefetch adds waste.
        assert system.pipe_congested()
        throttled_total = sum(
            system._allocations(
                overrides={"a": (2, 100, 100), "b": (2, 100, 100)}
            )[n][0] for n in ("a", "b")
        )
        aggressive_total = sum(d for d, _ in system._allocations().values())
        assert aggressive_total > throttled_total

    def test_prefetch_throttle_bounds(self):
        sim, scheduler, system, a, b = managed_pair()
        system.manage(a)
        assert system.set_prefetch_throttle("a", -5) == 0
        assert system.set_prefetch_throttle("a", 150) == 100


class TestExecutionCoupling:
    def _run_one(self, speed, stall_profile, demand=ms(10)):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        system = MemorySystem()
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        system.manage(vm, stall_profile, ways=2)
        system.bind_speed(lambda: scheduler.cpus[0].speed)
        scheduler.set_cpu_speed(0, speed)
        done = vm.execute(demand)
        sim.run(until=seconds(2))
        assert done.processed
        return vm.accounting.busy

    def test_memory_stall_inflates_wall_time(self):
        lean = MemoryProfile(mem_fraction=0.0)
        heavy = MemoryProfile(mem_fraction=0.6, ways_needed=16, base_miss=0.5)
        assert self._run_one(1.0, heavy) > self._run_one(1.0, lean)

    def test_memory_stall_is_frequency_invariant_in_wall_time(self):
        """wall = demand * (1/speed + stall): slowing the core stretches
        only the compute part; the stall contribution stays constant."""
        heavy = MemoryProfile(mem_fraction=0.6, ways_needed=16, base_miss=0.5)
        demand = ms(10)
        fast = self._run_one(1.0, heavy, demand)
        slow = self._run_one(0.5, heavy, demand)
        # The busy-time difference is the compute part's stretch alone.
        assert slow - fast == pytest.approx(demand * (1 / 0.5 - 1 / 1.0), rel=0.02)

    def test_inflation_chains_with_existing_hook(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        system = MemorySystem()
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        vm.demand_inflation = lambda: 1.5  # a balloon-style pressure hook
        system.manage(vm, MemoryProfile(mem_fraction=0.0), ways=2)
        # Zero memory-boundness: the chained hook's factor passes through.
        assert vm.demand_inflation() == pytest.approx(1.5)


class TestIslandKnobs:
    def _managed_island(self):
        sim, island = make_island()
        system = MemorySystem()
        island.attach_memory_system(system)
        vm = island.create_vm("guest")
        island.memory_manage(vm, MemoryProfile(ways_needed=8), ways=4)
        return sim, island, system, vm

    def test_memory_manage_requires_attach(self):
        sim, island = make_island()
        vm = island.create_vm("guest")
        with pytest.raises(RuntimeError):
            island.memory_manage(vm)

    def test_three_knobs_registered_and_tunable(self):
        sim, island, system, vm = self._managed_island()
        for control, expected_kind in (
            ("llc:guest", "llc-ways"),
            ("bw:guest", "bw-share"),
            ("prefetch:guest", "prefetch-throttle"),
        ):
            entity = EntityId("x86", control)
            assert island.knobs.has(entity)
            assert island.knobs.describe(entity)["kind"] == expected_kind
        record = island.apply_tune(EntityId("x86", "llc:guest"), +2)
        assert record.applied_value == 6
        assert system.ways("guest") == 6
        record = island.apply_tune(EntityId("x86", "bw:guest"), +64)
        assert system.bw_share("guest") == 164
        record = island.apply_tune(EntityId("x86", "prefetch:guest"), +50)
        assert system.prefetch_throttle("guest") == 50

    def test_way_tune_clamps_against_exclusive_partitions(self):
        sim, island, system, vm = self._managed_island()
        other = island.create_vm("other")
        island.memory_manage(other, ways=8)
        record = island.apply_tune(EntityId("x86", "llc:guest"), +99)
        # 16 total, 8 held by the other domain: clamp at 8.
        assert record.applied_value == 8
        assert record.outcome == "clamped"

    def test_zero_delta_tunes_skip_native_apply_on_memory_knobs(self):
        """The zero-delta audited no-op covers the new uncore knobs: no
        repartition, no trace spam, just the audit entry."""
        sim, island, system, vm = self._managed_island()
        before = system.repartitions
        for control in ("llc:guest", "bw:guest", "prefetch:guest"):
            record = island.apply_tune(EntityId("x86", control), 0)
            assert record.reason == "zero-delta"
            assert record.applied_value == record.previous_value
        assert system.repartitions == before

    def test_memory_system_snapshot_shape(self):
        sim, island, system, vm = self._managed_island()
        snap = system.snapshot()
        assert set(snap) == {"guest"}
        assert snap["guest"]["ways"] == 4
        assert snap["guest"]["stall"] >= 0.0


class TestDvfsIndexAuthority:
    """ISSUE-6 satellite: the ladder index is island state, not inferred."""

    def test_read_survives_out_of_band_speed_changes(self):
        sim, island = make_island()
        entity = EntityId("x86", "dvfs")
        island.apply_tune(entity, -1)
        assert island.knobs.get(entity).read() == len(DVFS_LADDER) - 2
        # An out-of-band mid-ladder speed (thermal throttle, test poke)
        # used to make nearest-match inference drift to another level.
        island.scheduler.set_cpu_speed(0, 0.6)
        assert island.knobs.get(entity).read() == len(DVFS_LADDER) - 2

    def test_apply_of_read_is_a_noop_in_the_audit(self):
        sim, island = make_island()
        entity = EntityId("x86", "dvfs")
        island.apply_tune(entity, -2)
        island.scheduler.set_cpu_speed(0, 0.62)  # out-of-band drift
        knob = island.knobs.get(entity)
        level = knob.read()
        assert knob.apply(level) == level
        assert knob.read() == level
        # And through the registry: a zero-delta Tune re-asserting the
        # level is an audited no-op that does not move the ladder.
        record = island.apply_tune(entity, 0)
        assert record.reason == "zero-delta"
        assert record.previous_value == record.applied_value == level

    def test_tune_steps_from_authoritative_index(self):
        sim, island = make_island()
        entity = EntityId("x86", "dvfs")
        island.apply_tune(entity, -1)          # index 2 (0.85)
        island.scheduler.set_cpu_speed(0, 0.56)  # near the ladder floor
        record = island.apply_tune(entity, +1)
        # Nearest-match inference would have read index 0 and stepped to
        # 1; the authoritative index steps 2 -> 3 (nominal, all cores).
        assert record.applied_value == len(DVFS_LADDER) - 1
        assert all(cpu.speed == DVFS_LADDER[-1] for cpu in island.scheduler.cpus)
