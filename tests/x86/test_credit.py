"""Tests for the credit scheduler: shares, boost, preemption, caps, SMP."""

import pytest

from repro.sim import Simulator, ms, seconds
from repro.x86 import CreditParams, CreditScheduler, VirtualMachine, X86Island, X86Params
from repro.x86.vcpu import Priority, VCPUState


def make_host(num_cpus=1, **credit_kwargs):
    sim = Simulator()
    scheduler = CreditScheduler(sim, num_cpus=num_cpus, params=CreditParams(**credit_kwargs))
    return sim, scheduler


def hog(sim, vm, chunk=ms(5)):
    def loop(sim, vm):
        while True:
            yield vm.execute(chunk, "user")

    return sim.spawn(loop(sim, vm), name=f"hog-{vm.name}")


class TestBasicExecution:
    def test_single_vm_work_completes(self):
        sim, sched = make_host()
        vm = VirtualMachine(sim, "solo")
        sched.add_domain(vm)
        done = vm.execute(ms(10))
        sim.run(until=ms(50))
        assert done.processed
        assert vm.cpu_time() == ms(10)

    def test_work_conserving_single_vm_gets_everything(self):
        sim, sched = make_host()
        vm = VirtualMachine(sim, "solo")
        sched.add_domain(vm)
        hog(sim, vm)
        sim.run(until=seconds(2))
        assert vm.cpu_time() == seconds(2)

    def test_idle_cpu_burns_nothing(self):
        sim, sched = make_host()
        vm = VirtualMachine(sim, "idle")
        sched.add_domain(vm)
        sim.run(until=seconds(1))
        assert vm.cpu_time() == 0
        assert sched.cpus[0].idle_time > 0

    def test_duplicate_domain_rejected(self):
        sim, sched = make_host()
        vm = VirtualMachine(sim, "vm")
        sched.add_domain(vm)
        with pytest.raises(ValueError):
            sched.add_domain(vm)


class TestProportionalShare:
    def test_equal_weights_equal_shares(self):
        sim, sched = make_host()
        a, b = VirtualMachine(sim, "a"), VirtualMachine(sim, "b")
        sched.add_domain(a)
        sched.add_domain(b)
        hog(sim, a)
        hog(sim, b)
        sim.run(until=seconds(5))
        ratio = a.cpu_time() / b.cpu_time()
        assert 0.9 < ratio < 1.1

    def test_weight_2to1(self):
        sim, sched = make_host()
        light = VirtualMachine(sim, "light", weight=256)
        heavy = VirtualMachine(sim, "heavy", weight=512)
        sched.add_domain(light)
        sched.add_domain(heavy)
        hog(sim, light)
        hog(sim, heavy)
        sim.run(until=seconds(10))
        ratio = heavy.cpu_time() / light.cpu_time()
        assert 1.7 < ratio < 2.3

    def test_set_weight_takes_effect(self):
        sim, sched = make_host()
        a, b = VirtualMachine(sim, "a"), VirtualMachine(sim, "b")
        sched.add_domain(a)
        sched.add_domain(b)
        hog(sim, a)
        hog(sim, b)
        sim.run(until=seconds(2))
        sched.set_weight(a, 1024)
        mark_a, mark_b = a.cpu_time(), b.cpu_time()
        sim.run(until=seconds(12))
        ratio = (a.cpu_time() - mark_a) / (b.cpu_time() - mark_b)
        assert ratio > 2.5  # 1024 vs 256 = 4x nominal

    def test_invalid_weight_rejected(self):
        sim, sched = make_host()
        vm = VirtualMachine(sim, "vm")
        sched.add_domain(vm)
        with pytest.raises(ValueError):
            sched.set_weight(vm, 0)

    def test_idle_domain_weight_not_wasted(self):
        """An idle domain's weight must not reserve capacity (csched's
        active/inactive marking)."""
        sim, sched = make_host()
        worker = VirtualMachine(sim, "worker", weight=256)
        idler = VirtualMachine(sim, "idler", weight=2048)
        sched.add_domain(worker)
        sched.add_domain(idler)
        hog(sim, worker)
        sim.run(until=seconds(3))
        assert worker.cpu_time() >= seconds(3) * 0.99


class TestSMP:
    def test_two_cpus_run_two_vms_concurrently(self):
        sim, sched = make_host(num_cpus=2)
        a, b = VirtualMachine(sim, "a"), VirtualMachine(sim, "b")
        sched.add_domain(a)
        sched.add_domain(b)
        hog(sim, a)
        hog(sim, b)
        sim.run(until=seconds(2))
        # near-perfect concurrency (small startup placement slack allowed)
        assert a.cpu_time() >= seconds(2) * 0.99
        assert b.cpu_time() >= seconds(2) * 0.99

    def test_three_hogs_on_two_cpus_fair(self):
        sim, sched = make_host(num_cpus=2)
        vms = [VirtualMachine(sim, f"v{i}") for i in range(3)]
        for vm in vms:
            sched.add_domain(vm)
            hog(sim, vm)
        sim.run(until=seconds(6))
        times = [vm.cpu_time() for vm in vms]
        assert max(times) / min(times) < 1.15
        assert sum(times) >= seconds(12) * 0.98  # work conserving

    def test_affinity_pins_vcpu(self):
        sim, sched = make_host(num_cpus=2)
        pinned = VirtualMachine(sim, "pinned")
        sched.add_domain(pinned)
        pinned.vcpus[0].affinity = frozenset({1})
        hog(sim, pinned)
        sim.run(until=seconds(1))
        assert pinned.vcpus[0].cpu.index == 1
        assert sched.cpus[0].idle_time >= seconds(1) * 0.99


class TestBoostAndPreemption:
    def test_waking_vcpu_preempts_hog(self):
        """An interactive VM waking with credit must run promptly (BOOST)."""
        sim, sched = make_host()
        cpu_hog = VirtualMachine(sim, "hog")
        interactive = VirtualMachine(sim, "inter")
        sched.add_domain(cpu_hog)
        sched.add_domain(interactive)
        hog(sim, cpu_hog, chunk=ms(30))
        latencies = []

        def pinger(sim):
            while True:
                yield sim.timeout(ms(50))
                start = sim.now
                yield interactive.execute(ms(1))
                latencies.append(sim.now - start)

        sim.spawn(pinger(sim))
        sim.run(until=seconds(3))
        # With BOOST the 1 ms of work completes in ~1 ms, not 30 ms.
        average = sum(latencies) / len(latencies)
        assert average < ms(4)

    def test_boost_disabled_increases_wake_latency(self):
        sim, sched = make_host(boost_enabled=False)
        cpu_hog = VirtualMachine(sim, "hog")
        interactive = VirtualMachine(sim, "inter")
        sched.add_domain(cpu_hog)
        sched.add_domain(interactive)
        hog(sim, cpu_hog, chunk=ms(30))
        latencies = []

        def pinger(sim):
            while True:
                yield sim.timeout(ms(50))
                start = sim.now
                yield interactive.execute(ms(1))
                latencies.append(sim.now - start)

        sim.spawn(pinger(sim))
        sim.run(until=seconds(3))
        average = sum(latencies) / len(latencies)
        assert average > ms(4)

    def test_trigger_boost_moves_runnable_vcpu_to_head(self):
        sim, sched = make_host()
        first = VirtualMachine(sim, "first")
        second = VirtualMachine(sim, "second")
        sched.add_domain(first)
        sched.add_domain(second)
        hog(sim, first, chunk=ms(30))
        hog(sim, second, chunk=ms(30))
        sim.run(until=seconds(1))
        sched.boost(second)
        boosted = second.vcpus[0]
        assert boosted.boosted
        if boosted.state is VCPUState.RUNNABLE:
            assert boosted.effective_priority() is Priority.BOOST

    def test_steal_time_recorded(self):
        sim, sched = make_host()
        a, b = VirtualMachine(sim, "a"), VirtualMachine(sim, "b")
        sched.add_domain(a)
        sched.add_domain(b)
        hog(sim, a)
        hog(sim, b)
        sim.run(until=seconds(2))
        assert a.accounting.steal > 0
        assert b.accounting.steal > 0


class TestCaps:
    def test_cap_limits_utilization(self):
        sim, sched = make_host()
        capped = VirtualMachine(sim, "capped")
        sched.add_domain(capped)
        sched.set_cap(capped, 25)
        hog(sim, capped)
        sim.run(until=seconds(4))
        utilization = capped.cpu_time() / seconds(4)
        assert 0.2 < utilization < 0.3

    def test_zero_cap_means_uncapped(self):
        sim, sched = make_host()
        vm = VirtualMachine(sim, "vm")
        sched.add_domain(vm)
        sched.set_cap(vm, 0)
        hog(sim, vm)
        sim.run(until=seconds(1))
        assert vm.cpu_time() >= seconds(1) * 0.99

    def test_negative_cap_rejected(self):
        sim, sched = make_host()
        vm = VirtualMachine(sim, "vm")
        sched.add_domain(vm)
        with pytest.raises(ValueError):
            sched.set_cap(vm, -5)


class TestMultiVCPU:
    def test_two_vcpus_use_two_cores(self):
        sim, sched = make_host(num_cpus=2)
        vm = VirtualMachine(sim, "wide", num_vcpus=2)
        sched.add_domain(vm)
        # Two independent work chains keep both VCPUs busy.
        hog(sim, vm)
        hog(sim, vm)
        sim.run(until=seconds(1))
        assert vm.cpu_time() > seconds(1) * 1.5

    def test_serial_workload_occupies_one_vcpu(self):
        """One chain of work in a 2-VCPU domain must not keep both hot."""
        sim, sched = make_host(num_cpus=2)
        wide = VirtualMachine(sim, "wide", num_vcpus=2)
        competitor = VirtualMachine(sim, "thin")
        sched.add_domain(wide)
        sched.add_domain(competitor)
        hog(sim, wide)  # serial chain
        hog(sim, competitor)
        sim.run(until=seconds(2))
        # Each should get about one core.
        assert abs(wide.cpu_time() - seconds(2)) < seconds(2) * 0.1
        assert abs(competitor.cpu_time() - seconds(2)) < seconds(2) * 0.1


class TestX86Island:
    def test_create_vm_and_entities(self):
        sim = Simulator()
        island = X86Island(sim, X86Params(num_cpus=2))
        vm = island.create_vm("guest", weight=300)
        assert island.vm("guest") is vm
        assert vm.weight == 300
        assert island.has_entity(island_entity(island, "guest"))

    def test_duplicate_vm_rejected(self):
        sim = Simulator()
        island = X86Island(sim)
        island.create_vm("guest")
        with pytest.raises(ValueError):
            island.create_vm("guest")

    def test_apply_tune_adjusts_weight(self):
        sim = Simulator()
        island = X86Island(sim)
        vm = island.create_vm("guest")
        island.apply_tune(island_entity(island, "guest"), +128)
        assert vm.weight == 384
        island.apply_tune(island_entity(island, "guest"), -1000)
        assert vm.weight >= 16  # clamped at MIN_WEIGHT

    def test_apply_trigger_boosts(self):
        sim = Simulator()
        island = X86Island(sim)
        vm = island.create_vm("guest")
        island.apply_trigger(island_entity(island, "guest"))
        assert vm.vcpus[0].boosted

    def test_tune_charges_dom0(self):
        sim = Simulator()
        island = X86Island(sim)
        island.create_vm("guest")
        island.apply_tune(island_entity(island, "guest"), +64)
        assert island.dom0.guest.has_work

    def test_dom0_unpinned_multi_vcpu(self):
        sim = Simulator()
        island = X86Island(sim, X86Params(num_cpus=2))
        assert len(island.dom0.vcpus) == 2
        assert island.guest_vms() == []


def island_entity(island, name):
    from repro.platform import EntityId

    return EntityId(island.name, name)
