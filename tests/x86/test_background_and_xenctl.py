"""Tests for guest background load and the XenCtrl interface details."""

import pytest

from repro.sim import Simulator, ms, seconds
from repro.x86 import (
    MAX_WEIGHT,
    MIN_WEIGHT,
    CreditScheduler,
    VirtualMachine,
    X86Island,
    XenCtl,
)
from repro.x86.background import GuestBackgroundLoad


class TestGuestBackgroundLoad:
    def _host(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        return sim, vm

    def test_duty_cycle_consumes_expected_share(self):
        sim, vm = self._host()
        GuestBackgroundLoad(sim, vm, duty=0.2)
        sim.run(until=seconds(5))
        utilization = vm.cpu_time() / seconds(5)
        assert 0.17 < utilization < 0.23

    def test_zero_duty_spawns_nothing(self):
        sim, vm = self._host()
        load = GuestBackgroundLoad(sim, vm, duty=0.0)
        sim.run(until=seconds(1))
        assert vm.cpu_time() == 0
        assert load.bursts == 0

    def test_invalid_duty_rejected(self):
        sim, vm = self._host()
        with pytest.raises(ValueError):
            GuestBackgroundLoad(sim, vm, duty=1.0)
        with pytest.raises(ValueError):
            GuestBackgroundLoad(sim, vm, duty=-0.1)

    def test_bursts_coalesce_when_guest_is_starved(self):
        """A starved guest must not accumulate unbounded housekeeping."""
        sim, vm = self._host()
        GuestBackgroundLoad(sim, vm, duty=0.1)
        # A hog with most of the weight starves the background VM.
        hog = VirtualMachine(sim, "hog", weight=4096)
        vm._scheduler.add_domain(hog)

        def burn(sim):
            while True:
                yield hog.execute(ms(5))

        sim.spawn(burn(sim))
        sim.run(until=seconds(3))
        assert vm.guest.queue_length < 64 + 1

    def test_marked_as_sys_time(self):
        sim, vm = self._host()
        GuestBackgroundLoad(sim, vm, duty=0.1)
        sim.run(until=seconds(1))
        assert vm.accounting.sys > 0
        assert vm.accounting.user == 0


class TestXenCtl:
    def test_weight_clamps(self):
        sim = Simulator()
        island = X86Island(sim)
        vm = island.create_vm("guest")
        assert island.xenctl.set_weight(vm, 10_000_000) == MAX_WEIGHT
        assert island.xenctl.set_weight(vm, 0) == MIN_WEIGHT

    def test_adjust_weight_relative(self):
        sim = Simulator()
        island = X86Island(sim)
        vm = island.create_vm("guest", weight=300)
        assert island.xenctl.adjust_weight(vm, -100) == 200

    def test_operations_without_dom0_do_not_crash(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        ctl = XenCtl(sim, scheduler, dom0=None)
        assert ctl.set_weight(vm, 512) == 512
        ctl.boost(vm)
        ctl.set_cap(vm, 50)
        assert vm.cap_percent == 50
