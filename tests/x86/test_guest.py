"""Tests for the guest kernel: work items, claiming, accounting, iowait."""

import pytest

from repro.sim import Simulator, ms, us
from repro.x86.guest import GuestKernel, WorkItem


class TestWorkItem:
    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            WorkItem(Simulator(), -1, "user")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            WorkItem(Simulator(), 100, "kernelish")


class TestSubmitAndServe:
    def test_submit_notifies_on_work(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        woken = []
        guest.on_work_available = lambda: woken.append(True)
        guest.submit(ms(1))
        assert woken == [True]

    def test_acquire_prefers_owned_item(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        first = guest.submit(ms(1))
        guest.submit(ms(1))
        assert guest.acquire_work("vcpu0") is first
        # Re-acquire after (simulated) preemption returns the same item.
        assert guest.acquire_work("vcpu0") is first

    def test_two_owners_get_distinct_items(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        a = guest.submit(ms(1))
        b = guest.submit(ms(1))
        assert guest.acquire_work("v0") is a
        assert guest.acquire_work("v1") is b
        assert guest.acquire_work("v2") is None

    def test_sys_items_served_before_queued_user_items(self):
        """Softirq priority: queued kernel work jumps ahead of user work."""
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        guest.submit(ms(5), kind="user")
        sys_item = guest.submit(us(10), kind="sys")
        # user item unclaimed; a fresh VCPU must pick the sys item first
        assert guest.acquire_work("v0") is sys_item

    def test_owned_user_item_still_resumed_first(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        user = guest.submit(ms(5), kind="user")
        assert guest.acquire_work("v0") is user
        guest.submit(us(10), kind="sys")
        # v0 already mid-item: it resumes its own work, no re-dispatch.
        assert guest.acquire_work("v0") is user

    def test_charge_completes_item_and_fires_done(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        item = guest.submit(ms(2))
        guest.acquire_work("v0")
        guest.charge(item, ms(2))
        sim.run()
        assert item.done.processed
        assert not guest.has_work

    def test_partial_charge_keeps_item(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        item = guest.submit(ms(2))
        guest.acquire_work("v0")
        guest.charge(item, ms(1))
        assert guest.has_work
        assert item.remaining == ms(1)

    def test_unclaimed_flag(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        assert not guest.has_unclaimed_work
        guest.submit(ms(1))
        assert guest.has_unclaimed_work
        guest.acquire_work("v0")
        assert not guest.has_unclaimed_work


class TestAccounting:
    def test_user_sys_split(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        user = guest.submit(ms(3), kind="user")
        guest.acquire_work("v0")
        guest.charge(user, ms(3))
        sys_item = guest.submit(ms(1), kind="sys")
        guest.acquire_work("v0")
        guest.charge(sys_item, ms(1))
        assert guest.accounting.user == ms(3)
        assert guest.accounting.sys == ms(1)
        assert guest.accounting.busy == ms(4)

    def test_snapshot_is_a_copy(self):
        guest = GuestKernel(Simulator(), "vm")
        snap = guest.accounting.snapshot()
        snap["user"] = 12345
        assert guest.accounting.user == 0


class TestIowait:
    def test_idle_with_outstanding_io_counts_as_iowait(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        guest.io_begin()
        sim.run(until=ms(10))
        guest.io_end()
        assert guest.accounting.iowait == ms(10)

    def test_idle_without_io_is_not_iowait(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        sim.run(until=ms(10))
        guest.io_begin()
        guest.io_end()
        assert guest.accounting.iowait == 0

    def test_busy_time_not_counted_as_iowait(self):
        sim = Simulator()
        guest = GuestKernel(sim, "vm")
        guest.io_begin()
        item = guest.submit(ms(4))
        sim.run(until=ms(4))  # busy interval while io outstanding
        guest.acquire_work("v0")
        guest.charge(item, ms(4))
        sim.run(until=ms(6))
        guest.io_end()
        # iowait only accrues while idle: the leading 0ms + trailing 2ms.
        assert guest.accounting.iowait == ms(2)

    def test_io_end_without_begin_rejected(self):
        guest = GuestKernel(Simulator(), "vm")
        with pytest.raises(RuntimeError):
            guest.io_end()

    def test_outstanding_io_counter(self):
        guest = GuestKernel(Simulator(), "vm")
        guest.io_begin()
        guest.io_begin()
        assert guest.outstanding_io == 2
        guest.io_end()
        assert guest.outstanding_io == 1
