"""Tests for the scheduling-timeline (Gantt) tool."""

import pytest

from repro.metrics.timeline import SchedulingTimeline
from repro.sim import Simulator, Tracer, ms, seconds
from repro.x86 import CreditScheduler, VirtualMachine


def build(num_cpus=1):
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    scheduler = CreditScheduler(sim, num_cpus=num_cpus, tracer=tracer)
    timeline = SchedulingTimeline(sim, tracer)
    return sim, scheduler, timeline


class TestIntervalCollection:
    def test_single_burst_recorded(self):
        sim, scheduler, timeline = build()
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        vm.execute(ms(5))
        sim.run(until=ms(20))
        timeline.close()
        assert timeline.busy_time("vm") == ms(5)
        assert len(timeline.intervals) == 1

    def test_busy_time_matches_scheduler_accounting(self):
        sim, scheduler, timeline = build()
        a, b = VirtualMachine(sim, "a"), VirtualMachine(sim, "b")
        scheduler.add_domain(a)
        scheduler.add_domain(b)

        def hog(sim, vm):
            while True:
                yield vm.execute(ms(4))

        sim.spawn(hog(sim, a))
        sim.spawn(hog(sim, b))
        sim.run(until=seconds(1))
        timeline.close()
        assert timeline.busy_time("a") == a.cpu_time()
        assert timeline.busy_time("b") == b.cpu_time()

    def test_window_query_clips_intervals(self):
        sim, scheduler, timeline = build()
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        vm.execute(ms(10))
        sim.run(until=ms(20))
        timeline.close()
        assert timeline.busy_time("vm", start=ms(2), end=ms(4)) == ms(2)

    def test_longest_gap(self):
        sim, scheduler, timeline = build()
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)

        def bursty(sim):
            yield vm.execute(ms(2))
            yield sim.timeout(ms(50))
            yield vm.execute(ms(2))

        sim.spawn(bursty(sim))
        sim.run(until=ms(60))
        timeline.close()
        assert timeline.longest_gap("vm") == pytest.approx(ms(50), rel=0.05)

    def test_untracked_vm_gap_is_whole_run(self):
        sim, scheduler, timeline = build()
        sim.run(until=ms(30))
        assert timeline.longest_gap("ghost") == ms(30)


class TestGantt:
    def test_render_contains_legend_and_rows(self):
        sim, scheduler, timeline = build(num_cpus=2)
        a, b = VirtualMachine(sim, "alpha"), VirtualMachine(sim, "beta")
        scheduler.add_domain(a)
        scheduler.add_domain(b)

        def hog(sim, vm):
            while True:
                yield vm.execute(ms(4))

        sim.spawn(hog(sim, a))
        sim.spawn(hog(sim, b))
        sim.run(until=ms(100))
        timeline.close()
        chart = timeline.render_gantt(0, ms(100), width=40)
        assert "A=alpha" in chart and "B=beta" in chart
        assert "cpu0 |" in chart and "cpu1 |" in chart
        assert "A" in chart.splitlines()[1] or "A" in chart.splitlines()[2]

    def test_idle_renders_as_dots(self):
        sim, scheduler, timeline = build()
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        vm.execute(ms(1))
        sim.run(until=ms(100))
        timeline.close()
        chart = timeline.render_gantt(0, ms(100), width=50)
        assert "." in chart

    def test_invalid_window_rejected(self):
        sim, scheduler, timeline = build()
        with pytest.raises(ValueError):
            timeline.render_gantt(ms(10), ms(10))

    def test_disabled_tracer_collects_nothing(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=False)
        scheduler = CreditScheduler(sim, num_cpus=1, tracer=tracer)
        timeline = SchedulingTimeline(sim, tracer)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        vm.execute(ms(5))
        sim.run(until=ms(20))
        timeline.close()
        assert timeline.intervals == []
