"""Tests for channel-reliability metrics and windowed-counter alignment."""

from repro.interconnect import CoordinationChannel, ReliableChannel
from repro.metrics import (
    CHANNEL_TRACE_KINDS,
    ChannelReliabilityCollector,
    WindowedCounter,
)
from repro.sim import RandomStreams, Simulator, Tracer, ms, seconds, us


class TestWindowedCounterAlignment:
    def test_straddling_bucket_counted_in_full(self):
        """Regression: a bucket straddling an unaligned ``start`` used to be
        included or excluded whole based on its *start* time, misattributing
        its events to a span that does not contain them all."""
        sim = Simulator()
        counter = WindowedCounter(sim, window=seconds(1))

        def emitter(sim):
            yield sim.timeout(ms(100))
            counter.record(10)  # lands in bucket [0 s, 1 s)

        sim.spawn(emitter(sim))
        sim.run()
        # Unaligned query starting after the event: the old code summed the
        # whole bucket (its start 0 >= start failed -> excluded... or for
        # start=50ms included all 10 over a 0.95 s span = 10.5/s). Clamped
        # to the full [0 s, 1 s) window, the rate is exactly 10/s.
        assert counter.rate_per_second(ms(50), seconds(1)) == 10.0
        # A query clipped inside one window still charges the whole window.
        assert counter.rate_per_second(ms(50), ms(950)) == 10.0

    def test_unaligned_end_extends_to_bucket_boundary(self):
        sim = Simulator()
        counter = WindowedCounter(sim, window=seconds(1))

        def emitter(sim):
            yield sim.timeout(seconds(1) + ms(500))
            counter.record(6)  # bucket [1 s, 2 s)

        sim.spawn(emitter(sim))
        sim.run()
        # end=1.6 s straddles the event's bucket: span clamps to [1 s, 2 s).
        assert counter.rate_per_second(seconds(1), seconds(1) + ms(600)) == 6.0
        # A range strictly before the bucket sees nothing.
        assert counter.rate_per_second(0, seconds(1)) == 0.0

    def test_aligned_queries_unchanged(self):
        sim = Simulator()
        counter = WindowedCounter(sim, window=seconds(1))

        def emitter(sim):
            for _ in range(4):
                counter.record(5)
                yield sim.timeout(seconds(1))

        sim.spawn(emitter(sim))
        sim.run()
        assert counter.rate_per_second() == 5.0
        assert counter.rate_per_second(seconds(1), seconds(3)) == 5.0


class TestChannelReliabilityCollector:
    def test_collects_reliability_kinds(self):
        sim = Simulator()
        tracer = Tracer(sim)
        collector = ChannelReliabilityCollector(sim, tracer)
        raw = CoordinationChannel(
            sim,
            latency=us(100),
            loss_probability=0.4,
            rng=RandomStreams(13).stream("loss"),
            tracer=tracer,
        )
        reliable = ReliableChannel(raw)
        sender = reliable.endpoint("ixp")
        reliable.endpoint("x86").set_receiver(lambda m: None)
        for i in range(40):
            sender.send(i)
        sim.run()
        totals = collector.totals()
        assert set(totals) == set(CHANNEL_TRACE_KINDS)
        assert totals["frame-sent"] == sender.frames_sent == 40
        assert totals["frame-retransmit"] == sender.retransmits > 0
        assert totals["frame-acked"] == sender.frames_acked
        assert totals["msg-dropped"] == raw.messages_lost > 0
        assert collector.total("frame-sent") == 40
        assert sum(p.value for p in collector.series("frame-sent")) == 40
        assert collector.rate_per_second("frame-sent") > 0

    def test_silent_with_tracing_disabled(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=False)
        collector = ChannelReliabilityCollector(sim, tracer)
        raw = CoordinationChannel(sim, latency=0, tracer=tracer)
        reliable = ReliableChannel(raw)
        reliable.endpoint("x86").set_receiver(lambda m: None)
        reliable.endpoint("ixp").send("m")
        sim.run()
        assert all(v == 0 for v in collector.totals().values())
