"""Tests for statistics, collectors, response recording and efficiency."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    CpuUtilizationSampler,
    OnlineStats,
    ResponseTimeRecorder,
    WindowedCounter,
    percentile,
    platform_efficiency,
    summarize,
)
from repro.sim import Simulator, ms, seconds
from repro.x86 import CreditScheduler, VirtualMachine


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.p50 == 3
        assert summary.spread == 4

    def test_single_value(self):
        summary = summarize([7.5])
        assert summary.mean == 7.5
        assert summary.std == 0
        assert summary.p99 == 7.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_interpolation(self):
        assert percentile([0, 10], 50) == 5
        assert percentile([0, 10, 20], 25) == 5

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_property_summary_invariants(self, values):
        summary = summarize(values)
        ulp = 1e-6 * max(1.0, abs(summary.maximum), abs(summary.minimum))
        assert summary.minimum - ulp <= summary.mean <= summary.maximum + ulp
        assert summary.minimum <= summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        assert summary.std >= 0


class TestOnlineStats:
    def test_matches_batch_statistics(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        online = OnlineStats()
        for value in values:
            online.add(value)
        batch = summarize(values)
        assert math.isclose(online.mean, batch.mean)
        assert math.isclose(online.std, batch.std)
        assert online.minimum == batch.minimum
        assert online.maximum == batch.maximum

    def test_empty_stats(self):
        online = OnlineStats()
        assert online.mean == 0.0
        assert online.variance == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=2, max_size=200))
    def test_property_welford_agrees_with_batch(self, values):
        online = OnlineStats()
        for value in values:
            online.add(value)
        batch = summarize(values)
        assert math.isclose(online.mean, batch.mean, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(online.std, batch.std, rel_tol=1e-6, abs_tol=1e-3)


class TestResponseRecorder:
    def test_per_key_summaries_in_ms(self):
        sim = Simulator()
        recorder = ResponseTimeRecorder(sim)
        recorder.record("Browse", ms(100))
        recorder.record("Browse", ms(300))
        recorder.record("PutBid", ms(50))
        summary = recorder.summary_ms("Browse")
        assert summary.mean == 200
        assert recorder.count("Browse") == 2
        assert recorder.count() == 3

    def test_overall_summary(self):
        sim = Simulator()
        recorder = ResponseTimeRecorder(sim)
        recorder.record("a", ms(10))
        recorder.record("b", ms(30))
        assert recorder.overall_summary_ms().mean == 20

    def test_unknown_key(self):
        recorder = ResponseTimeRecorder(Simulator())
        with pytest.raises(KeyError):
            recorder.summary_ms("ghost")

    def test_negative_latency_rejected(self):
        recorder = ResponseTimeRecorder(Simulator())
        with pytest.raises(ValueError):
            recorder.record("a", -1)

    def test_table_covers_all_keys(self):
        recorder = ResponseTimeRecorder(Simulator())
        recorder.record("a", ms(1))
        recorder.record("b", ms(2))
        assert set(recorder.table_ms()) == {"a", "b"}


class TestWindowedCounter:
    def test_rate_per_second(self):
        sim = Simulator()
        counter = WindowedCounter(sim, window=seconds(1))

        def emitter(sim):
            for _ in range(20):
                counter.record()
                yield sim.timeout(ms(500))

        sim.spawn(emitter(sim))
        sim.run()
        assert counter.total == 20
        assert 1.8 < counter.rate_per_second() < 2.2

    def test_rate_over_subrange(self):
        sim = Simulator()
        counter = WindowedCounter(sim, window=seconds(1))

        def emitter(sim):
            yield sim.timeout(seconds(5))
            for _ in range(10):
                counter.record()
                yield sim.timeout(ms(100))

        sim.spawn(emitter(sim))
        sim.run()
        assert counter.rate_per_second(seconds(5), seconds(6)) == 10.0
        assert counter.rate_per_second(seconds(0), seconds(5)) == 0.0

    def test_empty_counter(self):
        counter = WindowedCounter(Simulator())
        assert counter.rate_per_second() == 0.0
        assert counter.series() == []


class TestCpuSampler:
    def test_utilization_tracks_load(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        sampler = CpuUtilizationSampler(sim, [vm], window=seconds(1))

        def half_load(sim):
            while True:
                yield vm.execute(ms(5))
                yield sim.timeout(ms(5))

        sim.spawn(half_load(sim))
        sim.run(until=seconds(5))
        mean = sampler.mean_total("vm", skip_first=1)
        assert 40 < mean < 60

    def test_user_sys_split_in_samples(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        sampler = CpuUtilizationSampler(sim, [vm], window=seconds(1))

        def sys_only(sim):
            while True:
                yield vm.execute(ms(2), kind="sys")
                yield sim.timeout(ms(8))

        sim.spawn(sys_only(sim))
        sim.run(until=seconds(3))
        sample = sampler.series("vm")[-1]
        assert sample.user == 0
        assert sample.sys > 0


class TestEfficiency:
    def test_matches_paper_arithmetic(self):
        # Table 2: 68 req/s at ~132.6% total utilisation -> 51.28
        assert math.isclose(platform_efficiency(68, 132.6), 51.28, rel_tol=0.01)

    def test_rejects_zero_utilization(self):
        with pytest.raises(ValueError):
            platform_efficiency(10, 0)
