"""HealthCollector: the trace-side view of the fault domain."""

from repro.faults import ChannelBlackout, FaultConfig, FaultPlan
from repro.metrics import HealthCollector
from repro.sim import ms, seconds
from repro.testbed import Testbed, TestbedConfig

BLACKOUT = ChannelBlackout(start=ms(500), duration=ms(420))


def traced_chaos_testbed(seed=3):
    testbed = Testbed(TestbedConfig(
        seed=seed,
        tracing=True,
        faults=FaultConfig(plan=FaultPlan((BLACKOUT,))),
    ))
    collector = HealthCollector(testbed.sim, testbed.tracer)
    return testbed, collector


class TestHealthCollector:
    def test_state_timeline_matches_detector_transitions(self):
        testbed, collector = traced_chaos_testbed()
        testbed.run(seconds(2))
        for side in ("ixp", "x86"):
            detector_view = [
                (time, state)
                for time, state, _reason in testbed.detectors[side].transitions
                if state != "up" or time > 0  # the init entry is not traced
            ]
            assert collector.transitions(side) == detector_view

    def test_latency_helpers(self):
        testbed, collector = traced_chaos_testbed()
        testbed.run(seconds(2))
        for side in ("ixp", "x86"):
            detection = collector.detection_latency(side, BLACKOUT.start)
            recovery = collector.recovery_latency(side, BLACKOUT.end)
            assert detection is not None and 0 < detection <= ms(250)
            assert recovery is not None and 0 < recovery <= ms(250)
            assert collector.downtime(side) > 0
        assert collector.detection_latency("ixp", seconds(10)) is None

    def test_counts_and_events(self):
        testbed, collector = traced_chaos_testbed()
        testbed.run(seconds(2))
        totals = collector.totals()
        assert totals["heartbeat-sent"] > 0
        assert totals["heartbeat-received"] > 0
        assert totals["peer-down"] == 2  # one per side
        assert totals["epoch-bump"] == 2
        assert totals["fault-injected"] == 1
        assert totals["fault-cleared"] == 1
        # Heartbeats are counted but never logged as events.
        assert all(kind not in ("heartbeat-sent", "heartbeat-received")
                   for _time, kind, _payload in collector.events)
        first = collector.first_event("fault-injected")
        assert first is not None and first[0] == BLACKOUT.start

    def test_downtime_clipped_to_horizon(self):
        testbed, collector = traced_chaos_testbed()
        testbed.run(ms(800))  # still inside the blackout, peers DOWN
        for side in ("ixp", "x86"):
            down = collector.downtime(side)
            assert 0 < down <= ms(800)
