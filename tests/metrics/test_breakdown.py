"""Tests for the per-stage latency breakdown tool."""

import pytest

from repro.metrics import LatencyBreakdown
from repro.net import Packet


def stamped_packet(times):
    packet = Packet(src="a", dst="b", size=100)
    for stage, time in times.items():
        packet.stamp(stage, time)
    return packet


class TestLatencyBreakdown:
    def test_needs_two_stages(self):
        with pytest.raises(ValueError):
            LatencyBreakdown(stages=("only",))

    def test_single_packet_hops(self):
        breakdown = LatencyBreakdown(stages=("a", "b", "c"))
        assert breakdown.observe(stamped_packet({"a": 0, "b": 100, "c": 350}))
        hops = breakdown.hops()
        assert hops[0].stats.mean == 100
        assert hops[1].stats.mean == 250
        assert breakdown.total_mean() == 350

    def test_incomplete_packet_skipped(self):
        breakdown = LatencyBreakdown(stages=("a", "b"))
        assert not breakdown.observe(stamped_packet({"a": 0}))
        assert breakdown.packets_skipped == 1
        assert breakdown.packets_observed == 0

    def test_dominant_hop(self):
        breakdown = LatencyBreakdown(stages=("a", "b", "c"))
        breakdown.observe(stamped_packet({"a": 0, "b": 10, "c": 500}))
        assert breakdown.dominant_hop().label == "b -> c"

    def test_dominant_hop_requires_observations(self):
        with pytest.raises(ValueError):
            LatencyBreakdown(stages=("a", "b")).dominant_hop()

    def test_report_mentions_every_hop(self):
        breakdown = LatencyBreakdown(stages=("a", "b", "c"))
        breakdown.observe(stamped_packet({"a": 0, "b": 1000, "c": 3000}))
        report = breakdown.report()
        assert "a -> b" in report and "b -> c" in report and "total" in report

    def test_aggregates_many_packets(self):
        breakdown = LatencyBreakdown(stages=("a", "b"))
        for delay in (100, 200, 300):
            breakdown.observe(stamped_packet({"a": 0, "b": delay}))
        assert breakdown.packets_observed == 3
        assert breakdown.hops()[0].stats.mean == 200
        assert breakdown.hops()[0].stats.maximum == 300

    def test_on_real_testbed_path(self):
        """Stamps collected by the real pipeline feed the breakdown."""
        from repro import Testbed, TestbedConfig
        from repro.sim import seconds

        testbed = Testbed(TestbedConfig())
        testbed.create_guest_vm("server")
        client = testbed.add_client_host("client")
        packets = [Packet(src="client", dst="server", size=300) for _ in range(5)]
        for packet in packets:
            client.nic.send(packet)
        testbed.run(seconds(1))
        breakdown = LatencyBreakdown()
        for packet in packets:
            assert breakdown.observe(packet)
        assert breakdown.total_mean() > 0
        assert breakdown.packets_observed == 5
