"""Tests for the windowed QoS source and the energy/QoS collector."""

from types import SimpleNamespace

import pytest

from repro.metrics import (
    ENERGY_QOS_KNOB_KINDS,
    EnergyQosCollector,
    WindowedQosSource,
)
from repro.sim import Simulator, ms, seconds


class TestWindowedQosSource:
    def test_empty_window_reads_none(self):
        source = WindowedQosSource(Simulator())
        assert source.p95_ms("vm") is None
        assert source.count("vm") == 0

    def test_rejects_negative_latency_and_bad_window(self):
        source = WindowedQosSource(Simulator())
        with pytest.raises(ValueError):
            source.record("vm", -1)
        with pytest.raises(ValueError):
            WindowedQosSource(Simulator(), window=0)

    def test_p95_of_current_window(self):
        sim = Simulator()
        source = WindowedQosSource(sim, window=seconds(4))
        for latency in range(1, 101):
            source.record("vm", ms(latency))
        assert source.count("vm") == 100
        assert source.p95_ms("vm") == pytest.approx(95.0, rel=0.02)

    def test_window_slides_and_prunes_expired_samples(self):
        sim = Simulator()
        source = WindowedQosSource(sim, window=seconds(2))

        def driver():
            source.record("vm", ms(10))
            yield sim.timeout(seconds(1))
            source.record("vm", ms(30))
            yield sim.timeout(seconds(1) + ms(1))  # first sample now stale

        sim.spawn(driver(), name="driver")
        sim.run(until=seconds(3))
        assert source.count("vm") == 1
        assert source.p95_ms("vm") == pytest.approx(30.0)

    def test_keys_are_independent(self):
        sim = Simulator()
        source = WindowedQosSource(sim)
        source.record("a", ms(5))
        assert source.p95_ms("b") is None
        assert source.p95_ms("a") == pytest.approx(5.0)


class TestEnergyQosCollector:
    def _run(self, target_ms=20.0, measure_from=seconds(2), until=seconds(5)):
        sim = Simulator()
        source = WindowedQosSource(sim, window=seconds(4))
        collector = EnergyQosCollector(
            sim, {"vm": target_ms}, source,
            period=seconds(1), measure_from=measure_from,
        )

        def driver():
            while True:
                source.record("vm", ms(30))
                yield sim.timeout(ms(500))

        sim.spawn(driver(), name="driver")
        sim.run(until=until + 1)
        return collector

    def test_warmup_checks_are_not_counted(self):
        collector = self._run(target_ms=20.0)
        # Checks at t=2..5 only (the t=1 sample falls in the warm-up).
        assert len(collector.checks) == 4
        assert collector.violations == 4
        assert collector.violations_by_vm == {"vm": 4}
        assert all(check.violated for check in collector.checks)

    def test_met_target_counts_zero_violations(self):
        collector = self._run(target_ms=50.0)
        assert len(collector.checks) == 4
        assert collector.violations == 0

    def test_collector_validates_period(self):
        with pytest.raises(ValueError):
            EnergyQosCollector(Simulator(), {}, WindowedQosSource(Simulator()), period=0)

    def test_actuation_counts_filter_zero_delta_and_foreign_kinds(self):
        sim = Simulator()
        collector = EnergyQosCollector(
            sim, {"vm": 10.0}, WindowedQosSource(sim)
        )
        audit = [
            SimpleNamespace(op="tune", requested_delta=1, kind="dvfs-level"),
            SimpleNamespace(op="tune", requested_delta=-1, kind="llc-ways"),
            SimpleNamespace(op="tune", requested_delta=0, kind="llc-ways"),
            SimpleNamespace(op="trigger", requested_delta=None, kind="bw-share"),
            SimpleNamespace(op="tune", requested_delta=2, kind="credit-weight"),
        ]
        counts = collector.actuation_counts(SimpleNamespace(audit=audit))
        assert set(counts) == set(ENERGY_QOS_KNOB_KINDS)
        assert counts["dvfs-level"] == 1
        assert counts["llc-ways"] == 1  # the zero-delta no-op is excluded
        assert counts["bw-share"] == 0  # triggers are not tunes

    def test_summary_shapes(self):
        collector = self._run()
        summary = collector.summary()
        assert summary["checks"] == 4
        assert "energy_j" not in summary
        meter = SimpleNamespace(energy_j=lambda: 12.5)
        knobs = SimpleNamespace(audit=[])
        summary = collector.summary(meter=meter, knobs=knobs)
        assert summary["energy_j"] == 12.5
        assert summary["actuations"]["dvfs-level"] == 0
