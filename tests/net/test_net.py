"""Tests for the network substrate: packets, links, NICs, the bridge."""

import pytest

from repro.net import MTU_BYTES, DuplexLink, Link, Packet, VirtualNIC, XenBridge, fragment
from repro.sim import Simulator, ms, us
from repro.x86 import CreditScheduler, VirtualMachine


class TestPacket:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", size=0)

    def test_unique_ids(self):
        a = Packet(src="a", dst="b", size=100)
        b = Packet(src="a", dst="b", size=100)
        assert a.pid != b.pid

    def test_stamps_and_latency(self):
        packet = Packet(src="a", dst="b", size=100)
        packet.stamp("in", 100)
        packet.stamp("out", 350)
        assert packet.latency("in", "out") == 250


class TestFragment:
    def test_small_message_single_packet(self):
        packets = fragment("a", "b", 800, "msg", {"k": 1})
        assert len(packets) == 1
        assert packets[0].payload == {"k": 1}

    def test_large_message_split_at_mtu(self):
        packets = fragment("a", "b", MTU_BYTES * 2 + 500, "msg", {"k": 1})
        assert [p.size for p in packets] == [MTU_BYTES, MTU_BYTES, 500]

    def test_payload_rides_on_last_fragment(self):
        packets = fragment("a", "b", MTU_BYTES * 2, "msg", {"k": 1})
        assert "fragment_of" in packets[0].payload
        assert packets[-1].payload == {"k": 1}

    def test_total_size_preserved(self):
        packets = fragment("a", "b", 4321, "msg", {})
        assert sum(p.size for p in packets) == 4321

    def test_rejects_empty_message(self):
        with pytest.raises(ValueError):
            fragment("a", "b", 0, "msg", {})


class TestLink:
    def test_delivery_after_serialization_and_latency(self):
        sim = Simulator()
        link = Link(sim, "wire", bandwidth_bytes_per_ns=0.125, latency=us(100))
        received = []
        link.connect(lambda p: received.append((sim.now, p)))
        link.send(Packet(src="a", dst="b", size=1250))
        sim.run()
        # serialization 1250B at 0.125 B/ns = 10us; + 100us propagation
        assert received[0][0] == us(110)

    def test_fifo_serialization(self):
        sim = Simulator()
        link = Link(sim, "wire", bandwidth_bytes_per_ns=0.125, latency=0)
        received = []
        link.connect(lambda p: received.append(p.pid))
        first = Packet(src="a", dst="b", size=1250)
        second = Packet(src="a", dst="b", size=1250)
        link.send(first)
        link.send(second)
        sim.run()
        assert received == [first.pid, second.pid]

    def test_queue_overflow_drops(self):
        sim = Simulator()
        link = Link(sim, "wire", queue_packets=2, latency=0)
        link.connect(lambda p: None)
        outcomes = [link.send(Packet(src="a", dst="b", size=100)) for _ in range(5)]
        # The pump consumes one immediately, so 3 fit; the rest drop.
        assert outcomes.count(False) == link.dropped > 0

    def test_no_sink_raises(self):
        sim = Simulator()
        link = Link(sim, "wire", latency=0)
        link.send(Packet(src="a", dst="b", size=10))
        with pytest.raises(RuntimeError):
            sim.run()

    def test_duplex_has_two_directions(self):
        sim = Simulator()
        duplex = DuplexLink(sim, "pair")
        assert duplex.forward is not duplex.backward

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "x", bandwidth_bytes_per_ns=0)
        with pytest.raises(ValueError):
            Link(sim, "x", latency=-1)


class TestVirtualNIC:
    def test_deliver_and_recv(self):
        sim = Simulator()
        nic = VirtualNIC(sim, "nic")
        packet = Packet(src="a", dst="b", size=10)
        assert nic.deliver(packet)
        get = nic.recv()
        sim.run()
        assert get.value is packet
        assert nic.rx_count == 1

    def test_rx_overflow_drops(self):
        sim = Simulator()
        nic = VirtualNIC(sim, "nic", rx_capacity=1)
        nic.deliver(Packet(src="a", dst="b", size=10))
        assert nic.deliver(Packet(src="a", dst="b", size=10)) is False
        assert nic.rx_dropped == 1

    def test_send_requires_egress(self):
        sim = Simulator()
        nic = VirtualNIC(sim, "nic")
        with pytest.raises(RuntimeError):
            nic.send(Packet(src="a", dst="b", size=10))

    def test_send_through_egress(self):
        sim = Simulator()
        nic = VirtualNIC(sim, "nic")
        sent = []
        nic.attach_egress(sent.append)
        nic.send(Packet(src="a", dst="b", size=10))
        assert len(sent) == 1
        assert nic.tx_count == 1


class TestXenBridge:
    def _make(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        dom0 = VirtualMachine(sim, "dom0")
        scheduler.add_domain(dom0)
        bridge = XenBridge(sim, dom0)
        return sim, dom0, bridge

    def test_relay_to_known_port(self):
        sim, dom0, bridge = self._make()
        nic = VirtualNIC(sim, "guest")
        bridge.add_port("guest", nic)
        bridge.submit(Packet(src="x", dst="guest", size=100))
        sim.run(until=ms(10))
        assert nic.rx_count == 1
        assert bridge.relayed == 1

    def test_relay_costs_dom0_cpu(self):
        sim, dom0, bridge = self._make()
        nic = VirtualNIC(sim, "guest")
        bridge.add_port("guest", nic)
        for _ in range(10):
            bridge.submit(Packet(src="x", dst="guest", size=100))
        sim.run(until=ms(50))
        assert dom0.cpu_time() >= 10 * bridge.relay_cost

    def test_unknown_destination_goes_to_uplink(self):
        sim, dom0, bridge = self._make()
        uplinked = []
        bridge.set_uplink(uplinked.append)
        bridge.submit(Packet(src="x", dst="elsewhere", size=100))
        sim.run(until=ms(10))
        assert len(uplinked) == 1
        assert bridge.to_uplink == 1

    def test_unknown_destination_without_uplink_raises(self):
        sim, dom0, bridge = self._make()
        bridge.submit(Packet(src="x", dst="nowhere", size=100))
        with pytest.raises(RuntimeError):
            sim.run(until=ms(10))

    def test_duplicate_port_rejected(self):
        sim, dom0, bridge = self._make()
        bridge.add_port("guest", VirtualNIC(sim, "a"))
        with pytest.raises(ValueError):
            bridge.add_port("guest", VirtualNIC(sim, "b"))

    def test_vm_nic_egress_wired_to_bridge(self):
        sim, dom0, bridge = self._make()
        sender = VirtualNIC(sim, "sender")
        receiver = VirtualNIC(sim, "receiver")
        bridge.add_port("sender", sender)
        bridge.add_port("receiver", receiver)
        sender.send(Packet(src="sender", dst="receiver", size=64))
        sim.run(until=ms(10))
        assert receiver.rx_count == 1
