"""Tests for the typed actuation layer: knobs, leases, audit, snapshots.

Covers the ISSUE-3 satellites: the overlapping-trigger restore regression,
trigger-to-non-boostable-entity resilience, bound clamping at min/max,
zero-delta no-ops, and audit determinism across the simulation kernel's
fast path and classic path.
"""

import pytest

from repro.coordination import CoordinationAgent
from repro.gpu import GPUIsland
from repro.interconnect import CoordinationChannel, MessageRing, PCIeBus
from repro.ixp import IXPIsland, IXPParams
from repro.metrics import ActuationCollector
from repro.platform import (
    EntityId,
    GlobalController,
    Knob,
    KnobRegistry,
    TriggerSpec,
    UnknownKnobError,
    UnsupportedTriggerError,
)
from repro.sim import Simulator, TraceLog, Tracer, ms, us
from repro.x86 import X86Island, X86Params
from repro.x86.memory import BalloonDriver
from repro.x86.xenctrl import MAX_WEIGHT, MIN_WEIGHT


def build_ixp(sim, **param_overrides):
    island = IXPIsland(sim, IXPParams(**param_overrides))
    island.attach_host(PCIeBus(sim), MessageRing(sim, "rx"), MessageRing(sim, "tx"))
    return island


class _Box:
    """A bare settable value for registry-level unit tests."""

    def __init__(self, value):
        self.value = value

    def set(self, value):
        self.value = value
        return value


def make_registry(sim, minimum=1, maximum=100, step=1, trigger=None):
    registry = KnobRegistry(sim, "test")
    box = _Box(10)
    entity = EntityId("test", "thing")
    registry.register(
        entity,
        Knob(
            kind="unit-test", unit="u", read=lambda: box.value, apply=box.set,
            minimum=minimum, maximum=maximum, step=step, trigger=trigger,
        ),
    )
    return registry, entity, box


class TestKnobRegistry:
    def test_tune_moves_value_by_scaled_delta(self):
        sim = Simulator()
        registry, entity, box = make_registry(sim, step=5)
        record = registry.tune(entity, +3)
        assert box.value == 25
        assert record.outcome == "applied"
        assert record.previous_value == 10
        assert record.applied_value == 25

    def test_tune_clamps_at_bounds_and_audits_it(self):
        sim = Simulator()
        registry, entity, box = make_registry(sim, minimum=1, maximum=100)
        record = registry.tune(entity, +1000)
        assert box.value == 100
        assert record.outcome == "clamped"
        assert record.requested_value == 1010
        assert record.applied_value == 100
        record = registry.tune(entity, -1000)
        assert box.value == 1
        assert record.outcome == "clamped"
        assert registry.tunes_clamped == 2

    def test_zero_delta_is_an_audited_noop(self):
        sim = Simulator()
        applications = []
        registry = KnobRegistry(sim, "test")
        entity = EntityId("test", "thing")
        registry.register(
            entity,
            Knob(kind="k", unit="u", read=lambda: 7,
                 apply=lambda v: applications.append(v) or v),
        )
        record = registry.tune(entity, 0)
        assert applications == []  # apply() never invoked: no side effects
        assert record.outcome == "applied"
        assert record.reason == "zero-delta"
        assert record.applied_value == 7

    def test_unknown_knob_raises_keyerror_subclass(self):
        registry = KnobRegistry(Simulator(), "test")
        with pytest.raises(UnknownKnobError):
            registry.tune(EntityId("test", "ghost"), +1)
        with pytest.raises(KeyError):
            registry.get(EntityId("test", "ghost"))

    def test_trigger_without_capability_raises_and_audits(self):
        sim = Simulator()
        registry, entity, box = make_registry(sim, trigger=None)
        with pytest.raises(UnsupportedTriggerError):
            registry.trigger(entity)
        with pytest.raises(TypeError):  # continuity with the old sniffing
            registry.trigger(entity)
        assert registry.unsupported_triggers == 2
        assert registry.audit[-1].outcome == "rejected"

    def test_pulse_trigger_fires_and_audits(self):
        sim = Simulator()
        fired = []
        registry, entity, box = make_registry(
            sim, trigger=TriggerSpec(pulse=lambda: fired.append(True))
        )
        record = registry.trigger(entity)
        assert fired == [True]
        assert record.outcome == "applied"
        assert registry.triggers_applied == 1

    def test_lease_boost_and_deterministic_expiry(self):
        sim = Simulator()
        registry, entity, box = make_registry(
            sim, maximum=None,
            trigger=TriggerSpec(boost=lambda w: w * 2 + 1, hold=ms(1)),
        )
        registry.trigger(entity)
        assert box.value == 21
        assert registry.active_leases(entity) == 1
        sim.run(until=ms(2))
        assert box.value == 10
        assert registry.active_leases(entity) == 0

    def test_overlapping_leases_stack_and_restore_original(self):
        """The regression the lease layer exists for: a second trigger
        arriving before the first restore must NOT capture the boosted
        value as original (which permanently inflated the weight)."""
        sim = Simulator()
        registry, entity, box = make_registry(
            sim, maximum=None,
            trigger=TriggerSpec(boost=lambda w: w * 2 + 1, hold=ms(1)),
        )
        registry.trigger(entity)           # t=0: 10 -> 21, expires t=1ms
        sim.run(until=us(500))
        registry.trigger(entity)           # t=0.5ms: 21 -> 43, expires t=1.5ms
        assert box.value == 43
        assert registry.active_leases(entity) == 2
        sim.run(until=ms(1.2))             # first lease expired: one level left
        assert box.value == 21
        sim.run(until=ms(2))               # all leases expired
        assert box.value == 10             # exactly the pre-trigger weight
        assert registry.active_leases(entity) == 0

    def test_tune_during_lease_survives_expiry(self):
        """ISSUE-6 satellite: a Tune landing mid-lease used to be silently
        undone at expiry (the restore wrote the stale pre-lease capture).
        The registry now rebases the lease's original by the same delta."""
        sim = Simulator()
        registry, entity, box = make_registry(
            sim, maximum=None,
            trigger=TriggerSpec(boost=lambda w: w * 2, hold=ms(1)),
        )
        registry.trigger(entity)           # t=0: 10 -> 20, original=10
        registry.tune(entity, +5)          # mid-lease: 20 -> 25, rebase to 15
        assert box.value == 25
        sim.run(until=ms(2))
        assert box.value == 15             # the Tune survived the restore
        assert registry.active_leases(entity) == 0

    def test_tune_during_stacked_leases_rebases_every_rederivation(self):
        sim = Simulator()
        registry, entity, box = make_registry(
            sim, maximum=None,
            trigger=TriggerSpec(boost=lambda w: w * 2, hold=ms(1)),
        )
        registry.trigger(entity)           # t=0: 10 -> 20, expires t=1ms
        sim.run(until=us(500))
        registry.trigger(entity)           # t=0.5ms: 20 -> 40, expires t=1.5ms
        registry.tune(entity, +5)          # 40 -> 45, original 10 -> 15
        assert box.value == 45
        sim.run(until=ms(1.2))
        # One level left: re-derived from the REBASED original (2*15),
        # not the stale pre-lease capture (2*10).
        assert box.value == 30
        sim.run(until=ms(2))
        assert box.value == 15
        assert registry.active_leases(entity) == 0

    def test_mid_lease_tune_rebase_clamps_independently(self):
        sim = Simulator()
        registry, entity, box = make_registry(
            sim, minimum=1, maximum=30,
            trigger=TriggerSpec(boost=lambda w: w + 15, hold=ms(1)),
        )
        registry.trigger(entity)           # 10 -> 25, original=10
        registry.tune(entity, +20)         # boosted value clamps at 30...
        assert box.value == 30
        sim.run(until=ms(2))
        assert box.value == 30             # ...and the original at 10+20=30

    def test_snapshot_describes_capabilities(self):
        sim = Simulator()
        registry, entity, box = make_registry(
            sim, trigger=TriggerSpec(pulse=lambda: None)
        )
        snap = registry.snapshot()
        description = snap["test/thing"]
        assert description["kind"] == "unit-test"
        assert description["unit"] == "u"
        assert description["value"] == 10
        assert description["minimum"] == 1
        assert description["maximum"] == 100
        assert description["supports_trigger"] is True
        assert description["active_leases"] == 0

    def test_duplicate_knob_rejected(self):
        sim = Simulator()
        registry, entity, box = make_registry(sim)
        with pytest.raises(ValueError):
            registry.register(entity, Knob(kind="dup", unit="u",
                                           read=lambda: 0, apply=lambda v: v))


class TestIXPTriggerLease:
    def test_overlapping_ixp_triggers_no_longer_inflate_weight(self):
        """Reproduces the old IXP bug: trigger again before the first
        restore and check the weight settles back to the true original."""
        sim = Simulator()
        island = build_ixp(sim)
        queue = island.register_vm_flow("vm-a", service_weight=2)
        entity = EntityId("ixp", "vm-a")
        hold = island.params.monitor_period * 4

        island.apply_trigger(entity)
        assert queue.service_weight == 5  # 2*2+1
        sim.run(until=hold // 2)
        island.apply_trigger(entity)      # overlaps the first lease
        assert queue.service_weight == 11  # stacked: 5*2+1
        sim.run(until=hold * 3)
        # Old translation restored to 5 (the boosted capture); the lease
        # layer peels back to the registration-time weight.
        assert queue.service_weight == 2
        assert island.knobs.active_leases(entity) == 0

    def test_single_trigger_behaviour_unchanged(self):
        sim = Simulator()
        island = build_ixp(sim)
        queue = island.register_vm_flow("vm-a")
        original = queue.service_weight
        island.apply_trigger(EntityId("ixp", "vm-a"))
        assert queue.service_weight == original * 2 + 1
        sim.run(until=island.params.monitor_period * 5)
        assert queue.service_weight == original


class TestUnsupportedTriggerResilience:
    def _pair(self):
        sim = Simulator()
        x86 = X86Island(sim, X86Params(num_cpus=1))
        ixp = IXPIsland(sim)
        channel = CoordinationChannel(sim, latency=us(100), a_name="ixp", b_name="x86")
        ixp_agent = CoordinationAgent(sim, ixp, channel.endpoint("ixp"))
        x86_agent = CoordinationAgent(sim, x86, channel.endpoint("x86"),
                                      handler_vm=x86.dom0)
        return sim, x86, ixp, ixp_agent, x86_agent

    def test_trigger_to_balloon_target_does_not_crash(self):
        sim, x86, ixp, ixp_agent, x86_agent = self._pair()
        vm = x86.create_vm("guest", memory_mb=256)
        x86.attach_balloon(BalloonDriver(sim, total_mb=1024))
        x86.balloon_manage(vm)
        ixp_agent.send_trigger(EntityId("x86", "mem:guest"), reason="mistake")
        ixp_agent.send_trigger(EntityId("x86", "guest"), reason="fine")
        sim.run(until=ms(5))  # would TypeError-crash before the registry
        assert x86_agent.unsupported_triggers == 1
        assert x86_agent.triggers_applied == 1
        assert x86.knobs.unsupported_triggers == 1

    def test_trigger_to_egress_queue_does_not_crash(self):
        sim = Simulator()
        ixp = build_ixp(sim)
        x86 = X86Island(sim, X86Params(num_cpus=1))
        ixp.enable_egress_qos()
        ixp.register_egress_flow("vm-a")
        channel = CoordinationChannel(sim, latency=us(100), a_name="x86", b_name="ixp")
        CoordinationAgent(sim, x86, channel.endpoint("x86"), handler_vm=x86.dom0)
        ixp_agent = CoordinationAgent(sim, ixp, channel.endpoint("ixp"))
        x86_side = channel.endpoint("x86")
        # x86 -> ixp: trigger the egress queue (tunable but not boostable).
        from repro.coordination.messages import TriggerMessage
        x86_side.send(TriggerMessage(entity=EntityId("ixp", "egress:vm-a"),
                                     sent_at=sim.now))
        sim.run(until=ms(5))
        assert ixp_agent.unsupported_triggers == 1

    def test_unsupported_trigger_emits_trace(self):
        sim = Simulator()
        tracer = Tracer(sim)
        log = TraceLog()
        tracer.subscribe(log, kinds=["unsupported-trigger"])
        x86 = X86Island(sim, X86Params(num_cpus=1), tracer=tracer)
        vm = x86.create_vm("guest", memory_mb=256)
        x86.attach_balloon(BalloonDriver(sim, total_mb=1024))
        x86.balloon_manage(vm)
        with pytest.raises(UnsupportedTriggerError):
            x86.apply_trigger(EntityId("x86", "mem:guest"))
        assert len(log.of_kind("unsupported-trigger")) == 1


class TestIslandKnobBounds:
    def test_credit_weight_clamps_at_min_and_max(self):
        sim = Simulator()
        island = X86Island(sim)
        vm = island.create_vm("guest")
        record = island.apply_tune(EntityId("x86", "guest"), +100_000)
        assert vm.weight == MAX_WEIGHT
        assert record.outcome == "clamped"
        record = island.apply_tune(EntityId("x86", "guest"), -100_000)
        assert vm.weight == MIN_WEIGHT
        assert record.outcome == "clamped"

    def test_service_weight_clamps_at_floor(self):
        sim = Simulator()
        island = build_ixp(sim)
        queue = island.register_vm_flow("vm-a", service_weight=3)
        record = island.apply_tune(EntityId("ixp", "vm-a"), -50)
        assert queue.service_weight == 1
        assert record.outcome == "clamped"

    def test_zero_delta_tune_skips_native_side_effects(self):
        sim = Simulator()
        island = X86Island(sim)
        island.create_vm("guest")
        island.apply_tune(EntityId("x86", "guest"), 0)
        # No hypercall was issued, so Dom0 received no system work.
        assert not island.dom0.guest.has_work

    def test_gpu_runlist_weight_floor(self):
        sim = Simulator()
        gpu = GPUIsland(sim)
        context = gpu.create_context("vm", weight=5)
        record = gpu.apply_tune(EntityId("gpu", "vm"), -100)
        assert context.weight == 1
        assert record.outcome == "clamped"

    def test_dvfs_knob_steps_the_ladder(self):
        from repro.x86.island import DVFS_LADDER

        sim = Simulator()
        island = X86Island(sim, X86Params(num_cpus=2))
        entity = EntityId("x86", "dvfs")
        assert island.knobs.describe(entity)["value"] == len(DVFS_LADDER) - 1
        island.apply_tune(entity, -1)
        assert island.scheduler.cpus[0].speed == DVFS_LADDER[-2]
        assert island.scheduler.cpus[1].speed == DVFS_LADDER[-2]
        record = island.apply_tune(entity, -10)
        assert island.scheduler.cpus[0].speed == DVFS_LADDER[0]
        assert record.outcome == "clamped"
        island.apply_trigger(entity)  # pulse: jump straight to nominal
        assert island.scheduler.cpus[0].speed == DVFS_LADDER[-1]


class TestControllerSnapshotAndAudit:
    def _platform(self, sim):
        controller = GlobalController(sim)
        x86 = X86Island(sim, X86Params(num_cpus=1))
        ixp = IXPIsland(sim)
        controller.register_island(x86)
        controller.register_island(ixp)
        return controller, x86, ixp

    def test_knob_snapshot_spans_islands(self):
        sim = Simulator()
        controller, x86, ixp = self._platform(sim)
        x86.create_vm("guest")
        ixp.register_vm_flow("guest")
        snap = controller.knob_snapshot()
        assert snap["x86/guest"]["kind"] == "credit-weight"
        assert snap["x86/guest"]["supports_trigger"] is True
        assert snap["ixp/guest"]["kind"] == "flow-service-weight"
        assert snap["x86/dvfs"]["kind"] == "dvfs-level"
        assert snap["x86/guest"]["minimum"] == MIN_WEIGHT
        assert snap["x86/guest"]["maximum"] == MAX_WEIGHT

    def test_platform_audit_merges_and_orders(self):
        sim = Simulator()
        controller, x86, ixp = self._platform(sim)
        x86.create_vm("guest")
        ixp.register_vm_flow("guest")
        x86.apply_tune(EntityId("x86", "guest"), +64)
        ixp.apply_tune(EntityId("ixp", "guest"), +2)
        x86.apply_tune(EntityId("x86", "guest"), -32)
        audit = controller.actuation_audit()
        tunes = [r for r in audit if r.op == "tune"]
        assert [r.entity for r in tunes] == ["ixp/guest", "x86/guest", "x86/guest"]
        assert all(a.time <= b.time for a, b in zip(audit, audit[1:]))
        stats = controller.actuation_stats()
        assert stats["x86"]["tunes_applied"] == 2
        assert stats["ixp"]["tunes_applied"] == 1

    def _run_audited_scenario(self, fastpath):
        sim = Simulator(fastpath=fastpath)
        island = build_ixp(sim)
        island.register_vm_flow("vm-a", service_weight=2)
        entity = EntityId("ixp", "vm-a")

        def actor():
            yield sim.timeout(ms(1))
            island.apply_tune(entity, +3)
            yield sim.timeout(ms(1))
            island.apply_trigger(entity)
            yield sim.timeout(us(200))
            island.apply_trigger(entity)  # overlapping lease
            yield sim.timeout(ms(5))
            island.apply_tune(entity, -50)

        sim.spawn(actor(), name="actor")
        sim.run(until=ms(20))
        return [r.as_dict() for r in island.knobs.audit]

    def test_audit_log_deterministic_across_kernel_fastpath(self):
        """The audit trail (times, seqs, values) must be bit-equal whether
        the simulation kernel runs its fast path or the classic path."""
        fast = self._run_audited_scenario(fastpath=True)
        classic = self._run_audited_scenario(fastpath=False)
        assert fast == classic
        ops = [r["op"] for r in fast]
        assert ops.count("trigger") == 2
        assert ops.count("trigger-release") == 2


class TestActuationCollector:
    def test_collector_counts_and_attributes(self):
        sim = Simulator()
        tracer = Tracer(sim)
        collector = ActuationCollector(sim, tracer)
        island = X86Island(sim, X86Params(num_cpus=1), tracer=tracer)
        island.create_vm("guest")
        island.apply_tune(EntityId("x86", "guest"), +64)
        island.apply_tune(EntityId("x86", "guest"), +100_000)
        island.apply_trigger(EntityId("x86", "guest"))
        assert collector.total("tune-applied") == 2
        assert collector.total("tune-clamped") == 1
        assert collector.total("trigger-applied") == 1
        attribution = collector.attribution()
        assert attribution["x86/guest"] == {"tunes": 2, "triggers": 1}

    def test_collector_sees_lease_releases(self):
        sim = Simulator()
        tracer = Tracer(sim)
        collector = ActuationCollector(sim, tracer)
        island = IXPIsland(sim, tracer=tracer)
        island.register_vm_flow("vm-a")
        island.apply_trigger(EntityId("ixp", "vm-a"))
        sim.run(until=island.params.monitor_period * 5)
        assert collector.total("trigger-applied") == 1
        assert collector.total("trigger-released") == 1
