"""Tests for entity identity, the island interface and the controller."""

import pytest

from repro.platform import EntityId, GlobalController, Island, UnknownEntityError, flow_id, vm_id
from repro.sim import Simulator


class RecordingIsland(Island):
    """Minimal island that records the coordination calls it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.tunes = []
        self.triggers = []

    def apply_tune(self, entity_id, delta):
        self.tunes.append((entity_id, delta))

    def apply_trigger(self, entity_id):
        self.triggers.append(entity_id)


class TestEntityId:
    def test_equality_and_hash(self):
        assert EntityId("x86", "vm1") == EntityId("x86", "vm1")
        assert EntityId("x86", "vm1") != EntityId("ixp", "vm1")
        assert len({EntityId("a", "b"), EntityId("a", "b")}) == 1

    def test_str(self):
        assert str(EntityId("x86", "web")) == "x86/web"

    def test_helpers(self):
        assert vm_id("web") == EntityId("x86", "web")
        assert flow_id("q1") == EntityId("ixp", "q1")


class TestIsland:
    def test_register_and_lookup_entity(self):
        sim = Simulator()
        island = RecordingIsland(sim, "test")
        entity = object()
        island.register_entity(EntityId("test", "thing"), entity)
        assert island.entity(EntityId("test", "thing")) is entity
        assert island.has_entity(EntityId("test", "thing"))
        assert not island.has_entity(EntityId("test", "other"))

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        island = RecordingIsland(sim, "test")
        island.register_entity(EntityId("test", "thing"), object())
        with pytest.raises(ValueError):
            island.register_entity(EntityId("test", "thing"), object())

    def test_entities_returns_copy(self):
        sim = Simulator()
        island = RecordingIsland(sim, "test")
        island.register_entity(EntityId("test", "a"), 1)
        snapshot = island.entities()
        snapshot.clear()
        assert island.has_entity(EntityId("test", "a"))


class TestGlobalController:
    def test_island_registration(self):
        sim = Simulator()
        controller = GlobalController(sim)
        island = RecordingIsland(sim, "alpha")
        controller.register_island(island)
        assert controller.island("alpha") is island
        assert island.controller is controller

    def test_duplicate_island_rejected(self):
        sim = Simulator()
        controller = GlobalController(sim)
        controller.register_island(RecordingIsland(sim, "alpha"))
        with pytest.raises(ValueError):
            controller.register_island(RecordingIsland(sim, "alpha"))

    def test_owner_resolution(self):
        sim = Simulator()
        controller = GlobalController(sim)
        island = RecordingIsland(sim, "alpha")
        controller.register_island(island)
        entity = EntityId("alpha", "vm")
        island.register_entity(entity, object())
        assert controller.owner_of(entity) is island

    def test_pre_registered_entities_learned_at_island_registration(self):
        sim = Simulator()
        island = RecordingIsland(sim, "alpha")
        entity = EntityId("alpha", "early")
        island.register_entity(entity, object())
        controller = GlobalController(sim)
        controller.register_island(island)
        assert controller.owner_of(entity) is island

    def test_unknown_entity_raises(self):
        controller = GlobalController(Simulator())
        with pytest.raises(UnknownEntityError):
            controller.owner_of(EntityId("nowhere", "ghost"))

    def test_known_entities_listing(self):
        sim = Simulator()
        controller = GlobalController(sim)
        island = RecordingIsland(sim, "alpha")
        controller.register_island(island)
        island.register_entity(EntityId("alpha", "one"), 1)
        island.register_entity(EntityId("alpha", "two"), 2)
        assert set(controller.known_entities()) == {
            EntityId("alpha", "one"),
            EntityId("alpha", "two"),
        }

    def test_islands_iteration_order(self):
        sim = Simulator()
        controller = GlobalController(sim)
        first = RecordingIsland(sim, "first")
        second = RecordingIsland(sim, "second")
        controller.register_island(first)
        controller.register_island(second)
        assert list(controller.islands()) == [first, second]
