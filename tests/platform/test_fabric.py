"""Tests for the declarative fabric topology spec."""

import pytest

from repro.platform import ClusterSpec, FabricTopology
from repro.sim import us


class TestValidation:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError, match="no islands"):
            ClusterSpec("c", ())

    def test_aggregator_must_be_member(self):
        with pytest.raises(ValueError, match="aggregator"):
            ClusterSpec("c", ("a", "b"), aggregator="z")

    def test_aggregator_defaults_to_first_island(self):
        assert ClusterSpec("c", ("a", "b")).aggregator == "a"

    def test_duplicate_island_across_clusters_rejected(self):
        with pytest.raises(ValueError, match="only one cluster"):
            FabricTopology(clusters=(
                ClusterSpec("c0", ("a", "b")), ClusterSpec("c1", ("b",)),
            ))

    def test_extra_link_must_name_known_islands(self):
        with pytest.raises(ValueError, match="unknown island"):
            FabricTopology(
                clusters=(ClusterSpec("c0", ("a", "b")),),
                extra_links=(("a", "z"),),
            )

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="self-link"):
            FabricTopology(
                clusters=(ClusterSpec("c0", ("a", "b")),),
                extra_links=(("a", "a"),),
            )


class TestShapes:
    def test_star_is_one_cluster_behind_hub(self):
        topology = FabricTopology.star(("a", "b", "c"), hub="b")
        assert topology.root == "b"
        assert len(topology) == 3
        links = {frozenset((x, y)) for x, y, _ in topology.links()}
        assert links == {frozenset(("b", "a")), frozenset(("b", "c"))}

    def test_clustered_chunks_by_fanout(self):
        names = tuple(f"i{n}" for n in range(5))
        topology = FabricTopology.clustered(names, fanout=2)
        assert [c.name for c in topology.clusters] == [
            "cluster-0", "cluster-1", "cluster-2"
        ]
        assert topology.aggregators == ("i0", "i2", "i4")
        assert topology.root == "i0"
        assert topology.cluster_of("i3").name == "cluster-1"
        assert topology.aggregator_of("i3") == "i2"

    def test_clustered_wires_uplinks_at_uplink_latency(self):
        topology = FabricTopology.clustered(
            ("a", "b", "c", "d"), fanout=2, link_latency=us(100)
        )
        latencies = {frozenset((x, y)): lat for x, y, lat in topology.links()}
        assert latencies[frozenset(("a", "b"))] == us(100)
        assert latencies[frozenset(("a", "c"))] == us(200)  # uplink = 2x

    def test_ring_cycles_every_island(self):
        topology = FabricTopology.ring(("a", "b", "c", "d"))
        links = {frozenset((x, y)) for x, y, _ in topology.links()}
        assert links == {
            frozenset(("a", "b")), frozenset(("b", "c")),
            frozenset(("c", "d")), frozenset(("d", "a")),
        }

    def test_two_ring_collapses_to_single_link(self):
        topology = FabricTopology.ring(("a", "b"))
        assert len(topology.links()) == 1


class TestNextHop:
    def test_direct_link_wins(self):
        topology = FabricTopology.star(("a", "b", "c"))
        assert topology.next_hop("a", "b") == "b"

    def test_member_routes_through_aggregator_and_root(self):
        names = tuple(f"i{n}" for n in range(6))
        topology = FabricTopology.clustered(names, fanout=2)
        # i3 (cluster-1) -> i5 (cluster-2): up to aggregator, to root,
        # down the far side.
        assert topology.next_hop("i3", "i5") == "i2"
        assert topology.next_hop("i2", "i5") == "i0"
        assert topology.next_hop("i0", "i5") == "i4"
        assert topology.next_hop("i4", "i5") == "i5"

    def test_ring_routes_shortest_way_around(self):
        topology = FabricTopology.ring(("a", "b", "c", "d", "e"))
        assert topology.next_hop("a", "c") == "b"
        assert topology.next_hop("a", "d") == "e"

    def test_no_route_is_none(self):
        topology = FabricTopology(
            clusters=(ClusterSpec("c0", ("a",)), ClusterSpec("c1", ("b",))),
            connect_aggregators=False,
        )
        assert topology.next_hop("a", "b") is None
        assert topology.next_hop("a", "a") is None
