"""The Directory contract: one suite, three control planes.

Every test in ``TestDirectoryContract`` runs against all three
implementations — the fabric refactor's core promise is that central,
hierarchical and gossip directories are interchangeable behind the
:class:`repro.platform.Directory` protocol. Implementation-specific
behaviour (hub concentration, upward coalescing, epidemic convergence)
gets its own classes below.
"""

import pytest

from repro.platform import (
    CentralDirectory,
    Directory,
    EntityId,
    FabricTopology,
    GlobalController,
    GossipDirectory,
    HierarchicalDirectory,
    UnknownEntityError,
    build_directory,
)
from repro.sim import Simulator, Tracer, ms, seconds
from repro.x86 import X86Island, X86Params

KINDS = ("central", "hierarchical", "gossip")


def build(kind, sim, names=("isle-0", "isle-1", "isle-2", "isle-3"),
          tracer=None):
    """A directory of ``kind`` over a 2-island-per-cluster topology, with
    one registered x86 island per name."""
    topology = FabricTopology.clustered(names, fanout=2)
    directory = build_directory(kind, sim, topology=topology, tracer=tracer)
    islands = {}
    for name in names:
        island = X86Island(sim, X86Params(num_cpus=1), name=name)
        directory.register_island(island)
        islands[name] = island
    return directory, islands


def settle(sim, directory):
    """Give an epidemic directory time to converge (no-op for the others)."""
    if isinstance(directory, GossipDirectory):
        sim.run(until=sim.now + seconds(1))


@pytest.mark.parametrize("kind", KINDS)
class TestDirectoryContract:
    def test_satisfies_protocol(self, kind):
        directory, _ = build(kind, Simulator())
        assert isinstance(directory, Directory)

    def test_duplicate_island_rejected(self, kind):
        sim = Simulator()
        directory, islands = build(kind, sim)
        with pytest.raises(ValueError):
            directory.register_island(islands["isle-0"])

    def test_entity_registration_resolves_owner(self, kind):
        sim = Simulator()
        directory, islands = build(kind, sim)
        vm = islands["isle-2"].create_vm("guest")
        assert vm is not None
        entity = EntityId("isle-2", "guest")
        assert directory.owner_of(entity) is islands["isle-2"]
        assert entity in directory.known_entities()

    def test_unknown_entity_raises(self, kind):
        directory, _ = build(kind, Simulator())
        with pytest.raises(UnknownEntityError):
            directory.owner_of(EntityId("isle-0", "ghost"))

    def test_lookup_resolves_after_settling(self, kind):
        sim = Simulator()
        directory, islands = build(kind, sim)
        islands["isle-1"].create_vm("guest")
        settle(sim, directory)
        assert directory.lookup(EntityId("isle-1", "guest"), frm="isle-3") == "isle-1"
        assert directory.lookup(EntityId("isle-1", "nope"), frm="isle-3") is None

    def test_islands_accessors(self, kind):
        directory, islands = build(kind, Simulator())
        assert directory.island("isle-1") is islands["isle-1"]
        assert [i.name for i in directory.islands()] == sorted(islands)

    def test_channel_protocol_enforced(self, kind):
        directory, _ = build(kind, Simulator())
        with pytest.raises(TypeError, match="stats"):
            directory.register_channel("bogus", object())

    def test_channel_health_merges_dead_letters(self, kind):
        directory, _ = build(kind, Simulator())

        class FakeReliable:
            def stats(self):
                return {"sent": 7}

            def dead_letters_by_entity(self):
                return {"isle-0/guest": 2}

        directory.register_channel("link", FakeReliable())
        with pytest.raises(ValueError):
            directory.register_channel("link", FakeReliable())
        health = directory.channel_health()
        assert health["link"]["sent"] == 7
        assert health["link"]["dead_letters_by_entity"] == {"isle-0/guest": 2}

    def test_health_source_protocol_enforced(self, kind):
        directory, _ = build(kind, Simulator())
        with pytest.raises(TypeError, match="health"):
            directory.register_health("bogus", object())

        class FakeDetector:
            def health(self):
                return {"state": "up"}

        directory.register_health("isle-0->isle-1", FakeDetector())
        assert directory.health() == {"isle-0->isle-1": {"state": "up"}}

    def test_entity_move_counted_and_traced(self, kind):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        records = []
        tracer.subscribe(records.append, kinds=("entity-moved",))
        directory, islands = build(kind, sim, tracer=tracer)
        entity = EntityId("svc", "db")
        directory.note_entity(islands["isle-0"], entity)
        assert directory.entity_moves == 0
        directory.note_entity(islands["isle-3"], entity)
        assert directory.entity_moves == 1
        assert directory.owner_of(entity) is islands["isle-3"]
        (record,) = records
        assert record.payload["frm"] == "isle-0"
        assert record.payload["to"] == "isle-3"

    def test_same_island_reregistration_is_not_a_move(self, kind):
        sim = Simulator()
        directory, islands = build(kind, sim)
        entity = EntityId("svc", "db")
        directory.note_entity(islands["isle-0"], entity)
        directory.note_entity(islands["isle-0"], entity)
        assert directory.entity_moves == 0

    def test_registration_counts_messages(self, kind):
        sim = Simulator()
        directory, islands = build(kind, sim)
        islands["isle-0"].create_vm("guest")
        counts = directory.message_counts()
        assert counts and sum(counts.values()) > 0

    def test_partitioned_registration_resolves_after_heal(self, kind):
        sim = Simulator()
        directory, islands = build(kind, sim)
        directory.isolate("isle-3")
        assert "isle-3" in directory.isolated()
        islands["isle-3"].create_vm("late")
        entity = EntityId("isle-3", "late")
        # While partitioned, the fabric at large cannot resolve the
        # entity from another island's vantage point.
        assert directory.lookup(entity, frm="isle-0") is None
        directory.heal("isle-3")
        settle(sim, directory)
        assert directory.owner_of(entity) is islands["isle-3"]
        assert directory.lookup(entity, frm="isle-0") == "isle-3"
        assert directory.visible_at(entity) is not None
        assert directory.discovery_latency(entity) >= 0

    def test_knob_snapshot_spans_islands(self, kind):
        sim = Simulator()
        directory, islands = build(kind, sim)
        islands["isle-0"].create_vm("a")
        islands["isle-2"].create_vm("b")
        snapshot = directory.knob_snapshot()
        assert "isle-0/a" in snapshot and "isle-2/b" in snapshot


class TestBuildDirectory:
    def test_kinds(self):
        sim = Simulator()
        names = ("a", "b")
        topology = FabricTopology.clustered(names, fanout=2)
        assert isinstance(build_directory("central", sim, topology=topology),
                          CentralDirectory)
        assert isinstance(build_directory("hierarchical", sim, topology=topology),
                          HierarchicalDirectory)
        assert isinstance(build_directory("gossip", sim, topology=topology),
                          GossipDirectory)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown directory kind"):
            build_directory("quantum", Simulator())

    def test_hierarchical_needs_topology(self):
        with pytest.raises(ValueError, match="FabricTopology"):
            build_directory("hierarchical", Simulator())


class TestGlobalControllerFacade:
    def test_is_a_central_directory(self):
        controller = GlobalController(Simulator())
        assert isinstance(controller, CentralDirectory)
        assert isinstance(controller, Directory)


class TestCentralDirectory:
    def test_all_messages_land_on_hub(self):
        sim = Simulator()
        directory, islands = build("central", sim)
        hub = "isle-0"
        for name in islands:
            islands[name].create_vm("guest")
        before = directory.messages_at(hub)
        directory.lookup(EntityId("isle-2", "guest"), frm="isle-3")
        counts = directory.message_counts()
        # Registrations from every island and lookups from every vantage
        # point all cost the hub — and nobody else — a message.
        assert set(counts) == {hub}
        assert counts[hub] == before + 1


class TestHierarchicalDirectory:
    def test_reports_coalesce_upward(self):
        sim = Simulator()
        topology = FabricTopology.clustered(
            ("a", "b", "c", "d"), fanout=2, aggregate_period=ms(100)
        )
        directory = HierarchicalDirectory(sim, topology)
        for name in topology.islands:
            directory.register_island(X86Island(sim, X86Params(num_cpus=1), name=name))
        for name in ("a", "b", "c", "d"):
            directory.report_load(name, 2.0)
        sim.run(until=ms(150))
        # Four raw reports became one summary per cluster at the root.
        assert directory.reports_received == 4
        assert directory.reports_coalesced == 4
        assert directory.summaries_sent == 2
        loads = directory.cluster_loads()
        assert loads["cluster-0"].reports == 2
        assert loads["cluster-0"].mean == 2.0

    def test_intra_cluster_lookup_never_reaches_root(self):
        sim = Simulator()
        directory, islands = build("hierarchical", sim)
        islands["isle-3"].create_vm("guest")
        root_before = directory.messages_at(directory.topology.root)
        directory.lookup(EntityId("isle-3", "guest"), frm="isle-2")
        assert directory.messages_at(directory.topology.root) == root_before

    def test_cross_cluster_lookup_walks_the_hierarchy(self):
        sim = Simulator()
        names = tuple(f"isle-{i}" for i in range(6))
        directory, islands = build("hierarchical", sim, names=names)
        islands["isle-5"].create_vm("guest")
        # Origin cluster (isle-2/isle-3), root (isle-0) and target
        # aggregator (isle-4) are three distinct nodes here: the lookup
        # costs exactly one message at each.
        before = {n: directory.messages_at(n) for n in names}
        owner = directory.lookup(EntityId("isle-5", "guest"), frm="isle-3")
        assert owner == "isle-5"
        deltas = {n: directory.messages_at(n) - before[n] for n in names}
        assert deltas == {"isle-0": 1, "isle-1": 0, "isle-2": 1,
                          "isle-3": 0, "isle-4": 1, "isle-5": 0}

    def test_fan_tune_reaches_every_owner(self):
        sim = Simulator()
        directory, islands = build("hierarchical", sim)
        vms = {name: islands[name].create_vm("probe") for name in islands}
        records = directory.fan_tune("probe", +64)
        assert len(records) == len(islands)
        for vm in vms.values():
            assert vm.weight == 320

    def test_cross_cluster_move_scrubs_old_table(self):
        sim = Simulator()
        directory, islands = build("hierarchical", sim)
        entity = EntityId("svc", "db")
        directory.note_entity(islands["isle-0"], entity)
        directory.note_entity(islands["isle-3"], entity)  # other cluster
        assert directory.owner_name(entity) == "isle-3"
        # The old cluster's aggregator no longer claims the entity: a
        # lookup from the old cluster escalates instead of serving stale.
        assert directory.lookup(entity, frm="isle-0") == "isle-3"


class TestGossipDirectory:
    def test_views_converge_epidemically(self):
        sim = Simulator()
        directory, islands = build("gossip", sim)
        islands["isle-0"].create_vm("guest")
        entity = EntityId("isle-0", "guest")
        # Born in the owner's view only; distant nodes cannot resolve yet.
        assert directory.lookup(entity, frm="isle-3") is None
        assert not directory.is_converged()
        sim.run(until=seconds(1))
        assert directory.is_converged()
        assert directory.lookup(entity, frm="isle-3") == "isle-0"
        assert directory.view("isle-3")[entity] == "isle-0"

    def test_ownership_move_bumps_epoch_and_wins_reconciliation(self):
        sim = Simulator()
        directory, islands = build("gossip", sim)
        entity = EntityId("svc", "db")
        directory.note_entity(islands["isle-0"], entity)
        sim.run(until=seconds(1))
        directory.note_entity(islands["isle-3"], entity)
        record = directory._authoritative[entity]
        assert record.epoch == 1
        sim.run(until=sim.now + seconds(1))
        # Every node's view reconciled to the mover, old records lost.
        for name in islands:
            assert directory.view(name)[entity] == "isle-3"

    def test_isolated_node_neither_infects_nor_learns(self):
        sim = Simulator()
        directory, islands = build("gossip", sim)
        directory.isolate("isle-3")
        islands["isle-0"].create_vm("guest")
        entity = EntityId("isle-0", "guest")
        sim.run(until=seconds(1))
        # The fabric converged around the hole, but not into it.
        assert directory.lookup(entity, frm="isle-2") == "isle-0"
        assert directory.lookup(entity, frm="isle-3") is None
        assert not directory.is_converged()
        directory.heal("isle-3")
        sim.run(until=sim.now + seconds(1))
        assert directory.lookup(entity, frm="isle-3") == "isle-0"
        assert directory.is_converged()

    def test_heal_bumps_node_epoch(self):
        sim = Simulator()
        directory, _ = build("gossip", sim)
        assert directory._node_epochs["isle-1"] == 0
        directory.isolate("isle-1")
        directory.heal("isle-1")
        assert directory._node_epochs["isle-1"] == 1

    def test_gossip_messages_are_flat_per_node(self):
        sim = Simulator()
        directory, islands = build("gossip", sim)
        islands["isle-0"].create_vm("guest")
        sim.run(until=seconds(1))
        counts = directory.message_counts()
        # Push-pull rounds cost every node a bounded number of messages
        # per round — nobody concentrates the fabric's traffic.
        assert max(counts.values()) <= 3 * min(counts.values()) + 10

    def test_peer_records_gossip_liveness(self):
        sim = Simulator()
        directory, _ = build("gossip", sim)
        sim.run(until=seconds(1))
        view = directory.peer_view("isle-0")
        assert set(view) == {"isle-0", "isle-1", "isle-2", "isle-3"}
        assert all(record.heartbeat > 0 for record in view.values())
