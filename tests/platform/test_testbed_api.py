"""The unified testbed entry point: one config, two platform shapes.

``TestbedConfig`` now carries the fabric topology, directory flavour and
``ShardConfig``; ``build_testbed`` dispatches to the right testbed class,
and the old flat ``FabricTestbed(topology, directory, ...)`` signature
survives only through a warn-once deprecation shim.
"""

import warnings

import pytest

import repro.testbed as testbed_mod
from repro import (
    FabricTestbed,
    ShardConfig,
    Testbed,
    TestbedConfig,
    build_testbed,
)
from repro.platform import FabricTopology
from repro.sim import ms

NAMES = ("isle-0", "isle-1", "isle-2", "isle-3")


def topo():
    return FabricTopology.clustered(NAMES, fanout=2, link_latency=ms(5))


class TestBuildTestbed:
    def test_default_config_builds_the_prototype(self):
        built = build_testbed()
        assert isinstance(built, Testbed)

    def test_topology_config_builds_a_fabric(self):
        built = build_testbed(TestbedConfig(topology=topo(), directory="gossip"))
        assert isinstance(built, FabricTestbed)
        assert built.directory_kind == "gossip"
        assert set(built.islands) == set(NAMES)

    def test_prototype_testbed_rejects_fabric_configs(self):
        with pytest.raises(ValueError, match="build_testbed"):
            Testbed(TestbedConfig(topology=topo()))


class TestFabricTestbedSignatures:
    def test_config_form_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FabricTestbed(config=TestbedConfig(topology=topo()))

    def test_config_without_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            FabricTestbed(config=TestbedConfig())

    def test_mixing_flat_and_config_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            FabricTestbed(topo(), config=TestbedConfig(topology=topo()))

    def test_flat_form_warns_once_and_matches_config_form(self, monkeypatch):
        monkeypatch.setattr(testbed_mod, "_legacy_fabric_warned", False)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = FabricTestbed(topo(), "hierarchical", seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second use: latched, silent
            legacy_again = FabricTestbed(topo(), "hierarchical", seed=5)
        modern = FabricTestbed(
            config=TestbedConfig(
                topology=topo(), directory="hierarchical", seed=5
            )
        )
        for built in (legacy, legacy_again):
            assert built.config.directory == modern.config.directory == "hierarchical"
            assert built.config.seed == modern.config.seed == 5
            assert set(built.islands) == set(modern.islands)


class TestShardConfig:
    def test_defaults_are_single_process(self):
        config = ShardConfig()
        assert (config.shards, config.workers, config.window_ns) == (1, None, None)
        assert TestbedConfig().shard == config

    @pytest.mark.parametrize(
        "kwargs", [dict(shards=0), dict(workers=0), dict(window_ns=0)]
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)

    def test_multi_shard_config_needs_a_topology(self):
        with pytest.raises(ValueError, match="topology"):
            TestbedConfig(shard=ShardConfig(shards=2))
        config = TestbedConfig(topology=topo(), shard=ShardConfig(shards=2))
        assert config.shard.shards == 2
