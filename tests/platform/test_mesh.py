"""Tests for the multi-island coordination mesh."""

import pytest

from repro.faults import ChannelBlackout, FaultConfig, FaultPlan, PEER_DOWN, PEER_UP
from repro.platform import EntityId, FabricTopology, build_directory
from repro.platform.mesh import CoordinationMesh
from repro.sim import Simulator, ms, us
from repro.x86 import X86Island, X86Params


def build_mesh(sim, count, latency=us(100)):
    mesh = CoordinationMesh(sim, latency=latency)
    islands = []
    for i in range(count):
        island = X86Island(sim, X86Params(num_cpus=1), name=f"cell-{i}")
        mesh.add_island(island, handler_vm=island.dom0)
        islands.append(island)
    return mesh, islands


class TestTopology:
    def test_star_links_every_island_to_hub(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 4)
        mesh.connect_star("cell-0")
        assert sorted(mesh.neighbors("cell-0")) == ["cell-1", "cell-2", "cell-3"]
        assert mesh.neighbors("cell-2") == ["cell-0"]

    def test_ring_gives_each_two_neighbors(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 4)
        mesh.connect_ring()
        for i in range(4):
            assert len(mesh.neighbors(f"cell-{i}")) == 2

    def test_two_island_ring_is_single_link(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        assert mesh.neighbors("cell-0") == ["cell-1"]

    def test_ring_needs_two_islands(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 1)
        with pytest.raises(ValueError):
            mesh.connect_ring()

    def test_self_link_rejected(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 2)
        with pytest.raises(ValueError):
            mesh.connect("cell-0", "cell-0")

    def test_duplicate_link_rejected(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 2)
        mesh.connect("cell-0", "cell-1")
        with pytest.raises(ValueError):
            mesh.connect("cell-0", "cell-1")

    def test_duplicate_island_rejected(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 1)
        with pytest.raises(ValueError):
            mesh.add_island(islands[0])


class TestCrossIslandCoordination:
    def test_tune_travels_between_islands(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 3)
        mesh.connect_star("cell-0")
        target = islands[2].create_vm("victim")
        mesh.agent("cell-0", "cell-2").send_tune(EntityId("cell-2", "victim"), +64)
        sim.run(until=ms(50))
        assert target.weight == 320

    def test_trigger_travels_between_islands(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        target = islands[1].create_vm("victim")
        mesh.agent("cell-0", "cell-1").send_trigger(EntityId("cell-1", "victim"))
        sim.run(until=ms(50))
        assert target.vcpus[0].boosted

    def test_links_are_independent(self):
        """A tune on one spoke is applied at that spoke only."""
        sim = Simulator()
        mesh, islands = build_mesh(sim, 3)
        mesh.connect_star("cell-0")
        vm1 = islands[1].create_vm("guest")
        vm2 = islands[2].create_vm("guest")
        mesh.agent("cell-0", "cell-1").send_tune(EntityId("cell-1", "guest"), +64)
        sim.run(until=ms(50))
        assert vm1.weight == 320
        assert vm2.weight == 256

    def test_messages_handled_accounting(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        islands[1].create_vm("guest")
        for _ in range(3):
            mesh.agent("cell-0", "cell-1").send_tune(EntityId("cell-1", "guest"), +8)
        sim.run(until=ms(50))
        assert mesh.messages_handled_at("cell-1") == 3
        assert mesh.messages_handled_at("cell-0") == 0

    def test_handling_charged_to_cell_dom0(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        islands[1].create_vm("guest")
        before = islands[1].dom0.cpu_time()
        mesh.agent("cell-0", "cell-1").send_tune(EntityId("cell-1", "guest"), +8)
        sim.run(until=ms(50))
        assert islands[1].dom0.cpu_time() > before


class TestTopologyWiring:
    def test_apply_topology_wires_declared_links(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 4)
        topology = FabricTopology.ring(tuple(f"cell-{i}" for i in range(4)))
        mesh.apply_topology(topology)
        for i in range(4):
            assert len(mesh.neighbors(f"cell-{i}")) == 2

    def test_apply_topology_rejects_unknown_islands(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 2)
        topology = FabricTopology.star(("cell-0", "cell-1", "cell-9"))
        with pytest.raises(ValueError, match="cell-9"):
            mesh.apply_topology(topology)

    def test_per_link_latency_from_spec(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 4, latency=us(999))
        topology = FabricTopology.clustered(
            tuple(f"cell-{i}" for i in range(4)), fanout=2, link_latency=us(100)
        )
        mesh.apply_topology(topology)
        assert mesh.channel("cell-0", "cell-1").latency == us(100)
        assert mesh.channel("cell-0", "cell-2").latency == us(200)  # uplink

    def test_directory_forwarding_relays_to_owner(self):
        """A Tune dropped onto the wrong link finds its owner through the
        directory and the topology's next-hop routes."""
        sim = Simulator()
        mesh, islands = build_mesh(sim, 6)
        names = tuple(f"cell-{i}" for i in range(6))
        topology = FabricTopology.clustered(names, fanout=2)
        mesh.apply_topology(topology)
        directory = build_directory("central", sim, topology=topology)
        for island in islands:
            directory.register_island(island)
        mesh.attach_directory(directory)
        target = islands[5].create_vm("victim")
        # Send from a leaf in another cluster: cell-3 -> aggregator
        # cell-2 -> root cell-0 -> aggregator cell-4 -> owner cell-5.
        mesh.agent("cell-3", "cell-2").send_tune(EntityId("cell-5", "victim"), +64)
        sim.run(until=ms(50))
        assert target.weight == 320
        # Every relay on the path was accounted as handled work.
        for relay in ("cell-2", "cell-0", "cell-4"):
            assert mesh.messages_handled_at(relay) == 1
        assert mesh.agent("cell-2", "cell-3").forwarded_messages == 1

    def test_without_directory_unknown_entities_still_drop(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        mesh.agent("cell-0", "cell-1").send_tune(EntityId("cell-9", "ghost"), +8)
        sim.run(until=ms(50))
        assert mesh.agent("cell-1", "cell-0").unknown_entities == 1


class TestMeshFaultInjection:
    """Partition one mesh link; only that link's agents may degrade."""

    def build_ring(self, sim, count=4):
        mesh, islands = build_mesh(sim, count)
        mesh.connect_ring()
        for island in islands:
            island.create_vm("guest")
        return mesh, islands

    def test_single_link_blackout_degrades_only_that_link(self):
        sim = Simulator()
        mesh, islands = self.build_ring(sim)
        mesh.arm_fault_domain(FaultConfig())
        plan = FaultPlan((ChannelBlackout(start=ms(100), duration=ms(600)),))
        mesh.inject_link_fault(plan, "cell-0", "cell-1")

        sim.run(until=ms(500))
        # Mid-blackout: both ends of the partitioned link hold their peer
        # DOWN and gate their policies...
        assert mesh.detector("cell-0", "cell-1").state == PEER_DOWN
        assert mesh.detector("cell-1", "cell-0").state == PEER_DOWN
        assert not mesh.agent("cell-0", "cell-1").peer_available
        # ... while every other link in the ring never left UP.
        for frm, to in (("cell-1", "cell-2"), ("cell-2", "cell-1"),
                        ("cell-2", "cell-3"), ("cell-3", "cell-2"),
                        ("cell-3", "cell-0"), ("cell-0", "cell-3")):
            detector = mesh.detector(frm, to)
            assert detector.state == PEER_UP
            assert [s for _, s, _ in detector.transitions] == [PEER_UP]

        # The rest of the mesh keeps coordinating through the blackout.
        victim = islands[3].vm("guest")
        mesh.agent("cell-2", "cell-3").send_tune(EntityId("cell-3", "guest"), +64)
        sim.run(until=ms(560))
        assert victim.weight == 320

        # After the blackout clears, the partitioned link recovers too.
        sim.run(until=ms(1200))
        assert mesh.detector("cell-0", "cell-1").state == PEER_UP
        assert mesh.agent("cell-0", "cell-1").peer_available

    def test_one_way_partition_uses_island_name_direction(self):
        sim = Simulator()
        mesh, islands = self.build_ring(sim)
        mesh.arm_fault_domain(FaultConfig())
        plan = FaultPlan((
            ChannelBlackout(start=ms(100), duration=ms(600), direction="cell-0"),
        ))
        mesh.inject_link_fault(plan, "cell-0", "cell-1")
        sim.run(until=ms(500))
        # cell-0's sends die on this link, so cell-1 stops hearing it...
        assert mesh.detector("cell-1", "cell-0").state == PEER_DOWN
        # ... but cell-1's raw heartbeats still arrive at cell-0.
        assert mesh.detector("cell-0", "cell-1").state == PEER_UP

    def test_blackout_direction_validated_against_link_endpoints(self):
        sim = Simulator()
        mesh, _ = self.build_ring(sim)
        plan = FaultPlan((
            ChannelBlackout(start=ms(100), duration=ms(100), direction="cell-2"),
        ))
        with pytest.raises(ValueError, match="neither endpoint"):
            mesh.inject_link_fault(plan, "cell-0", "cell-1")
