"""Tests for the multi-island coordination mesh."""

import pytest

from repro.platform import EntityId
from repro.platform.mesh import CoordinationMesh
from repro.sim import Simulator, ms, us
from repro.x86 import X86Island, X86Params


def build_mesh(sim, count, latency=us(100)):
    mesh = CoordinationMesh(sim, latency=latency)
    islands = []
    for i in range(count):
        island = X86Island(sim, X86Params(num_cpus=1), name=f"cell-{i}")
        mesh.add_island(island, handler_vm=island.dom0)
        islands.append(island)
    return mesh, islands


class TestTopology:
    def test_star_links_every_island_to_hub(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 4)
        mesh.connect_star("cell-0")
        assert sorted(mesh.neighbors("cell-0")) == ["cell-1", "cell-2", "cell-3"]
        assert mesh.neighbors("cell-2") == ["cell-0"]

    def test_ring_gives_each_two_neighbors(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 4)
        mesh.connect_ring()
        for i in range(4):
            assert len(mesh.neighbors(f"cell-{i}")) == 2

    def test_two_island_ring_is_single_link(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        assert mesh.neighbors("cell-0") == ["cell-1"]

    def test_ring_needs_two_islands(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 1)
        with pytest.raises(ValueError):
            mesh.connect_ring()

    def test_self_link_rejected(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 2)
        with pytest.raises(ValueError):
            mesh.connect("cell-0", "cell-0")

    def test_duplicate_link_rejected(self):
        sim = Simulator()
        mesh, _ = build_mesh(sim, 2)
        mesh.connect("cell-0", "cell-1")
        with pytest.raises(ValueError):
            mesh.connect("cell-0", "cell-1")

    def test_duplicate_island_rejected(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 1)
        with pytest.raises(ValueError):
            mesh.add_island(islands[0])


class TestCrossIslandCoordination:
    def test_tune_travels_between_islands(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 3)
        mesh.connect_star("cell-0")
        target = islands[2].create_vm("victim")
        mesh.agent("cell-0", "cell-2").send_tune(EntityId("cell-2", "victim"), +64)
        sim.run(until=ms(50))
        assert target.weight == 320

    def test_trigger_travels_between_islands(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        target = islands[1].create_vm("victim")
        mesh.agent("cell-0", "cell-1").send_trigger(EntityId("cell-1", "victim"))
        sim.run(until=ms(50))
        assert target.vcpus[0].boosted

    def test_links_are_independent(self):
        """A tune on one spoke is applied at that spoke only."""
        sim = Simulator()
        mesh, islands = build_mesh(sim, 3)
        mesh.connect_star("cell-0")
        vm1 = islands[1].create_vm("guest")
        vm2 = islands[2].create_vm("guest")
        mesh.agent("cell-0", "cell-1").send_tune(EntityId("cell-1", "guest"), +64)
        sim.run(until=ms(50))
        assert vm1.weight == 320
        assert vm2.weight == 256

    def test_messages_handled_accounting(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        islands[1].create_vm("guest")
        for _ in range(3):
            mesh.agent("cell-0", "cell-1").send_tune(EntityId("cell-1", "guest"), +8)
        sim.run(until=ms(50))
        assert mesh.messages_handled_at("cell-1") == 3
        assert mesh.messages_handled_at("cell-0") == 0

    def test_handling_charged_to_cell_dom0(self):
        sim = Simulator()
        mesh, islands = build_mesh(sim, 2)
        mesh.connect_ring()
        islands[1].create_vm("guest")
        before = islands[1].dom0.cpu_time()
        mesh.agent("cell-0", "cell-1").send_tune(EntityId("cell-1", "guest"), +8)
        sim.run(until=ms(50))
        assert islands[1].dom0.cpu_time() > before
