"""Fault plans: validation, immutability, and up-front randomness."""

import pytest

from repro.faults import (
    ActuationFault,
    AgentCrash,
    ChannelBlackout,
    FaultConfig,
    FaultPlan,
    ManagerStall,
)
from repro.sim import RandomStreams, ms, seconds


class TestEventValidation:
    def test_blackout_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ChannelBlackout(start=-1, duration=ms(1))
        with pytest.raises(ValueError):
            ChannelBlackout(start=0, duration=0)
        with pytest.raises(ValueError, match="direction"):
            ChannelBlackout(start=0, duration=ms(1), direction="")
        # Any endpoint *name* is accepted at construction (mesh links use
        # island names); the injector validates it against the actual
        # channel endpoints at arm time.
        ChannelBlackout(start=0, duration=ms(1), direction="island-3")

    def test_blackout_end(self):
        event = ChannelBlackout(start=ms(10), duration=ms(5))
        assert event.end == ms(15)

    def test_crash_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AgentCrash(agent="ixp", start=-1)
        with pytest.raises(ValueError):
            AgentCrash(agent="ixp", start=0, restart_after=0)
        AgentCrash(agent="ixp", start=0, restart_after=None)  # dead forever: fine

    def test_stall_and_actuation_fault_validated(self):
        with pytest.raises(ValueError):
            ManagerStall(agent="x86", start=0, duration=0)
        with pytest.raises(ValueError):
            ActuationFault(island="ixp", start=0, duration=-5)
        assert ActuationFault(island="ixp", start=ms(1), duration=ms(2)).end == ms(3)

    def test_events_are_frozen(self):
        event = ChannelBlackout(start=0, duration=ms(1))
        with pytest.raises(AttributeError):
            event.start = ms(5)


class TestFaultPlan:
    def test_events_normalised_to_tuple(self):
        plan = FaultPlan(events=[ChannelBlackout(start=0, duration=ms(1))])
        assert isinstance(plan.events, tuple)
        assert len(plan) == 1

    def test_blackout_windows_sorted(self):
        plan = FaultPlan((
            ChannelBlackout(start=ms(30), duration=ms(5)),
            AgentCrash(agent="ixp", start=ms(1)),
            ChannelBlackout(start=ms(10), duration=ms(5)),
        ))
        assert plan.blackout_windows() == [(ms(10), ms(15)), (ms(30), ms(35))]

    def test_random_blackouts_deterministic_per_seed(self):
        kwargs = dict(
            window_start=seconds(1), window_end=seconds(10),
            count=4, mean_duration=ms(200),
        )
        a = FaultPlan.random_blackouts(RandomStreams(42), **kwargs)
        b = FaultPlan.random_blackouts(RandomStreams(42), **kwargs)
        c = FaultPlan.random_blackouts(RandomStreams(43), **kwargs)
        assert a == b
        assert a != c

    def test_random_blackouts_inside_window_and_disjoint(self):
        plan = FaultPlan.random_blackouts(
            RandomStreams(7),
            window_start=seconds(2), window_end=seconds(8),
            count=5, mean_duration=ms(100),
        )
        windows = plan.blackout_windows()
        assert windows  # at least some placements succeeded
        for start, end in windows:
            assert seconds(2) <= start < end <= seconds(8)
        for (_, first_end), (second_start, _) in zip(windows, windows[1:]):
            assert first_end <= second_start

    def test_random_plan_does_not_perturb_other_streams(self):
        """Plan generation draws only from its own named child stream."""
        plain = RandomStreams(11)
        with_plan = RandomStreams(11)
        FaultPlan.random_blackouts(
            with_plan,
            window_start=0, window_end=seconds(5),
            count=3, mean_duration=ms(50),
        )
        a = [plain.stream("workload").random() for _ in range(20)]
        b = [with_plan.stream("workload").random() for _ in range(20)]
        assert a == b


class TestFaultConfig:
    def test_defaults_valid(self):
        config = FaultConfig()
        assert config.heartbeat_period == ms(50)
        assert len(config.plan) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(heartbeat_period=0)
        with pytest.raises(ValueError):
            FaultConfig(suspect_misses=0)
        with pytest.raises(ValueError, match="down_misses"):
            FaultConfig(suspect_misses=4, down_misses=2)
        with pytest.raises(ValueError):
            FaultConfig(dead_letter_down=0)
