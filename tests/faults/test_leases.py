"""Lease TTL hygiene under faults (satellite of the fault-domain work).

The IXP's flow-weight Trigger is a *lease*: boost now, restore the true
original when the hold expires. A fault must never corrupt that
invariant — an owner that dies mid-hold leaves the TTL to restore the
original, a peer-DOWN baseline revert defers rather than clobbering the
captured original, and overlapping leases refcount down to exactly the
pre-trigger value.
"""

from repro.faults import FaultConfig
from repro.platform import EntityId
from repro.sim import ms
from repro.testbed import ChannelConfig, Testbed, TestbedConfig


def armed_testbed(seed=3):
    return Testbed(TestbedConfig(
        seed=seed,
        channel=ChannelConfig(reliable=True),
        faults=FaultConfig(),
    ))


class TestLeaseTTLUnderFaults:
    def test_owner_death_mid_hold_restores_true_original(self):
        """The boost's owner (the remote peer) goes DOWN mid-hold: the
        baseline revert must defer, and the lease's TTL — not the revert —
        restores the true original weight."""
        testbed = armed_testbed()
        testbed.create_guest_vm("guest")
        entity = EntityId("ixp", "guest")
        knobs = testbed.ixp.knobs
        queue = testbed.ixp.flow_queues["guest"]
        original = queue.service_weight
        hold = testbed.ixp.params.monitor_period * 4

        testbed.x86_agent.send_trigger(entity, reason="boost")
        testbed.run(ms(1))  # delivered and applied; hold is 2 ms
        assert queue.service_weight > original
        assert knobs.active_leases(entity) == 1

        # The boost's owner dies: peer-DOWN degradation reverts baselines.
        testbed.ixp_agent.revert_to_baselines("peer-down:test")
        deferred = [
            record for record in knobs.audit
            if record.op == "revert" and record.entity == str(entity)
        ]
        assert deferred and deferred[-1].outcome == "deferred"
        # The revert did NOT force the value: the lease still owns it.
        assert queue.service_weight > original

        testbed.run(testbed.sim.now + hold + ms(1))
        assert queue.service_weight == original  # TTL restored the truth
        assert knobs.active_leases(entity) == 0
        assert knobs.outstanding_leases() == 0

        # A revert after expiry is a no-op (already at baseline).
        testbed.ixp_agent.revert_to_baselines("peer-down:again")
        assert queue.service_weight == original

    def test_overlapping_leases_refcount_back_to_original(self):
        """Two boosts inside one hold stack levels; the expiries peel back
        to exactly the pre-trigger weight, and the audit balances."""
        testbed = armed_testbed()
        testbed.create_guest_vm("guest")
        entity = EntityId("ixp", "guest")
        knobs = testbed.ixp.knobs
        queue = testbed.ixp.flow_queues["guest"]
        original = queue.service_weight
        hold = testbed.ixp.params.monitor_period * 4

        testbed.x86_agent.send_trigger(entity, reason="first")
        testbed.run(ms(1))
        first_boost = queue.service_weight
        testbed.x86_agent.send_trigger(entity, reason="second")
        testbed.run(testbed.sim.now + hold // 4)
        assert knobs.active_leases(entity) == 2
        assert queue.service_weight > first_boost

        testbed.run(testbed.sim.now + 2 * hold)
        assert knobs.active_leases(entity) == 0
        assert knobs.outstanding_leases() == 0
        assert queue.service_weight == original

        audit = knobs.audit
        triggers = [r for r in audit if r.op == "trigger" and r.entity == str(entity)]
        releases = [
            r for r in audit
            if r.op == "trigger-release" and r.entity == str(entity)
        ]
        assert len(triggers) == len(releases) == 2

    def test_crashed_sender_cannot_mint_new_leases(self):
        """A crashed agent's Triggers are suppressed at the source, so no
        lease can be created by a dead manager."""
        testbed = armed_testbed()
        testbed.create_guest_vm("guest")
        entity = EntityId("ixp", "guest")
        testbed.run(ms(1))

        testbed.x86_agent.crash()
        testbed.x86_agent.send_trigger(entity, reason="from-the-grave")
        testbed.run(testbed.sim.now + ms(5))
        assert testbed.ixp.knobs.outstanding_leases() == 0
        assert testbed.x86_agent.suppressed_sends == 1
