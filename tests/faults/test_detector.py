"""Failure detection, degraded-mode fallback and epoch-based recovery."""

from repro.coordination import TuneMessage
from repro.faults import (
    PEER_DOWN,
    PEER_SUSPECT,
    PEER_UP,
    AgentCrash,
    ChannelBlackout,
    FaultConfig,
    FaultPlan,
    ManagerStall,
)
from repro.platform import EntityId
from repro.sim import ms, seconds
from repro.testbed import ChannelConfig, Testbed, TestbedConfig


def armed_testbed(plan=None, *, seed=3, reliable=False):
    return Testbed(TestbedConfig(
        seed=seed,
        channel=ChannelConfig(reliable=reliable),
        faults=FaultConfig(plan=plan or FaultPlan()),
    ))


def states(detector):
    return [state for _time, state, _reason in detector.transitions]


class TestUnarmedInvisibility:
    """faults=None must construct nothing — the bit-identity guarantee."""

    def test_nothing_built_without_faults(self):
        testbed = Testbed()
        assert testbed.detectors == {}
        assert testbed.fault_injector is None
        assert testbed.ixp_agent.detector is None
        assert testbed.x86_agent.detector is None
        assert not testbed.channel.blocked_senders
        assert testbed.controller.health() == {}

    def test_unarmed_run_sends_no_heartbeats(self):
        testbed = Testbed()
        testbed.create_guest_vm("guest")
        testbed.run(seconds(1))
        assert testbed.channel.stats()["sent"] == 0
        assert testbed.x86_agent.peer_available
        assert testbed.ixp_agent.epoch == 0


class TestBlackoutDetection:
    def test_full_arc_suspect_down_recover_epoch(self):
        plan = FaultPlan((ChannelBlackout(start=ms(500), duration=ms(420)),))
        testbed = armed_testbed(plan)
        testbed.run(seconds(2))

        for side in ("ixp", "x86"):
            detector = testbed.detectors[side]
            assert states(detector) == [PEER_UP, PEER_SUSPECT, PEER_DOWN, PEER_UP]
            times = [time for time, _state, _reason in detector.transitions]
            # Detection happens inside the blackout, recovery after it.
            assert ms(500) < times[1] <= times[2] <= ms(920)
            assert times[3] > ms(920)
            # Recovery within a few heartbeat periods of the channel healing.
            assert times[3] - ms(920) < ms(200)
            assert detector.state == PEER_UP
        # Exactly one outage round-trip: one epoch bump per agent, seen by
        # the peer.
        assert testbed.ixp_agent.epoch == 1
        assert testbed.x86_agent.epoch == 1
        assert testbed.detectors["ixp"].peer_epoch == 1
        assert testbed.detectors["x86"].peer_epoch == 1
        assert testbed.channel.messages_blacked_out > 0
        assert testbed.channel.stats()["blacked_out"] > 0

    def test_one_way_partition_detected_by_blocked_side_only(self):
        """Blocking only the ixp sender starves the x86 detector; the ixp
        detector keeps hearing x86's heartbeats and stays UP."""
        plan = FaultPlan((
            ChannelBlackout(start=ms(500), duration=ms(400), direction="ixp"),
        ))
        testbed = armed_testbed(plan)
        testbed.run(seconds(2))
        assert PEER_DOWN in states(testbed.detectors["x86"])
        assert states(testbed.detectors["ixp"]) == [PEER_UP]

    def test_detection_timeline_deterministic(self):
        plan = FaultPlan((ChannelBlackout(start=ms(500), duration=ms(420)),))
        first = armed_testbed(plan, seed=9)
        first.run(seconds(2))
        second = armed_testbed(plan, seed=9)
        second.run(seconds(2))
        for side in ("ixp", "x86"):
            assert (
                first.detectors[side].transitions
                == second.detectors[side].transitions
            )

    def test_controller_health_snapshot(self):
        plan = FaultPlan((ChannelBlackout(start=ms(200), duration=ms(420)),))
        testbed = armed_testbed(plan)
        testbed.run(ms(500))
        health = testbed.controller.health()
        assert set(health) == {"ixp", "x86"}
        assert health["x86"]["state"] == PEER_DOWN
        assert health["x86"]["heartbeats_sent"] > 0
        assert health["x86"]["transitions"][0][1] == PEER_UP


class TestDegradedFallback:
    def test_peer_down_reverts_declared_baselines(self):
        plan = FaultPlan((ChannelBlackout(start=ms(500), duration=ms(300)),))
        testbed = armed_testbed(plan)
        vm, _ = testbed.create_guest_vm("guest")
        baseline = vm.weight
        entity = EntityId("x86", "guest")
        assert testbed.x86_agent.baselines()[entity] == baseline

        # Steer the weight away from baseline before the blackout.
        testbed.ixp_agent.send_tune(entity, 128, reason="pre-fault")
        testbed.run(ms(500))
        assert vm.weight == baseline + 128

        # Ride through detection: DOWN must snap the weight back.
        testbed.run(ms(800))
        assert testbed.detectors["x86"].state == PEER_DOWN
        assert vm.weight == baseline
        reverts = [
            record for record in testbed.controller.actuation_audit()
            if record.op == "revert" and record.outcome == "applied"
            and record.entity == str(entity)
        ]
        assert reverts and reverts[0].applied_value == baseline

    def test_policies_see_peer_unavailable_while_down(self):
        plan = FaultPlan((ChannelBlackout(start=ms(200), duration=ms(400)),))
        testbed = armed_testbed(plan)
        testbed.run(ms(500))
        assert testbed.detectors["ixp"].is_down
        assert not testbed.ixp_agent.peer_available
        testbed.run(seconds(1))
        assert testbed.ixp_agent.peer_available


class TestEpochs:
    def test_stale_epoch_frames_dropped_after_recovery(self):
        plan = FaultPlan((ChannelBlackout(start=ms(200), duration=ms(420)),))
        testbed = armed_testbed(plan)
        vm, _ = testbed.create_guest_vm("guest")
        entity = EntityId("x86", "guest")
        testbed.run(seconds(1))  # full outage + recovery: ixp epoch is 1
        assert testbed.detectors["x86"].peer_epoch == 1
        weight = vm.weight

        # A frame from the pre-outage epoch arrives late (e.g. a stray
        # retransmission): it must be discarded, not applied.
        testbed.channel.endpoint("ixp").send(
            TuneMessage(entity=entity, delta=64, reason="stale", epoch=0)
        )
        testbed.run(testbed.sim.now + ms(10))
        assert vm.weight == weight
        assert testbed.x86_agent.stale_epoch_drops == 1

        # A current-epoch frame still applies.
        testbed.ixp_agent.send_tune(entity, 64, reason="fresh")
        testbed.run(testbed.sim.now + ms(10))
        assert vm.weight == weight + 64

    def test_epoch_boundary_reverts_before_new_epoch_applies(self):
        """A higher epoch on an incoming message is itself the recovery
        signal: the receiver reverts to baselines first, so replayed
        delta-from-baseline frames land on the baseline even when this
        side never detected the outage (one-way partition)."""
        testbed = armed_testbed()
        vm, _ = testbed.create_guest_vm("guest")
        entity = EntityId("x86", "guest")
        baseline = vm.weight
        testbed.ixp_agent.send_tune(entity, 200, reason="pre-fault")
        testbed.run(ms(50))
        assert vm.weight == baseline + 200

        # The peer recovered (epoch 3) and replays a delta-from-baseline.
        testbed.channel.endpoint("ixp").send(
            TuneMessage(entity=entity, delta=64, reason="epoch-replay", epoch=3)
        )
        testbed.run(ms(100))
        assert testbed.detectors["x86"].peer_epoch == 3
        assert vm.weight == baseline + 64  # reverted, then the replay applied


class TestCrashAndStall:
    def test_crash_detected_restart_recovers_with_bumped_epoch(self):
        plan = FaultPlan((
            AgentCrash(agent="ixp", start=ms(300), restart_after=ms(400)),
        ))
        testbed = armed_testbed(plan)
        testbed.run(ms(600))
        assert testbed.ixp_agent.crashed
        # The crashed agent drops incoming traffic (the peer's heartbeats).
        assert testbed.ixp_agent.dropped_while_crashed > 0
        assert testbed.detectors["x86"].state == PEER_DOWN
        # A dead manager must not accuse its (healthy) peer.
        assert states(testbed.detectors["ixp"]) == [PEER_UP]

        testbed.run(seconds(2))
        assert not testbed.ixp_agent.crashed
        assert testbed.ixp_agent.epoch == 1  # restart bump
        assert testbed.detectors["x86"].state == PEER_UP
        assert states(testbed.detectors["ixp"]) == [PEER_UP]

    def test_crash_without_restart_stays_down(self):
        plan = FaultPlan((AgentCrash(agent="ixp", start=ms(300)),))
        testbed = armed_testbed(plan)
        testbed.run(seconds(2))
        assert testbed.ixp_agent.crashed
        assert testbed.detectors["x86"].state == PEER_DOWN

    def test_stall_defers_messages_then_flushes_in_order(self):
        testbed = Testbed(TestbedConfig(seed=3))
        vm, _ = testbed.create_guest_vm("guest")
        entity = EntityId("x86", "guest")
        baseline = vm.weight
        testbed.run(ms(10))

        testbed.x86_agent.stall(ms(50))
        assert testbed.x86_agent.stalled
        testbed.ixp_agent.send_tune(entity, 64)
        testbed.ixp_agent.send_tune(entity, 32)
        testbed.run(testbed.sim.now + ms(20))
        assert vm.weight == baseline  # both deferred, not dropped
        testbed.run(testbed.sim.now + ms(60))
        assert not testbed.x86_agent.stalled
        assert vm.weight == baseline + 96

    def test_scripted_stall_via_injector(self):
        plan = FaultPlan((ManagerStall(agent="x86", start=ms(100), duration=ms(30)),))
        testbed = armed_testbed(plan)
        testbed.run(ms(110))
        assert testbed.x86_agent.stalled
        testbed.run(ms(200))
        assert not testbed.x86_agent.stalled


class TestDeadLetterFeed:
    def test_one_way_partition_detected_through_dead_letters(self):
        """Over the reliable layer, a one-way partition starves no
        heartbeats at the *sending* side — its frames just die. The
        dead-letter feed must still force DOWN, and recovery must wait
        for real evidence (ack progress or a sustained heartbeat streak),
        then replay-capable policies get their epoch bump."""
        plan = FaultPlan((
            ChannelBlackout(start=ms(500), duration=ms(600), direction="x86"),
        ))
        testbed = armed_testbed(plan, reliable=True)
        vm, _ = testbed.create_guest_vm("guest")
        entity = EntityId("ixp", "guest")

        def trigger_loop(sim):
            while True:
                if testbed.x86_agent.peer_available:
                    testbed.x86_agent.send_trigger(entity, reason="exercise")
                yield sim.timeout(ms(40))

        testbed.sim.spawn(trigger_loop(testbed.sim))
        testbed.run(ms(1100))
        detector = testbed.detectors["x86"]
        assert detector.dead_letters_seen > 0
        assert PEER_DOWN in states(detector)
        # The starved side: direction="x86" blocks the x86 sender, so the
        # ixp detector stops hearing heartbeats and goes DOWN on silence.
        assert PEER_DOWN in states(testbed.detectors["ixp"])
        testbed.run(seconds(3))
        assert detector.state == PEER_UP
        assert testbed.detectors["ixp"].state == PEER_UP
