"""Acceptance tests for the reliable coordination layer under heavy loss.

The bar (ISSUE 1): at ``loss_probability = 0.3`` with the reliable layer
enabled, a seeded RUBiS coordination run applies >= 99% of its Tune frames
(dead-letters < 1%), stays bit-reproducible across two runs with the same
seed — and the raw-channel paper figures are untouched by the new layer.
"""

from repro.apps.rubis import RubisConfig, deploy_rubis
from repro.experiments import run_rubis
from repro.sim import ms, seconds
from repro.testbed import ChannelConfig, Testbed, TestbedConfig


def _reliable_rubis_run(seed=3):
    config = RubisConfig(
        coordinated=True,
        num_sessions=40,
        requests_per_session=10,
        think_time_mean=ms(300),
        warmup=seconds(4),
        testbed=TestbedConfig(
            seed=seed,
            channel=ChannelConfig(loss_probability=0.3, reliable=True),
        ),
    )
    deployment = deploy_rubis(config)
    deployment.run(seconds(24))
    # Let in-flight frames drain so accounting is end-of-story, not a
    # snapshot mid-retransmission.
    deployment.run(seconds(2))
    return deployment


class TestReliableRubisUnderLoss:
    def test_99_percent_of_tunes_applied(self):
        deployment = _reliable_rubis_run()
        sender = deployment.testbed.ixp_agent.endpoint
        receiver = deployment.testbed.x86_agent

        assert deployment.testbed.channel.messages_lost > 0  # loss was real
        assert sender.frames_sent > 50  # the policy was actually busy
        settled = sender.frames_acked + sender.dead_lettered
        assert sender.frames_sent - settled <= sender.inflight
        assert sender.dead_lettered < 0.01 * sender.frames_sent
        assert sender.frames_acked >= 0.99 * (sender.frames_sent - sender.inflight)
        # Every acked Tune frame reached the island: delivered = applied.
        assert receiver.tunes_applied == receiver.endpoint.received
        assert receiver.unknown_entities == 0

    def test_bit_reproducible_across_runs(self):
        a = _reliable_rubis_run(seed=3)
        b = _reliable_rubis_run(seed=3)
        assert (
            a.client.stats.throughput.rate_per_second()
            == b.client.stats.throughput.rate_per_second()
        )
        assert a.testbed.ixp_agent.channel_stats() == b.testbed.ixp_agent.channel_stats()
        assert a.testbed.x86_agent.tunes_applied == b.testbed.x86_agent.tunes_applied
        assert a.testbed.channel.messages_lost == b.testbed.channel.messages_lost

    def test_coalescing_bounds_channel_occupancy(self):
        """Per-request Tunes must not translate 1:1 into frames: the
        coalescer merges same-entity deltas while an ack is pending."""
        deployment = _reliable_rubis_run()
        sender = deployment.testbed.ixp_agent.endpoint
        assert deployment.policy.tunes_sent == sender.sent
        assert sender.coalesced > 0
        assert sender.frames_sent < sender.sent


class TestRawChannelUnchanged:
    def test_default_testbed_keeps_raw_mailbox(self):
        testbed = Testbed(TestbedConfig(seed=1))
        assert testbed.reliable_channel is None
        assert testbed.ixp_agent.endpoint is testbed.channel.endpoint("ixp")
        assert testbed.ixp_agent.channel_stats() == {}

    def test_raw_figures_unaffected_by_reliable_code(self):
        """The paper's artefacts run over the raw channel; its delivery
        path must not have picked up frames/acks. A coordinated run's sent
        count equals the x86 deliveries (lossless default channel)."""
        result = run_rubis(
            True,
            duration=seconds(10),
            seed=2,
            config=RubisConfig(
                num_sessions=20, requests_per_session=6, warmup=seconds(2)
            ),
        )
        assert result.channel_stats == {}
        assert result.tunes_applied > 0
