"""Failure injection: coordination must degrade gracefully, not break.

The prototype's PCI-config-space mailbox is unacknowledged; a lost Tune is
simply a stale weight until the next one. These tests drop coordination
messages (and entire message classes) and check the platform keeps
working and the policies re-converge. Loss is configured the supported
way — ``ChannelConfig(loss_probability=...)`` — so the testbed wires the
lossy channel (and its named RNG stream) itself.
"""

import pytest

from repro.apps.rubis import RubisConfig, deploy_rubis
from repro.interconnect import CoordinationChannel
from repro.platform import EntityId
from repro.sim import RandomStreams, Simulator, ms, seconds
from repro.testbed import ChannelConfig, Testbed, TestbedConfig


class TestLossyChannel:
    def test_loss_probability_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CoordinationChannel(sim, loss_probability=1.5)
        with pytest.raises(ValueError):
            CoordinationChannel(sim, loss_probability=0.5)  # rng missing

    def test_channel_config_validates_loss_probability(self):
        """Satellite of the fault-domain work: a bad sweep value fails at
        config construction with the offending value, not mid-build."""
        with pytest.raises(ValueError, match="loss_probability"):
            ChannelConfig(loss_probability=1.0)
        with pytest.raises(ValueError, match="-0.1"):
            ChannelConfig(loss_probability=-0.1)
        with pytest.raises(ValueError, match="latency"):
            ChannelConfig(latency=-1)
        with pytest.raises(ValueError, match="reliable_max_retries"):
            ChannelConfig(reliable_max_retries=-1)
        # The valid range boundary: 0 is lossless, just-below-1 is legal.
        ChannelConfig(loss_probability=0.0)
        ChannelConfig(loss_probability=0.999)

    def test_messages_dropped_at_configured_rate(self):
        sim = Simulator()
        rng = RandomStreams(7).stream("loss")
        channel = CoordinationChannel(sim, latency=0, loss_probability=0.5, rng=rng)
        received = []
        channel.endpoint("x86").set_receiver(received.append)
        for i in range(400):
            channel.endpoint("ixp").send(i)
        sim.run()
        assert 120 <= len(received) <= 280
        assert channel.messages_lost == 400 - len(received)

    def test_lossless_by_default(self):
        sim = Simulator()
        channel = CoordinationChannel(sim, latency=0)
        received = []
        channel.endpoint("x86").set_receiver(received.append)
        for i in range(50):
            channel.endpoint("ixp").send(i)
        sim.run()
        assert len(received) == 50


class TestPolicyRobustness:
    def test_tunes_eventually_converge_despite_loss(self):
        """A policy that keeps nudging reaches its target through a lossy
        channel — later messages compensate for dropped ones."""
        testbed = Testbed(
            TestbedConfig(seed=5, channel=ChannelConfig(loss_probability=0.4))
        )
        vm, _ = testbed.create_guest_vm("guest")
        sender = testbed.ixp_agent

        def nudger(sim):
            # Steer toward 512 with bounded steps, re-reading the actual
            # weight each period (closed loop beats lossy channels).
            while vm.weight < 512:
                sender.send_tune(
                    EntityId("x86", "guest"), min(64, 512 - vm.weight)
                )
                yield sim.timeout(ms(10))

        testbed.sim.spawn(nudger(testbed.sim))
        testbed.run(seconds(2))
        assert vm.weight == 512
        assert testbed.channel.messages_lost > 0

    def test_rubis_still_beats_baseline_with_lossy_tunes(self):
        """Even dropping 30% of Tunes, coordination should not be *worse*
        than no coordination (stale weights, not wrong machinery)."""
        def run(coordinated, loss):
            config = RubisConfig(
                coordinated=coordinated,
                num_sessions=40,
                requests_per_session=10,
                think_time_mean=ms(300),
                warmup=seconds(4),
                testbed=TestbedConfig(
                    channel=ChannelConfig(loss_probability=loss),
                    driver_poll_burn_duty=0.5,
                ),
            )
            deployment = deploy_rubis(config)
            assert deployment.testbed.channel.loss_probability == loss
            deployment.run(seconds(24))
            return deployment.client.stats.throughput.rate_per_second()

        base = run(False, 0.0)
        lossy_coord = run(True, 0.3)
        assert lossy_coord > base * 0.9
