"""Failure injection: coordination must degrade gracefully, not break.

The prototype's PCI-config-space mailbox is unacknowledged; a lost Tune is
simply a stale weight until the next one. These tests drop coordination
messages (and entire message classes) and check the platform keeps
working and the policies re-converge.
"""

import pytest

from repro.apps.rubis import RubisConfig, deploy_rubis
from repro.interconnect import CoordinationChannel
from repro.platform import EntityId
from repro.sim import RandomStreams, Simulator, ms, seconds
from repro.testbed import Testbed, TestbedConfig


class TestLossyChannel:
    def test_loss_probability_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CoordinationChannel(sim, loss_probability=1.5)
        with pytest.raises(ValueError):
            CoordinationChannel(sim, loss_probability=0.5)  # rng missing

    def test_messages_dropped_at_configured_rate(self):
        sim = Simulator()
        rng = RandomStreams(7).stream("loss")
        channel = CoordinationChannel(sim, latency=0, loss_probability=0.5, rng=rng)
        received = []
        channel.endpoint("x86").set_receiver(received.append)
        for i in range(400):
            channel.endpoint("ixp").send(i)
        sim.run()
        assert 120 <= len(received) <= 280
        assert channel.messages_lost == 400 - len(received)

    def test_lossless_by_default(self):
        sim = Simulator()
        channel = CoordinationChannel(sim, latency=0)
        received = []
        channel.endpoint("x86").set_receiver(received.append)
        for i in range(50):
            channel.endpoint("ixp").send(i)
        sim.run()
        assert len(received) == 50


class TestPolicyRobustness:
    def _lossy_testbed(self, loss):
        testbed = Testbed(TestbedConfig(seed=5))
        # Swap in a lossy channel after construction: rebind endpoints.
        lossy = CoordinationChannel(
            testbed.sim,
            latency=testbed.channel.latency,
            loss_probability=loss,
            rng=testbed.rng.stream("channel-loss"),
        )
        return testbed, lossy

    def test_tunes_eventually_converge_despite_loss(self):
        """A policy that keeps nudging reaches its target through a lossy
        channel — later messages compensate for dropped ones."""
        testbed, lossy = self._lossy_testbed(loss=0.4)
        vm, _ = testbed.create_guest_vm("guest")
        from repro.coordination import CoordinationAgent

        sender = CoordinationAgent(testbed.sim, testbed.ixp, lossy.endpoint("ixp"))
        CoordinationAgent(
            testbed.sim, testbed.x86, lossy.endpoint("x86"), handler_vm=testbed.dom0
        )

        def nudger(sim):
            # Steer toward 512 with bounded steps, re-reading the actual
            # weight each period (closed loop beats lossy channels).
            while vm.weight < 512:
                sender.send_tune(
                    EntityId("x86", "guest"), min(64, 512 - vm.weight)
                )
                yield sim.timeout(ms(10))

        testbed.sim.spawn(nudger(testbed.sim))
        testbed.run(seconds(2))
        assert vm.weight == 512
        assert lossy.messages_lost > 0

    def test_rubis_still_beats_baseline_with_lossy_tunes(self):
        """Even dropping 30% of Tunes, coordination should not be *worse*
        than no coordination (stale weights, not wrong machinery)."""
        def run(coordinated, loss):
            config = RubisConfig(
                coordinated=coordinated,
                num_sessions=40,
                requests_per_session=10,
                think_time_mean=ms(300),
                warmup=seconds(4),
            )
            deployment = deploy_rubis(config)
            if coordinated and loss:
                channel = deployment.testbed.channel
                channel.loss_probability = 0.3
                channel.rng = deployment.testbed.rng.stream("loss")
            deployment.run(seconds(24))
            return deployment.client.stats.throughput.rate_per_second()

        base = run(False, 0.0)
        lossy_coord = run(True, 0.3)
        assert lossy_coord > base * 0.9
