"""End-to-end packet conservation on the full testbed.

Every packet a client puts on the wire must be accounted for somewhere:
delivered to a guest NIC, dropped at a counted drop point (flow queue,
ring, NIC overflow), or still in flight in a queue. Nothing vanishes.
"""

from hypothesis import given, settings, strategies as st

from repro import Testbed, TestbedConfig
from repro.net import Packet
from repro.sim import ms, seconds


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # destination vm index
            st.integers(min_value=64, max_value=1400),  # size
            st.integers(min_value=0, max_value=2_000_000),  # send gap ns
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_every_packet_accounted_for(sends):
    testbed = Testbed(TestbedConfig(seed=1))
    vm_a, nic_a = testbed.create_guest_vm("vm-a", nic_rx_capacity=16)
    vm_b, nic_b = testbed.create_guest_vm("vm-b", nic_rx_capacity=16)
    client = testbed.add_client_host("client")
    # Deliberately leave the guests idle: NIC queues may overflow, and
    # every overflow must be counted.

    def sender(sim):
        for which, size, gap in sends:
            destination = "vm-a" if which == 0 else "vm-b"
            client.nic.send(Packet(src="client", dst=destination, size=size))
            if gap:
                yield sim.timeout(gap)
        if True:
            yield sim.timeout(0)

    testbed.sim.spawn(sender(testbed.sim))
    testbed.run(seconds(3))

    sent = len(sends)
    delivered = nic_a.rx_count + nic_b.rx_count
    nic_dropped = nic_a.rx_dropped + nic_b.rx_dropped
    flow_dropped = sum(q.dropped for q in testbed.ixp.flow_queues.values())
    in_flight = (
        len(testbed.ixp.ingress)
        + sum(len(q) for q in testbed.ixp.flow_queues.values())
        + len(testbed.rx_ring)
        + len(testbed.bridge._ingress)
    )
    assert delivered + nic_dropped + flow_dropped + in_flight == sent


def test_rx_queue_backlog_is_not_a_loss():
    """Packets sitting in an unread NIC queue still count as delivered."""
    testbed = Testbed(TestbedConfig(seed=2))
    vm, nic = testbed.create_guest_vm("vm", nic_rx_capacity=64)
    client = testbed.add_client_host("client")
    for _ in range(10):
        client.nic.send(Packet(src="client", dst="vm", size=200))
    testbed.run(seconds(1))
    assert nic.rx_count == 10
    assert len(nic.rx_queue) == 10  # nobody consumed them


def test_bidirectional_conversation_conserves_packets():
    testbed = Testbed(TestbedConfig(seed=3))
    vm, nic = testbed.create_guest_vm("vm")
    client = testbed.add_client_host("client")

    def responder(sim):
        while True:
            packet = yield nic.recv()
            yield vm.execute(ms(1))
            nic.send(Packet(src="vm", dst="client", size=packet.size))

    testbed.sim.spawn(responder(testbed.sim))
    for _ in range(25):
        client.nic.send(Packet(src="client", dst="vm", size=300))
    testbed.run(seconds(2))
    assert client.nic.rx_count == 25
