"""Determinism: identical seeds must give bit-identical results."""

from repro.apps.mplayer import MPlayerConfig, deploy_mplayer
from repro.apps.rubis import RubisConfig, deploy_rubis
from repro.sim import ms, seconds
from repro.testbed import TestbedConfig


def _rubis_fingerprint(seed):
    config = RubisConfig(
        num_sessions=8,
        requests_per_session=4,
        think_time_mean=ms(100),
        warmup=seconds(1),
        testbed=TestbedConfig(seed=seed),
    )
    deployment = deploy_rubis(config)
    deployment.run(seconds(6))
    stats = deployment.client.stats
    samples = tuple(
        (key, tuple(stats.responses._samples[key])) for key in sorted(stats.responses.keys())
    )
    return (
        stats.responses.count(),
        samples,
        deployment.testbed.x86.vm("web-server").cpu_time(),
        deployment.testbed.dom0.cpu_time(),
    )


def test_rubis_same_seed_identical():
    assert _rubis_fingerprint(11) == _rubis_fingerprint(11)


def test_rubis_different_seed_differs():
    assert _rubis_fingerprint(11) != _rubis_fingerprint(12)


def _mplayer_fingerprint(seed):
    config = MPlayerConfig(
        testbed=TestbedConfig(seed=seed, driver_poll_burn_duty=0.5)
    )
    deployment = deploy_mplayer(config)
    deployment.run(seconds(5))
    return (
        deployment.dom1_player.frames_decoded,
        deployment.dom2_player.frames_decoded,
        deployment.testbed.x86.vm("mplayer-1").cpu_time(),
        deployment.testbed.ixp.rx.processed,
    )


def test_mplayer_same_seed_identical():
    assert _mplayer_fingerprint(5) == _mplayer_fingerprint(5)


def test_base_and_coordinated_share_workload_randomness():
    """Pairing: the coordinated arm sees the same request sequence."""
    def request_types(coordinated):
        config = RubisConfig(
            num_sessions=4,
            requests_per_session=4,
            think_time_mean=ms(100),
            warmup=0,
            coordinated=coordinated,
            testbed=TestbedConfig(seed=3),
        )
        deployment = deploy_rubis(config)
        deployment.run(seconds(3))
        return deployment.client.requests_sent

    # The arms share the workload RNG; the request count differs only
    # through closed-loop timing (faster responses -> slightly more
    # requests), never wildly.
    base, coord = request_types(False), request_types(True)
    assert abs(base - coord) / base < 0.15
