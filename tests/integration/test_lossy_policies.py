"""Both paper policies must survive a lossy *raw* channel (ISSUE 1).

``tests/integration/test_failure_injection.py`` covers the channel
mechanics; these tests run the actual RUBiS and MPlayer scenarios at
``loss_probability = 0.2`` over the unacknowledged mailbox and assert the
experiments complete with sane statistics — stale weights, never crashes.
"""

import math

from repro.apps.mplayer import MPlayerConfig, deploy_mplayer
from repro.apps.rubis import RubisConfig, deploy_rubis
from repro.coordination.mplayer_policy import STAGE_BITRATE
from repro.sim import ms, seconds
from repro.testbed import ChannelConfig, TestbedConfig

LOSS = 0.2


class TestRubisLossyRaw:
    def test_completes_with_sane_stats(self):
        config = RubisConfig(
            coordinated=True,
            num_sessions=40,
            requests_per_session=10,
            think_time_mean=ms(300),
            warmup=seconds(4),
            testbed=TestbedConfig(seed=7, channel=ChannelConfig(loss_probability=LOSS)),
        )
        deployment = deploy_rubis(config)
        deployment.run(seconds(24))

        testbed = deployment.testbed
        assert testbed.reliable_channel is None  # raw mailbox, by design
        assert testbed.channel.messages_lost > 0
        # The experiment completed and reported sane numbers.
        stats = deployment.client.stats
        assert stats.sessions_completed > 0
        throughput = stats.throughput.rate_per_second()
        assert throughput > 0 and math.isfinite(throughput)
        overall = stats.responses.overall_summary_ms()
        assert 0 < overall.mean < 60_000
        # Lost Tunes mean stale weights, not lost machinery: what did
        # arrive was applied.
        agent = testbed.x86_agent
        assert agent.tunes_applied > 0
        assert agent.tunes_applied == testbed.channel.endpoint("x86").received
        # Lost deltas skew weights off the policy's targets (the stale-
        # weight artefact), but they stay positive and bounded.
        for vm in testbed.x86.guest_vms():
            assert 1 <= vm.weight <= 2048


class TestMPlayerLossyRaw:
    def test_completes_with_sane_stats(self):
        config = MPlayerConfig(
            qos_stage=STAGE_BITRATE,
            testbed=TestbedConfig(seed=7, channel=ChannelConfig(loss_probability=LOSS)),
        )
        deployment = deploy_mplayer(config)
        deployment.run(seconds(25))

        testbed = deployment.testbed
        dom1_fps = deployment.dom1_fps(seconds(5), seconds(25))
        dom2_fps = deployment.dom2_fps(seconds(5), seconds(25))
        assert 0 < dom1_fps < 100 and 0 < dom2_fps < 100
        # The QoS policy actuated; whatever Tunes survived were applied.
        assert deployment.qos_policy.tunes_sent > 0
        assert (
            testbed.x86_agent.tunes_applied
            == testbed.channel.endpoint("x86").received
        )
        for vm in testbed.x86.guest_vms():
            assert 1 <= vm.weight <= 2048
