"""Integration tests: the full two-island platform end to end."""

import pytest

from repro import ChannelConfig, Testbed, TestbedConfig
from repro.net import Packet
from repro.platform import EntityId
from repro.sim import ms, seconds


def echo_vm(testbed, vm, nic):
    """A guest that echoes every request back to its source."""

    def loop(sim):
        while True:
            packet = yield nic.recv()
            yield vm.execute(ms(1), "user")
            nic.send(
                Packet(src=vm.name, dst=packet.src, size=600, kind="resp",
                       payload={"echo_of": packet.pid})
            )

    return testbed.sim.spawn(loop(testbed.sim))


class TestDataPath:
    def test_wire_to_vm_and_back(self):
        testbed = Testbed(TestbedConfig())
        vm, nic = testbed.create_guest_vm("server")
        client = testbed.add_client_host("client")
        echo_vm(testbed, vm, nic)
        request = Packet(src="client", dst="server", size=400, kind="req")
        client.nic.send(request)
        testbed.run(seconds(1))
        received = client.nic.rx_queue.try_get()
        assert received is not None
        assert received.payload["echo_of"] == request.pid

    def test_every_stage_stamped(self):
        testbed = Testbed(TestbedConfig())
        vm, nic = testbed.create_guest_vm("server")
        client = testbed.add_client_host("client")
        request = Packet(src="client", dst="server", size=400, kind="req")
        client.nic.send(request)
        testbed.run(seconds(1))
        stamps = request.stamps
        for stage in ("ixp-rx", "pci-dma", "vif-rx", "bridge", "server.rx"):
            assert stage in stamps, f"missing stage {stage}"
        # Monotonic pipeline traversal.
        assert (
            stamps["ixp-rx"] <= stamps["pci-dma"] <= stamps["vif-rx"]
            <= stamps["bridge"] <= stamps["server.rx"]
        )

    def test_inter_vm_traffic_stays_on_bridge(self):
        testbed = Testbed(TestbedConfig())
        vm_a, nic_a = testbed.create_guest_vm("vm-a")
        vm_b, nic_b = testbed.create_guest_vm("vm-b")
        echo_vm(testbed, vm_b, nic_b)
        nic_a.send(Packet(src="vm-a", dst="vm-b", size=100, kind="req"))
        testbed.run(seconds(1))
        assert nic_a.rx_count == 1
        assert testbed.ixp.rx.processed == 0  # never left the host

    def test_client_to_client_never_reaches_bridge(self):
        testbed = Testbed(TestbedConfig())
        testbed.create_guest_vm("unused")
        client_a = testbed.add_client_host("client-a")
        testbed.add_client_host("client-b")
        client_a.nic.send(Packet(src="client-a", dst="client-b", size=100))
        testbed.run(seconds(1))
        assert testbed.bridge.relayed == 0


class TestCoordinationPath:
    def test_tune_round_trip(self):
        testbed = Testbed(TestbedConfig())
        vm, _nic = testbed.create_guest_vm("guest")
        testbed.ixp_agent.send_tune(testbed.vm_entity("guest"), +128)
        testbed.run(ms(50))
        assert vm.weight == 384
        assert testbed.x86_agent.tunes_applied == 1

    def test_trigger_round_trip(self):
        testbed = Testbed(TestbedConfig())
        vm, _nic = testbed.create_guest_vm("guest")
        testbed.ixp_agent.send_trigger(testbed.vm_entity("guest"))
        testbed.run(ms(50))
        assert vm.vcpus[0].boosted

    def test_channel_latency_respected(self):
        config = TestbedConfig(channel=ChannelConfig(latency=ms(2)))
        testbed = Testbed(config)
        vm, _nic = testbed.create_guest_vm("guest")
        testbed.ixp_agent.send_tune(testbed.vm_entity("guest"), +64)
        testbed.run(ms(1))
        assert vm.weight == 256
        testbed.run(ms(10))
        assert vm.weight == 320

    def test_controller_knows_both_islands_and_entities(self):
        testbed = Testbed(TestbedConfig())
        testbed.create_guest_vm("guest")
        assert testbed.controller.island("x86") is testbed.x86
        assert testbed.controller.island("ixp") is testbed.ixp
        assert testbed.controller.owner_of(EntityId("x86", "guest")) is testbed.x86
        assert testbed.controller.owner_of(EntityId("ixp", "guest")) is testbed.ixp

    def test_vm_without_ixp_has_no_flow_queue(self):
        testbed = Testbed(TestbedConfig())
        testbed.create_guest_vm("local-only", uses_ixp=False)
        assert "local-only" not in testbed.ixp.flow_queues

    def test_duplicate_client_rejected(self):
        testbed = Testbed(TestbedConfig())
        testbed.add_client_host("client")
        with pytest.raises(ValueError):
            testbed.add_client_host("client")
