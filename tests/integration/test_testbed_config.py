"""The ChannelConfig redesign and its flat-kwarg deprecation shim.

Old code wrote ``TestbedConfig(channel_loss_probability=0.3, reliable=True)``;
the channel knobs now live in ``TestbedConfig(channel=ChannelConfig(...))``.
The flat kwargs must keep working — mapped onto the sub-config with exactly
one ``DeprecationWarning`` per process — while pure new-style configs never
warn, and both spellings produce equal configs and equal platforms.
"""

import warnings
from dataclasses import replace

import pytest

import repro.testbed
from repro.sim import ms, us
from repro.testbed import ChannelConfig, Testbed, TestbedConfig


@pytest.fixture
def fresh_warn_latch():
    """Reset the warn-once latch so each test observes its own warning."""
    old = repro.testbed._legacy_channel_warned
    repro.testbed._legacy_channel_warned = False
    yield
    repro.testbed._legacy_channel_warned = old


class TestChannelConfig:
    def test_defaults(self):
        channel = ChannelConfig()
        assert channel.loss_probability == 0.0
        assert channel.reliable is False
        assert channel.hardware is False
        assert channel.effective_latency == channel.latency

    def test_hardware_overrides_latency(self):
        channel = ChannelConfig(latency=ms(2), hardware=True)
        assert channel.effective_latency == us(1)

    def test_testbed_wires_channel_config(self):
        testbed = Testbed(TestbedConfig(channel=ChannelConfig(latency=ms(2))))
        assert testbed.channel.latency == ms(2)
        reliable = Testbed(TestbedConfig(channel=ChannelConfig(reliable=True)))
        assert reliable.reliable_channel is not None


class TestDeprecationShim:
    def test_flat_kwargs_map_onto_channel_and_warn_once(self, fresh_warn_latch):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = TestbedConfig(
                channel_latency=ms(2),
                channel_loss_probability=0.3,
                reliable=True,
                reliable_max_retries=4,
                hardware_coordination=False,
            )
            again = TestbedConfig(reliable=True)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1  # once per process, not per config
        assert "ChannelConfig" in str(deprecations[0].message)
        assert config.channel == ChannelConfig(
            latency=ms(2), loss_probability=0.3, reliable=True,
            reliable_max_retries=4, hardware=False,
        )
        assert again.channel.reliable is True
        # Legacy fields normalise to None: one canonical form.
        assert config.channel_latency is None
        assert config.reliable is None

    def test_old_and_new_spellings_are_equal(self, fresh_warn_latch):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = TestbedConfig(seed=3, channel_loss_probability=0.2, reliable=True)
        new = TestbedConfig(
            seed=3, channel=ChannelConfig(loss_probability=0.2, reliable=True)
        )
        assert old == new
        assert hash(old) == hash(new)

    def test_new_style_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = TestbedConfig(
                seed=2, channel=ChannelConfig(loss_probability=0.1)
            )
            # dataclasses.replace round-trips without re-warning: the
            # legacy fields were normalised to None.
            bumped = replace(config, seed=9)
        assert bumped.channel == config.channel
        assert bumped.seed == 9

    def test_replace_with_legacy_kwarg_still_maps(self, fresh_warn_latch):
        config = TestbedConfig(channel=ChannelConfig(latency=ms(2)))
        with pytest.warns(DeprecationWarning):
            hardware = replace(config, hardware_coordination=True)
        # The override merges into the existing sub-config.
        assert hardware.channel.hardware is True
        assert hardware.channel.latency == ms(2)

    def test_flat_kwargs_drive_a_real_testbed(self, fresh_warn_latch):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            config = TestbedConfig(hardware_coordination=True)
        testbed = Testbed(config)
        assert testbed.channel.latency == us(1)
