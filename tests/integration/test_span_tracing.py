"""End-to-end acceptance tests for causal span tracing (this ISSUE).

The bar: in a traced coordinated run, >= 95% of applied Tunes are
span-linked; spans survive retransmission and Tune coalescing with honest
merged-span bookkeeping; span ids are deterministic across the simulation
kernel's fast path and classic path; and tracing off means tracing *free* —
the application-level results of a run are bit-identical either way.
"""

from dataclasses import replace

from repro.apps.rubis import RubisConfig, deploy_rubis
from repro.coordination import CoordinationAgent, TuneMessage
from repro.interconnect import CoordinationChannel
from repro.platform import EntityId
from repro.sim import Simulator, ms, seconds
from repro.testbed import ChannelConfig, Testbed, TestbedConfig


def _traced_rubis(seed=5, loss=0.0, reliable=False, tracing=True, fastpath=True):
    config = RubisConfig(
        coordinated=True,
        num_sessions=40,
        requests_per_session=10,
        think_time_mean=ms(300),
        warmup=seconds(4),
        testbed=TestbedConfig(
            seed=seed,
            tracing=tracing,
            channel=ChannelConfig(loss_probability=loss, reliable=reliable),
        ),
    )
    deployment = deploy_rubis(config)
    deployment.testbed.sim._fastpath = fastpath
    deployment.run(seconds(16))
    # Drain in-flight frames so loops close before we read the records.
    deployment.run(seconds(2))
    return deployment


class TestEndToEndLinking:
    def test_95_percent_of_applied_tunes_are_span_linked(self):
        deployment = _traced_rubis()
        testbed = deployment.testbed
        collector = testbed.observatory
        assert collector is not None  # tracing=True armed the observatory
        agent = testbed.x86_agent
        applied = agent.tunes_applied + agent.triggers_applied
        assert applied > 100  # the policy was actually busy
        assert collector.link_fraction(applied) >= 0.95
        # Clean channel: no retries, no losses, no merges.
        assert all(r.retries == 0 and not r.coalesced for r in collector.records)

    def test_stage_breakdown_is_sane(self):
        deployment = _traced_rubis()
        collector = deployment.testbed.observatory
        for record in collector.records:
            assert all(latency >= 0 for latency in record.stages.values())
            assert record.total == sum(record.stages.values())
            # The wire stage spans the channel's 150us default latency.
            assert record.stages["wire"] >= deployment.testbed.channel.latency
        report = deployment.testbed.controller.control_loops()
        assert report["applied"] == len(collector.records)
        assert set(report["by_reason"])  # per-reason percentiles exist

    def test_control_loops_empty_when_untraced(self):
        testbed = Testbed(TestbedConfig(seed=1))
        assert testbed.observatory is None
        assert testbed.controller.control_loops() == {}


class TestSpansSurviveLossAndCoalescing:
    def test_retransmitted_and_coalesced_spans_complete(self):
        deployment = _traced_rubis(loss=0.3, reliable=True)
        testbed = deployment.testbed
        collector = testbed.observatory
        sender = testbed.ixp_agent.endpoint

        assert testbed.channel.messages_lost > 0  # loss was real
        assert sender.coalesced > 0  # coalescing was real
        records = collector.records
        assert records
        # Spans rode retransmitted frames to completion.
        retried = [r for r in records if r.retries > 0]
        assert retried
        # Some retransmissions were caused by a lost *data* frame (others
        # by lost acks, which never delay the span's own delivery).
        lost = [r for r in retried if r.losses > 0]
        assert lost
        # A drop of the frame's first attempt delays delivery by a full
        # retransmission round-trip, charged to the wire stage. (A loss
        # can also hit a post-delivery duplicate copy, so not every lost
        # record shows the delay.)
        assert any(r.stages["wire"] > testbed.channel.latency for r in lost)
        assert all(r.stages["wire"] >= testbed.channel.latency for r in records)
        # Absorbed decisions completed through their survivor's frame.
        absorbed = [r for r in records if r.coalesced]
        survivors = [r for r in records if r.merged_from]
        assert absorbed and survivors
        absorbed_ids = {r.span_id for r in absorbed}
        claimed = {sid for r in survivors for sid in r.merged_from}
        assert absorbed_ids <= claimed
        for record in absorbed:
            assert all(latency >= 0 for latency in record.stages.values())
        # Even under 30% loss the observatory explains nearly every apply.
        agent = testbed.x86_agent
        applied = agent.tunes_applied + agent.triggers_applied
        assert collector.link_fraction(applied) >= 0.95

    def test_lossy_traced_run_is_reproducible(self):
        a = _traced_rubis(seed=5, loss=0.3, reliable=True)
        b = _traced_rubis(seed=5, loss=0.3, reliable=True)
        ids_a = [(r.trace_id, r.span_id, r.applied_at) for r in a.testbed.observatory.records]
        ids_b = [(r.trace_id, r.span_id, r.applied_at) for r in b.testbed.observatory.records]
        assert ids_a == ids_b


class TestSpanIdDeterminism:
    def test_span_ids_identical_across_kernel_fastpath(self):
        fast = _traced_rubis(seed=5, fastpath=True)
        classic = _traced_rubis(seed=5, fastpath=False)
        loops_fast = [
            (r.trace_id, r.span_id, r.minted_at, r.applied_at, r.entity)
            for r in fast.testbed.observatory.records
        ]
        loops_classic = [
            (r.trace_id, r.span_id, r.minted_at, r.applied_at, r.entity)
            for r in classic.testbed.observatory.records
        ]
        assert loops_fast == loops_classic


class TestTracingIsFree:
    def test_results_identical_with_tracing_off_and_on(self):
        """Tracing observes; it must never perturb. Same seed, tracing
        toggled: application-level results are bit-identical."""
        traced = _traced_rubis(seed=5, tracing=True)
        plain = _traced_rubis(seed=5, tracing=False)
        assert plain.testbed.observatory is None
        assert (
            traced.client.stats.throughput.rate_per_second()
            == plain.client.stats.throughput.rate_per_second()
        )
        assert (
            traced.testbed.x86_agent.tunes_applied
            == plain.testbed.x86_agent.tunes_applied
        )
        assert (
            traced.client.stats.responses.overall_summary_ms()
            == plain.client.stats.responses.overall_summary_ms()
        )

    def test_untraced_run_mints_nothing(self):
        plain = _traced_rubis(seed=5, tracing=False)
        testbed = plain.testbed
        assert not testbed.span_minter.active
        assert testbed.span_minter.minted == 0
        # Messages crossed the channel without span baggage.
        assert testbed.x86_agent.tunes_applied > 0


class TestUntimestampedApplies:
    def test_sentinel_sent_at_skipped_and_counted(self):
        """Regression (this ISSUE): a Tune built outside an agent carries
        the ``sent_at = -1`` sentinel; recording ``now - (-1)`` would poison
        ``apply_latencies`` with bogus near-``now`` values."""
        from repro.x86 import X86Island
        from repro.ixp import IXPIsland

        sim = Simulator()
        x86 = X86Island(sim)
        ixp = IXPIsland(sim)
        channel = CoordinationChannel(sim)
        x86_agent = CoordinationAgent(
            sim, x86, channel.endpoint("x86"), handler_vm=x86.dom0
        )
        CoordinationAgent(sim, ixp, channel.endpoint("ixp"))
        x86.create_vm("guest")
        sim.run(until=seconds(1))  # make "now" large enough to poison means
        # A raw message injected at the endpoint, bypassing send_tune.
        channel.endpoint("ixp").send(TuneMessage(EntityId("x86", "guest"), +64))
        sim.run(until=seconds(2))
        assert x86_agent.tunes_applied == 1
        assert x86_agent.untimestamped_applies == 1
        assert x86_agent.apply_latencies == []

    def test_agent_sent_messages_still_timed(self):
        deployment = _traced_rubis()
        agent = deployment.testbed.x86_agent
        assert agent.untimestamped_applies == 0
        assert len(agent.apply_latencies) == agent.tunes_applied + agent.triggers_applied


def test_trace_run_result_duration_scales():
    """Smoke the experiment driver at a tiny duration (full CLI smoke
    lives in tests/experiments/test_trace.py)."""
    from repro.experiments import run_traced_rubis

    base = RubisConfig(
        num_sessions=10,
        requests_per_session=4,
        think_time_mean=ms(300),
        warmup=seconds(2),
    )
    result = run_traced_rubis(
        duration=seconds(4), seed=2, destination="/dev/null",
        config=replace(base, testbed=TestbedConfig(seed=2)),
    )
    assert result.loops_completed > 0
    assert result.link_fraction >= 0.95
    assert result.events_written > 0
