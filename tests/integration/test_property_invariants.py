"""Property-based invariants of the schedulers and queue accounting.

These drive the substrates with randomized configurations and assert the
conservation laws that must hold for *any* input: work conservation,
accounting consistency, byte conservation, and completion.
"""

from hypothesis import given, settings, strategies as st

from repro.ixp import BufferPool, FlowQueue
from repro.net import Packet
from repro.sim import Simulator, ms, seconds
from repro.x86 import CreditScheduler, VirtualMachine
from repro.x86.diskio import WeightedIOScheduler

SIM_DURATION = seconds(2)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(min_value=32, max_value=1024), min_size=1, max_size=5),
    st.integers(min_value=1, max_value=3),
)
def test_property_credit_scheduler_work_conservation(weights, num_cpus):
    """With enough hogs, no core is ever idle and all time is accounted."""
    sim = Simulator()
    scheduler = CreditScheduler(sim, num_cpus=num_cpus)
    vms = []
    for index, weight in enumerate(weights):
        vm = VirtualMachine(sim, f"vm{index}", weight=weight)
        scheduler.add_domain(vm)
        vms.append(vm)

        def hog(sim, vm=vm):
            while True:
                yield vm.execute(ms(4))

        sim.spawn(hog(sim))
    sim.run(until=SIM_DURATION)

    total = sum(vm.cpu_time() for vm in vms)
    capacity = num_cpus * SIM_DURATION
    demand_bound = len(vms) * SIM_DURATION  # single-VCPU VMs
    expected = min(capacity, demand_bound)
    assert total >= expected * 0.97
    assert total <= capacity + ms(1)
    # Per-VM time can never exceed wall time (one VCPU each).
    for vm in vms:
        assert 0 <= vm.cpu_time() <= SIM_DURATION + ms(1)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(min_value=64, max_value=1024), min_size=2, max_size=4),
)
def test_property_credit_scheduler_weight_monotonicity(weights):
    """Under saturation, a strictly heavier domain never gets much less."""
    sim = Simulator()
    scheduler = CreditScheduler(sim, num_cpus=1)
    vms = []
    for index, weight in enumerate(weights):
        vm = VirtualMachine(sim, f"vm{index}", weight=weight)
        scheduler.add_domain(vm)
        vms.append(vm)

        def hog(sim, vm=vm):
            while True:
                yield vm.execute(ms(4))

        sim.spawn(hog(sim))
    sim.run(until=seconds(4))

    ranked = sorted(vms, key=lambda vm: vm.weight)
    for lighter, heavier in zip(ranked, ranked[1:]):
        if heavier.weight > lighter.weight * 1.5:
            assert heavier.cpu_time() >= lighter.cpu_time() * 0.9


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=100_000, max_value=5_000_000),  # demand ns
            st.integers(min_value=0, max_value=5_000_000),  # gap ns
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_guest_accounting_matches_vcpu_runtime(pattern):
    """Guest busy time equals the VCPU runtime, for any burst pattern."""
    sim = Simulator()
    scheduler = CreditScheduler(sim, num_cpus=1)
    vm = VirtualMachine(sim, "vm")
    scheduler.add_domain(vm)

    def workload(sim):
        for demand, gap in pattern:
            yield vm.execute(demand)
            if gap:
                yield sim.timeout(gap)

    sim.spawn(workload(sim))
    sim.run(until=seconds(5))
    assert vm.accounting.busy == sum(v.runtime for v in vm.vcpus)
    assert vm.accounting.busy == sum(demand for demand, _ in pattern)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=100, max_value=4000), min_size=1, max_size=40),
)
def test_property_flow_queue_byte_conservation(sizes):
    """Queue byte accounting and pool usage track contents exactly."""
    sim = Simulator()
    pool = BufferPool(sim, capacity_bytes=10_000_000)
    queue = FlowQueue(sim, "q", pool, capacity_bytes=10_000_000)
    for size in sizes:
        assert queue.enqueue(Packet(src="a", dst="b", size=size))
    assert queue.occupancy_bytes == sum(sizes) == pool.in_use

    drained = 0
    for expected_remaining in range(len(sizes) - 1, -1, -1):
        get = queue.get()
        sim.run()
        drained += get.value.size
        assert queue.occupancy_bytes == sum(sizes) - drained
        assert pool.in_use == queue.occupancy_bytes
        assert len(queue) == expected_remaining
    assert pool.in_use == 0


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # queue index
            st.integers(min_value=10_000, max_value=500_000),  # bytes
        ),
        min_size=1,
        max_size=25,
    ),
    st.integers(min_value=50, max_value=400),  # weight of queue 1
)
def test_property_io_scheduler_completes_everything(requests, weight_b):
    """Every submitted request completes, regardless of weights/sizes."""
    sim = Simulator()
    scheduler = WeightedIOScheduler(sim)
    scheduler.register_vm("a", weight=100)
    scheduler.register_vm("b", weight=weight_b)
    events = [
        scheduler.submit("a" if which == 0 else "b", size)
        for which, size in requests
    ]
    sim.run(until=seconds(60))
    assert all(event.processed for event in events)
    assert scheduler.requests_served == len(requests)
    assert all(len(q) == 0 for q in scheduler.queues.values())
