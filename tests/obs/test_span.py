"""Unit tests for span contexts, the shared minter and the Chrome exporter."""

import json

import pytest

from repro.interconnect.reliable import DataFrame
from repro.obs import (
    NO_PARENT,
    SPAN_TRACE_KINDS,
    SpanContext,
    SpanMinter,
    chrome_trace_events,
    export_chrome_trace,
    span_of,
    validate_chrome_trace,
)
from repro.obs.collector import ControlLoopRecord
from repro.coordination.messages import TuneMessage
from repro.sim import Simulator, TraceLog, Tracer


class TestSpanContext:
    def test_root_span_has_no_parent(self):
        span = SpanContext(trace_id=7, span_id=9)
        assert span.parent_id == NO_PARENT
        assert span.merged_from == ()

    def test_absorbing_accumulates_merged_ids(self):
        a = SpanContext(trace_id=1, span_id=1)
        b = SpanContext(trace_id=2, span_id=2)
        c = SpanContext(trace_id=3, span_id=3)
        # b absorbs a, then c absorbs the merged b: c must carry both.
        merged_b = b.absorbing(a)
        assert merged_b.merged_from == (1,)
        merged_c = c.absorbing(merged_b)
        assert merged_c.span_id == 3
        assert set(merged_c.merged_from) == {1, 2}

    def test_absorbing_keeps_own_identity(self):
        survivor = SpanContext(trace_id=5, span_id=50, merged_from=(40,))
        merged = survivor.absorbing(SpanContext(trace_id=6, span_id=60))
        assert merged.trace_id == 5
        assert merged.span_id == 50
        assert 40 in merged.merged_from and 60 in merged.merged_from


class TestSpanOf:
    def test_reads_span_from_message(self):
        span = SpanContext(trace_id=1, span_id=2)
        msg = TuneMessage(entity="x86/vm", delta=+1, span=span)
        assert span_of(msg) is span

    def test_unwraps_reliable_frame_payload(self):
        span = SpanContext(trace_id=1, span_id=2)
        msg = TuneMessage(entity="x86/vm", delta=+1, span=span)
        frame = DataFrame(seq=1, payload=msg)
        assert span_of(frame) is span

    def test_none_for_spanless_and_dict_payloads(self):
        assert span_of(TuneMessage(entity="x86/vm", delta=1)) is None
        assert span_of(DataFrame(seq=1, payload={"raw": True})) is None
        assert span_of(object()) is None


class TestSpanMinter:
    def test_mint_returns_none_when_nobody_listens(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        minter = SpanMinter.shared(tracer)
        assert not minter.active
        assert minter.mint("test", entity="e") is None
        assert minter.minted == 0

    def test_mint_returns_none_when_tracer_disabled(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=False)
        tracer.subscribe(TraceLog(), kinds=["span-minted"])
        assert SpanMinter.shared(tracer).mint("test") is None

    def test_shared_returns_one_minter_per_tracer(self):
        sim = Simulator()
        tracer = Tracer(sim)
        assert SpanMinter.shared(tracer) is SpanMinter.shared(tracer)
        assert SpanMinter.shared(Tracer(sim)) is not SpanMinter.shared(tracer)

    def test_ids_are_deterministic_monotonic(self):
        def mint_three():
            sim = Simulator()
            tracer = Tracer(sim, enabled=True)
            tracer.subscribe(TraceLog(), kinds=["span-minted"])
            minter = SpanMinter.shared(tracer)
            return [minter.mint("test", entity="e") for _ in range(3)]

        first, second = mint_three(), mint_three()
        assert [(s.trace_id, s.span_id) for s in first] == [
            (s.trace_id, s.span_id) for s in second
        ]
        assert [s.span_id for s in first] == [1, 2, 3]

    def test_mint_emits_span_minted_with_payload(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        log = TraceLog()
        tracer.subscribe(log, kinds=["span-minted"])
        span = SpanMinter.shared(tracer).mint(
            "policy", entity="x86/vm", reason="read", op="tune"
        )
        (record,) = log.of_kind("span-minted")
        assert record.payload["trace"] == span.trace_id
        assert record.payload["span"] == span.span_id
        assert record.payload["reason"] == "read"


def _loop(span_id=1, **overrides):
    base = dict(
        trace_id=span_id,
        span_id=span_id,
        entity="x86/vm",
        reason="read",
        op="tune",
        minted_at=1_000,
        sent_at=2_000,
        wire_at=3_000,
        recv_at=153_000,
        handle_at=160_000,
        applied_at=161_000,
        outcome="applied",
    )
    base.update(overrides)
    return ControlLoopRecord(**base)


class TestChromeExporter:
    def test_events_cover_stages_and_flows(self):
        events = chrome_trace_events([_loop()])
        phases = {event["ph"] for event in events}
        assert {"M", "X", "s", "f"} <= phases
        slices = [e for e in events if e["ph"] == "X"]
        categories = {e["cat"] for e in slices}
        assert {"wire", "handle"} <= categories
        for event in slices:
            assert event["dur"] >= 0

    def test_export_and_validate_roundtrip(self, tmp_path):
        destination = tmp_path / "trace.json"
        count = export_chrome_trace(
            [_loop(1), _loop(2, op="trigger", restored_at=500_000)],
            str(destination),
            metadata={"experiment": "unit"},
        )
        document = json.loads(destination.read_text())
        assert len(document["traceEvents"]) == count
        assert document["otherData"]["experiment"] == "unit"
        validate_chrome_trace(document)  # must not raise

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"no": "events"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})


def test_span_kind_catalogue_is_stable():
    """The collector's subscription contract: every lifecycle kind present."""
    for kind in ("span-minted", "span-applied", "span-coalesced",
                 "span-retransmit", "span-restored", "span-dead"):
        assert kind in SPAN_TRACE_KINDS
