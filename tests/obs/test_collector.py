"""Unit tests for the control-loop observatory's event assembly.

Feeds hand-scheduled span trace events through a real Tracer/Simulator and
checks that the collector reassembles loops, attributes coalesced spans,
patches lease restores, and summarizes stages correctly.
"""

import pytest

from repro.obs import CONTROL_LOOP_STAGES, ControlLoopCollector
from repro.sim import Simulator, Tracer


def make_collector():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    return sim, tracer, ControlLoopCollector(sim, tracer)


def emit_at(sim, tracer, when, kind, **payload):
    sim.call_at(when, lambda: tracer.emit("test", kind, **payload))


def drive_loop(sim, tracer, span=1, trace=1, base=0, op="tune", **applied_extra):
    """Schedule a full clean lifecycle offset by ``base`` ns."""
    emit_at(sim, tracer, base + 10, "span-minted", trace=trace, span=span,
            entity="x86/vm", reason="read", op=op, pid=42, pkt_rx=base + 5)
    emit_at(sim, tracer, base + 20, "span-sent", trace=trace, span=span)
    emit_at(sim, tracer, base + 30, "span-wire", trace=trace, span=span)
    emit_at(sim, tracer, base + 130, "span-recv", trace=trace, span=span)
    emit_at(sim, tracer, base + 150, "span-handle", trace=trace, span=span)
    emit_at(sim, tracer, base + 155, "span-applied", trace=trace, span=span,
            entity="x86/vm", op=op, outcome="applied", merged_from=(),
            **applied_extra)


class TestLoopAssembly:
    def test_clean_loop_stage_latencies(self):
        sim, tracer, collector = make_collector()
        drive_loop(sim, tracer)
        sim.run()
        (record,) = collector.records
        assert record.trace_id == 1 and record.span_id == 1
        assert record.stages == {
            "classify-send": 10, "ring": 10, "wire": 100,
            "handle": 20, "apply": 5,
        }
        assert record.total == 145
        assert record.packet == 42
        assert record.outcome == "applied"
        assert not record.coalesced
        assert collector.stats().open == 0

    def test_retransmission_counted_first_wire_attempt_kept(self):
        sim, tracer, collector = make_collector()
        emit_at(sim, tracer, 10, "span-minted", trace=1, span=1,
                entity="x86/vm", reason="read", op="tune")
        emit_at(sim, tracer, 20, "span-sent", trace=1, span=1)
        emit_at(sim, tracer, 30, "span-wire", trace=1, span=1)
        emit_at(sim, tracer, 31, "span-lost", trace=1, span=1)
        emit_at(sim, tracer, 300, "span-retransmit", trace=1, span=1, retry=1)
        emit_at(sim, tracer, 301, "span-wire", trace=1, span=1)
        emit_at(sim, tracer, 400, "span-recv", trace=1, span=1)
        emit_at(sim, tracer, 420, "span-handle", trace=1, span=1)
        emit_at(sim, tracer, 425, "span-applied", trace=1, span=1,
                entity="x86/vm", op="tune", outcome="applied", merged_from=())
        sim.run()
        (record,) = collector.records
        assert record.retries == 1
        assert record.losses == 1
        # Wire stage starts at the FIRST put: retransmission delay is wire time.
        assert record.wire_at == 30
        assert record.stages["wire"] == 370

    def test_coalesced_spans_complete_with_survivor(self):
        sim, tracer, collector = make_collector()
        # Absorbed decision: minted and sent, then merged behind span 2.
        emit_at(sim, tracer, 10, "span-minted", trace=1, span=1,
                entity="x86/vm", reason="read", op="tune")
        emit_at(sim, tracer, 15, "span-sent", trace=1, span=1)
        emit_at(sim, tracer, 40, "span-minted", trace=2, span=2,
                entity="x86/vm", reason="read", op="tune")
        emit_at(sim, tracer, 45, "span-sent", trace=2, span=2)
        emit_at(sim, tracer, 50, "span-coalesced", trace=1, span=1, into=2)
        emit_at(sim, tracer, 60, "span-wire", trace=2, span=2)
        emit_at(sim, tracer, 160, "span-recv", trace=2, span=2)
        emit_at(sim, tracer, 170, "span-handle", trace=2, span=2)
        emit_at(sim, tracer, 175, "span-applied", trace=2, span=2,
                entity="x86/vm", op="tune", outcome="applied", merged_from=(1,))
        sim.run()
        assert len(collector.records) == 2
        survivor = next(r for r in collector.records if r.span_id == 2)
        absorbed = next(r for r in collector.records if r.span_id == 1)
        assert survivor.merged_from == (1,)
        assert not survivor.coalesced
        assert absorbed.coalesced
        # Absorbed keeps its own decision/send times but inherits the
        # survivor's wire/handle/apply: its loop includes the merge wait.
        assert absorbed.minted_at == 10 and absorbed.sent_at == 15
        assert absorbed.wire_at == survivor.wire_at == 60
        assert absorbed.applied_at == survivor.applied_at == 175
        assert absorbed.total == 165
        assert collector.stats().coalesced_applied == 1

    def test_cancelled_and_dead_close_open_spans(self):
        sim, tracer, collector = make_collector()
        emit_at(sim, tracer, 10, "span-minted", trace=1, span=1,
                entity="e", reason="r", op="tune")
        emit_at(sim, tracer, 20, "span-cancelled", trace=1, span=1)
        emit_at(sim, tracer, 30, "span-minted", trace=2, span=2,
                entity="e", reason="r", op="tune")
        emit_at(sim, tracer, 40, "span-dead", trace=2, span=2, retries=8)
        sim.run()
        assert collector.records == []
        assert collector.cancelled == 1
        assert collector.dead_lettered == 1
        assert collector.stats().open == 0

    def test_trigger_restore_patches_record(self):
        sim, tracer, collector = make_collector()
        drive_loop(sim, tracer, op="trigger")
        emit_at(sim, tracer, 5000, "span-restored", trace=1, span=1,
                entity="x86/vm", level=256)
        sim.run()
        (record,) = collector.records
        assert record.op == "trigger"
        assert record.restored_at == 5000
        assert collector.restored == 1

    def test_missing_intermediate_events_fall_back(self):
        """An applied span with only minted/applied events still completes
        (degenerate stages, no crash) — producers may be partially gated."""
        sim, tracer, collector = make_collector()
        emit_at(sim, tracer, 10, "span-minted", trace=1, span=1,
                entity="e", reason="r", op="tune")
        emit_at(sim, tracer, 50, "span-applied", trace=1, span=1,
                entity="e", op="tune", outcome="applied", merged_from=())
        sim.run()
        (record,) = collector.records
        assert record.total == 40
        assert all(latency >= 0 for latency in record.stages.values())

    def test_events_for_unminted_spans_are_dropped(self):
        sim, tracer, collector = make_collector()
        emit_at(sim, tracer, 50, "span-applied", trace=9, span=9,
                entity="e", op="tune", outcome="applied", merged_from=())
        sim.run()
        assert collector.records == []


class TestIntrospection:
    def test_link_fraction_counts_distinct_actuations(self):
        sim, tracer, collector = make_collector()
        drive_loop(sim, tracer, span=1, trace=1, base=0)
        drive_loop(sim, tracer, span=2, trace=2, base=1000)
        sim.run()
        assert collector.link_fraction(2) == 1.0
        assert collector.link_fraction(4) == 0.5
        assert collector.link_fraction(0) == 0.0

    def test_stage_percentiles_grouping(self):
        sim, tracer, collector = make_collector()
        drive_loop(sim, tracer, span=1, trace=1, base=0)
        drive_loop(sim, tracer, span=2, trace=2, base=1000)
        sim.run()
        by_entity = collector.stage_percentiles(by="entity")
        assert set(by_entity) == {"x86/vm"}
        stages = by_entity["x86/vm"]
        assert set(stages) == set(CONTROL_LOOP_STAGES) | {"total"}
        assert stages["total"].count == 2
        assert stages["wire"].mean == 100
        with pytest.raises(ValueError):
            collector.stage_percentiles(by="pid")

    def test_report_shape(self):
        sim, tracer, collector = make_collector()
        drive_loop(sim, tracer)
        sim.run()
        report = collector.report()
        assert report["minted"] == report["applied"] == 1
        assert "read" in report["by_reason"]
        assert report["open"] == 0
