"""Tests for the egress-side classifier and weighted Tx scheduler."""

import pytest

from repro.interconnect import MessageRing, PCIeBus
from repro.ixp import IXPIsland, IXPParams
from repro.net import Link, Packet
from repro.platform import EntityId
from repro.sim import Simulator, ms, seconds


def build(egress=True):
    sim = Simulator()
    island = IXPIsland(sim, IXPParams())
    pcie = PCIeBus(sim)
    rx_ring = MessageRing(sim, "rx")
    tx_ring = MessageRing(sim, "tx")
    island.attach_host(pcie, rx_ring, tx_ring)
    received = []
    link = Link(sim, "to-client", latency=0, bandwidth_bytes_per_ns=10.0)
    link.connect(received.append)
    island.connect_peer("client", link)
    if egress:
        island.enable_egress_qos()
    return sim, island, tx_ring, received


class TestEgressPath:
    def test_packets_still_reach_the_wire(self):
        sim, island, tx_ring, received = build()
        island.register_egress_flow("vm-a")
        tx_ring.push(Packet(src="vm-a", dst="client", size=500))
        sim.run(until=ms(10))
        assert len(received) == 1

    def test_unregistered_source_uses_default_queue(self):
        sim, island, tx_ring, received = build()
        tx_ring.push(Packet(src="stranger", dst="client", size=500))
        sim.run(until=ms(10))
        assert len(received) == 1

    def test_requires_host_attachment_order(self):
        sim = Simulator()
        island = IXPIsland(sim)
        with pytest.raises(RuntimeError):
            island.enable_egress_qos()

    def test_double_enable_rejected(self):
        sim, island, tx_ring, received = build()
        with pytest.raises(RuntimeError):
            island.enable_egress_qos()

    def test_register_flow_requires_enable(self):
        sim, island, tx_ring, received = build(egress=False)
        with pytest.raises(RuntimeError):
            island.register_egress_flow("vm-a")


class TestWeightedEgress:
    def _flood(self, island, tx_ring, count_per_vm=200, size=1000):
        for i in range(count_per_vm):
            tx_ring.push(Packet(src="vm-a", dst="client", size=size))
            tx_ring.push(Packet(src="vm-b", dst="client", size=size))

    def test_equal_weights_share_evenly(self):
        sim, island, tx_ring, received = build()
        queue_a = island.register_egress_flow("vm-a", weight=1)
        queue_b = island.register_egress_flow("vm-b", weight=1)
        self._flood(island, tx_ring)
        sim.run(until=ms(200))
        assert abs(queue_a.sent - queue_b.sent) <= 2

    def test_heavier_flow_transmits_more(self):
        """Mid-drain, the 3x-weight flow is ~3x ahead."""
        sim, island, tx_ring, received = build()
        queue_a = island.register_egress_flow("vm-a", weight=3)
        queue_b = island.register_egress_flow("vm-b", weight=1)
        self._flood(island, tx_ring, count_per_vm=400)
        sim.run(until=ms(300))  # not all drained yet
        assert queue_a.sent + queue_b.sent > 50
        if queue_b.sent > 0 and len(queue_a.pending) > 0:
            assert queue_a.sent / max(1, queue_b.sent) > 2.0

    def test_rate_cap_limits_throughput(self):
        sim, island, tx_ring, received = build()
        island.register_egress_flow("vm-a", rate_bytes_per_s=100_000)  # 100 KB/s
        for _ in range(500):
            tx_ring.push(Packet(src="vm-a", dst="client", size=1000))
        sim.run(until=seconds(2))
        queue = island.egress.queues["vm-a"]
        # ~100 packets/s at 1 KB each (token bucket allows 1 burst-second).
        assert queue.bytes_sent <= 100_000 * 3
        assert len(queue.pending) > 0  # clearly throttled

    def test_tail_drop_when_queue_full(self):
        sim, island, tx_ring, received = build()
        queue = island.register_egress_flow("vm-a", rate_bytes_per_s=1000)
        queue.capacity_packets = 10
        for _ in range(40):
            island.egress.submit(Packet(src="vm-a", dst="client", size=1000))
        assert queue.dropped == 30

    def test_tune_adjusts_egress_weight(self):
        sim, island, tx_ring, received = build()
        queue = island.register_egress_flow("vm-a", weight=2)
        island.apply_tune(EntityId("ixp", "egress:vm-a"), +3)
        assert queue.weight == 5
        island.apply_tune(EntityId("ixp", "egress:vm-a"), -100)
        assert queue.weight == 1  # floor

    def test_work_conserving_when_one_flow_idle(self):
        sim, island, tx_ring, received = build()
        island.register_egress_flow("vm-a", weight=1)
        island.register_egress_flow("vm-b", weight=1000)
        for _ in range(100):
            tx_ring.push(Packet(src="vm-a", dst="client", size=500))
        sim.run(until=seconds(1))
        assert len(received) == 100
