"""Tests for scratchpad rings, hardware signals and the two-stage Rx."""

import pytest

from repro.interconnect import MessageRing, PCIeBus
from repro.ixp import IXPIsland, IXPParams, MemoryHierarchy, classify_by_destination
from repro.ixp.scratch import HardwareSignal, ScratchRing
from repro.net import Packet
from repro.sim import Simulator, ms, us


class TestHardwareSignal:
    def test_assert_wakes_waiter(self):
        sim = Simulator()
        signal = HardwareSignal(sim)
        woken = []

        def waiter(sim):
            yield signal.wait()
            woken.append(sim.now)

        sim.spawn(waiter(sim))
        sim.call_in(us(5), signal.assert_signal)
        sim.run()
        assert woken == [us(5)]

    def test_edge_semantics_without_waiter(self):
        sim = Simulator()
        signal = HardwareSignal(sim)
        signal.assert_signal()  # nobody waiting: edge lost
        woken = []

        def waiter(sim):
            yield signal.wait()
            woken.append(True)

        sim.spawn(waiter(sim))
        sim.run(until=ms(1))
        assert woken == []

    def test_one_assert_wakes_one_waiter(self):
        sim = Simulator()
        signal = HardwareSignal(sim)
        woken = []

        def waiter(sim, tag):
            yield signal.wait()
            woken.append(tag)

        sim.spawn(waiter(sim, "a"))
        sim.spawn(waiter(sim, "b"))
        sim.call_in(us(1), signal.assert_signal)
        sim.run(until=ms(1))
        assert woken == ["a"]


class TestScratchRing:
    def _ring(self, capacity=4):
        sim = Simulator()
        return sim, ScratchRing(sim, MemoryHierarchy(), capacity=capacity)

    def test_put_get_roundtrip_with_latency(self):
        sim, ring = self._ring()
        results = []

        def producer(sim):
            ok = yield from ring.put("payload")
            results.append(("put", ok, sim.now))

        def consumer(sim):
            item = yield from ring.get()
            results.append(("got", item, sim.now))

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert ("put", True, results[0][2]) == results[0]
        assert results[1][1] == "payload"
        # Each side pays one scratchpad access.
        scratch = MemoryHierarchy().latencies.scratch
        assert results[1][2] >= 2 * scratch

    def test_ring_full_rejects(self):
        sim, ring = self._ring(capacity=2)

        def producer(sim):
            outcomes = []
            for i in range(3):
                ok = yield from ring.put(i)
                outcomes.append(ok)
            return outcomes

        proc = sim.spawn(producer(sim))
        sim.run()
        assert proc.value == [True, True, False]
        assert ring.full_rejections == 1

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ScratchRing(sim, MemoryHierarchy(), capacity=0)


class TestTwoStageRx:
    def _island(self, two_stage):
        sim = Simulator()
        island = IXPIsland(sim, IXPParams(two_stage_rx=two_stage))
        island.classifier.add_rule("by-dst", classify_by_destination)
        pcie = PCIeBus(sim)
        rx_ring = MessageRing(sim, "rx")
        tx_ring = MessageRing(sim, "tx")
        island.attach_host(pcie, rx_ring, tx_ring)
        island.register_vm_flow("vm1")
        return sim, island, rx_ring

    def test_two_stage_delivers_like_single_stage(self):
        for two_stage in (False, True):
            sim, island, rx_ring = self._island(two_stage)
            for _ in range(20):
                island.wire_sink()(Packet(src="c", dst="vm1", size=700))
            sim.run(until=ms(20))
            assert island.rx.processed == 20, f"two_stage={two_stage}"
            assert rx_ring.pushed == 20

    def test_two_stage_uses_second_microengine(self):
        sim, island, _ = self._island(True)
        island.wire_sink()(Packet(src="c", dst="vm1", size=700))
        sim.run(until=ms(5))
        assert island.microengines[1].busy_time > 0  # classifier ME worked
        assert island.microengines[0].busy_time > 0  # rx ME worked

    def test_single_stage_leaves_classifier_me_idle(self):
        sim, island, _ = self._island(False)
        island.wire_sink()(Packet(src="c", dst="vm1", size=700))
        sim.run(until=ms(5))
        assert island.microengines[1].busy_time == 0

    def test_two_stage_adds_ring_latency(self):
        stamps = {}
        for two_stage in (False, True):
            sim, island, rx_ring = self._island(two_stage)
            packet = Packet(src="c", dst="vm1", size=700)
            island.wire_sink()(packet)
            sim.run(until=ms(5))
            popped = rx_ring.pop()
            stamps[two_stage] = popped.latency("ixp-rx", "pci-dma")
        assert stamps[True] > stamps[False]

    def test_classified_hooks_fire_in_two_stage_mode(self):
        sim, island, _ = self._island(True)
        seen = []
        island.add_classified_hook(lambda p, f: seen.append(f))
        island.wire_sink()(Packet(src="c", dst="vm1", size=700))
        sim.run(until=ms(5))
        assert seen == ["vm1"]
