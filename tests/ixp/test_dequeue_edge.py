"""Edge cases of the weighted dequeue engine's thread apportionment."""


from repro.interconnect import MessageRing, PCIeBus
from repro.ixp import IXPIsland, IXPParams
from repro.net import Packet
from repro.platform import EntityId
from repro.sim import Simulator, ms


def build(num_threads=8):
    sim = Simulator()
    island = IXPIsland(sim, IXPParams(dequeue_threads=num_threads))
    pcie = PCIeBus(sim)
    rx_ring = MessageRing(sim, "rx")
    tx_ring = MessageRing(sim, "tx")
    island.attach_host(pcie, rx_ring, tx_ring)
    return sim, island, rx_ring


class TestApportionment:
    def test_single_queue_gets_all_threads(self):
        sim, island, _ = build()
        queue = island.register_vm_flow("only")
        assert island.dequeuer.threads_for(queue) == 8

    def test_equal_weights_split_evenly(self):
        sim, island, _ = build()
        queues = [island.register_vm_flow(f"vm{i}") for i in range(4)]
        for queue in queues:
            assert island.dequeuer.threads_for(queue) == 2

    def test_weighted_split_follows_weights(self):
        sim, island, _ = build()
        light = island.register_vm_flow("light", service_weight=1)
        heavy = island.register_vm_flow("heavy", service_weight=3)
        assert island.dequeuer.threads_for(heavy) == 6
        assert island.dequeuer.threads_for(light) == 2

    def test_every_queue_keeps_at_least_one_thread(self):
        sim, island, _ = build()
        starved = island.register_vm_flow("starved", service_weight=1)
        island.register_vm_flow("greedy", service_weight=100)
        assert island.dequeuer.threads_for(starved) >= 1

    def test_more_queues_than_threads(self):
        sim, island, _ = build(num_threads=2)
        queues = [island.register_vm_flow(f"vm{i}", service_weight=i + 1) for i in range(4)]
        total = sum(island.dequeuer.threads_for(q) for q in queues)
        assert total == 2
        # The heaviest queues win the scarce threads.
        assert island.dequeuer.threads_for(queues[-1]) >= 1

    def test_rebalance_on_tune_moves_threads(self):
        sim, island, _ = build()
        queue_a = island.register_vm_flow("a")
        queue_b = island.register_vm_flow("b")
        before = island.dequeuer.threads_for(queue_a)
        island.apply_tune(EntityId("ixp", "a"), +7)
        assert island.dequeuer.threads_for(queue_a) > before
        total = island.dequeuer.threads_for(queue_a) + island.dequeuer.threads_for(queue_b)
        assert total == 8


class TestServiceContinuity:
    def test_no_packet_lost_across_rebalance(self):
        """Reassigning threads mid-flow must not drop queued packets."""
        sim, island, rx_ring = build()
        queue_a = island.register_vm_flow("a")
        island.register_vm_flow("b")
        for i in range(50):
            queue_a.enqueue(Packet(src="c", dst="a", size=500))
        sim.run(until=ms(1))
        island.apply_tune(EntityId("ixp", "b"), +5)  # shuffles assignments
        sim.run(until=ms(50))
        assert rx_ring.pushed == 50
        assert queue_a.dequeued == 50

    def test_parked_threads_resume_when_queue_added(self):
        sim, island, rx_ring = build()
        sim.run(until=ms(1))  # all threads parked: no queues yet
        queue = island.register_vm_flow("late")
        queue.enqueue(Packet(src="c", dst="late", size=500))
        sim.run(until=ms(10))
        assert queue.dequeued == 1
