"""Tests for the IXP island: memory, microengines, queues, pipelines."""

import pytest

from repro.ixp import (
    BufferPool,
    Classifier,
    FlowQueue,
    IXPIsland,
    IXPParams,
    MemoryHierarchy,
    Microengine,
    classify_by_destination,
    cycles,
    make_payload_field_rule,
)
from repro.interconnect import MessageRing, PCIeBus
from repro.net import Packet
from repro.platform import EntityId
from repro.sim import Simulator, ms, us


class TestMemory:
    def test_latency_ordering(self):
        memory = MemoryHierarchy()
        lat = memory.latencies
        assert lat.local < lat.scratch < lat.sram < lat.dram

    def test_access_counting(self):
        memory = MemoryHierarchy()
        memory.latency("dram")
        memory.latency("dram")
        memory.latency("sram")
        assert memory.accesses["dram"] == 2
        assert memory.accesses["sram"] == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy().latency("l4")

    def test_cycles_conversion(self):
        assert cycles(1400) == 1000  # 1400 cycles at 1.4 GHz = 1 us


class TestBufferPool:
    def test_allocate_and_free(self):
        pool = BufferPool(Simulator(), capacity_bytes=1000)
        assert pool.allocate(600)
        assert pool.in_use == 600
        assert pool.available == 400
        pool.free(600)
        assert pool.in_use == 0

    def test_allocation_failure_when_full(self):
        pool = BufferPool(Simulator(), capacity_bytes=100)
        assert pool.allocate(100)
        assert not pool.allocate(1)
        assert pool.allocation_failures == 1

    def test_high_watermark(self):
        pool = BufferPool(Simulator(), capacity_bytes=1000)
        pool.allocate(700)
        pool.free(500)
        pool.allocate(100)
        assert pool.high_watermark == 700

    def test_over_free_rejected(self):
        pool = BufferPool(Simulator(), capacity_bytes=100)
        pool.allocate(10)
        with pytest.raises(ValueError):
            pool.free(50)


class TestMicroengine:
    def test_thread_allocation_limit(self):
        sim = Simulator()
        me = Microengine(sim, 0, MemoryHierarchy(), num_threads=2)
        me.allocate_thread("rx")
        me.allocate_thread("rx")
        assert me.threads_free == 0
        with pytest.raises(RuntimeError):
            me.allocate_thread("rx")

    def test_compute_is_exclusive_per_me(self):
        """Two threads' compute serialises on the single-issue pipeline."""
        sim = Simulator()
        me = Microengine(sim, 0, MemoryHierarchy())
        t1, t2 = me.allocate_thread("a"), me.allocate_thread("b")
        finish = []

        def image(sim, thread):
            yield from thread.compute(1400)  # 1 us
            finish.append((thread.name, sim.now))

        sim.spawn(image(sim, t1))
        sim.spawn(image(sim, t2))
        sim.run()
        assert finish[0][1] == us(1)
        assert finish[1][1] == us(2)

    def test_memory_references_overlap(self):
        """Memory waits release the pipeline (latency hiding)."""
        sim = Simulator()
        me = Microengine(sim, 0, MemoryHierarchy())
        t1, t2 = me.allocate_thread("a"), me.allocate_thread("b")
        finish = []

        def image(sim, thread):
            yield from thread.compute(140)  # 100 ns
            yield from thread.mem("dram")
            finish.append(sim.now)

        sim.spawn(image(sim, t1))
        sim.spawn(image(sim, t2))
        sim.run()
        dram = MemoryHierarchy().latencies.dram
        # Thread 2 computes while thread 1 waits on DRAM: total well under
        # the fully-serial 2*(100+dram).
        assert finish[-1] < 2 * (100 + dram)

    def test_busy_time_accounting(self):
        sim = Simulator()
        me = Microengine(sim, 0, MemoryHierarchy())
        thread = me.allocate_thread("t")

        def image(sim, thread):
            yield from thread.compute(1400)

        sim.spawn(image(sim, thread))
        sim.run()
        assert me.busy_time == us(1)
        assert me.utilization(us(2)) == 0.5


class TestFlowQueue:
    def _queue(self, capacity=10_000):
        sim = Simulator()
        pool = BufferPool(sim, capacity_bytes=100_000)
        return sim, FlowQueue(sim, "q", pool, capacity_bytes=capacity)

    def test_enqueue_dequeue_accounting(self):
        sim, queue = self._queue()
        packet = Packet(src="a", dst="b", size=500)
        assert queue.enqueue(packet)
        assert queue.occupancy_bytes == 500
        get = queue.get()
        sim.run()
        assert get.value is packet
        assert queue.occupancy_bytes == 0
        assert queue.pool.in_use == 0

    def test_tail_drop_on_capacity(self):
        sim, queue = self._queue(capacity=1000)
        assert queue.enqueue(Packet(src="a", dst="b", size=800))
        assert not queue.enqueue(Packet(src="a", dst="b", size=300))
        assert queue.dropped == 1

    def test_drop_on_pool_exhaustion(self):
        sim = Simulator()
        pool = BufferPool(sim, capacity_bytes=500)
        queue = FlowQueue(sim, "q", pool, capacity_bytes=10_000)
        assert queue.enqueue(Packet(src="a", dst="b", size=400))
        assert not queue.enqueue(Packet(src="a", dst="b", size=200))

    def test_high_watermark(self):
        sim, queue = self._queue()
        queue.enqueue(Packet(src="a", dst="b", size=700))
        get = queue.get()
        sim.run()
        queue.enqueue(Packet(src="a", dst="b", size=100))
        assert queue.bytes_high_watermark == 700


class TestClassifier:
    def test_rule_chain_first_match_wins(self):
        classifier = Classifier()
        classifier.add_rule("never", lambda p: None)
        classifier.add_rule("by-dst", classify_by_destination)
        packet = Packet(src="a", dst="vm1", size=10)
        assert classifier.classify(packet) == "vm1"
        assert packet.flow == "vm1"

    def test_default_flow(self):
        classifier = Classifier(default_flow="misc")
        assert classifier.classify(Packet(src="a", dst="b", size=10)) == "misc"

    def test_payload_field_rule(self):
        rule = make_payload_field_rule("request_type", prefix="rubis:")
        packet = Packet(src="a", dst="b", size=10, payload={"request_type": "Browse"})
        assert rule(packet) == "rubis:Browse"
        assert rule(Packet(src="a", dst="b", size=10)) is None

    def test_statistics(self):
        classifier = Classifier()
        classifier.add_rule("by-dst", classify_by_destination)
        for _ in range(3):
            classifier.classify(Packet(src="a", dst="vm1", size=10))
        classifier.classify(Packet(src="a", dst="vm2", size=10))
        assert classifier.classified == 4
        assert classifier.by_flow == {"vm1": 3, "vm2": 1}


def build_island(sim, **param_overrides):
    island = IXPIsland(sim, IXPParams(**param_overrides))
    pcie = PCIeBus(sim)
    rx_ring = MessageRing(sim, "rx")
    tx_ring = MessageRing(sim, "tx")
    island.attach_host(pcie, rx_ring, tx_ring)
    return island, rx_ring, tx_ring


class TestIXPIsland:
    def test_rx_path_classifies_and_ships_to_host(self):
        sim = Simulator()
        island, rx_ring, tx_ring = build_island(sim)
        island.classifier.add_rule("by-dst", classify_by_destination)
        island.register_vm_flow("vm1")
        island.wire_sink()(Packet(src="client", dst="vm1", size=800))
        sim.run(until=ms(5))
        assert island.rx.processed == 1
        assert len(rx_ring) == 1
        assert rx_ring.pop().flow == "vm1"

    def test_unroutable_packet_counted(self):
        sim = Simulator()
        island, rx_ring, tx_ring = build_island(sim)
        island.wire_sink()(Packet(src="client", dst="ghost-vm", size=800))
        sim.run(until=ms(5))
        assert island.rx.unroutable == 1
        assert len(rx_ring) == 0

    def test_classified_hook_invoked(self):
        sim = Simulator()
        island, rx_ring, tx_ring = build_island(sim)
        island.classifier.add_rule("by-dst", classify_by_destination)
        island.register_vm_flow("vm1")
        seen = []
        island.add_classified_hook(lambda p, flow: seen.append(flow))
        island.wire_sink()(Packet(src="client", dst="vm1", size=100))
        sim.run(until=ms(5))
        assert seen == ["vm1"]

    def test_tx_path_routes_to_wire(self):
        sim = Simulator()
        island, rx_ring, tx_ring = build_island(sim)
        from repro.net import Link

        received = []
        link = Link(sim, "to-client", latency=0)
        link.connect(received.append)
        island.connect_peer("client", link)
        tx_ring.push(Packet(src="vm1", dst="client", size=900))
        sim.run(until=ms(5))
        assert len(received) == 1
        assert island.tx.transmitted == 1

    def test_apply_tune_rebalances_threads(self):
        sim = Simulator()
        island, rx_ring, tx_ring = build_island(sim)
        queue_a = island.register_vm_flow("vm-a")
        queue_b = island.register_vm_flow("vm-b")
        sim.run(until=ms(1))
        assert island.dequeuer.threads_for(queue_a) == 4
        island.apply_tune(EntityId("ixp", "vm-b"), +3)
        assert queue_b.service_weight == 4
        assert island.dequeuer.threads_for(queue_b) > island.dequeuer.threads_for(queue_a)

    def test_apply_trigger_transient_weight(self):
        sim = Simulator()
        island, rx_ring, tx_ring = build_island(sim)
        queue = island.register_vm_flow("vm-a")
        original = queue.service_weight
        island.apply_trigger(EntityId("ixp", "vm-a"))
        assert queue.service_weight > original
        sim.run(until=island.params.monitor_period * 5)
        assert queue.service_weight == original

    def test_duplicate_vm_flow_rejected(self):
        sim = Simulator()
        island, *_ = build_island(sim)
        island.register_vm_flow("vm1")
        with pytest.raises(ValueError):
            island.register_vm_flow("vm1")

    def test_dequeue_respects_poll_interval(self):
        sim = Simulator()
        island, rx_ring, _ = build_island(sim, dequeue_threads=1)
        queue = island.register_vm_flow("vm1")
        queue.poll_interval = ms(10)
        for _ in range(5):
            queue.enqueue(Packet(src="c", dst="vm1", size=100))
        sim.run(until=ms(25))
        # One thread, 10 ms pause per packet: at most ~3 shipped by 25 ms.
        assert 1 <= len(rx_ring) <= 3

    def test_xscale_periodic_task(self):
        sim = Simulator()
        island, *_ = build_island(sim)
        ticks = []
        island.xscale.every(ms(10), lambda: ticks.append(sim.now))
        sim.run(until=ms(55))
        assert len(ticks) == 5
