"""Tests for the coordination layer: messages, agents and policies."""

import pytest

from repro.coordination import (
    BufferMonitorTriggerPolicy,
    CoordinationAgent,
    RequestTypeTunePolicy,
    StreamQoSTunePolicy,
    TierEntities,
    TuneMessage,
)
from repro.coordination.mplayer_policy import STAGE_BITRATE, STAGE_FRAMERATE, STAGE_OFF
from repro.interconnect import CoordinationChannel
from repro.ixp import IXPIsland
from repro.net import Packet
from repro.platform import EntityId
from repro.sim import Simulator, ms, seconds, us
from repro.x86 import X86Island


def build_pair(sim, channel_latency=us(100)):
    """An x86 island and an IXP island joined by a coordination channel."""
    x86 = X86Island(sim)
    ixp = IXPIsland(sim)
    channel = CoordinationChannel(sim, latency=channel_latency)
    x86_agent = CoordinationAgent(sim, x86, channel.endpoint("x86"), handler_vm=x86.dom0)
    ixp_agent = CoordinationAgent(sim, ixp, channel.endpoint("ixp"))
    return x86, ixp, x86_agent, ixp_agent


class TestMessages:
    def test_tune_repr(self):
        message = TuneMessage(EntityId("x86", "web"), +64, reason="read")
        assert "x86/web" in repr(message)
        assert "+64" in repr(message)

    def test_messages_hashable(self):
        a = TuneMessage(EntityId("x86", "web"), 1)
        b = TuneMessage(EntityId("x86", "web"), 1)
        assert a == b and hash(a) == hash(b)


class TestAgent:
    def test_tune_applied_after_channel_latency(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim, channel_latency=us(500))
        vm = x86.create_vm("guest")
        ixp_agent.send_tune(EntityId("x86", "guest"), +64)
        sim.run(until=us(400))
        assert vm.weight == 256  # still in flight
        sim.run(until=ms(50))
        assert vm.weight == 320
        assert x86_agent.tunes_applied == 1

    def test_trigger_applied(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        vm = x86.create_vm("guest")
        ixp_agent.send_trigger(EntityId("x86", "guest"))
        sim.run(until=ms(50))
        assert x86_agent.triggers_applied == 1
        assert vm.vcpus[0].boosted

    def test_unknown_entity_counted_not_crashed(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        ixp_agent.send_tune(EntityId("x86", "ghost"), +64)
        sim.run(until=ms(50))
        assert x86_agent.unknown_entities == 1

    def test_unknown_entity_does_not_pollute_apply_latencies(self):
        """Regression: never-applied messages must not be counted in the
        end-to-end apply-latency metric."""
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        x86.create_vm("guest")
        ixp_agent.send_tune(EntityId("x86", "ghost"), +64)   # dropped
        ixp_agent.send_tune(EntityId("x86", "guest"), +64)   # applied
        ixp_agent.send_trigger(EntityId("x86", "ghost"))     # dropped
        sim.run(until=ms(50))
        assert x86_agent.unknown_entities == 2
        assert len(x86_agent.apply_latencies) == 1
        assert x86_agent.apply_latencies[0] > 0

    def test_custom_handled_message_records_latency(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Telemetry:
            sent_at: int = -1

        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        seen = []
        x86_agent.register_message_handler(Telemetry, seen.append)
        ixp_agent.endpoint.send(Telemetry(sent_at=sim.now))
        sim.run(until=ms(50))
        assert len(seen) == 1
        assert len(x86_agent.apply_latencies) == 1

    def test_channel_stats_empty_over_raw_mailbox(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        assert ixp_agent.channel_stats() == {}

    def test_handling_charges_dom0(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        x86.create_vm("guest")
        before = x86.dom0.cpu_time()
        ixp_agent.send_tune(EntityId("x86", "guest"), +64)
        sim.run(until=ms(50))
        assert x86.dom0.cpu_time() > before

    def test_x86_can_tune_ixp(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        queue = ixp.register_vm_flow("vm1")
        x86_agent.send_tune(EntityId("ixp", "vm1"), +2)
        sim.run(until=ms(50))
        assert queue.service_weight == 3

    def test_unknown_message_type_rejected(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        ixp_agent.endpoint.send({"not": "a coordination message"})
        with pytest.raises(TypeError):
            sim.run(until=ms(50))


def classified_packet(request_type, request_class, dst="web-server"):
    return Packet(
        src="client",
        dst=dst,
        size=300,
        kind="http-req",
        payload={"request_type": request_type, "request_class": request_class},
    )


class TestRequestTypePolicy:
    def _build(self, sim, **kwargs):
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        for name in ("web", "app", "db"):
            x86.create_vm(name)
        tiers = TierEntities(
            web=EntityId("x86", "web"), app=EntityId("x86", "app"), db=EntityId("x86", "db")
        )
        policy = RequestTypeTunePolicy(sim, ixp, ixp_agent, tiers, **kwargs)
        return x86, ixp, policy

    def test_read_request_steers_toward_read_profile(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim, step=512)
        policy._on_classified(classified_packet("Browse", "read"), "rubis:Browse")
        sim.run(until=ms(50))
        assert x86.vm("web").weight == policy.read_profile.web
        assert x86.vm("db").weight == policy.read_profile.db

    def test_write_request_steers_toward_write_profile(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim, step=512)
        # db target (832) is further than one step from base: two requests
        # are needed to converge.
        policy._on_classified(classified_packet("PutBid", "write"), "rubis:PutBid")
        policy._on_classified(classified_packet("PutBid", "write"), "rubis:PutBid")
        sim.run(until=ms(50))
        assert x86.vm("db").weight == policy.write_profile.db

    def test_step_bounds_each_adjustment(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim, step=32)
        policy._on_classified(classified_packet("Browse", "read"), "f")
        sim.run(until=ms(50))
        assert x86.vm("web").weight == 256 + 32

    def test_converges_and_stops_sending(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim, step=512)
        for _ in range(5):
            policy._on_classified(classified_packet("Browse", "read"), "f")
        sent_after_convergence = policy.tunes_sent
        policy._on_classified(classified_packet("Browse", "read"), "f")
        assert policy.tunes_sent == sent_after_convergence

    def test_ignores_non_request_packets(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim)
        policy._on_classified(Packet(src="a", dst="b", size=10), "flow")
        assert policy.requests_seen == 0

    def test_oscillating_mix_oscillates_weights(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim, step=64)
        for _ in range(20):
            policy._on_classified(classified_packet("Browse", "read"), "f")
            policy._on_classified(classified_packet("PutBid", "write"), "f")
        shadow = policy.shadow_weights()
        # Oscillation parks the shadow between the two profiles.
        web_shadow = shadow[policy.tiers.web]
        assert policy.write_profile.web <= web_shadow <= policy.read_profile.web


def rtsp_packet(dst, bitrate, fps):
    return Packet(
        src="server",
        dst=dst,
        size=400,
        kind="rtsp-setup",
        payload={"rtsp_setup": {"session": 1, "bitrate_bps": bitrate, "framerate_fps": fps,
                                "codec": "h264"}},
    )


class TestStreamQoSPolicy:
    def _build(self, sim, stage=STAGE_BITRATE):
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        for name in ("dom1", "dom2"):
            x86.create_vm(name)
            ixp.register_vm_flow(name)
        entities = {"dom1": EntityId("x86", "dom1"), "dom2": EntityId("x86", "dom2")}
        policy = StreamQoSTunePolicy(sim, ixp, ixp_agent, entities, stage=stage)
        return x86, ixp, policy

    def test_high_bitrate_stream_gets_increase(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim)
        policy._on_classified(rtsp_packet("dom2", 1_000_000, 25.0), "dom2")
        sim.run(until=ms(50))
        assert x86.vm("dom2").weight == 256 + 256

    def test_mid_stream_gets_half_increase(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim)
        policy._on_classified(rtsp_packet("dom1", 300_000, 20.0), "dom1")
        sim.run(until=ms(50))
        assert x86.vm("dom1").weight == 256 + 128

    def test_low_stream_gets_decrease(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim)
        policy._on_classified(rtsp_packet("dom1", 100_000, 10.0), "dom1")
        sim.run(until=ms(50))
        assert x86.vm("dom1").weight == 256 - 128

    def test_stage_off_learns_but_does_not_act(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim, stage=STAGE_OFF)
        policy._on_classified(rtsp_packet("dom2", 1_000_000, 25.0), "dom2")
        sim.run(until=ms(50))
        assert x86.vm("dom2").weight == 256
        assert "dom2" in policy.streams

    def test_advance_stage_reactuates(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim, stage=STAGE_OFF)
        policy._on_classified(rtsp_packet("dom2", 1_000_000, 25.0), "dom2")
        policy._on_classified(rtsp_packet("dom1", 300_000, 20.0), "dom1")
        sim.run(until=ms(50))
        policy.advance_stage(STAGE_BITRATE)
        sim.run(until=ms(100))
        assert x86.vm("dom1").weight == 384
        assert x86.vm("dom2").weight == 512
        policy.advance_stage(STAGE_FRAMERATE)
        sim.run(until=ms(150))
        assert x86.vm("dom2").weight == 640
        assert x86.vm("dom1").weight == 384  # 20 fps < high-framerate bar

    def test_framerate_stage_adds_ixp_threads(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim, stage=STAGE_FRAMERATE)
        queue = ixp.flow_queues["dom2"]
        before = queue.service_weight
        policy._on_classified(rtsp_packet("dom2", 1_000_000, 25.0), "dom2")
        sim.run(until=ms(50))
        assert queue.service_weight == before + 2

    def test_duplicate_setup_ignored(self):
        sim = Simulator()
        x86, ixp, policy = self._build(sim)
        policy._on_classified(rtsp_packet("dom2", 1_000_000, 25.0), "dom2")
        policy._on_classified(rtsp_packet("dom2", 1_000_000, 25.0), "dom2")
        assert policy.tunes_sent == 1

    def test_unknown_stage_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            self._build(sim, stage="turbo")


class TestBufferMonitorPolicy:
    def _build(self, sim, threshold=1000, cooldown=ms(100)):
        x86, ixp, x86_agent, ixp_agent = build_pair(sim)
        x86.create_vm("dom1")
        queue = ixp.register_vm_flow("dom1")
        policy = BufferMonitorTriggerPolicy(
            sim, ixp, ixp_agent, {"dom1": EntityId("x86", "dom1")},
            threshold_bytes=threshold, cooldown=cooldown,
        )
        return x86, ixp, queue, policy

    def test_trigger_fires_above_threshold(self):
        sim = Simulator()
        x86, ixp, queue, policy = self._build(sim, threshold=1000)
        queue.bytes_queued = 2000  # direct occupancy injection
        sim.run(until=ms(5))
        assert policy.triggers_sent >= 1
        assert x86.vm("dom1").vcpus[0].boosted

    def test_no_trigger_below_threshold(self):
        sim = Simulator()
        x86, ixp, queue, policy = self._build(sim, threshold=10_000)
        queue.bytes_queued = 500
        sim.run(until=ms(5))
        assert policy.triggers_sent == 0

    def test_cooldown_rate_limits(self):
        sim = Simulator()
        x86, ixp, queue, policy = self._build(sim, threshold=100, cooldown=ms(50))
        queue.bytes_queued = 10_000
        sim.run(until=ms(49))
        assert policy.triggers_sent == 1
        sim.run(until=ms(120))
        assert policy.triggers_sent >= 2

    def test_trigger_log_records_occupancy(self):
        sim = Simulator()
        x86, ixp, queue, policy = self._build(sim, threshold=100)
        queue.bytes_queued = 4096
        sim.run(until=ms(5))
        time, vm, occupancy = policy.trigger_log[0]
        assert vm == "dom1"
        assert occupancy == 4096

    def test_invalid_threshold(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            self._build(sim, threshold=0)


class TestAgentOverReliableChannel:
    def _build(self, sim, loss=0.0, seed=21):
        from repro.interconnect import ReliableChannel
        from repro.sim import RandomStreams

        x86 = X86Island(sim)
        ixp = IXPIsland(sim)
        raw = CoordinationChannel(
            sim,
            latency=us(100),
            loss_probability=loss,
            rng=RandomStreams(seed).stream("loss") if loss > 0 else None,
        )
        reliable = ReliableChannel(raw)
        x86_agent = CoordinationAgent(
            sim, x86, reliable.endpoint("x86"), handler_vm=x86.dom0
        )
        ixp_agent = CoordinationAgent(sim, ixp, reliable.endpoint("ixp"))
        return x86, ixp, x86_agent, ixp_agent

    def test_agent_installs_tune_coalescer(self):
        """Bursty same-entity Tunes merge; the full delta still lands."""
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = self._build(sim)
        vm = x86.create_vm("guest")
        for _ in range(10):
            ixp_agent.send_tune(EntityId("x86", "guest"), +8)
        sim.run(until=seconds(1))
        assert vm.weight == 256 + 80
        assert ixp_agent.endpoint.coalesced == 9
        assert ixp_agent.endpoint.frames_sent == 2

    def test_triggers_never_coalesce(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = self._build(sim)
        x86.create_vm("guest")
        for _ in range(3):
            ixp_agent.send_trigger(EntityId("x86", "guest"))
        sim.run(until=seconds(1))
        assert ixp_agent.endpoint.coalesced == 0
        assert x86_agent.triggers_applied == 3

    def test_full_delta_lands_despite_loss(self):
        sim = Simulator()
        x86, ixp, x86_agent, ixp_agent = self._build(sim, loss=0.3)
        vm = x86.create_vm("guest")
        for _ in range(50):
            ixp_agent.send_tune(EntityId("x86", "guest"), +4)
        sim.run(until=seconds(5))
        assert vm.weight == 256 + 200
        assert ixp_agent.endpoint.dead_lettered == 0
        assert ixp_agent.channel_stats()["sent"] == 50
