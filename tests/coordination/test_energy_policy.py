"""Tests for the coordinated energy/QoS governor.

Exercises the greedy (dvfs × ways × bw × prefetch) search in isolation:
QoS recovery picks partition moves before frequency, economizing needs a
full confirmation history, the anti-flap floor holds, both ablation modes
respect their tied arm, zero-delta Tunes are never emitted, and the
same-instant DVFS race guard defers.
"""

import pytest

from repro.coordination import ENERGY_QOS_MODES, EnergyQosGovernor, QosTarget
from repro.platform import EntityId
from repro.sim import Simulator, ms
from repro.x86 import (
    DVFS_LADDER,
    MemoryProfile,
    MemorySystem,
    MemorySystemParams,
    X86Island,
)

PERIOD = ms(500)


class StubQos:
    """A settable p95 source (stands in for WindowedQosSource)."""

    def __init__(self, **p95):
        self.p95 = dict(p95)

    def p95_ms(self, vm):
        return self.p95.get(vm)


class _Instant:
    x86_w = 0.0
    total_w = 0.0


class StubMeter:
    def instantaneous(self):
        return _Instant()


def make_setup(mode="coordinated", targets=None, qos=None, **kw):
    """An island with two memory-managed VMs and a governor over them.

    ``web`` is cache-hungry and targeted tightly; ``batch`` is a natural
    way donor. All 16 ways are allocated, so way moves must steal.
    """
    sim = Simulator()
    island = X86Island(sim)
    system = MemorySystem(MemorySystemParams(capacity_gbps=4.0))
    island.attach_memory_system(system)
    web = island.create_vm("web")
    batch = island.create_vm("batch")
    island.memory_manage(
        web, MemoryProfile(mem_fraction=0.6, ways_needed=12, base_miss=0.05), ways=8
    )
    island.memory_manage(
        batch, MemoryProfile(mem_fraction=0.1, ways_needed=2, base_miss=0.1), ways=8
    )
    qos = qos or StubQos(web=5.0, batch=5.0)
    targets = targets or [QosTarget("web", 20.0), QosTarget("batch", 90.0)]
    governor = EnergyQosGovernor(
        sim, island, StubMeter(), qos, targets, mode=mode, period=PERIOD, **kw
    )
    return sim, island, system, qos, governor


def dvfs_index(island):
    return int(island.knobs.get(EntityId("x86", "dvfs")).read())


class TestValidation:
    def test_mode_must_be_known(self):
        sim = Simulator()
        island = X86Island(sim)
        with pytest.raises(ValueError):
            EnergyQosGovernor(
                sim, island, StubMeter(), StubQos(), [QosTarget("a", 1.0)],
                mode="greedy",
            )
        assert set(ENERGY_QOS_MODES) == {"coordinated", "dvfs-only", "partition-only"}

    def test_targets_required(self):
        sim = Simulator()
        island = X86Island(sim)
        with pytest.raises(ValueError):
            EnergyQosGovernor(sim, island, StubMeter(), StubQos(), [])

    def test_qos_target_validates(self):
        with pytest.raises(ValueError):
            QosTarget("web", 0.0)


class TestRecovery:
    def test_violation_recovers_via_way_transfer_from_donor(self):
        sim, island, system, qos, governor = make_setup()
        qos.p95 = {"web": 30.0, "batch": 5.0}  # web violating, batch slack
        sim.run(until=PERIOD + 1)
        assert system.ways("web") == 9
        assert system.ways("batch") == 7
        assert governor.way_moves == 1
        assert governor.violation_epochs == 1
        # The ladder was not touched: a partition move was predicted to
        # help, so no frequency was spent.
        assert dvfs_index(island) == len(DVFS_LADDER) - 1

    def test_dvfs_only_cannot_repartition_and_spends_frequency(self):
        sim, island, system, qos, governor = make_setup(mode="dvfs-only")
        island.apply_tune(EntityId("x86", "dvfs"), -1)
        qos.p95 = {"web": 30.0, "batch": 5.0}
        sim.run(until=PERIOD + 1)
        assert system.ways("web") == 8  # untouched: its only lever is DVFS
        assert governor.way_moves == 0
        assert governor.dvfs_steps_up == 1
        assert dvfs_index(island) == len(DVFS_LADDER) - 1

    def test_step_up_stops_at_nominal(self):
        sim, island, system, qos, governor = make_setup(mode="dvfs-only")
        qos.p95 = {"web": 30.0, "batch": 5.0}
        sim.run(until=4 * PERIOD + 1)
        # Already at nominal: a violation it cannot fix emits nothing.
        assert governor.dvfs_steps_up == 0
        assert dvfs_index(island) == len(DVFS_LADDER) - 1


class TestEconomizing:
    def test_downstep_needs_full_confirmation_history(self):
        sim, island, system, qos, governor = make_setup(
            dvfs_confirm_epochs=3, dvfs_cooldown_epochs=0
        )
        sim.run(until=2 * PERIOD + 1)  # only 2 epochs of history
        assert governor.dvfs_steps_down == 0
        assert dvfs_index(island) == len(DVFS_LADDER) - 1
        sim.run(until=3 * PERIOD + 1)  # third epoch completes the history
        assert governor.dvfs_steps_down == 1
        assert dvfs_index(island) == len(DVFS_LADDER) - 2

    def test_descends_ladder_epoch_by_epoch_to_the_floor(self):
        sim, island, system, qos, governor = make_setup(
            dvfs_confirm_epochs=2, dvfs_cooldown_epochs=0
        )
        sim.run(until=20 * PERIOD + 1)
        # History resets after each step, so steps come every 2 epochs
        # until the ladder floor; there they stop (floor index 0).
        assert governor.dvfs_steps_down == len(DVFS_LADDER) - 1
        assert dvfs_index(island) == 0
        assert island.scheduler.cpus[0].speed == DVFS_LADDER[0]

    def test_unsafe_downstep_is_vetoed_by_scaled_p95(self):
        # web's p95 of 18 ms scaled by the 1.0 -> 0.85 step ratio exceeds
        # 20 * (1 - guard): the predicted post-step p95 has no margin.
        sim, island, system, qos, governor = make_setup(
            qos=StubQos(web=18.0, batch=5.0),
            dvfs_confirm_epochs=2, dvfs_cooldown_epochs=0,
        )
        sim.run(until=10 * PERIOD + 1)
        assert governor.dvfs_steps_down == 0
        assert dvfs_index(island) == len(DVFS_LADDER) - 1

    def test_cooldown_spaces_consecutive_steps(self):
        sim, island, system, qos, governor = make_setup(
            dvfs_confirm_epochs=1, dvfs_cooldown_epochs=4
        )
        sim.run(until=4 * PERIOD + 1)
        # Confirmation would allow a step every epoch; the cooldown holds
        # the second step until 4 periods after the first.
        assert governor.dvfs_steps_down == 1

    def test_partition_only_never_touches_the_ladder(self):
        sim, island, system, qos, governor = make_setup(mode="partition-only")
        sim.run(until=20 * PERIOD + 1)
        assert governor.dvfs_steps_down == governor.dvfs_steps_up == 0
        assert dvfs_index(island) == len(DVFS_LADDER) - 1
        assert island.scheduler.cpus[0].speed == DVFS_LADDER[-1]


class TestAntiFlap:
    def test_violation_step_up_burns_the_level_it_left(self):
        sim, island, system, qos, governor = make_setup(
            mode="dvfs-only", dvfs_confirm_epochs=1, dvfs_cooldown_epochs=0
        )
        island.apply_tune(EntityId("x86", "dvfs"), -2)
        qos.p95 = {"web": 30.0, "batch": 5.0}
        sim.run(until=PERIOD + 1)
        assert governor.dvfs_steps_up == 1
        burned = dvfs_index(island)
        # QoS recovers with huge slack: economizing would immediately
        # retry the level that just violated — the floor forbids it.
        qos.p95 = {"web": 2.0, "batch": 2.0}
        sim.run(until=12 * PERIOD + 1)
        assert governor.dvfs_steps_down == 0
        assert dvfs_index(island) == burned


class TestAuditHygiene:
    def test_no_zero_delta_tunes_and_quiet_epochs_leave_no_footprint(self):
        sim, island, system, qos, governor = make_setup(
            dvfs_confirm_epochs=2, dvfs_cooldown_epochs=0
        )
        sim.run(until=10 * PERIOD + 1)  # descends to the ladder floor
        settled = len(island.knobs.audit)
        sim.run(until=30 * PERIOD + 1)  # nothing left to improve
        assert len(island.knobs.audit) == settled
        assert all(record.requested_delta for record in island.knobs.audit
                   if record.op == "tune")


class TestRaceGuard:
    def test_same_instant_ladder_move_defers_the_governor(self):
        sim = Simulator()
        island = X86Island(sim)
        entity = EntityId("x86", "dvfs")
        island.apply_tune(entity, -2)

        def racer():
            yield sim.timeout(PERIOD)
            island.apply_tune(entity, +1)

        sim.spawn(racer(), name="racer")  # spawned first: acts first
        governor = EnergyQosGovernor(
            sim, island, StubMeter(), StubQos(web=30.0),
            [QosTarget("web", 20.0)], mode="dvfs-only", period=PERIOD,
        )
        sim.run(until=PERIOD + 1)
        assert governor.dvfs_deferred == 1
        assert governor.dvfs_steps_up == 0
        # Only the racer's step landed: no double-step this instant.
        assert dvfs_index(island) == len(DVFS_LADDER) - 2


class TestStats:
    def test_stats_scoreboard_shape(self):
        sim, island, system, qos, governor = make_setup()
        qos.p95 = {"web": 30.0, "batch": 5.0}
        sim.run(until=PERIOD + 1)
        stats = governor.stats()
        assert stats["epochs"] == 1
        assert stats["violation_epochs"] == 1
        assert stats["way_moves"] == 1
        assert set(stats) == {
            "epochs", "violation_epochs", "dvfs_steps_down", "dvfs_steps_up",
            "way_moves", "bw_moves", "prefetch_moves", "dvfs_deferred",
        }
