"""Tests for power models, metering, DVFS and the cap governors."""

import pytest

from repro import Testbed, TestbedConfig
from repro.power import (
    CoordinatedPowerCapGovernor,
    CorePowerModel,
    DVFS_LEVELS,
    IXPPowerModel,
    LocalPowerCapGovernor,
    PowerMeter,
    PowerReportMessage,
    next_level_down,
    next_level_up,
)
from repro.platform import EntityId
from repro.sim import Simulator, ms, seconds
from repro.x86 import CreditScheduler, VirtualMachine


class TestModels:
    def test_core_power_monotone_in_utilization(self):
        model = CorePowerModel()
        assert model.power(0.0, 1.0) < model.power(0.5, 1.0) < model.power(1.0, 1.0)

    def test_core_power_cubic_in_speed(self):
        model = CorePowerModel(static_w=0.0, dynamic_w=8.0)
        assert model.power(1.0, 0.5) == pytest.approx(8.0 * 0.125)

    def test_core_power_validates_inputs(self):
        model = CorePowerModel()
        with pytest.raises(ValueError):
            model.power(1.5, 1.0)
        with pytest.raises(ValueError):
            model.power(0.5, 0.0)

    def test_ixp_power_base_plus_dynamic(self):
        model = IXPPowerModel(base_w=10.0, per_engine_w=2.0)
        assert model.power([]) == 10.0
        assert model.power([0.5, 1.0]) == 10.0 + 1.0 + 2.0

    def test_dvfs_ladder_stepping(self):
        assert next_level_down(1.0) == 0.85
        assert next_level_down(DVFS_LEVELS[-1]) == DVFS_LEVELS[-1]  # floor
        assert next_level_up(0.55) == 0.7
        assert next_level_up(1.0) == 1.0  # ceiling


class TestDvfsExecution:
    def test_half_speed_doubles_wall_time(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        scheduler.set_cpu_speed(0, 0.5)
        done = vm.execute(ms(10))
        sim.run(until=seconds(1))
        assert done.processed
        # 10 ms of demand at half speed = 20 ms wall, accounted as wall.
        assert vm.accounting.busy == pytest.approx(ms(20), rel=0.01)

    def test_speed_change_retimes_inflight_work(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        done = vm.execute(ms(20))
        sim.run(until=ms(10))  # halfway through at nominal speed
        scheduler.set_cpu_speed(0, 0.5)
        sim.run(until=seconds(1))
        assert done.processed
        # ~10 ms at speed 1.0 + ~10 ms demand at 0.5 = ~20 ms more wall.
        assert vm.accounting.busy == pytest.approx(ms(30), rel=0.05)

    def test_invalid_speed_rejected(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        with pytest.raises(ValueError):
            scheduler.set_cpu_speed(0, 1.5)

    def test_throughput_scales_with_speed(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        scheduler.set_cpu_speed(0, 0.7)

        def hog(sim):
            while True:
                yield vm.execute(ms(5))

        sim.spawn(hog(sim))
        sim.run(until=seconds(2))
        # Wall runtime is full, but demand retired is ~70%.
        assert vm.accounting.busy >= seconds(2) * 0.99


class TestMeter:
    def _testbed(self):
        return Testbed(TestbedConfig())

    def test_samples_accumulate(self):
        testbed = self._testbed()
        meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp, window=seconds(1))
        testbed.run(seconds(5))
        assert len(meter.samples) == 5
        assert all(s.total_w > 0 for s in meter.samples)

    def test_idle_platform_draws_static_only(self):
        testbed = self._testbed()
        meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp, window=seconds(1))
        testbed.run(seconds(3))
        core = CorePowerModel()
        expected_idle = 2 * core.power(0.0, 1.0) + IXPPowerModel().base_w
        assert meter.instantaneous().total_w == pytest.approx(expected_idle, rel=0.1)

    def test_busy_guest_raises_power(self):
        testbed = self._testbed()
        vm, _nic = testbed.create_guest_vm("hog")
        meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp, window=seconds(1))

        def hog(sim):
            while True:
                yield vm.execute(ms(5))

        testbed.sim.spawn(hog(testbed.sim))
        testbed.run(seconds(3))
        core = CorePowerModel()
        idle_w = 2 * core.power(0.0, 1.0) + IXPPowerModel().base_w
        assert meter.instantaneous().total_w > idle_w + 5

    def test_energy_integral(self):
        testbed = self._testbed()
        meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp, window=seconds(1))
        testbed.run(seconds(4))
        assert meter.energy_j() == pytest.approx(
            sum(s.total_w for s in meter.samples), rel=1e-6
        )


class TestGovernors:
    def _loaded_testbed(self):
        testbed = Testbed(TestbedConfig(driver_poll_burn_duty=0.5))
        vm, _nic = testbed.create_guest_vm("hog")

        def hog(sim):
            while True:
                yield vm.execute(ms(5))

        testbed.sim.spawn(hog(testbed.sim))
        meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp, window=seconds(1))
        return testbed, meter

    def test_local_governor_throttles_under_tight_cap(self):
        testbed, meter = self._loaded_testbed()
        LocalPowerCapGovernor(testbed.sim, meter, testbed.x86, platform_cap_w=42.0)
        testbed.run(seconds(15))
        assert testbed.x86.scheduler.cpus[0].speed < 1.0

    def test_local_governor_rejects_impossible_cap(self):
        testbed, meter = self._loaded_testbed()
        with pytest.raises(ValueError):
            LocalPowerCapGovernor(testbed.sim, meter, testbed.x86, platform_cap_w=20.0)

    def test_coordinated_governor_receives_telemetry(self):
        testbed, meter = self._loaded_testbed()
        governor = CoordinatedPowerCapGovernor(
            testbed.sim, meter, testbed.x86, testbed.x86_agent, testbed.ixp_agent,
            platform_cap_w=48.0,
        )
        testbed.run(seconds(10))
        assert governor.reports_received >= 8

    def test_coordinated_throttles_less_than_local(self):
        results = {}
        for mode in ("local", "coord"):
            testbed, meter = self._loaded_testbed()
            if mode == "local":
                LocalPowerCapGovernor(testbed.sim, meter, testbed.x86, platform_cap_w=46.0)
            else:
                CoordinatedPowerCapGovernor(
                    testbed.sim, meter, testbed.x86, testbed.x86_agent,
                    testbed.ixp_agent, platform_cap_w=46.0,
                )
            testbed.run(seconds(20))
            results[mode] = (
                testbed.x86.scheduler.cpus[0].speed,
                meter.mean_total_w(skip_first=3),
            )
        local_speed, local_power = results["local"]
        coord_speed, coord_power = results["coord"]
        assert coord_speed > local_speed  # less throttling...
        assert coord_power <= 46.0 + 4.0  # ...at compliant platform power
        assert coord_power > local_power  # budget actually used

    def test_custom_message_type_travels_the_channel(self):
        testbed = Testbed(TestbedConfig())
        received = []
        testbed.x86_agent.register_message_handler(
            PowerReportMessage, lambda m: received.append(m.watts)
        )
        testbed.ixp_agent.endpoint.send(PowerReportMessage(watts=17.5))
        testbed.run(ms(50))
        assert received == [17.5]


class TestPerSpeedEnergyIntegration:
    """ISSUE-6 satellite: energy must integrate across mid-window DVFS
    steps — each busy slice billed at the speed it actually ran at, not
    the whole window priced at the end-of-window level."""

    def test_power_integrated_matches_single_speed_power(self):
        model = CorePowerModel()
        assert model.power_integrated({0.7: 0.4}) == pytest.approx(model.power(0.4, 0.7))
        assert model.power_integrated({}) == pytest.approx(model.power(0.0, 1.0))

    def test_power_integrated_sums_per_speed_slices(self):
        model = CorePowerModel(static_w=2.0, dynamic_w=10.0)
        watts = model.power_integrated({1.0: 0.5, 0.5: 0.5})
        assert watts == pytest.approx(2.0 + 10.0 * (0.5 + 0.5 * 0.125))

    def test_power_integrated_validates_speed(self):
        with pytest.raises(ValueError):
            CorePowerModel().power_integrated({1.5: 0.1})

    def test_busy_buckets_split_by_execution_speed(self):
        sim = Simulator()
        scheduler = CreditScheduler(sim, num_cpus=1)
        vm = VirtualMachine(sim, "vm")
        scheduler.add_domain(vm)
        done = vm.execute(ms(20))
        sim.run(until=ms(10))            # half the demand done at nominal
        scheduler.set_cpu_speed(0, 0.5)  # rest runs at half speed
        sim.run(until=seconds(1))
        assert done.processed
        buckets = scheduler.cpus[0].busy_by_speed
        assert buckets[1.0] == pytest.approx(ms(10), rel=0.05)
        assert buckets[0.5] == pytest.approx(ms(20), rel=0.05)
        assert sum(buckets.values()) == pytest.approx(vm.accounting.busy, rel=0.01)

    def test_meter_bills_mid_window_dvfs_step_exactly(self):
        testbed = Testbed(TestbedConfig())
        vm, _nic = testbed.create_guest_vm("hog")

        def hog(sim):
            while True:
                yield vm.execute(ms(5))

        def stepper(sim):
            # Step the whole ladder down exactly mid-way through window 3.
            yield sim.timeout(seconds(2) + seconds(1) // 2)
            testbed.x86.apply_tune(EntityId("x86", "dvfs"), -3)

        testbed.sim.spawn(hog(testbed.sim))
        testbed.sim.spawn(stepper(testbed.sim))
        meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp, window=seconds(1))
        testbed.run(seconds(4))
        core = CorePowerModel()
        mixed_window = meter.samples[2].x86_w
        # Half the window busy at 1.0, half at 0.55, second core idle.
        exact = core.power_integrated({1.0: 0.5, 0.55: 0.5}) + core.power(0.0, 0.55)
        # The pre-fix behaviour priced the whole window at the final speed.
        stale = core.power(1.0, 0.55) + core.power(0.0, 0.55)
        assert mixed_window == pytest.approx(exact, rel=0.1)
        assert abs(mixed_window - exact) < abs(mixed_window - stale)


class TestGovernorRaceGuard:
    """ISSUE-6 satellite: two governors sharing one meter sample must not
    double-step the ladder at the same instant."""

    def test_racing_cap_governors_defer_instead_of_double_stepping(self):
        testbed = Testbed(TestbedConfig(driver_poll_burn_duty=0.5))
        vm, _nic = testbed.create_guest_vm("hog")

        def hog(sim):
            while True:
                yield vm.execute(ms(5))

        testbed.sim.spawn(hog(testbed.sim))
        meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp, window=seconds(1))
        first = LocalPowerCapGovernor(testbed.sim, meter, testbed.x86, platform_cap_w=42.0)
        second = LocalPowerCapGovernor(testbed.sim, meter, testbed.x86, platform_cap_w=42.0)
        testbed.run(seconds(15))
        # The loser of each same-instant race yields its step...
        assert second.actuator.steps_deferred > 0
        # ...so the ladder moves at most once per simulation instant.
        tune_times = [
            record.time for record in testbed.x86.knobs.audit
            if record.entity == "x86/dvfs" and record.op == "tune"
        ]
        assert len(tune_times) == len(set(tune_times))
        assert testbed.x86.scheduler.cpus[0].speed < 1.0
