"""ShardPlan: deterministic cluster cuts, lookahead, window validation."""

import pytest

from repro.platform import FabricTopology
from repro.shard import ShardPlan
from repro.sim import ms


def _topo(num_islands=16, fanout=4):
    return FabricTopology.clustered(
        tuple(f"i{n}" for n in range(num_islands)),
        fanout=fanout,
        link_latency=ms(5),
        uplink_latency=ms(10),
    )


class TestPartition:
    def test_groups_cover_all_clusters_contiguously(self):
        plan = ShardPlan(_topo(), shards=2)
        assert plan.shards == 2
        flattened = [name for group in plan.groups for name in group]
        assert flattened == [c.name for c in plan.topology.clusters]

    def test_islands_split_near_equally(self):
        plan = ShardPlan(_topo(16, 4), shards=2)
        sizes = [len(plan.islands_of(i)) for i in range(2)]
        assert sizes == [8, 8]

    def test_shard_of_matches_islands_of(self):
        plan = ShardPlan(_topo(), shards=4)
        for shard in range(plan.shards):
            for island in plan.islands_of(shard):
                assert plan.shard_of(island) == shard

    def test_more_shards_than_clusters_rejected(self):
        with pytest.raises(ValueError, match="cluster boundaries"):
            ShardPlan(_topo(16, 4), shards=5)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            ShardPlan(_topo(), shards=0)


class TestWindow:
    def test_lookahead_is_min_cross_cluster_latency(self):
        # Only the ms(10) uplinks cross cluster boundaries here; the
        # ms(5) member links are intra-cluster and offer no lookahead.
        plan = ShardPlan(_topo(), shards=2)
        assert plan.lookahead == ms(10)
        assert plan.window == ms(10)

    def test_window_wider_than_lookahead_rejected(self):
        with pytest.raises(ValueError, match="lookahead"):
            ShardPlan(_topo(), shards=2, window_ns=ms(11))

    def test_narrower_window_accepted(self):
        plan = ShardPlan(_topo(), shards=2, window_ns=ms(2))
        assert plan.window == ms(2)

    def test_disconnected_clusters_need_explicit_window(self):
        topo = FabricTopology(
            clusters=(
                FabricTopology.star(("a0", "a1")).clusters[0],
            ),
            connect_aggregators=False,
        )
        # Single cluster, no cross-cluster links: lookahead is undefined
        # and the single shard spans the whole run in one window.
        plan = ShardPlan(topo, shards=1)
        assert plan.lookahead is None
        assert plan.window_for(ms(100)) == ms(100)

    def test_multi_shard_without_links_needs_window(self):
        islands = tuple(f"i{n}" for n in range(4))
        topo = FabricTopology.clustered(islands, fanout=2)
        detached = FabricTopology(
            clusters=topo.clusters, connect_aggregators=False
        )
        with pytest.raises(ValueError, match="explicit window_ns"):
            ShardPlan(detached, shards=2)
        assert ShardPlan(detached, shards=2, window_ns=ms(1)).window == ms(1)


class TestBoundaryLinks:
    def test_only_cross_shard_links_reported(self):
        plan = ShardPlan(_topo(16, 4), shards=4)
        for a, b, _latency in plan.boundary_links():
            assert plan.shard_of(a) != plan.shard_of(b)

    def test_single_shard_has_no_boundary_links(self):
        assert ShardPlan(_topo(), shards=1).boundary_links() == []
