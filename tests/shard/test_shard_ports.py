"""BoundaryRouter: declared links only, total order, seq-on-drop."""

import pytest

from repro.faults import ChannelBlackout
from repro.platform import FabricTopology
from repro.shard import BoundaryMessage, BoundaryRouter, BoundaryRoutingError
from repro.sim import ms


def _router():
    topo = FabricTopology.clustered(
        tuple(f"i{n}" for n in range(8)),
        fanout=4,
        link_latency=ms(5),
        uplink_latency=ms(10),
    )
    return BoundaryRouter(topo), topo


class TestSend:
    def test_deliver_at_is_send_time_plus_declared_latency(self):
        router, topo = _router()
        message = router.send("i0", "i4", "report", {"x": 1}, now=ms(3))
        assert message.deliver_at == ms(3) + ms(10)
        assert router.drain() == [message]
        assert router.drain() == []

    def test_undeclared_link_rejected(self):
        router, _topo = _router()
        # i1 and i5 are plain members of different clusters: no link.
        with pytest.raises(BoundaryRoutingError, match="no declared"):
            router.send("i1", "i5", "report", None, now=0)

    def test_sequence_numbers_are_per_direction(self):
        router, _topo = _router()
        first = router.send("i0", "i4", "a", None, now=0)
        second = router.send("i0", "i4", "b", None, now=0)
        reverse = router.send("i4", "i0", "c", None, now=0)
        assert (first.seq, second.seq, reverse.seq) == (0, 1, 0)


class TestBlackout:
    def test_drop_consumes_the_sequence_number(self):
        router, _topo = _router()
        router.add_blackout(
            "i0", "i4", ChannelBlackout(start=ms(10), duration=ms(10))
        )
        before = router.send("i0", "i4", "a", None, now=0)
        dropped = router.send("i0", "i4", "b", None, now=ms(15))
        after = router.send("i0", "i4", "c", None, now=ms(25))
        assert dropped is None
        assert (before.seq, after.seq) == (0, 2)
        assert router.counters() == {"sent": 2, "dropped": 1, "delivered": 0}

    def test_directional_blackout_blocks_only_the_named_sender(self):
        router, _topo = _router()
        router.add_blackout(
            "i0", "i4",
            ChannelBlackout(start=0, duration=ms(10), direction="i4"),
        )
        assert router.send("i0", "i4", "a", None, now=ms(5)) is not None
        assert router.send("i4", "i0", "b", None, now=ms(5)) is None

    def test_unknown_link_or_direction_rejected(self):
        router, _topo = _router()
        with pytest.raises(BoundaryRoutingError, match="no declared"):
            router.add_blackout("i1", "i5", ChannelBlackout(0, ms(1)))
        with pytest.raises(BoundaryRoutingError, match="neither"):
            router.add_blackout(
                "i0", "i4", ChannelBlackout(0, ms(1), direction="i3")
            )


class TestDeliver:
    def test_handler_dispatch_prefers_src_specific(self):
        router, _topo = _router()
        hits = []
        router.register("i4", "ping", lambda m: hits.append("any"))
        router.register("i4", "ping", lambda m: hits.append("from-i0"), src="i0")
        message = router.send("i0", "i4", "ping", None, now=0)
        router.deliver(message, message.deliver_at)
        assert hits == ["from-i0"]

    def test_duplicate_registration_rejected(self):
        router, _topo = _router()
        router.register("i4", "ping", lambda m: None)
        with pytest.raises(BoundaryRoutingError, match="duplicate"):
            router.register("i4", "ping", lambda m: None)

    def test_delivery_at_wrong_time_rejected(self):
        router, _topo = _router()
        router.register("i4", "ping", lambda m: None)
        message = router.send("i0", "i4", "ping", None, now=0)
        with pytest.raises(BoundaryRoutingError, match="due time"):
            router.deliver(message, message.deliver_at + 1)

    def test_missing_handler_rejected(self):
        router, _topo = _router()
        message = router.send("i0", "i4", "ping", None, now=0)
        with pytest.raises(BoundaryRoutingError, match="no handler"):
            router.deliver(message, message.deliver_at)


class TestOrdering:
    def test_sort_key_orders_same_instant_deliveries(self):
        def msg(deliver_at, dst, src, seq):
            return BoundaryMessage(
                src=src, dst=dst, kind="k", sent_at=0,
                deliver_at=deliver_at, seq=seq,
            )

        shuffled = [
            msg(20, "b", "a", 1),
            msg(10, "b", "a", 0),
            msg(10, "a", "b", 0),
            msg(10, "b", "a", 1),
            msg(10, "b", "c", 0),
        ]
        ordered = sorted(shuffled, key=BoundaryMessage.sort_key)
        assert [m.sort_key() for m in ordered] == sorted(
            m.sort_key() for m in shuffled
        )
        assert ordered[0].dst == "a"
        assert ordered[-1].deliver_at == 20
