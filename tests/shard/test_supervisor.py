"""Self-healing shard execution: every failure mode the supervisor owns.

Each scripted fault (kill mid-window, kill during world build, hang at a
barrier, kill on every respawn, refuse to exit after the result) must
leave the run's *simulation* outcome bit-identical to an undisturbed
reference — the whole point of journal-replay recovery — while the
recovery itself shows up in the ``supervision.*`` counters and the
event log.
"""

import pytest

from repro.parallel import WORKERS_ENV, parallelism_enabled
from repro.platform import FabricTopology
from repro.shard import (
    BUILD_WINDOW,
    FINISH_WINDOW,
    FaultScript,
    ShardConfig,
    ShardPlan,
    SupervisionLog,
    run_sharded,
)
from repro.sim import PeriodicTask, ms

RING = 4
PING_PERIOD = ms(7)
DURATION = ms(200)

#: Fast-failure knobs: tight barrier so hang tests stay quick, tiny
#: backoff so respawns don't dominate, heartbeats on so probes apply.
FAST = dict(
    barrier_timeout_s=1.0,
    heartbeat_interval_s=0.05,
    probe_timeout_s=0.5,
    max_respawns=3,
    respawn_backoff_s=0.01,
)
#: Longer than any test: hung workers are killed, never waited out.
HANG_S = 30.0


def ring_topology():
    return FabricTopology.ring(
        tuple(f"node-{n}" for n in range(RING)), link_latency=ms(5)
    )


class PingWorld:
    def __init__(self, ctx, seed):
        names = ctx.plan.topology.islands
        self.received = {name: 0 for name in ctx.islands}
        for name in ctx.islands:
            successor = names[(names.index(name) + 1) % len(names)]
            ctx.router.register(name, "ping", self._receive)
            PeriodicTask(
                ctx.sim, PING_PERIOD,
                lambda name=name, successor=successor: ctx.router.send(
                    name, successor, "ping",
                    {"from": name, "beat": seed}, ctx.sim.now,
                ),
                name=f"ping-{name}",
            )

    def _receive(self, message):
        self.received[message.dst] += 1

    def collect(self):
        return {"received": self.received}


def build_ping_world(ctx, seed):
    return PingWorld(ctx, seed)


def merged(run):
    """The bit-equality artefact: simulation outcome only — the
    ``supervision.*`` counters describe the harness, not the fabric."""
    view = {}
    for result in run.results:
        view.update(result["received"])
    counters = {
        key: value
        for key, value in run.counters.items()
        if not key.startswith("supervision.")
    }
    return view, counters, run.events


@pytest.fixture(scope="module")
def reference():
    """Undisturbed shards=2 run, forced inline (``workers=1``) so it is
    deterministic regardless of the host's parallelism rules."""
    plan = ShardPlan(ring_topology(), shards=2)
    run = run_sharded(plan, build_ping_world, (9,), duration=DURATION, workers=1)
    assert run.engine == "inline"
    return run


@pytest.fixture
def process_env(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "2")
    if not parallelism_enabled():
        pytest.skip("parallelism unavailable in this environment")


def chaos_run(script, **config_overrides):
    plan = ShardPlan(ring_topology(), shards=2)
    config = ShardConfig(**{**FAST, **config_overrides})
    return run_sharded(
        plan, build_ping_world, (9,), duration=DURATION,
        config=config, fault_hook=script,
    )


# Fault scripts must be module-level picklable values.
KILL_MID_WINDOW = FaultScript(kills=((1, 4),))
KILL_AT_BUILD = FaultScript(kills=((0, BUILD_WINDOW),))
HANG_AT_BARRIER = FaultScript(hangs=((0, 6, HANG_S),))
KILL_EVERY_LIFE = FaultScript(kills=((1, 5),), persistent=True)
KILL_LATE = FaultScript(kills=((1, 20),))
HANG_AFTER_RESULT = FaultScript(hangs=((1, FINISH_WINDOW, HANG_S),))


class TestCrashRecovery:
    def test_crash_mid_window_respawns_and_replays(
        self, process_env, reference
    ):
        run = chaos_run(KILL_MID_WINDOW)
        assert run.engine == "process"
        assert run.counters["supervision.crashes"] == 1
        assert run.counters["supervision.respawns"] == 1
        # Killed when granted window 4, so windows 0..3 were replayed.
        assert run.counters["supervision.replayed_windows"] == 4
        assert run.counters["supervision.degraded_inline"] == 0
        assert merged(run) == merged(reference)

    def test_crash_during_world_build_respawns(self, process_env, reference):
        run = chaos_run(KILL_AT_BUILD)
        assert run.engine == "process"
        assert run.counters["supervision.respawns"] == 1
        # Died before any window: rebirth needs no replay.
        assert run.counters["supervision.replayed_windows"] == 0
        assert merged(run) == merged(reference)

    def test_recovery_events_are_logged_with_wall_time(
        self, process_env, reference
    ):
        run = chaos_run(KILL_MID_WINDOW)
        kinds = [kind for _, kind, _ in run.supervision["events"]]
        assert kinds == ["worker-crash", "worker-respawned"]
        respawn = run.supervision["events"][-1][2]
        assert respawn["shard"] == 1
        assert respawn["attempt"] == 1
        assert respawn["replayed"] == 4
        assert run.supervision["recovery_seconds"] > 0
        assert merged(run) == merged(reference)


class TestHangRecovery:
    def test_hang_at_barrier_is_detected_within_the_deadline(
        self, process_env, reference
    ):
        run = chaos_run(HANG_AT_BARRIER)
        assert run.engine == "process"
        assert run.counters["supervision.hangs"] == 1
        assert run.counters["supervision.respawns"] == 1
        hang = next(
            payload
            for _, kind, payload in run.supervision["events"]
            if kind == "worker-hang"
        )
        # The *barrier deadline* caught it (heartbeats kept flowing from
        # the side thread, so the liveness probe could not).
        assert "barrier deadline" in hang["detail"]
        # Detection latency is bounded by the configured deadline (plus
        # the fast windows before the hang and scheduler slack).
        hang_at = next(
            when
            for when, kind, _ in run.supervision["events"]
            if kind == "worker-hang"
        )
        assert hang_at < FAST["barrier_timeout_s"] + 5.0
        assert merged(run) == merged(reference)


class TestDegradation:
    def test_respawn_budget_exhaustion_degrades_inline_bit_identical(
        self, process_env, reference
    ):
        run = chaos_run(KILL_EVERY_LIFE, max_respawns=2)
        assert run.engine == "inline"
        assert run.counters["supervision.respawns"] == 2
        assert run.counters["supervision.degraded_inline"] == 1
        assert any(
            "respawn budget" in cause
            for cause in run.supervision["degradations"]
        )
        # The inline engine was fast-forwarded from the journal.
        replay = next(
            payload
            for _, kind, payload in run.supervision["events"]
            if kind == "inline-replay"
        )
        assert replay["source"] == "journal"
        assert merged(run) == merged(reference)

    def test_truncated_journal_degrades_by_recomputing(
        self, process_env, reference
    ):
        run = chaos_run(KILL_LATE, journal_limit=4)
        assert run.engine == "inline"
        assert run.counters["supervision.journal_evicted"] > 0
        kinds = [kind for _, kind, _ in run.supervision["events"]]
        assert "journal-truncated" in kinds
        replay = next(
            payload
            for _, kind, payload in run.supervision["events"]
            if kind == "inline-replay"
        )
        assert replay["source"] == "recompute"
        assert merged(run) == merged(reference)


class TestFinishContract:
    def test_worker_refusing_to_exit_is_detected_and_killed(
        self, process_env, reference
    ):
        run = chaos_run(HANG_AFTER_RESULT)
        # The result was already in hand, so the run succeeds — but the
        # leak is counted instead of silently accepted.
        assert run.engine == "process"
        assert run.counters["supervision.finish_timeouts"] == 1
        assert merged(run) == merged(reference)

    def test_clean_run_reports_zeroed_supervision_counters(
        self, process_env, reference
    ):
        run = chaos_run(None)
        assert run.engine == "process"
        for key, value in run.counters.items():
            if key.startswith("supervision.") and "journal" not in key:
                assert value == 0, key
        assert run.supervision["totals"] == {}
        assert run.supervision["degradations"] == []
        assert merged(run) == merged(reference)


class TestFaultScript:
    def test_fires_only_on_first_life_by_default(self):
        script = FaultScript(hangs=((0, 3, HANG_S),))
        script(0, 3, attempt=1)  # would sleep 30s if it fired

    def test_persistent_script_fires_every_life(self):
        script = FaultScript(hangs=((0, 3, 0.0),), persistent=True)
        script(0, 3, attempt=5)  # zero-length hang: fires, returns

    def test_non_matching_windows_are_ignored(self):
        script = FaultScript(kills=((0, 3),), hangs=((1, 2, HANG_S),))
        script(0, 2, attempt=0)
        script(1, 3, attempt=0)


class TestSupervisionLog:
    def test_counter_keys_are_stable_and_zeroed(self):
        log = SupervisionLog()
        assert log.counters() == {
            "supervision.crashes": 0,
            "supervision.hangs": 0,
            "supervision.respawns": 0,
            "supervision.replayed_windows": 0,
            "supervision.finish_timeouts": 0,
            "supervision.degraded_inline": 0,
        }

    def test_timeline_and_first_event(self):
        log = SupervisionLog()
        log.note("worker-crash", shard=1, detail="boom")
        log.note("worker-respawned", shard=1, attempt=1, wall_s=0.25)
        log.note("worker-hang", shard=0, detail="stuck")
        assert [kind for _, kind in log.timeline(1)] == [
            "worker-crash", "worker-respawned",
        ]
        when, payload = log.first_event("worker-hang")
        assert payload["shard"] == 0
        assert log.first_event("finish-timeout") is None
        assert log.recovery_seconds == 0.25

    def test_summary_is_plain_data(self):
        import pickle

        log = SupervisionLog()
        log.note("worker-crash", shard=0, detail="x")
        summary = log.summary()
        assert pickle.loads(pickle.dumps(summary)) == summary
