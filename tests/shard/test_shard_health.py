"""LinkHealth: the PR-5 fault idiom across a shard boundary.

A two-cluster fabric with a scripted bidirectional blackout on its one
uplink: both endpoints must walk UP -> SUSPECT -> DOWN at deterministic
times, suppress nothing they shouldn't, and on heal bump their epoch and
fire the ``on_up`` replay hook — identically at any shard count.
"""

import pytest

from repro.faults import ChannelBlackout
from repro.platform import FabricTopology
from repro.shard import (
    LINK_DOWN,
    LINK_SUSPECT,
    LINK_UP,
    LinkHealth,
    ShardPlan,
    run_sharded,
)
from repro.sim import ms, seconds

BLACKOUT_START = ms(400)
BLACKOUT_LEN = ms(300)
DURATION = seconds(1)


def two_cluster_topology():
    return FabricTopology.clustered(
        ("left-0", "left-1", "right-0", "right-1"),
        fanout=2,
        link_latency=ms(5),
        uplink_latency=ms(5),
    )


class HealthWorld:
    def __init__(self, ctx, period):
        self.links = {}
        self.replays = {}
        topo = ctx.plan.topology
        blackout = ChannelBlackout(
            start=BLACKOUT_START, duration=BLACKOUT_LEN, direction="both"
        )
        ctx.router.add_blackout("left-0", "right-0", blackout)
        for local, peer in (("left-0", "right-0"), ("right-0", "left-0")):
            if local not in ctx.islands:
                continue
            link = LinkHealth(ctx.sim, ctx.router, local, peer, period=period)
            self.links[local] = link
            self.replays[local] = 0
            link.on_up(lambda local=local: self._bump(local))
        assert topo.root == "left-0"

    def _bump(self, local):
        self.replays[local] += 1

    def collect(self):
        return {
            local: {"health": link.health(), "replays": self.replays[local]}
            for local, link in self.links.items()
        }


def build_health_world(ctx, period):
    return HealthWorld(ctx, period)


def run_health(shards):
    plan = ShardPlan(two_cluster_topology(), shards=shards)
    run = run_sharded(
        plan, build_health_world, (ms(50),), duration=DURATION
    )
    view = {}
    for result in run.results:
        view.update(result)
    return view


class TestHealthTimeline:
    @pytest.fixture(scope="class")
    def view(self):
        return run_health(shards=1)

    @pytest.mark.parametrize("endpoint", ["left-0", "right-0"])
    def test_up_suspect_down_up_walk(self, view, endpoint):
        states = [state for _t, state, _r in view[endpoint]["health"]["transitions"]]
        assert states == [LINK_UP, LINK_SUSPECT, LINK_DOWN, LINK_UP]

    @pytest.mark.parametrize("endpoint", ["left-0", "right-0"])
    def test_detection_and_recovery_times(self, view, endpoint):
        transitions = view[endpoint]["health"]["transitions"]
        down_at = next(t for t, state, _r in transitions if state == LINK_DOWN)
        back_at = transitions[-1][0]
        # 4 missed 50 ms heartbeats after the last pre-blackout beat.
        assert BLACKOUT_START < down_at <= BLACKOUT_START + ms(250)
        heal = BLACKOUT_START + BLACKOUT_LEN
        assert heal <= back_at <= heal + ms(100)

    def test_epoch_bump_and_replay_hook(self, view):
        for endpoint in ("left-0", "right-0"):
            assert view[endpoint]["health"]["epoch"] == 1
            assert view[endpoint]["replays"] == 1

    def test_sharded_timeline_is_identical(self, view):
        assert run_health(shards=2) == view
