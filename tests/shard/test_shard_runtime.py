"""The headline guarantee: shards=N is bit-identical to shards=1.

A synthetic ping world (a ring of single-island clusters exchanging
periodic boundary pings) runs under every engine and layout; results,
router counters and kernel event counts must all match exactly.
"""

import logging

import pytest

from repro.platform import FabricTopology
from repro.shard import (
    BoundaryRoutingError,
    BoundaryMessage,
    ShardHost,
    ShardPlan,
    ShardWorkerError,
    run_sharded,
)
from repro.sim import PeriodicTask, ms, seconds

RING = 4
PING_PERIOD = ms(7)
DURATION = ms(500)


def ring_topology(latency=ms(5)):
    return FabricTopology.ring(
        tuple(f"node-{n}" for n in range(RING)), link_latency=latency
    )


class PingWorld:
    """Each island pings its ring successor; receipts echo state."""

    def __init__(self, ctx, seed):
        self.ctx = ctx
        names = ctx.plan.topology.islands
        self.received = {name: 0 for name in ctx.islands}
        self.last_payload = {name: None for name in ctx.islands}
        for name in ctx.islands:
            successor = names[(names.index(name) + 1) % len(names)]
            ctx.router.register(name, "ping", self._receive)
            PeriodicTask(
                ctx.sim, PING_PERIOD,
                lambda name=name, successor=successor: ctx.router.send(
                    name, successor, "ping",
                    {"from": name, "beat": seed}, ctx.sim.now,
                ),
                name=f"ping-{name}",
            )

    def _receive(self, message):
        self.received[message.dst] += 1
        self.last_payload[message.dst] = (message.src, message.deliver_at)

    def collect(self):
        return {"received": self.received, "last": self.last_payload}


def build_ping_world(ctx, seed):
    return PingWorld(ctx, seed)


def build_crashing_world(ctx, seed):
    raise RuntimeError("world refused to boot")


def merged(run):
    view = {}
    for result in run.results:
        view.update(result["received"])
    return view, run.counters, run.events


class TestBitEquality:
    @pytest.fixture(scope="class")
    def reference(self):
        plan = ShardPlan(ring_topology(), shards=1)
        return run_sharded(
            plan, build_ping_world, (9,), duration=DURATION
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_inline_layouts_match_reference(self, reference, shards):
        plan = ShardPlan(ring_topology(), shards=shards)
        run = run_sharded(plan, build_ping_world, (9,), duration=DURATION)
        assert merged(run) == merged(reference)
        assert run.windows == reference.windows

    def test_audit_path_matches_reference(self, reference):
        plan = ShardPlan(ring_topology(), shards=2)
        run = run_sharded(
            plan, build_ping_world, (9,), duration=DURATION, fastpath=False
        )
        assert merged(run) == merged(reference)

    def test_process_engine_matches_reference(self, reference, monkeypatch):
        from repro.parallel import WORKERS_ENV, parallelism_enabled

        monkeypatch.setenv(WORKERS_ENV, "2")
        if not parallelism_enabled():
            pytest.skip("parallelism unavailable in this environment")
        plan = ShardPlan(ring_topology(), shards=2)
        run = run_sharded(plan, build_ping_world, (9,), duration=DURATION)
        assert run.engine == "process"
        assert merged(run) == merged(reference)


class TestDegradation:
    def test_disabled_parallelism_degrades_inline_and_logs_once(
        self, monkeypatch, caplog
    ):
        from repro.parallel import PARALLEL_ENV, plan_execution
        from repro.shard import reset_degradation_warnings

        monkeypatch.setenv(PARALLEL_ENV, "0")
        reset_degradation_warnings()
        plan = ShardPlan(ring_topology(), shards=2)
        expected_cause = plan_execution(plan.shards).reason
        with caplog.at_level(logging.WARNING, logger="repro.shard.runtime"):
            for _ in range(2):
                run = run_sharded(
                    plan, build_ping_world, (9,), duration=ms(50)
                )
                assert run.engine == "inline"
                # Per-run state: every run records its own cause, even
                # though only the first one warns.
                assert run.supervision["degradations"] == [expected_cause]
        notes = [r for r in caplog.records if "inline" in r.message]
        assert len(notes) == 1

    def test_worker_world_crash_is_reraised(self, monkeypatch):
        from repro.parallel import WORKERS_ENV, parallelism_enabled

        monkeypatch.setenv(WORKERS_ENV, "2")
        if not parallelism_enabled():
            pytest.skip("parallelism unavailable in this environment")
        plan = ShardPlan(ring_topology(), shards=2)
        with pytest.raises(ShardWorkerError, match="refused to boot"):
            run_sharded(plan, build_crashing_world, (0,), duration=ms(50))

    def test_zero_lookahead_rejected(self):
        plan = ShardPlan(ring_topology(latency=0), shards=1)
        with pytest.raises(ValueError, match="zero-latency"):
            run_sharded(plan, build_ping_world, (9,), duration=ms(50))


class TestWindowContract:
    def test_message_due_in_the_past_is_a_causality_violation(self):
        plan = ShardPlan(ring_topology(), shards=1)
        host = ShardHost(plan, 0, build_ping_world, build_args=(9,))
        host.advance(ms(20))
        stale = BoundaryMessage(
            src="node-0", dst="node-1", kind="ping",
            sent_at=0, deliver_at=ms(5), seq=0,
        )
        host.enqueue([stale])
        with pytest.raises(BoundaryRoutingError, match="causality"):
            host.advance(ms(25))

    def test_messages_at_window_edge_wait_for_the_next_window(self):
        plan = ShardPlan(ring_topology(), shards=1)
        host = ShardHost(plan, 0, build_ping_world, build_args=(9,))
        edge = BoundaryMessage(
            src="node-0", dst="node-1", kind="ping",
            sent_at=0, deliver_at=ms(10), seq=0,
        )
        host.enqueue([edge])
        host.advance(ms(10))  # exclusive bound: not delivered yet
        assert host.world.received["node-1"] == 0
        assert host.sim.now == ms(10)
        host.advance(ms(15))
        assert host.world.received["node-1"] == 1
        assert host.world.last_payload["node-1"] == ("node-0", ms(10))
