"""WindowJournal: the recovery substrate's bookkeeping contract."""

import pytest

from repro.shard import BoundaryMessage, WindowJournal


def msg(seq, due=100):
    return BoundaryMessage(
        src="node-0", dst="node-1", kind="ping",
        sent_at=0, deliver_at=due, seq=seq,
    )


def record_windows(journal, count, shards=2):
    for index in range(count):
        batches = [[] for _ in range(shards)]
        batches[index % shards].append(msg(index))
        journal.record(index, (index + 1) * 10, batches)


class TestRecording:
    def test_windows_must_be_contiguous_from_zero(self):
        journal = WindowJournal(2)
        with pytest.raises(ValueError, match="expected window 0"):
            journal.record(1, 10, [[], []])
        journal.record(0, 10, [[], []])
        with pytest.raises(ValueError, match="expected window 1"):
            journal.record(0, 10, [[], []])

    def test_one_batch_per_shard_enforced(self):
        journal = WindowJournal(3)
        with pytest.raises(ValueError, match="one batch per shard"):
            journal.record(0, 10, [[], []])

    def test_counters_track_windows_and_messages(self):
        journal = WindowJournal(2)
        record_windows(journal, 5)
        assert journal.counters() == {
            "supervision.journal_windows": 5,
            "supervision.journal_messages": 5,
            "supervision.journal_evicted": 0,
        }

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            WindowJournal(0)
        with pytest.raises(ValueError, match="limit"):
            WindowJournal(2, limit=0)


class TestBounding:
    def test_eviction_honours_limit_and_marks_truncation(self):
        journal = WindowJournal(2, limit=3)
        record_windows(journal, 5)
        assert len(journal) == 3
        assert journal.evicted == 2
        assert not journal.complete
        assert journal.first_index == 2
        # The monotone totals are unaffected by eviction.
        assert journal.windows_recorded == 5

    def test_unbounded_journal_never_truncates(self):
        journal = WindowJournal(2, limit=None)
        record_windows(journal, 50)
        assert journal.complete
        assert len(journal) == 50


class TestReplay:
    def test_full_replay_yields_every_window_in_order(self):
        journal = WindowJournal(2)
        record_windows(journal, 4)
        entries = list(journal.replay())
        assert [index for index, _, _ in entries] == [0, 1, 2, 3]
        assert [until for _, until, _ in entries] == [10, 20, 30, 40]
        # shard=None yields the full per-shard batch list.
        assert all(len(batches) == 2 for _, _, batches in entries)

    def test_per_shard_replay_projects_one_batch(self):
        journal = WindowJournal(2)
        record_windows(journal, 4)
        for index, _until, batch in journal.replay(shard=0):
            expected = 1 if index % 2 == 0 else 0
            assert len(batch) == expected

    def test_upto_bounds_the_horizon(self):
        journal = WindowJournal(2)
        record_windows(journal, 6)
        assert [i for i, _, _ in journal.replay(upto=3)] == [0, 1, 2]
        assert list(journal.replay(upto=0)) == []

    def test_truncated_journal_refuses_replay(self):
        journal = WindowJournal(2, limit=2)
        record_windows(journal, 4)
        with pytest.raises(ValueError, match="truncated"):
            list(journal.replay(shard=0))

    def test_empty_journal_is_falsy_but_replays_nothing(self):
        # Regression guard: an empty journal is falsy (len 0), which once
        # made a bare ``journal or WindowJournal(...)`` shadow the live
        # journal with a fresh one. Consumers must test ``is None``.
        journal = WindowJournal(2)
        assert not journal
        assert list(journal.replay(upto=0)) == []
