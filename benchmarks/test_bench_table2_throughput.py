"""Table 2: throughput, sessions, session time, platform efficiency.

Paper numbers: throughput 68 -> 95 req/s, sessions completed 6 -> 11,
average session time 103 s -> 73 s, platform efficiency 51.28 -> 58.20.
Absolute values differ on our substrate; the assertions pin the shape:
coordination raises throughput, completes more sessions faster, and
improves efficiency (more application work per CPU cycle).
"""

from repro.experiments import render_table2

from _shared import emit, get_rubis_pair


def test_bench_table2_throughput(benchmark):
    pair = benchmark.pedantic(get_rubis_pair, rounds=1, iterations=1)
    emit(render_table2(pair))

    base, coord = pair.base, pair.coord
    assert coord.throughput > base.throughput * 1.05
    assert coord.efficiency > base.efficiency * 1.05
    assert coord.sessions_completed >= base.sessions_completed
    if base.sessions_completed and coord.sessions_completed:
        assert coord.mean_session_time_s <= base.mean_session_time_s
