"""Table 3: trigger interference on a co-located, IXP-independent VM.

Paper numbers: the boosted streaming domain gains +9.77% while the
disk-playing Dom-2 — which "does not use any resources of the IXP island"
— degrades by only 6.25%, for a net platform gain.
"""

from repro.experiments import render_table3

from _shared import emit, get_trigger_pair


def test_bench_table3_trigger_interference(benchmark):
    pair = benchmark.pedantic(get_trigger_pair, rounds=1, iterations=1)
    emit(render_table3(pair))

    # The beneficiary gains meaningfully (paper: +9.77%).
    assert pair.dom1_change_percent > 3.0
    # The victim pays a small, bounded tax (paper: -6.25%).
    assert -12.0 < pair.dom2_change_percent < 0.5
    # Net: the beneficiary gains more than the victim loses.
    assert pair.dom1_change_percent > -pair.dom2_change_percent * 0.8
