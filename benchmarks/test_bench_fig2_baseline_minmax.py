"""Figure 2: baseline RUBiS min-max response-time variability.

Paper claim: without coordination there is "substantial variation in the
minimum and maximum response time latencies of requests" — multi-hundred-
millisecond spreads on every request type.

This benchmark also pays for the shared RUBiS pair used by the Figure 4/5
and Table 1/2 benchmarks.
"""

from repro.experiments import render_figure2

from _shared import emit, get_rubis_pair


def test_bench_fig2_baseline_minmax(benchmark):
    pair = benchmark.pedantic(get_rubis_pair, rounds=1, iterations=1)
    emit(render_figure2(pair))

    for name in pair.common_types():
        summary = pair.base.per_type[name]
        # Substantial spread: the worst case is a large multiple of the
        # best case for every type.
        assert summary.maximum >= summary.minimum * 3
    overall = pair.base.overall
    assert overall.spread > 300  # ms: the paper's figure spans seconds
