"""Shared machinery for the reproduction benchmarks.

The five RUBiS artefacts (Figures 2, 4, 5 and Tables 1, 2) come from one
paired run, and the two trigger artefacts (Figure 7, Table 3) from
another; results are cached process-wide so the whole benchmark suite pays
for each expensive experiment once. Every benchmark still *can* regenerate
its artefact standalone — the cache is a convenience, not a dependency.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments import (
    RubisPairResult,
    TriggerPairResult,
    run_rubis_pair,
    run_trigger_pair,
)
from repro.sim import seconds

#: Measured duration per RUBiS arm (plus the deployment's 8 s warmup).
RUBIS_DURATION = seconds(60)
BENCH_SEED = 1

_rubis_pair: Optional[RubisPairResult] = None
_trigger_pair: Optional[TriggerPairResult] = None


def get_rubis_pair() -> RubisPairResult:
    """The shared baseline/coordinated RUBiS pair (computed once)."""
    global _rubis_pair
    if _rubis_pair is None:
        _rubis_pair = run_rubis_pair(duration=RUBIS_DURATION, seed=BENCH_SEED)
    return _rubis_pair


def get_trigger_pair() -> TriggerPairResult:
    """The shared baseline/trigger MPlayer pair (computed once)."""
    global _trigger_pair
    if _trigger_pair is None:
        _trigger_pair = run_trigger_pair(seed=BENCH_SEED)
    return _trigger_pair


def emit(artefact: str) -> None:
    """Print a rendered artefact with a separator (visible via -s or -rA)."""
    print()
    print("=" * 72)
    print(artefact)
    print("=" * 72)
