"""Shared machinery for the reproduction benchmarks.

The five RUBiS artefacts (Figures 2, 4, 5 and Tables 1, 2) come from one
paired run, and the two trigger artefacts (Figure 7, Table 3) from
another; results are cached process-wide so the whole benchmark suite pays
for each expensive experiment once. The caches are keyed on the run
parameters — ``(duration, seed)`` for RUBiS, ``seed`` for the trigger
pair — so a benchmark asking for different parameters can never be served
a stale pair. Every benchmark still *can* regenerate its artefact
standalone — the cache is a convenience, not a dependency.
"""

from __future__ import annotations

from repro.experiments import (
    RubisPairResult,
    TriggerPairResult,
    run_rubis_pair,
    run_trigger_pair,
)
from repro.sim import seconds

#: Measured duration per RUBiS arm (plus the deployment's 8 s warmup).
RUBIS_DURATION = seconds(60)
BENCH_SEED = 1

_rubis_pairs: dict[tuple[int, int], RubisPairResult] = {}
_trigger_pairs: dict[int, TriggerPairResult] = {}


def get_rubis_pair(duration: int = RUBIS_DURATION, seed: int = BENCH_SEED) -> RubisPairResult:
    """The shared baseline/coordinated RUBiS pair (computed once per key)."""
    key = (duration, seed)
    if key not in _rubis_pairs:
        _rubis_pairs[key] = run_rubis_pair(duration=duration, seed=seed)
    return _rubis_pairs[key]


def get_trigger_pair(seed: int = BENCH_SEED) -> TriggerPairResult:
    """The shared baseline/trigger MPlayer pair (computed once per seed)."""
    if seed not in _trigger_pairs:
        _trigger_pairs[seed] = run_trigger_pair(seed=seed)
    return _trigger_pairs[seed]


def emit(artefact: str) -> None:
    """Print a rendered artefact with a separator (visible via -s or -rA)."""
    print()
    print("=" * 72)
    print(artefact)
    print("=" * 72)
