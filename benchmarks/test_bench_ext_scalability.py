"""Extension benchmark: coordination-mechanism scalability (paper §5).

"Also ongoing are evaluations of the scalability of such mechanisms to
large-scale multicore platforms, part of which involve the use of
distributed coordination algorithms across multiple island resource
managers."

K cells with rotating hot phases; a centralized (star) coordinator vs a
distributed (ring-gossip) one, both speaking Tune over per-link channels.
"""

from repro.experiments.scalability import render_scalability, run_scalability

from _shared import emit

CELL_COUNTS = (2, 4, 8)


def test_bench_ext_scalability(benchmark):
    results = benchmark.pedantic(
        run_scalability, args=(CELL_COUNTS,), rounds=1, iterations=1
    )
    emit(render_scalability(results))

    for count in CELL_COUNTS:
        none = results[("none", count)]
        central = results[("centralized", count)]
        distributed = results[("distributed", count)]
        # Both coordination algorithms control the probes' latency.
        assert central.mean_probe_latency_ms < none.mean_probe_latency_ms * 0.8
        assert distributed.mean_probe_latency_ms < none.mean_probe_latency_ms * 0.8

    # Centralized message load concentrates at the hub and grows with K...
    hub_2 = results[("centralized", 2)].hub_messages
    hub_8 = results[("centralized", 8)].hub_messages
    assert hub_8 > hub_2 * 2.5  # ~linear in K (4x cells)

    # ...while the distributed scheme's per-cell load stays flat.
    flat_2 = results[("distributed", 2)].max_cell_messages
    flat_8 = results[("distributed", 8)].max_cell_messages
    assert flat_8 <= flat_2 * 2.2
    # And at scale, the hub concentration dwarfs any distributed cell.
    assert hub_8 > flat_8 * 2
