"""Extension benchmark: Tune's second translation target — the I/O
scheduler (paper §3.3: "... or poll time adjustments in an I/O scheduler").

A latency-sensitive VM issues small periodic reads while a batch VM keeps
the disk saturated with large sequential scans. Baseline: equal I/O
weights. Coordinated: a Tune addressed to the ``disk:<vm>`` entity raises
the interactive VM's I/O weight, exactly as a Tune to the VM entity would
raise its CPU weight.
"""

from repro import Testbed, TestbedConfig
from repro.experiments import render_table
from repro.metrics import OnlineStats
from repro.platform import EntityId
from repro.sim import ms, seconds
from repro.x86.diskio import WeightedIOScheduler

from _shared import emit


def run_arm(coordinated: bool):
    testbed = Testbed(TestbedConfig(seed=1))
    interactive_vm, _ = testbed.create_guest_vm("interactive", uses_ixp=False)
    batch_vm, _ = testbed.create_guest_vm("batch", uses_ixp=False)
    # The baseline dispatcher strictly polls (the paper-era driver style).
    scheduler = WeightedIOScheduler(testbed.sim, poll_interval=ms(15))
    testbed.x86.attach_disk(scheduler)
    interactive = testbed.x86.create_disk_interface(interactive_vm)
    batch = testbed.x86.create_disk_interface(batch_vm)

    latencies = OnlineStats()

    def interactive_reader(sim):
        while True:
            start = sim.now
            yield from interactive.read(32_000)  # 32 KB random read
            latencies.add(sim.now - start)
            yield sim.timeout(ms(40))

    def batch_scanner(sim):
        while True:
            # Small random reads: the same service class as the
            # interactive VM's, so dispatch order is what differentiates.
            yield from batch.read(32_000)

    testbed.sim.spawn(interactive_reader(testbed.sim))
    for _ in range(8):  # deep batch queue
        testbed.sim.spawn(batch_scanner(testbed.sim))

    if coordinated:
        # Same Tune message/agent path as CPU weights, two new targets:
        # raise the interactive VM's I/O weight, and cut the dispatcher's
        # poll time to zero (delta in microseconds, paper §3.3).
        testbed.ixp_agent.send_tune(
            EntityId("x86", "disk:interactive"), +400, reason="io-latency"
        )
        testbed.ixp_agent.send_tune(
            EntityId("x86", "disk"), -15_000, reason="io-poll"
        )

    testbed.run(seconds(30))
    return latencies, batch.queue.completed


def test_bench_ext_io_coordination(benchmark):
    def run_both():
        return {"base": run_arm(False), "coord": run_arm(True)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    base_latency, base_batch = results["base"]
    coord_latency, coord_batch = results["coord"]

    emit(render_table(
        ["Arm", "small-read mean (ms)", "small-read max (ms)", "batch scans done"],
        [
            ("base", f"{base_latency.mean / 1e6:.1f}",
             f"{base_latency.maximum / 1e6:.1f}", str(base_batch)),
            ("coord (Tune disk:interactive +400)", f"{coord_latency.mean / 1e6:.1f}",
             f"{coord_latency.maximum / 1e6:.1f}", str(coord_batch)),
        ],
        title="Extension: I/O-scheduler Tune translation",
    ))

    # The interactive VM's read latency improves substantially...
    assert coord_latency.mean < base_latency.mean * 0.85
    # ...while the batch workload keeps the disk mostly busy.
    assert coord_batch > base_batch * 0.5
