"""Ablation A2: Tune-only vs Trigger-only vs both (streaming scenario).

The paper distills exactly two standard mechanisms. This ablation runs the
Figure 7 scenario under each, quantifying their different characters:

* **Tune** (sustained weight elevation) maximises the beneficiary's frame
  rate but taxes the co-located CPU-bound domain heavily;
* **Trigger** (transient runqueue boosts gated on buffer occupancy) buys a
  targeted improvement at a much smaller interference cost — the paper's
  Table 3 argument.
"""

from dataclasses import replace

from repro.apps.mplayer import deploy_mplayer
from repro.coordination.mplayer_policy import STAGE_BITRATE, STAGE_OFF
from repro.experiments import Job, render_table, run_jobs
from repro.experiments.mplayer import TRIGGER_DURATION, TRIGGER_WARMUP, trigger_config

from _shared import emit


def run_arm(qos_stage: str, buffer_trigger: bool):
    config = replace(trigger_config(buffer_trigger), qos_stage=qos_stage)
    deployment = deploy_mplayer(config)
    deployment.run(TRIGGER_DURATION)
    return (
        deployment.dom1_fps(TRIGGER_WARMUP, TRIGGER_DURATION),
        deployment.dom2_fps(TRIGGER_WARMUP, TRIGGER_DURATION),
    )


ARMS = (
    ("no coordination", STAGE_OFF, False),
    ("tune only", STAGE_BITRATE, False),
    ("trigger only", STAGE_OFF, True),
    ("tune + trigger", STAGE_BITRATE, True),
)


def run_all():
    arms = run_jobs([Job(run_arm, args=(stage, trig)) for _, stage, trig in ARMS])
    return {label: result for (label, _, _), result in zip(ARMS, arms)}


def test_bench_ablation_mechanisms(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(render_table(
        ["Mechanisms", "Dom1 fps (stream)", "Dom2 fps (disk hog)"],
        [(label, f"{f1:.2f}", f"{f2:.2f}") for label, (f1, f2) in results.items()],
        title="Ablation A2: Tune-only vs Trigger-only vs both",
    ))

    off = results["no coordination"]
    tune = results["tune only"]
    trigger = results["trigger only"]
    both = results["tune + trigger"]

    # Each mechanism alone helps the streaming domain.
    assert tune[0] > off[0]
    assert trigger[0] > off[0]
    # Tune is the blunter instrument: bigger gain, bigger victim tax.
    assert tune[0] >= trigger[0]
    assert tune[1] < trigger[1]
    # Trigger's interference stays small (Table 3's point).
    assert trigger[1] > off[1] * 0.88
    # Combining is not worse for the beneficiary than trigger alone.
    assert both[0] >= trigger[0]
