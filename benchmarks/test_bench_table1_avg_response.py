"""Table 1: average request response times, base vs coord-ixp-dom0.

Paper claim: "Our coordination algorithm significantly reduces response
times for all categories of requests (including by over 60% for 'PutBid'
requests)". We assert the qualitative shape: averages drop for all (or
nearly all) request types, and write-class requests — whose tier is the
one coordination steers toward during bidding storms — see large cuts.
"""

from repro.apps.rubis import BY_NAME
from repro.experiments import render_table1

from _shared import emit, get_rubis_pair


def test_bench_table1_average_response_times(benchmark):
    pair = benchmark.pedantic(get_rubis_pair, rounds=1, iterations=1)
    emit(render_table1(pair))

    types = pair.common_types()
    assert len(types) == 16  # all of Table 1's rows observed

    improved = [
        n for n in types if pair.coord.per_type[n].mean < pair.base.per_type[n].mean
    ]
    assert len(improved) >= len(types) - 1

    # Overall mean drops substantially (paper: roughly 40% averaged over
    # the table; we require a solid double-digit cut).
    assert pair.coord.overall.mean < pair.base.overall.mean * 0.85

    # Write-class requests benefit at least as much as read-class ones on
    # average (their tier is the storm bottleneck coordination fixes).
    def mean_cut(names):
        cuts = [
            1 - pair.coord.per_type[n].mean / pair.base.per_type[n].mean for n in names
        ]
        return sum(cuts) / len(cuts)

    reads = [n for n in types if BY_NAME[n].request_class == "read"]
    writes = [n for n in types if BY_NAME[n].request_class == "write"]
    assert mean_cut(writes) > 0.05
    assert mean_cut(reads) > 0.05
