"""Ablation A4: hardware-assisted coordination (paper §3.3).

"...by leveraging advanced interconnection technologies (e.g., QPI, HTX),
more tightly coupled heterogeneous multicores can be realized, which will
eliminate the latency concerns ... The presence of fast core-core
hardware-level signalling support ... can further eliminate some of the
observed software overheads."

Two coordinated RUBiS runs: the prototype's software path (150 us
PCI-config-space mailbox + Dom0 handling under the credit scheduler) vs a
hardware path (1 us on-chip signal, zero software handling). The measured
quantity is the end-to-end latency from a policy's send to the weight
actually changing — the number the paper predicts hardware will collapse.
"""


from repro.apps.rubis import RubisConfig
from repro.apps.rubis.setup import deploy_rubis
from repro.experiments import render_table
from repro.metrics import summarize
from repro.sim import seconds
from repro.testbed import ChannelConfig, TestbedConfig

from _shared import emit


def run_arm(hardware: bool):
    config = RubisConfig(
        coordinated=True,
        testbed=TestbedConfig(
            driver_poll_burn_duty=0.5, channel=ChannelConfig(hardware=hardware)
        ),
    )
    deployment = deploy_rubis(config)
    deployment.run(config.warmup + seconds(40))
    agent = deployment.testbed.x86_agent
    stats = deployment.client.stats
    return (
        summarize(agent.apply_latencies),
        stats.throughput.rate_per_second(),
        stats.responses.overall_summary_ms().mean,
    )


def test_bench_ablation_hardware_channel(benchmark):
    def run_both():
        return {"software": run_arm(False), "hardware": run_arm(True)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for label, (latency, throughput, mean_response) in results.items():
        rows.append(
            (
                label,
                f"{latency.p50 / 1000:.0f}",
                f"{latency.p95 / 1000:.0f}",
                f"{latency.maximum / 1000:.0f}",
                f"{throughput:.1f}",
                f"{mean_response:.0f}",
            )
        )
    emit(render_table(
        ["Channel", "Tune apply p50 (us)", "p95 (us)", "max (us)",
         "Throughput (req/s)", "Mean resp (ms)"],
        rows,
        title="Ablation A4: software vs hardware-assisted coordination",
    ))

    software, hardware = results["software"], results["hardware"]
    # Hardware signalling collapses the apply latency by orders of
    # magnitude: the software path pays the mailbox plus Dom0 scheduling.
    assert hardware[0].p50 < 10_000  # < 10 us
    assert software[0].p50 > 100_000  # > 100 us (mailbox alone is 150 us)
    assert hardware[0].p95 < software[0].p95 / 20
    # Application-level effect at this policy's timescale is modest — the
    # RUBiS policy tracks multi-second phases — so QoS stays comparable
    # (the latency win matters for faster policies, e.g. Triggers).
    assert hardware[1] > software[1] * 0.9
