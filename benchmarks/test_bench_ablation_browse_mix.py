"""Ablation A3: pure browsing mix (no read-write transitions).

Paper: "The correctness of this interpretation of results is demonstrated
by another run of a purely 'Browsing' related mix that does not have the
read-write transitions. Here, our approach always performs better than the
baseline case for all request types." Without oscillation there is nothing
for per-request coordination to mis-track, so every type should improve.
"""

from repro.apps.rubis import BROWSING_MIX, RubisConfig
from repro.experiments import render_table1, run_rubis_pair
from repro.sim import seconds

from _shared import emit


def run_browsing_pair():
    return run_rubis_pair(
        duration=seconds(40), config=RubisConfig(mix=BROWSING_MIX)
    )


def test_bench_ablation_pure_browsing_mix(benchmark):
    pair = benchmark.pedantic(run_browsing_pair, rounds=1, iterations=1)
    emit("Ablation A3 (pure browsing mix)\n" + render_table1(pair))

    types = pair.common_types()
    assert len(types) >= 6  # all read types observed
    # "always performs better ... for all request types"
    for name in types:
        assert pair.coord.per_type[name].mean < pair.base.per_type[name].mean
    assert pair.coord.throughput > pair.base.throughput
