"""Extension benchmark: platform power capping (paper §1 use case 2).

"While power budgeting can be performed on a per tile-basis, ... caps on
total power usage must be obtained at platform level [because] turning off
or slowing down processors in certain tiles may negatively impact the
performance of application components executing on others. Maintaining
desired global platform properties, therefore, implies the need for
coordination mechanisms."

Three arms at the same platform cap: uncapped reference, per-island local
budgeting (reserving the IXP's rated power), and coordinated budgeting via
power telemetry on the Tune/Trigger channel.
"""

from repro.experiments.power import DEFAULT_CAP_W, render_power_cap, run_power_cap

from _shared import emit


def test_bench_ext_power_cap(benchmark):
    result = benchmark.pedantic(run_power_cap, rounds=1, iterations=1)
    emit(render_power_cap(result))

    unconstrained = result.arm("none")
    local = result.arm("local")
    coord = result.arm("coord")

    # The cap binds: both governors throttle relative to the reference.
    assert local.final_speed < 1.0
    assert local.throughput < unconstrained.throughput
    # Both governors comply at steady state (generous transient tolerance).
    assert local.mean_power_w < DEFAULT_CAP_W
    assert coord.mean_power_w < DEFAULT_CAP_W + 2.0

    # The paper's point: local budgeting strands the slack of the island it
    # cannot observe; coordination reclaims it as application performance.
    assert coord.throughput > local.throughput * 1.3
    assert coord.mean_response_ms < local.mean_response_ms * 0.7
    assert coord.final_speed > local.final_speed
    # ...and the reclaimed performance comes from actually using the
    # budget, not from violating it.
    assert coord.mean_power_w > local.mean_power_w
    assert coord.reports_received > 10
