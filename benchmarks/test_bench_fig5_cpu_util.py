"""Figure 5: RUBiS CPU utilisation, base vs coordinated.

Paper claims: "small increases in CPU utilization in the event of using
coordination" for the tier domains, and "with coordination, the user space
CPU utilization within the guest domain is increased, while iowait and the
system CPU utilization values decrease".
"""

from repro.apps.rubis.setup import APP_VM, DB_VM, WEB_VM
from repro.experiments import render_figure5
from repro.x86.island import DOM0_NAME

from _shared import emit, get_rubis_pair


def test_bench_fig5_cpu_utilization(benchmark):
    pair = benchmark.pedantic(get_rubis_pair, rounds=1, iterations=1)
    emit(render_figure5(pair))

    tiers = (WEB_VM, APP_VM, DB_VM)
    increased = sum(
        1 for vm in tiers if pair.coord.utilization[vm] > pair.base.utilization[vm]
    )
    assert increased >= 2  # tier utilisation rises under coordination

    # The guests' combined share grows...
    base_guest = sum(pair.base.utilization[vm] for vm in tiers)
    coord_guest = sum(pair.coord.utilization[vm] for vm in tiers)
    assert coord_guest > base_guest
    # ...at the expense of Dom0's polling/system overhead.
    assert pair.coord.utilization[DOM0_NAME] < pair.base.utilization[DOM0_NAME]

    # Guest-visible iowait on the front end decreases (faster downstream
    # tiers). Note: the paper claims an across-the-board iowait drop; in
    # our model some of the web tier's saved wait reappears as app-tier
    # iowait (the app now idles on a busier db instead of queueing for
    # CPU), so we assert the front-end component, which is robust.
    assert pair.coord.iowait[WEB_VM] < pair.base.iowait[WEB_VM]
