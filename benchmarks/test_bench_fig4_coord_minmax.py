"""Figure 4: coordination alleviates peak response latencies.

Paper claims: "the coordinated case results in reduced standard deviation
for every request type serviced, sometimes by up to 50%"; the cost is a
small increase of the minimum response time ("up to tolerable 3%" in the
paper; a small-sample statistic we bound more loosely).
"""

from repro.experiments import render_figure4

from _shared import emit, get_rubis_pair


def test_bench_fig4_coordination_reduces_variability(benchmark):
    pair = benchmark.pedantic(get_rubis_pair, rounds=1, iterations=1)
    emit(render_figure4(pair))

    types = pair.common_types()
    std_reduced = sum(
        1 for n in types if pair.coord.per_type[n].std < pair.base.per_type[n].std
    )
    max_reduced = sum(
        1 for n in types if pair.coord.per_type[n].maximum < pair.base.per_type[n].maximum
    )
    # Reduced deviation for (essentially) every request type.
    assert std_reduced >= len(types) - 2
    assert max_reduced >= len(types) - 2
    # Overall tail comes down noticeably.
    assert pair.coord.overall.std < pair.base.overall.std * 0.95
    assert pair.coord.overall.maximum < pair.base.overall.maximum

    # The best-case latency is not made meaningfully worse: minima are
    # single-sample order statistics, so allow generous noise while still
    # catching a broken fast path.
    assert pair.coord.overall.minimum < pair.base.overall.minimum + 30  # ms
