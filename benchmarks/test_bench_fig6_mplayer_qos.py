"""Figure 6: MPlayer video-stream QoS under staged weight coordination.

Paper narrative: at default weights (256-256) "neither guest domain is
able to meet the required frame-rate guarantees"; after bit-rate-driven
weight increases (384-512) both report rates at/above nominal (22 and
25.7 fps); further increasing Domain-2 (384-640, plus IXP dequeue threads
in tandem) keeps Domain-2 high while Domain-1 "is reduced in proportion
... [but] still remains above the 20 frames/sec limit".
"""

from repro.experiments import render_figure6, run_qos_ladder

from _shared import emit


def test_bench_fig6_qos_ladder(benchmark):
    result = benchmark.pedantic(run_qos_ladder, rounds=1, iterations=1)
    emit(render_figure6(result))

    dom1_a, dom2_a = result.stage_a
    dom1_b, dom2_b = result.stage_b
    dom1_c, dom2_c = result.stage_c

    # Stage A: neither meets its frame-rate guarantee.
    assert dom1_a < 19.8
    assert dom2_a < 24.5

    # Stage B: bit-rate tunes lift both to (at least) nominal.
    assert dom1_b >= 19.8
    assert dom2_b >= 24.5
    assert dom1_b > dom1_a
    assert dom2_b > dom2_a

    # Stage C: Domain-2 stays high; Domain-1 gives ground but holds the
    # 20 fps limit (within measurement tolerance).
    assert dom2_c >= 24.5
    assert dom1_c <= dom1_b + 0.3
    assert dom1_c >= 19.4

    # The tandem IXP-thread tune is visible on the island.
    assert result.ixp_threads["mplayer-2"] > result.ixp_threads["mplayer-1"]
    # Final weights are the paper's 384-640 ladder point.
    assert result.weights == {"mplayer-1": 384, "mplayer-2": 640}
