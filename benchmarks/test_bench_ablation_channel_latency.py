"""Ablation A1: coordination-channel latency sensitivity.

The paper singles out "the relatively large latency of the PCIe-based
messaging channel" as a source of misapplied coordination. This ablation
sweeps the one-way channel latency from the PCI-config-space value to
multi-second extremes. Two findings are asserted:

* the coordination benefit is robust to realistic latencies (most of the
  gain is sustained weight elevation, which a delivery delay only shifts);
* extreme latencies erode the *phase-tracking* component: mean response
  time is no better at 3 s than at 150 us, despite costing the same.
"""


from repro.apps.rubis import RubisConfig
from repro.experiments import Job, render_table, run_jobs, run_rubis
from repro.sim import ms, seconds, us
from repro.testbed import ChannelConfig, TestbedConfig

from _shared import emit, get_rubis_pair

LATENCIES = (us(150), ms(5), ms(50), seconds(3))


def run_arm(latency: int):
    config = RubisConfig(
        testbed=TestbedConfig(driver_poll_burn_duty=0.5, channel=ChannelConfig(latency=latency))
    )
    return run_rubis(True, duration=seconds(40), config=config)


def run_sweep():
    arms = run_jobs([Job(run_arm, args=(latency,)) for latency in LATENCIES])
    return dict(zip(LATENCIES, arms))


def test_bench_ablation_channel_latency(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base = get_rubis_pair().base

    rows = [("uncoordinated", "-", f"{base.throughput:.1f}", f"{base.overall.mean:.0f}")]
    for latency, run in results.items():
        rows.append(
            ("coordinated", f"{latency / 1e6:.2f} ms",
             f"{run.throughput:.1f}", f"{run.overall.mean:.0f}")
        )
    emit(render_table(
        ["Arm", "Channel latency", "Throughput (req/s)", "Mean response (ms)"],
        rows,
        title="Ablation A1: coordination-channel latency sweep",
    ))

    fastest = results[LATENCIES[0]]
    slowest = results[LATENCIES[-1]]
    # Benefit survives every latency (vs. the uncoordinated baseline).
    for run in results.values():
        assert run.throughput > base.throughput
        assert run.overall.mean < base.overall.mean
    # Extreme delay gives up (some of) the phase-tracking gain: it is
    # never *better* than the fast channel.
    assert slowest.overall.mean >= fastest.overall.mean * 0.99
