"""Ablation A5: reliable-channel sweep — loss probability x retry budget.

Mirrors the channel-latency ablation (A1) for the reliability layer built
over the raw PCI-config-space mailbox: every arm runs the coordinated
RUBiS scenario over a lossy channel with the ack/retransmit layer enabled
and a swept retry budget. Three findings are asserted:

* the retry budget buys delivery: the dead-letter fraction falls
  monotonically (weakly) as the budget grows, at every loss level;
* at 30% loss a budget of 8 retries delivers >= 99% of Tune frames
  (dead-letters < 1%) — the reliability layer's acceptance bar;
* coalescing bounds occupancy where it matters: under heavy loss,
  retransmission backoff keeps frames in flight long enough that the
  policy's per-request Tune bursts collapse into fewer wire frames.
"""

from repro.apps.rubis import RubisConfig
from repro.experiments import Job, render_table, run_jobs, run_rubis
from repro.sim import seconds
from repro.testbed import ChannelConfig, TestbedConfig

from _shared import emit

LOSS_LEVELS = (0.1, 0.3)
RETRY_BUDGETS = (0, 2, 8)


def run_arm(loss: float, budget: int):
    config = RubisConfig(
        testbed=TestbedConfig(
            driver_poll_burn_duty=0.5,
            channel=ChannelConfig(
                loss_probability=loss, reliable=True, reliable_max_retries=budget
            ),
        )
    )
    return run_rubis(True, duration=seconds(30), config=config)


def run_sweep():
    points = [(loss, budget) for loss in LOSS_LEVELS for budget in RETRY_BUDGETS]
    arms = run_jobs([Job(run_arm, args=point) for point in points])
    return dict(zip(points, arms))


def dead_letter_fraction(run) -> float:
    stats = run.channel_stats
    return stats["dead_lettered"] / max(1, stats["frames_sent"])


def test_bench_ablation_reliable_channel(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for (loss, budget), run in results.items():
        stats = run.channel_stats
        rows.append(
            (
                f"{loss:.0%}",
                str(budget),
                str(stats["frames_sent"]),
                str(stats["retransmits"]),
                str(stats["coalesced"]),
                f"{dead_letter_fraction(run):.2%}",
                f"{run.throughput:.1f}",
                f"{run.overall.mean:.0f}",
            )
        )
    emit(render_table(
        ["Loss", "Retries", "Frames", "Rexmits", "Coalesced",
         "Dead-letter %", "Throughput (req/s)", "Mean response (ms)"],
        rows,
        title="Ablation A5: reliable channel, loss x retry budget",
    ))

    for run in results.values():
        assert run.throughput > 0
        stats = run.channel_stats
        assert 0 < stats["frames_sent"] <= stats["sent"]

    # More retries -> (weakly) fewer dead letters, at every loss level.
    for loss in LOSS_LEVELS:
        fractions = [
            dead_letter_fraction(results[(loss, budget)])
            for budget in RETRY_BUDGETS
        ]
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))

    # The acceptance bar: 30% loss, budget 8 -> >= 99% of frames land.
    heavy = results[(0.3, RETRY_BUDGETS[-1])]
    assert dead_letter_fraction(heavy) < 0.01
    # Retransmission backoff holds frames in flight long enough for the
    # per-request Tune bursts to coalesce: fewer frames than Tunes sent.
    heavy_stats = heavy.channel_stats
    assert heavy_stats["coalesced"] > 0
    assert heavy_stats["frames_sent"] < heavy_stats["sent"]
