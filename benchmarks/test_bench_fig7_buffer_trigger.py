"""Figure 7: credit boosts from IXP buffer monitoring.

Paper claims: whenever the per-VM IXP DRAM buffer crosses the 128 KB
threshold an immediate Trigger boosts the dequeuing guest; the plot shows
CPU-utilisation spikes for the boosted domain tracking the buffer
occupancy sawtooth, and the outcome is a ~10% higher frame rate
(24.0 -> 26.6 fps in the paper).
"""

from repro.coordination import DEFAULT_THRESHOLD_BYTES
from repro.experiments import render_figure7

from _shared import emit, get_trigger_pair


def test_bench_fig7_buffer_trigger(benchmark):
    pair = benchmark.pedantic(get_trigger_pair, rounds=1, iterations=1)
    emit(render_figure7(pair))

    # The bursty UDP stream actually drives the buffer past the threshold
    # (the paper's plot peaks around 500-600 KB).
    assert pair.coord.buffer_high_watermark > DEFAULT_THRESHOLD_BYTES
    assert pair.coord.buffer_high_watermark > 300 * 1024

    # Triggers fired in the coordinated arm only.
    assert pair.coord.triggers_sent > 10
    assert pair.base.triggers_sent == 0

    # Boosting the dequeuing domain raises its frame rate (paper: ~+10%).
    assert pair.coord.dom1_fps > pair.base.dom1_fps * 1.03

    # CPU spikes: the boosted domain's high-utilisation windows (top
    # decile, which is where the trigger-driven drains live) exceed the
    # baseline's. A single-max comparison is noise; the decile is not.
    def top_decile_mean(series):
        values = sorted((v for _, v in series), reverse=True)
        top = values[: max(1, len(values) // 10)]
        return sum(top) / len(top)

    assert top_decile_mean(pair.coord.dom1_cpu_series) > top_decile_mean(
        pair.base.dom1_cpu_series
    )
