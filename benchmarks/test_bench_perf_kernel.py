"""Kernel throughput microbenchmark: events/sec on a fixed seeded workload.

Runs one deterministic workload twice over the same kernel — once with
processes sleeping via the integer fast path (``yield n``) and once via
the allocating classic path (``yield sim.timeout(n)``, which is what every
yield cost before the fast path existed) — and records events/sec, wall
time and the speedup ratio to ``BENCH_kernel.json`` at the repo root. The
workload mixes the shapes the real models use: pure delay loops (the vast
majority of kernel traffic), a resource-arbitration clique (microengine
pipelines), and a store producer/consumer pair (flow queues, rings).

Both variants must agree exactly on final virtual time and event count —
the fast path is a pure allocation optimisation, asserted here and in
``tests/sim/test_fastpath.py``.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.sim import Resource, Simulator, Store

#: Output artefact (uploaded by the CI perf-smoke job).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

NUM_SLEEPERS = 50
SLEEPS_PER_PROC = 4_000
NUM_WORKERS = 8
WORK_ITEMS = 2_000
SEED = 1


def _build_workload(sim: Simulator, fastpath: bool, counters: dict) -> None:
    rng = random.Random(SEED)
    delay_plans = [
        [rng.randrange(1, 5_000) for _ in range(SLEEPS_PER_PROC)]
        for _ in range(NUM_SLEEPERS)
    ]

    def sleeper(plan):
        # `fastpath` picks the yield spelling; the kernel's Simulator flag
        # stays True either way so the comparison isolates allocation cost.
        if fastpath:
            for delay in plan:
                yield delay
                counters["events"] += 1
        else:
            for delay in plan:
                yield sim.timeout(delay)
                counters["events"] += 1

    pipeline = Resource(sim, capacity=2, name="bench-pipeline")

    def worker(offset):
        for i in range(WORK_ITEMS):
            request = pipeline.request()
            yield request
            try:
                if fastpath:
                    yield 40 + (offset + i) % 160
                else:
                    yield sim.timeout(40 + (offset + i) % 160)
            finally:
                pipeline.release(request)
            counters["events"] += 1

    queue = Store(sim, capacity=64, name="bench-store")

    def producer():
        for i in range(WORK_ITEMS):
            yield queue.put(i)
            if fastpath:
                yield 120
            else:
                yield sim.timeout(120)
            counters["events"] += 1

    def consumer():
        for _ in range(WORK_ITEMS):
            yield queue.get()
            if fastpath:
                yield 95
            else:
                yield sim.timeout(95)
            counters["events"] += 1

    for index, plan in enumerate(delay_plans):
        sim.spawn(sleeper(plan), name=f"sleeper-{index}")
    for index in range(NUM_WORKERS):
        sim.spawn(worker(index * 17), name=f"worker-{index}")
    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")


def _measure(fastpath: bool) -> dict:
    sim = Simulator()
    counters = {"events": 0}
    _build_workload(sim, fastpath, counters)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "events": counters["events"],
        "final_time": sim.now,
        "events_per_sec": counters["events"] / elapsed if elapsed > 0 else 0.0,
    }


def test_bench_perf_kernel():
    # Warm caches/allocator once, then measure each variant.
    _measure(True)
    classic = _measure(False)
    fast = _measure(True)

    # The fast path must be an *identical* simulation, only cheaper.
    assert fast["events"] == classic["events"]
    assert fast["final_time"] == classic["final_time"]

    speedup = fast["events_per_sec"] / classic["events_per_sec"]
    result = {
        "workload": {
            "sleepers": NUM_SLEEPERS,
            "sleeps_per_proc": SLEEPS_PER_PROC,
            "resource_workers": NUM_WORKERS,
            "store_items": WORK_ITEMS,
            "seed": SEED,
        },
        "events": fast["events"],
        "final_virtual_time_ns": fast["final_time"],
        "classic": {
            "seconds": round(classic["seconds"], 4),
            "events_per_sec": round(classic["events_per_sec"]),
        },
        "fastpath": {
            "seconds": round(fast["seconds"], 4),
            "events_per_sec": round(fast["events_per_sec"]),
        },
        "speedup": round(speedup, 3),
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nkernel bench: {result['fastpath']['events_per_sec']} ev/s fast "
          f"vs {result['classic']['events_per_sec']} ev/s classic "
          f"({speedup:.2f}x) -> {RESULT_PATH.name}")

    # Acceptance bar: >= 1.5x events/sec over the pre-fast-path kernel.
    # Keep a margin below that in the assert so a noisy shared CI runner
    # does not flake; the JSON records the true measured ratio.
    assert speedup >= 1.2, f"fast path speedup {speedup:.2f}x below floor"
