"""Kernel throughput microbenchmarks: events/sec on fixed seeded workloads.

Two scenarios, both written to ``BENCH_kernel.json`` at the repo root:

* **mixed** — the original workload (pure delay loops, a resource-
  arbitration clique, a store producer/consumer pair) run twice over the
  same kernel: once sleeping via the integer fast path (``yield n``) and
  once via the allocating classic path (``yield sim.timeout(n)``).
* **periodic** — a periodic-tick-dominated workload (hundreds of fixed-
  period control loops: scheduler ticks, samplers, heartbeats) run three
  ways: the old generator idiom (``while True: yield period``), a
  :class:`PeriodicTask` fleet through the timer wheel, and the same fleet
  through the classic heap (``fastpath=False``). The wheel fleet is the
  production configuration; the generator run is what every periodic site
  cost before ``PeriodicTask`` existed.

Every variant pair must agree exactly on final virtual time and event
count — both optimisations are pure mechanics, asserted here and in
``tests/sim/test_fastpath.py`` / ``tests/sim/test_timerwheel.py``.

**Ratchet:** ``benchmarks/baseline_kernel.json`` commits the speedup
*ratios* (machine-independent, unlike raw events/sec) and each bench
fails if a measured ratio drops below ``RATCHET_FRACTION`` of its
baseline — CI runs these jobs gating, so a kernel change that erodes
either fast path by >20% cannot merge unnoticed.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.sim import Resource, Simulator, Store, ms, seconds, us

#: Output artefact (uploaded by the CI perf-smoke job).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
#: Committed speedup-ratio floors (the perf ratchet).
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_kernel.json"
#: A measured ratio below this fraction of its committed baseline fails.
RATCHET_FRACTION = 0.8

NUM_SLEEPERS = 50
SLEEPS_PER_PROC = 4_000
NUM_WORKERS = 8
WORK_ITEMS = 2_000
SEED = 1

NUM_PERIODIC = 512
PERIODIC_DURATION = seconds(5)


def _check_ratchet(name: str, measured: float) -> None:
    """Fail when ``measured`` regresses >20% below the committed ratio."""
    baselines = json.loads(BASELINE_PATH.read_text())
    floor = baselines[name] * RATCHET_FRACTION
    assert measured >= floor, (
        f"perf ratchet: {name} = {measured:.2f}x fell below "
        f"{floor:.2f}x ({RATCHET_FRACTION:.0%} of committed {baselines[name]:.2f}x)"
    )


def _merge_result(section: str, payload: dict) -> None:
    """Update one scenario's section of ``BENCH_kernel.json`` in place."""
    try:
        result = json.loads(RESULT_PATH.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        result = {}
    result[section] = payload
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")


def _build_workload(sim: Simulator, fastpath: bool, counters: dict) -> None:
    rng = random.Random(SEED)
    delay_plans = [
        [rng.randrange(1, 5_000) for _ in range(SLEEPS_PER_PROC)]
        for _ in range(NUM_SLEEPERS)
    ]

    def sleeper(plan):
        # `fastpath` picks the yield spelling; the kernel's Simulator flag
        # stays True either way so the comparison isolates allocation cost.
        if fastpath:
            for delay in plan:
                yield delay
                counters["events"] += 1
        else:
            for delay in plan:
                yield sim.timeout(delay)
                counters["events"] += 1

    pipeline = Resource(sim, capacity=2, name="bench-pipeline")

    def worker(offset):
        for i in range(WORK_ITEMS):
            request = pipeline.request()
            yield request
            try:
                if fastpath:
                    yield 40 + (offset + i) % 160
                else:
                    yield sim.timeout(40 + (offset + i) % 160)
            finally:
                pipeline.release(request)
            counters["events"] += 1

    queue = Store(sim, capacity=64, name="bench-store")

    def producer():
        for i in range(WORK_ITEMS):
            yield queue.put(i)
            if fastpath:
                yield 120
            else:
                yield sim.timeout(120)
            counters["events"] += 1

    def consumer():
        for _ in range(WORK_ITEMS):
            yield queue.get()
            if fastpath:
                yield 95
            else:
                yield sim.timeout(95)
            counters["events"] += 1

    for index, plan in enumerate(delay_plans):
        sim.spawn(sleeper(plan), name=f"sleeper-{index}")
    for index in range(NUM_WORKERS):
        sim.spawn(worker(index * 17), name=f"worker-{index}")
    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")


def _measure(fastpath: bool) -> dict:
    sim = Simulator()
    counters = {"events": 0}
    _build_workload(sim, fastpath, counters)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "events": counters["events"],
        "final_time": sim.now,
        "events_per_sec": counters["events"] / elapsed if elapsed > 0 else 0.0,
    }


def test_bench_perf_kernel():
    # Warm caches/allocator once, then measure each variant.
    _measure(True)
    classic = _measure(False)
    fast = _measure(True)

    # The fast path must be an *identical* simulation, only cheaper.
    assert fast["events"] == classic["events"]
    assert fast["final_time"] == classic["final_time"]

    speedup = fast["events_per_sec"] / classic["events_per_sec"]
    result = {
        "workload": {
            "sleepers": NUM_SLEEPERS,
            "sleeps_per_proc": SLEEPS_PER_PROC,
            "resource_workers": NUM_WORKERS,
            "store_items": WORK_ITEMS,
            "seed": SEED,
        },
        "events": fast["events"],
        "final_virtual_time_ns": fast["final_time"],
        "classic": {
            "seconds": round(classic["seconds"], 4),
            "events_per_sec": round(classic["events_per_sec"]),
        },
        "fastpath": {
            "seconds": round(fast["seconds"], 4),
            "events_per_sec": round(fast["events_per_sec"]),
        },
        "speedup": round(speedup, 3),
    }
    _merge_result("mixed", result)
    print(f"\nkernel bench [mixed]: {result['fastpath']['events_per_sec']} ev/s fast "
          f"vs {result['classic']['events_per_sec']} ev/s classic "
          f"({speedup:.2f}x) -> {RESULT_PATH.name}")

    _check_ratchet("mixed_fastpath_speedup", speedup)


# -- periodic-tick scenario --------------------------------------------------


def _build_periodic(sim: Simulator, idiom: str, counters: dict) -> None:
    """A control-plane-shaped fleet: fixed-period loops and nothing else.

    Periods span sub-slot (~0.1 ms) to multi-slot (~20 ms) — the range the
    real models use (credit ticks at 10 ms, accounting at 30 ms, samplers
    at 1 s, heartbeats at tens of ms) — so re-arming exercises both the
    ready heap and O(1) wheel appends.
    """
    rng = random.Random(SEED)
    periods = [rng.randrange(us(100), ms(20)) for _ in range(NUM_PERIODIC)]

    if idiom == "task":
        def tick():
            counters["events"] += 1

        for period in periods:
            sim.periodic(period, tick)
    else:
        def loop(period):
            while True:
                yield period
                counters["events"] += 1

        for index, period in enumerate(periods):
            sim.spawn(loop(period), name=f"ticker-{index}")


def _measure_periodic(idiom: str, fastpath: bool = True) -> dict:
    sim = Simulator(fastpath=fastpath)
    counters = {"events": 0}
    _build_periodic(sim, idiom, counters)
    started = time.perf_counter()
    sim.run(until=PERIODIC_DURATION)
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "events": counters["events"],
        "final_time": sim.now,
        "events_per_sec": counters["events"] / elapsed if elapsed > 0 else 0.0,
    }


def test_bench_perf_kernel_periodic():
    _measure_periodic("task")  # warm caches/allocator
    generator = _measure_periodic("generator")
    heap = _measure_periodic("task", fastpath=False)
    wheel = _measure_periodic("task")

    # All three are the same simulation: identical tick counts, same end.
    assert wheel["events"] == generator["events"] == heap["events"]
    assert wheel["final_time"] == generator["final_time"] == heap["final_time"]

    vs_generator = wheel["events_per_sec"] / generator["events_per_sec"]
    vs_heap = wheel["events_per_sec"] / heap["events_per_sec"]
    result = {
        "workload": {
            "periodic_tasks": NUM_PERIODIC,
            "virtual_duration_ns": PERIODIC_DURATION,
            "seed": SEED,
        },
        "events": wheel["events"],
        "generator_idiom": {
            "seconds": round(generator["seconds"], 4),
            "events_per_sec": round(generator["events_per_sec"]),
        },
        "periodic_heap": {
            "seconds": round(heap["seconds"], 4),
            "events_per_sec": round(heap["events_per_sec"]),
        },
        "periodic_wheel": {
            "seconds": round(wheel["seconds"], 4),
            "events_per_sec": round(wheel["events_per_sec"]),
        },
        "speedup_vs_generator": round(vs_generator, 3),
        "speedup_vs_heap": round(vs_heap, 3),
    }
    _merge_result("periodic", result)
    print(f"\nkernel bench [periodic]: {result['periodic_wheel']['events_per_sec']} ev/s wheel "
          f"vs {result['generator_idiom']['events_per_sec']} ev/s generator "
          f"({vs_generator:.2f}x) -> {RESULT_PATH.name}")

    _check_ratchet("periodic_wheel_vs_generator", vs_generator)
    _check_ratchet("periodic_wheel_vs_heap", vs_heap)
