"""Regenerate every paper artefact at full experiment scale.

Run with::

    python tools/generate_results.py > RESULTS.txt

Used to populate EXPERIMENTS.md; also a convenient one-shot check that the
whole reproduction is healthy. All five independent runs (RUBiS base and
coord, the Figure 6 ladder, trigger base and coord) fan out across cores
through ``repro.experiments.runner``; set ``REPRO_PARALLEL=0`` to force
the serial path (the artefacts are identical either way).
"""

from repro.experiments import (
    Job,
    RubisPairResult,
    TriggerPairResult,
    render_figure2,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table1,
    render_table2,
    render_table3,
    run_jobs,
    run_qos_ladder,
    run_rubis,
    run_trigger_arm,
)
from repro.sim import seconds


def main():
    print("Reproduction results — all tables and figures")
    print("=" * 72)

    rubis_kwargs = dict(duration=seconds(80), seed=1)
    base, coord, ladder, trigger_base, trigger_coord = run_jobs([
        Job(run_rubis, kwargs=dict(coordinated=False, **rubis_kwargs), label="rubis:base"),
        Job(run_rubis, kwargs=dict(coordinated=True, **rubis_kwargs), label="rubis:coord"),
        Job(run_qos_ladder, label="qos-ladder"),
        Job(run_trigger_arm, args=(False,), label="trigger:base"),
        Job(run_trigger_arm, args=(True,), label="trigger:coord"),
    ])
    pair = RubisPairResult(base=base, coord=coord)
    trigger = TriggerPairResult(base=trigger_base, coord=trigger_coord)

    for artefact in (render_figure2(pair), render_figure4(pair), render_table1(pair),
                     render_table2(pair), render_figure5(pair)):
        print()
        print(artefact)
    base, coord = pair.base, pair.coord
    print(f"\n[raw] thr {base.throughput:.1f}->{coord.throughput:.1f} "
          f"mean {base.overall.mean:.0f}->{coord.overall.mean:.0f} "
          f"std {base.overall.std:.0f}->{coord.overall.std:.0f} "
          f"max {base.overall.maximum:.0f}->{coord.overall.maximum:.0f} "
          f"min {base.overall.minimum:.1f}->{coord.overall.minimum:.1f} "
          f"util {base.total_utilization:.0f}->{coord.total_utilization:.0f} "
          f"eff {base.efficiency:.2f}->{coord.efficiency:.2f} "
          f"sessions {base.sessions_completed}->{coord.sessions_completed} "
          f"sesstime {base.mean_session_time_s:.0f}->{coord.mean_session_time_s:.0f}s")

    print()
    print(render_figure6(ladder))

    print()
    print(render_figure7(trigger))
    print()
    print(render_table3(trigger))


if __name__ == "__main__":
    main()
