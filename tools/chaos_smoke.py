#!/usr/bin/env python3
"""CI smoke check for the fault domain.

Runs one short chaos arm — coordinated RUBiS over the reliable channel
with a scripted 500 ms blackout of the coordination mailbox — and asserts
the full fault arc happened:

* both failure detectors left UP during the blackout (detection),
* the actuation audit shows a baseline revert (degraded-mode fallback),
* both detectors returned to UP and bumped their agent's epoch (recovery),
* the x86 tier weights reconverged onto the policy's desired snapshot,
* and no transient boost lease is still held after the drain window.

Exits non-zero on any mismatch.

Run as: PYTHONPATH=src python tools/chaos_smoke.py
"""

import sys

from repro.experiments import run_chaos_arm
from repro.sim import ms


def main() -> int:
    arm = run_chaos_arm(blackout=ms(500), seed=1)

    for side in ("ixp", "x86"):
        assert arm.detection_ms[side] >= 0, f"{side} never detected the blackout"
        assert arm.recovery_ms[side] >= 0, f"{side} never recovered"
        assert arm.epoch[side] == 1, (
            f"{side} epoch {arm.epoch[side]} != 1 after one outage round-trip"
        )
    assert arm.fallback_ms >= 0, "no baseline revert appeared in the audit"
    assert arm.reconverge_ms >= 0, "tier weights never reconverged onto the shadow"
    assert arm.stuck_leases == 0, f"{arm.stuck_leases} boost lease(s) stuck"
    assert arm.tunes_suppressed > 0, "degraded mode never suppressed a Tune"
    assert arm.replays_sent > 0, "recovery never replayed the desired snapshot"

    print(
        "chaos smoke OK: "
        f"detect {arm.detection_ms['ixp']:.0f}/{arm.detection_ms['x86']:.0f} ms, "
        f"fallback {arm.fallback_ms:.0f} ms, "
        f"recover {arm.recovery_ms['ixp']:.0f}/{arm.recovery_ms['x86']:.0f} ms, "
        f"reconverge {arm.reconverge_ms:.0f} ms, "
        f"{arm.replays_sent} replays, {arm.tunes_suppressed} suppressed, "
        f"{arm.stuck_leases} stuck leases"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
