#!/usr/bin/env python3
"""CI smoke check for the energy/QoS co-optimization experiment.

Runs the coordinated governor and its two single-resource ablations on
the consolidated three-guest scenario and asserts the acceptance shape:

* the coordinated arm meets every per-VM p95 target (zero violations),
* at strictly lower platform energy than the dvfs-only ablation,
* and no higher energy than the partition-only ablation,
* while dvfs-only demonstrates the coordination gap (it violates —
  frequency cannot fix cache starvation),
* with the uncore knobs actually exercised and the audit free of
  zero-delta Tunes.

Exits non-zero on any mismatch.

Run as: PYTHONPATH=src python tools/energyqos_smoke.py
"""

import sys

from repro.experiments import run_energy_qos


def main() -> int:
    result = run_energy_qos(seed=1)
    coordinated = result.arm("coordinated")
    dvfs_only = result.arm("dvfs-only")
    partition_only = result.arm("partition-only")

    assert coordinated.violations == 0, (
        f"coordinated arm violated QoS {coordinated.violations}/{coordinated.checks} times"
    )
    assert coordinated.energy_j < dvfs_only.energy_j, (
        f"coordinated energy {coordinated.energy_j:.0f} J not below "
        f"dvfs-only {dvfs_only.energy_j:.0f} J"
    )
    assert coordinated.energy_j <= partition_only.energy_j, (
        f"coordinated energy {coordinated.energy_j:.0f} J above "
        f"partition-only {partition_only.energy_j:.0f} J"
    )
    assert dvfs_only.violations > 0, (
        "dvfs-only met all targets — the scenario no longer shows the "
        "coordination gap"
    )
    uncore = (
        coordinated.actuations["llc-ways"]
        + coordinated.actuations["bw-share"]
        + coordinated.actuations["prefetch-throttle"]
    )
    assert uncore > 0, "coordinated arm never touched an uncore knob"
    assert coordinated.final_speed < 1.0, (
        "coordinated arm never converted slack into a DVFS down-step"
    )

    print(
        "energyqos smoke OK: "
        f"coordinated {coordinated.energy_j:.0f} J / "
        f"{coordinated.violations}/{coordinated.checks} violations / "
        f"DVFS {coordinated.final_speed:.2f}, "
        f"dvfs-only {dvfs_only.energy_j:.0f} J / {dvfs_only.violations} violations, "
        f"partition-only {partition_only.energy_j:.0f} J, "
        f"{uncore} uncore tunes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
