"""Profile a short RUBiS run under cProfile and print the hottest functions.

Usage::

    PYTHONPATH=src python tools/profile_run.py [--duration SECONDS] [--top N]
                                               [--sort KEY] [--output FILE]

This is the tool that motivated the kernel fast path: before it, the top
of this profile was dominated by ``Timeout.__init__`` / ``Event``
allocation and ``Tracer.emit`` kwargs marshalling. Run it whenever the
simulator feels slow — the cumulative column usually points straight at
the offending model.

Profiling forces the serial path (``REPRO_PARALLEL=0``) so the workload
runs in-process where cProfile can see it; worker processes would escape
the profiler entirely.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
os.environ.setdefault("REPRO_PARALLEL", "0")

from repro.experiments import run_rubis  # noqa: E402  (path setup above)
from repro.sim import seconds  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration", type=float, default=10.0,
        help="simulated seconds of RUBiS to run (default: 10)",
    )
    parser.add_argument(
        "--top", type=int, default=25,
        help="number of functions to print (default: 25)",
    )
    parser.add_argument(
        "--sort", default="cumulative", choices=["cumulative", "tottime", "calls"],
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="write the report to FILE instead of stdout (for diffing "
             "profiles across kernel changes)",
    )
    args = parser.parse_args()

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_rubis(coordinated=True, duration=seconds(args.duration), seed=1)
    profiler.disable()

    header = (f"RUBiS coordinated, {args.duration:g} simulated seconds: "
              f"throughput {result.throughput:.1f} req/s, "
              f"mean response {result.overall.mean:.0f} ms\n")
    if args.output is None:
        print(header)
        stats = pstats.Stats(profiler)
        stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    else:
        with args.output.open("w") as sink:
            sink.write(header + "\n")
            stats = pstats.Stats(profiler, stream=sink)
            stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
        print(header, end="")
        print(f"profile written to {args.output}")


if __name__ == "__main__":
    main()
