#!/usr/bin/env python3
"""CI smoke check for the control-plane fabric.

Runs one short K=8 hierarchical fabric arm — clustered islands behind
aggregators, a mid-run partition of one island and a heal — and asserts
the fabric held together:

* the entity registered during the partition became fabric-wide
  resolvable after the heal (discovery convergence, bounded),
* raw load reports coalesced at aggregators (fewer summaries up than
  reports in),
* probe QoS stayed in the expected band,
* and zero frames dead-lettered at 0% loss.

Exits non-zero on any mismatch.

Run as: PYTHONPATH=src python tools/fabric_smoke.py
"""

import sys

from repro.experiments import run_fabric_arm
from repro.sim import seconds


def main() -> int:
    arm = run_fabric_arm("hierarchical", 8, duration=seconds(2), seed=1)

    assert arm.convergence_ms is not None, (
        "entity registered during the partition never became resolvable"
    )
    assert arm.convergence_ms < 1000.0, (
        f"discovery convergence {arm.convergence_ms:.1f} ms not bounded"
    )
    assert arm.dead_letters == 0, (
        f"{arm.dead_letters} dead-lettered frame(s) at 0% loss"
    )
    assert arm.mean_probe_latency_ms < 2.0, (
        f"probe latency {arm.mean_probe_latency_ms:.2f} ms out of band"
    )
    assert arm.max_node_messages <= arm.root_messages, (
        "a non-root node out-concentrated the hierarchy root"
    )

    print(
        "fabric smoke OK: K=8 hierarchical, "
        f"probe {arm.mean_probe_latency_ms:.2f} ms mean / "
        f"{arm.worst_probe_latency_ms:.2f} ms worst, "
        f"root {arm.root_messages} msgs, busiest node {arm.max_node_messages}, "
        f"converged {arm.convergence_ms:.1f} ms after heal, "
        f"{arm.dead_letters} dead letters"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
