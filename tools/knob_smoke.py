#!/usr/bin/env python3
"""CI smoke check for the unified knob/actuator layer.

Builds the full platform (x86 + IXP via the Testbed, plus a GPU island),
then asserts that every island's tunables surface through the typed knob
registry: the platform-wide ``controller.knob_snapshot()`` must contain
all four native knob kinds, tunes must dispatch and audit, and triggers
must lease/expire. Exits non-zero on any mismatch.

Run as: PYTHONPATH=src python tools/knob_smoke.py
"""

import sys

from repro.gpu import GPUIsland
from repro.platform import EntityId
from repro.sim.time import ms
from repro.testbed import Testbed


def main() -> int:
    tb = Testbed()
    tb.x86.create_vm("guest", weight=256, memory_mb=512)
    tb.ixp.register_vm_flow("guest", service_weight=2)
    gpu = GPUIsland(tb.sim, tracer=tb.tracer)
    gpu.create_context("guest", weight=100)
    tb.controller.register_island(gpu)

    snapshot = tb.controller.knob_snapshot()
    kinds = {entry["kind"] for entry in snapshot.values()}
    expected = {
        "credit-weight",  # x86 Xen credit scheduler
        "flow-service-weight",  # IXP WFQ dequeuer
        "runlist-weight",  # GPU runlist
        "dvfs-level",  # power ladder
    }
    missing = expected - kinds
    assert not missing, f"knob kinds missing from snapshot: {sorted(missing)}"

    # A tune must dispatch through the registry and land in the audit.
    record = tb.x86.apply_tune(EntityId("x86", "guest"), 64)
    assert record.outcome == "applied", record
    assert record.applied_value == 320, record

    # A trigger must take a lease and release it deterministically.
    flow = EntityId("ixp", "guest")
    tb.ixp.apply_trigger(flow)
    assert tb.ixp.knobs.active_leases(flow) == 1, "IXP trigger took no lease"
    tb.sim.run(until=ms(100))
    assert tb.ixp.knobs.active_leases(flow) == 0, "IXP lease never expired"

    audit = tb.controller.actuation_audit()
    assert len(audit) >= 3, f"expected >= 3 audit records, got {len(audit)}"

    print(f"knob smoke OK: {len(snapshot)} knobs, kinds={sorted(kinds)}, "
          f"{len(audit)} audit records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
