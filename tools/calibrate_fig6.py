"""Grid-search calibration of the Figure 6 decode costs.

Acceptance (paper's textual claims):
  A (256-256):   dom1 < 20,        dom2 < 25
  B (384-512):   dom1 >= 19.8,     dom2 >= 24.5, both >= their A value
  C (384-640):   dom1 in [19.5, B1+0.5], dom2 >= B2 - 0.5 and >= 25
"""

from dataclasses import replace

from repro.apps.mplayer import deploy_mplayer, MPlayerConfig
from repro.apps.mplayer.streams import DecodeCostModel, LOW_RATE_STREAM, HIGH_RATE_STREAM
from repro.testbed import TestbedConfig
from repro.x86 import X86Params
from repro.sim import ms, seconds as S


def ladder(d1_ms, d2_ms, seed):
    s1 = replace(LOW_RATE_STREAM, cost_model=DecodeCostModel(ms(d1_ms), 98.0))
    s2 = replace(HIGH_RATE_STREAM, cost_model=DecodeCostModel(ms(d2_ms), 98.0))
    tb = TestbedConfig(seed=seed, driver_poll_burn_duty=1.0, x86=X86Params(dom0_weight=512))
    dep = deploy_mplayer(MPlayerConfig(testbed=tb, dom1_stream=s1, dom2_stream=s2))
    dep.run(S(35))
    a = (dep.dom1_fps(S(10), S(35)), dep.dom2_fps(S(10), S(35)))
    dep.qos_policy.advance_stage("bitrate")
    dep.run(S(25))
    b = (dep.dom1_fps(S(35), S(60)), dep.dom2_fps(S(35), S(60)))
    dep.qos_policy.advance_stage("framerate")
    dep.run(S(25))
    c = (dep.dom1_fps(S(60), S(85)), dep.dom2_fps(S(60), S(85)))
    return a, b, c


def score(a, b, c):
    ok = (
        a[0] < 19.9 and a[1] < 24.5
        and b[0] >= 19.7 and b[1] >= 24.5
        and b[0] >= a[0] - 0.1 and b[1] >= a[1]
        and 19.4 <= c[0] <= b[0] + 0.6
        and c[1] >= b[1] - 1.0 and c[1] >= 24.5
    )
    return ok


if __name__ == "__main__":
    for d1 in (21.8, 22.4, 23.0, 23.6):
        for d2 in (22.0, 23.0, 24.0):
            results = []
            for seed in (1, 2):
                a, b, c = ladder(d1, d2, seed)
                results.append((a, b, c))
            all_ok = all(score(*r) for r in results)
            marks = " ".join(
                f"[A({a[0]:.1f},{a[1]:.1f}) B({b[0]:.1f},{b[1]:.1f}) C({c[0]:.1f},{c[1]:.1f})]"
                for a, b, c in results
            )
            print(f"d1={d1} d2={d2} ok={all_ok} {marks}", flush=True)
