#!/usr/bin/env python3
"""CI smoke check for the sharded fabric execution mode.

Runs the K=128 sharded fabric twice — single-process reference and a
two-shard run forced onto worker processes — and asserts the headline
guarantee plus the fault arc:

* the sharded run's merged simulation metrics are **bit-identical** to
  the single-process reference (the conservative window protocol leaks
  nothing about process placement),
* the run actually used the process engine (REPRO_WORKERS is forced, so
  a silent inline degradation fails the check),
* the shard-crossing partition was detected at both uplink endpoints
  and the spare entity converged fabric-wide after the heal.

Writes a ``shard_smoke.json`` artefact with both arms' events/sec and
wall clock so runner-to-runner throughput is trackable over time.

Exits non-zero on any mismatch.

Run as: PYTHONPATH=src python tools/shard_smoke.py
"""

import json
import os
import sys

os.environ.setdefault("REPRO_WORKERS", "2")

from repro.experiments import run_fabric_sharded_arm  # noqa: E402
from repro.sim import seconds  # noqa: E402

K = 128
DURATION = seconds(1)


def main() -> int:
    reference = run_fabric_sharded_arm(K, shards=1, duration=DURATION, seed=1)
    sharded = run_fabric_sharded_arm(K, shards=2, duration=DURATION, seed=1)

    assert sharded.engine == "process", (
        f"expected the process engine with REPRO_WORKERS forced, "
        f"got {sharded.engine!r}"
    )
    assert sharded.metrics == reference.metrics, (
        "sharded run diverged from the single-process reference"
    )
    assert sharded.events == reference.events, (
        f"kernel event counts diverged: {sharded.events} vs {reference.events}"
    )
    assert reference.detect_ms is not None, (
        "shard-crossing partition was never detected"
    )
    assert reference.recovery_epoch >= 1, (
        "uplink recovery never bumped the epoch"
    )
    assert reference.convergence_ms is not None, (
        "spare entity registered mid-partition never converged fabric-wide"
    )

    report = {
        "k": K,
        "duration_s": DURATION / 1e9,
        "bit_identical": True,
        "detect_ms": reference.detect_ms,
        "convergence_ms": reference.convergence_ms,
        "events": reference.events,
        "reference": {
            "engine": reference.engine,
            "wall_seconds": reference.wall_seconds,
            "events_per_second": reference.events_per_second,
        },
        "sharded": {
            "engine": sharded.engine,
            "shards": sharded.shards,
            "wall_seconds": sharded.wall_seconds,
            "events_per_second": sharded.events_per_second,
            "speedup": (
                reference.wall_seconds / sharded.wall_seconds
                if sharded.wall_seconds > 0 else 0.0
            ),
        },
    }
    with open("shard_smoke.json", "w") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"shard smoke OK: K={K}, shards={sharded.shards} ({sharded.engine}), "
        f"bit-identical, detect {reference.detect_ms:.0f} ms, "
        f"converged {reference.convergence_ms:.1f} ms after registration, "
        f"{reference.events_per_second / 1e3:.0f}k ev/s x1 vs "
        f"{sharded.events_per_second / 1e3:.0f}k ev/s x2 "
        f"({report['sharded']['speedup']:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
