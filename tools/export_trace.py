"""Capture a causally-traced run and export it as Chrome-trace JSON.

Run with::

    PYTHONPATH=src python tools/export_trace.py --out trace.json

then load the file into ``chrome://tracing`` or https://ui.perfetto.dev.
Each completed control loop renders as stage lanes on per-island tracks
(IXP decision + send, channel wire, x86 handle + apply) tied together by
a flow arrow; lease restores appear as instant events.

This is the standalone counterpart of ``python -m repro trace`` (same
capture, same exporter) for environments that script tools/ directly;
``--validate`` re-reads the emitted file and checks the Chrome schema.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import render_control_loops, run_traced_rubis
from repro.obs import validate_chrome_trace
from repro.sim import seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="trace.json",
                        help="output path for the Chrome-trace JSON")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=12.0,
                        help="measured seconds of the traced arm")
    parser.add_argument("--validate", action="store_true",
                        help="re-read the file and check the Chrome schema")
    args = parser.parse_args(argv)

    result = run_traced_rubis(
        duration=seconds(args.duration), seed=args.seed, destination=args.out
    )
    print(render_control_loops(result))

    if args.validate:
        with open(args.out, encoding="utf-8") as handle:
            validate_chrome_trace(json.load(handle))
        print(f"validated: {args.out} is well-formed Chrome-trace JSON")
    return 0


if __name__ == "__main__":
    sys.exit(main())
