#!/usr/bin/env python3
"""CI smoke check for self-healing sharded execution.

Runs the K=128 sharded fabric with a scripted mid-run worker kill (a
picklable :class:`~repro.shard.FaultScript` fired inside the worker
process) and asserts the recovery story end to end:

* the run stays on the **process** engine (the supervisor respawned the
  dead worker instead of degrading the run),
* exactly one crash and one respawn are counted, with journal-replayed
  windows fast-forwarding the reborn shard,
* the merged simulation metrics are **bit-identical** to an undisturbed
  single-process reference — a killed-and-recovered run leaks nothing,
* the recovery wall-time overhead is bounded (replay must be cheap
  relative to the run, or self-healing is a fiction).

Writes a ``shard_chaos_smoke.json`` artefact with the recovery counters
and the overhead against a clean supervised baseline, so recovery cost
is trackable runner-to-runner over time.

Exits non-zero on any mismatch.

Run as: PYTHONPATH=src python tools/shard_chaos_smoke.py
"""

import json
import os
import sys

os.environ.setdefault("REPRO_WORKERS", "2")

from repro.experiments.fabric_sharded import (  # noqa: E402
    _merge_shard_results,
    build_fabric_world,
    sharded_topology,
)
from repro.shard import FaultScript, ShardConfig, ShardPlan, run_sharded  # noqa: E402
from repro.sim import ms  # noqa: E402

K = 128
DURATION = ms(500)
SEED = 1
#: Kill one worker a quarter of the way through the run.
KILL_WINDOW = 25
#: Replayed windows must not cost more than the whole clean run again
#: (generous: replay skips routing and runs one shard, not all).
MAX_OVERHEAD_RATIO = 1.0

CONFIG = ShardConfig(
    barrier_timeout_s=30.0,
    heartbeat_interval_s=0.1,
    probe_timeout_s=5.0,
    max_respawns=2,
    respawn_backoff_s=0.01,
)


def run(script=None):
    plan = ShardPlan(sharded_topology(K), shards=2)
    return run_sharded(
        plan, build_fabric_world, (SEED, DURATION, False),
        duration=DURATION, config=CONFIG, fault_hook=script,
    )


def main() -> int:
    reference = run_sharded(
        ShardPlan(sharded_topology(K), shards=1), build_fabric_world,
        (SEED, DURATION, False), duration=DURATION,
    )
    clean = run()
    killed = run(FaultScript(kills=((1, KILL_WINDOW),)))

    assert clean.engine == "process" and killed.engine == "process", (
        f"expected the process engine with REPRO_WORKERS forced, got "
        f"{clean.engine!r} / {killed.engine!r}"
    )
    assert killed.counters["supervision.crashes"] == 1, killed.counters
    assert killed.counters["supervision.respawns"] == 1, killed.counters
    assert killed.counters["supervision.replayed_windows"] == KILL_WINDOW, (
        killed.counters
    )
    assert killed.counters["supervision.degraded_inline"] == 0, killed.counters

    reference_metrics = _merge_shard_results(
        reference.results, reference.counters
    )
    killed_metrics = _merge_shard_results(killed.results, killed.counters)
    assert killed_metrics == reference_metrics, (
        "killed-and-recovered run diverged from the undisturbed "
        "single-process reference"
    )
    assert killed.events == reference.events, (
        f"kernel event counts diverged: {killed.events} vs {reference.events}"
    )

    recovery_s = killed.supervision["recovery_seconds"]
    overhead_s = max(0.0, killed.wall_seconds - clean.wall_seconds)
    assert recovery_s <= MAX_OVERHEAD_RATIO * clean.wall_seconds, (
        f"recovery took {recovery_s:.2f}s against a {clean.wall_seconds:.2f}s "
        f"clean run — replay is too expensive to call self-healing"
    )

    report = {
        "k": K,
        "duration_s": DURATION / 1e9,
        "kill_window": KILL_WINDOW,
        "bit_identical": True,
        "events": killed.events,
        "counters": {
            key: value
            for key, value in sorted(killed.counters.items())
            if key.startswith("supervision.")
        },
        "recovery_seconds": recovery_s,
        "clean_wall_seconds": clean.wall_seconds,
        "killed_wall_seconds": killed.wall_seconds,
        "overhead_seconds": overhead_s,
        "events_per_second": killed.events_per_second,
    }
    with open("shard_chaos_smoke.json", "w") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"shard chaos smoke OK: K={K}, worker killed at window "
        f"{KILL_WINDOW}, respawned (+{killed.counters['supervision.replayed_windows']} "
        f"replayed windows), bit-identical; recovery {recovery_s:.2f}s, "
        f"overhead +{overhead_s:.2f}s over a {clean.wall_seconds:.2f}s clean run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
