"""Quickstart: build the two-island platform, move packets, coordinate.

Run with::

    python examples/quickstart.py

This walks the full paper pipeline in miniature: a client on the wire
sends requests through the IXP island (classification, per-VM flow queue,
DMA to the host) to a guest VM on the Xen island, which echoes them back.
Then the IXP island sends a **Tune** and a **Trigger** across the
coordination channel and we watch the x86 island translate them.
"""

from repro import Testbed, TestbedConfig
from repro.net import Packet
from repro.sim import ms, seconds, to_ms


def main():
    testbed = Testbed(TestbedConfig(seed=7))

    # Deploy a guest VM (it registers with the global controller and gets
    # an IXP flow queue) and an external client host on the wire.
    vm, nic = testbed.create_guest_vm("echo-server")
    client = testbed.add_client_host("client")

    round_trips = []

    def server(sim):
        while True:
            packet = yield nic.recv()
            yield vm.execute(ms(2), kind="user")  # 2 ms of service
            nic.send(Packet(src=vm.name, dst=packet.src, size=1200, kind="resp",
                            payload={"echo_of": packet.payload["n"]}))

    def client_loop(sim):
        for n in range(5):
            sent_at = sim.now
            client.nic.send(Packet(src="client", dst="echo-server", size=400,
                                   kind="req", payload={"n": n}))
            response = yield client.nic.recv()
            round_trips.append(to_ms(sim.now - sent_at))
            assert response.payload["echo_of"] == n
            yield sim.timeout(ms(10))

    testbed.sim.spawn(server(testbed.sim))
    testbed.sim.spawn(client_loop(testbed.sim))
    testbed.run(seconds(1))

    print("round-trip latencies (ms):", [f"{rt:.2f}" for rt in round_trips])
    print(f"IXP processed {testbed.ixp.rx.processed} packets; "
          f"Dom0 relayed {testbed.bridge.relayed} through the bridge")

    # -- coordination: the paper's two standard mechanisms ----------------
    print(f"\nweight before Tune: {vm.weight}")
    testbed.ixp_agent.send_tune(testbed.vm_entity("echo-server"), +128,
                                reason="quickstart")
    testbed.run(testbed.sim.now + ms(10))
    print(f"weight after Tune(+128): {vm.weight}")

    testbed.ixp_agent.send_trigger(testbed.vm_entity("echo-server"))
    testbed.run(testbed.sim.now + ms(10))
    print(f"VCPU boosted by Trigger: {vm.vcpus[0].boosted}")


if __name__ == "__main__":
    main()
