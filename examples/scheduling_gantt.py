"""Visualise the credit scheduler: who held the cores, and when.

Run with::

    python examples/scheduling_gantt.py

Replays a slice of the MPlayer contention scenario with tracing enabled
and prints an ASCII Gantt chart of core occupancy, before and after a
Trigger boost — the paper's Figure 7 mechanism, seen from the scheduler's
point of view.
"""


from repro.apps.mplayer import DOM1, HIGH_RATE_STREAM, MPlayerConfig, deploy_mplayer
from repro.metrics import SchedulingTimeline
from repro.sim import ms, seconds
from repro.testbed import TestbedConfig
from repro.x86 import X86Params


def main():
    testbed_config = TestbedConfig(
        driver_poll_burn_duty=0.3, x86=X86Params(dom0_weight=256), tracing=True
    )
    config = MPlayerConfig(
        testbed=testbed_config, dom1_stream=HIGH_RATE_STREAM, dom2_disk=True
    )
    deployment = deploy_mplayer(config)
    timeline = SchedulingTimeline(deployment.sim, deployment.testbed.tracer)

    deployment.run(seconds(3))
    window_start = deployment.sim.now - seconds(1)

    # Fire the paper's Trigger mid-window and watch the runqueue boost.
    deployment.run(ms(500))
    trigger_at = deployment.sim.now
    deployment.testbed.ixp_agent.send_trigger(
        deployment.testbed.vm_entity(DOM1), reason="demo"
    )
    deployment.run(ms(500))
    timeline.close()

    print("core occupancy around a Trigger boost "
          f"(fired at {int((trigger_at - window_start) / 1e6)} ms into the window):\n")
    print(timeline.render_gantt(window_start, deployment.sim.now, width=76))
    print(f"\n{DOM1} core time in the window: "
          f"{timeline.busy_time(DOM1, window_start) / 1e6:.0f} ms; "
          f"longest time off-core: {timeline.longest_gap(DOM1) / 1e6:.1f} ms")


if __name__ == "__main__":
    main()
