"""RUBiS with and without cross-island coordination (paper §3.1).

Run with::

    python examples/rubis_coordination.py [--full]

Deploys the three-tier auction site (web/app/db VMs on the Xen island,
clients behind the IXP), runs a baseline and a ``coord-ixp-dom0`` arm on
the same workload seed, and prints the paper's Tables 1-2 and Figures 2,
4, 5. ``--full`` uses the paper-scale duration (several minutes of wall
time); the default is a shorter demonstration run.
"""

import sys

from repro.experiments import (
    render_figure2,
    render_figure4,
    render_figure5,
    render_table1,
    render_table2,
    run_rubis_pair,
)
from repro.sim import seconds


def main():
    duration = seconds(80) if "--full" in sys.argv else seconds(30)
    print(f"running baseline + coordinated RUBiS arms ({duration / 1e9:.0f}s "
          "simulated each; this takes a little while)...")
    pair = run_rubis_pair(duration=duration)

    for artefact in (
        render_figure2(pair),
        render_figure4(pair),
        render_table1(pair),
        render_table2(pair),
        render_figure5(pair),
    ):
        print()
        print(artefact)

    base, coord = pair.base, pair.coord
    print(
        f"\nsummary: throughput {base.throughput:.0f} -> {coord.throughput:.0f} req/s, "
        f"mean response {base.overall.mean:.0f} -> {coord.overall.mean:.0f} ms, "
        f"std {base.overall.std:.0f} -> {coord.overall.std:.0f} ms, "
        f"{coord.tunes_applied} Tunes applied"
    )


if __name__ == "__main__":
    main()
