"""Buffer-monitoring Triggers (paper Figure 7 and Table 3).

Run with::

    python examples/buffer_trigger.py

Domain-1 plays a UDP stream with no-flow-control bursts; Domain-2 decodes
a clip from its local disk (a pure CPU hog that never touches the IXP).
The IXP's XScale core monitors per-VM DRAM buffer occupancy and fires a
**Trigger** whenever Domain-1's queue crosses 128 KB, boosting the VM in
the remote island's runqueue. The example prints the paper's Figure 7
time series and Table 3 interference numbers.
"""

from repro.experiments import render_figure7, render_table3, run_trigger_pair


def main():
    print("running baseline + trigger-coordinated arms (180s simulated each)...")
    pair = run_trigger_pair()
    print()
    print(render_figure7(pair))
    print()
    print(render_table3(pair))


if __name__ == "__main__":
    main()
