"""Platform power capping with and without coordination (paper §1).

Run with::

    python examples/power_cap.py [cap_watts]

Runs the RUBiS workload three times under the same platform power cap:
uncapped, per-island local budgeting, and coordinated budgeting where the
IXP island streams its measured draw over the same channel that carries
Tune and Trigger. The uncoordinated governor must reserve the IXP card's
rated power and strands the difference; coordination converts that slack
into application throughput at equal compliance.
"""

import sys

from repro.experiments.power import DEFAULT_CAP_W, render_power_cap, run_power_cap


def main():
    cap = float(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_CAP_W
    print(f"running three power-cap arms at {cap:.0f} W "
          "(40s simulated each; takes a minute or two)...")
    result = run_power_cap(cap_w=cap)
    print()
    print(render_power_cap(result))
    local, coord = result.arm("local"), result.arm("coord")
    print(
        f"\ncoordination reclaimed {coord.mean_power_w - local.mean_power_w:.1f} W of "
        f"stranded budget -> {coord.throughput / local.throughput:.1f}x the throughput "
        f"at the same platform cap."
    )


if __name__ == "__main__":
    main()
