"""Writing a custom coordination policy against the standard mechanisms.

Run with::

    python examples/custom_policy.py

The paper argues coordination should be exported "as a set of standard
mechanisms and new interfaces at the system software layer itself" — so a
third-party policy only needs the :class:`Island` Tune/Trigger interface
and whatever island-local state it monitors. This example builds a
**queue-balancing policy** from scratch: it watches all IXP flow queues
and continuously Tunes each VM's CPU weight toward its share of queued
bytes, with a Trigger for any VM whose queue doubles within one period.

No repro internals beyond the public coordination API are used.
"""

from repro import Testbed, TestbedConfig
from repro.net import Packet
from repro.sim import ms, seconds


class QueueBalancingPolicy:
    """Tune weights proportionally to observed per-VM ingress backlog."""

    def __init__(self, testbed, period=ms(500), step=32):
        self.testbed = testbed
        self.period = period
        self.step = step
        self._previous = {}
        self.tunes = 0
        self.triggers = 0
        testbed.ixp.xscale.every(period, self._evaluate, name="queue-balancer")

    def _evaluate(self):
        queues = self.testbed.ixp.flow_queues
        total = sum(q.occupancy_bytes for q in queues.values())
        for name, queue in queues.items():
            occupancy = queue.occupancy_bytes
            previous = self._previous.get(name, 0)
            self._previous[name] = occupancy
            entity = self.testbed.vm_entity(name)
            if previous > 0 and occupancy > 2 * previous:
                # Backlog doubling: demand CPU for the consumer *now*.
                self.testbed.ixp_agent.send_trigger(entity, reason="backlog-spike")
                self.triggers += 1
            elif total > 0:
                share = occupancy / total
                delta = self.step if share > 0.6 else (-self.step if share < 0.2 else 0)
                if delta:
                    self.testbed.ixp_agent.send_tune(entity, delta, reason="balance")
                    self.tunes += 1


def main():
    testbed = Testbed(TestbedConfig(seed=3))
    busy_vm, busy_nic = testbed.create_guest_vm("busy")
    quiet_vm, quiet_nic = testbed.create_guest_vm("quiet")
    client = testbed.add_client_host("traffic-gen")
    # Finite ingress service rate (the paper's poll-interval knob) so
    # backlog is visible in IXP DRAM rather than draining instantly.
    for queue in testbed.ixp.flow_queues.values():
        queue.poll_interval = ms(35)
    policy = QueueBalancingPolicy(testbed)

    def sink(nic, vm, cost):
        def loop(sim):
            while True:
                yield nic.recv()
                yield vm.execute(cost, "user")

        return loop

    testbed.sim.spawn(sink(busy_nic, busy_vm, ms(3))(testbed.sim))
    testbed.sim.spawn(sink(quiet_nic, quiet_vm, ms(1))(testbed.sim))

    def generator(sim):
        n = 0
        while True:
            # 4:1 traffic skew toward the busy VM.
            destination = "busy" if n % 5 else "quiet"
            client.nic.send(Packet(src="traffic-gen", dst=destination, size=1400,
                                   kind="data", payload={"n": n}))
            n += 1
            yield sim.timeout(ms(6))

    testbed.sim.spawn(generator(testbed.sim))
    testbed.run(seconds(30))

    print(f"policy issued {policy.tunes} Tunes and {policy.triggers} Triggers")
    print(f"resulting weights: busy={busy_vm.weight}, quiet={quiet_vm.weight}")
    assert busy_vm.weight >= quiet_vm.weight
    print("the busy VM's weight tracked its ingress backlog — a new policy "
          "in ~40 lines, using only Tune/Trigger.")


if __name__ == "__main__":
    main()
