"""MPlayer stream QoS via staged weight coordination (paper Figure 6).

Run with::

    python examples/mplayer_qos.py

One evolving run, as in the paper's narrative: two MPlayer VMs start at
default weights and miss their frame-rate targets; the IXP's stream-
property policy then raises weights from the RTSP-learned bit-rates
(384-512), and finally rewards Domain-2's frame-rate requirement with more
weight *and* more IXP dequeue threads (384-640).
"""

from repro.experiments import render_figure6, run_qos_ladder


def main():
    print("running the three-stage QoS ladder (about 85s simulated)...")
    result = run_qos_ladder()
    print()
    print(render_figure6(result))
    print(
        "\ntargets: Dom1 20 fps (300 kbps stream), Dom2 25 fps (1 Mbit stream).\n"
        "Stage A misses both; the bit-rate Tunes recover both; the final\n"
        "stage shifts capacity toward Domain-2 while Domain-1 holds its limit."
    )


if __name__ == "__main__":
    main()
