"""Scripted fault plans: deterministic, sim-time fault schedules.

The platform's robustness story needs faults that are *reproducible*: the
same seed and plan must produce the same blackout, the same detection
timeline, and the same recovery — across runs and across simulator fast
path modes. A :class:`FaultPlan` is therefore a frozen tuple of scripted
events with absolute simulation-time stamps; nothing fires from wall
clock or ambient randomness. Randomised plans are built *up front* from a
named :class:`~repro.sim.RandomStreams` child stream
(:meth:`FaultPlan.random_blackouts`), so generating the plan never
perturbs any other stream in the run.

Event vocabulary (mirrors the failure modes of the prototype):

* :class:`ChannelBlackout` — the PCI-config-space mailbox drops every
  message from the blocked side(s) for an interval (cable pull / bus
  reset). ``direction`` partitions one way or both.
* :class:`AgentCrash` — a :class:`~repro.coordination.CoordinationAgent`
  dies (messages dropped, sends suppressed, heartbeats stop) and
  optionally restarts later with a bumped epoch.
* :class:`ManagerStall` — an island's coordination manager stops
  handling messages for an interval (Dom0 scheduling stall, XScale
  overload); deferred messages flush when the stall ends.
* :class:`ActuationFault` — knob actuations on one island fail for an
  interval (hypercall errors, dead microengine): audited and counted,
  never raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..sim import RandomStreams, ms

#: The classic ``direction`` values of a :class:`ChannelBlackout` on the
#: two-island prototype: block both senders, or just one (a one-way
#: partition, named after the *blocked sender*). Mesh fabrics use island
#: names as directions; the :class:`~repro.faults.FaultInjector` validates
#: the name against the actual channel endpoints at arm time.
BLACKOUT_DIRECTIONS = ("both", "ixp", "x86")


@dataclass(frozen=True, slots=True)
class ChannelBlackout:
    """Black out the coordination channel for ``duration`` ns.

    ``direction`` is ``"both"`` (full blackout) or the name of the one
    endpoint whose sends are dropped (an asymmetric partition) — ``"ixp"``
    or ``"x86"`` on the prototype pair, any island name on a mesh link.
    Whether the name actually matches an endpoint of the target channel is
    only knowable once the plan meets a channel, so the injector validates
    it at arm time. Note that a one-way partition over the *raw* mailbox
    is undetectable by the healthy-looking side; the reliable layer's
    dead-letter feed is what surfaces it (see :mod:`repro.faults.health`).
    """

    start: int
    duration: int
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("blackout start must be non-negative")
        if self.duration <= 0:
            raise ValueError("blackout duration must be positive")
        if not self.direction or not isinstance(self.direction, str):
            raise ValueError(
                f"direction must be 'both' or an endpoint name, got {self.direction!r}"
            )

    @property
    def end(self) -> int:
        return self.start + self.duration


@dataclass(frozen=True, slots=True)
class AgentCrash:
    """Crash one island's coordination agent at ``start``.

    ``restart_after`` (ns after the crash) brings it back with a bumped
    epoch; ``None`` leaves it dead for the rest of the run.
    """

    agent: str
    start: int
    restart_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("crash start must be non-negative")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ValueError("restart_after must be positive when set")


@dataclass(frozen=True, slots=True)
class ManagerStall:
    """Stall one island's coordination manager for ``duration`` ns."""

    agent: str
    start: int
    duration: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("stall start must be non-negative")
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")


@dataclass(frozen=True, slots=True)
class ActuationFault:
    """Fail knob actuations on ``island`` for ``duration`` ns.

    ``entity`` narrows the fault to one entity's local name (e.g. a VM
    name); ``None`` fails every actuation on the island for the window.
    """

    island: str
    start: int
    duration: int
    entity: Optional[str] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("fault start must be non-negative")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")

    @property
    def end(self) -> int:
        return self.start + self.duration


FaultEvent = Union[ChannelBlackout, AgentCrash, ManagerStall, ActuationFault]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events for one run."""

    events: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def random_blackouts(
        cls,
        streams: RandomStreams,
        *,
        window_start: int,
        window_end: int,
        count: int,
        mean_duration: int,
        direction: str = "both",
        stream_name: str = "fault-plan",
    ) -> "FaultPlan":
        """Draw ``count`` non-overlapping blackouts inside a window.

        All randomness comes from the named child stream, drawn *now*, so
        the plan is fixed before the run starts and consuming it never
        perturbs workload or channel streams. Durations are exponential
        around ``mean_duration`` (floored at 1 ms); starts are uniform and
        re-drawn (bounded attempts) to avoid overlap.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if window_end <= window_start:
            raise ValueError("window_end must be after window_start")
        rng = streams.stream(stream_name)
        taken: list[tuple[int, int]] = []
        events = []
        for _ in range(count):
            for _attempt in range(64):
                duration = max(ms(1), int(rng.expovariate(1.0 / mean_duration)))
                start = int(rng.uniform(window_start, max(window_start, window_end - duration)))
                end = start + duration
                if all(end <= s or start >= e for s, e in taken):
                    taken.append((start, end))
                    events.append(ChannelBlackout(start=start, duration=duration,
                                                  direction=direction))
                    break
        events.sort(key=lambda e: e.start)
        return cls(events=tuple(events))

    def blackout_windows(self) -> list[tuple[int, int]]:
        """(start, end) of every scripted blackout, in start order."""
        return sorted(
            (event.start, event.end)
            for event in self.events
            if isinstance(event, ChannelBlackout)
        )

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class FaultConfig:
    """The fault domain's shape: what to inject, how to detect.

    Passing this as ``TestbedConfig(faults=...)`` arms the whole fault
    domain — heartbeats, failure detectors, injector, baselines. With the
    default ``faults=None`` nothing is constructed and the platform is
    bit-identical to a build without the fault layer.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Heartbeat send (and detector check) period.
    heartbeat_period: int = ms(50)
    #: Consecutive missed heartbeats before the peer turns SUSPECT.
    suspect_misses: int = 2
    #: Consecutive missed heartbeats before the peer turns DOWN.
    down_misses: int = 4
    #: Consecutive dead-lettered frames before the peer turns DOWN even
    #: while its heartbeats still arrive (one-way partition detection;
    #: only reachable when the reliable layer is armed).
    dead_letter_down: int = 3

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.suspect_misses <= 0:
            raise ValueError("suspect_misses must be positive")
        if self.down_misses < self.suspect_misses:
            raise ValueError("down_misses must be >= suspect_misses")
        if self.dead_letter_down <= 0:
            raise ValueError("dead_letter_down must be positive")
