"""The fault injector: replays a :class:`FaultPlan` against the platform.

All injection happens at scripted simulation times via ``sim.call_at``;
the injector draws no randomness at fire time (randomised plans are fully
drawn at construction, see :meth:`FaultPlan.random_blackouts`), so a plan
plus a seed reproduces the exact same failure sequence.

Mechanics per event kind:

* :class:`ChannelBlackout` — adds the blocked sender name(s) to the raw
  channel's ``blocked_senders`` set for the window (refcounted, so
  overlapping blackouts nest correctly). Blocked sends are dropped
  deterministically — no RNG draw — preserving the channel's in-flight
  accounting invariant.
* :class:`AgentCrash` — ``agent.crash()`` now, ``agent.restart()`` at
  ``start + restart_after`` when set.
* :class:`ManagerStall` — ``agent.stall(duration)``: incoming messages
  defer to a queue that flushes when the stall ends.
* :class:`ActuationFault` — installs a time-window gate on the island's
  :class:`~repro.platform.KnobRegistry`; actuations inside a window are
  audited as failed and counted, never raised.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, Tracer
from .plan import ActuationFault, AgentCrash, ChannelBlackout, FaultPlan, ManagerStall

#: Trace kinds emitted by the injector (source = ``faults``) and by the
#: layers it perturbs (``msg-blackout`` from the channel,
#: ``actuation-failed`` from the knob registry).
FAULT_TRACE_KINDS = (
    "fault-injected",
    "fault-cleared",
    "msg-blackout",
    "actuation-failed",
)


class FaultInjector:
    """Schedules and applies one :class:`FaultPlan` against a testbed."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        *,
        channel,
        agents: dict,
        islands: dict,
        tracer: Optional[Tracer] = None,
    ):
        """``channel`` is the raw :class:`CoordinationChannel`; ``agents``
        and ``islands`` map endpoint/island names to their objects."""
        self.sim = sim
        self.plan = plan
        self.channel = channel
        self.agents = agents
        self.islands = islands
        self.tracer = tracer or Tracer(sim, enabled=False)
        #: (time, kind, detail) log of every injection/clear, appended at
        #: fire time — introspectable without tracing.
        self.log: list[tuple[int, str, str]] = []
        #: Refcount per blocked sender, so overlapping blackouts nest.
        self._block_refs: dict[str, int] = {}
        self._armed = False

    # -- arming -------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every event in the plan. Idempotent-hostile by design:
        arming twice would double-inject, so it raises instead."""
        if self._armed:
            raise RuntimeError("fault injector is already armed")
        self._armed = True
        fault_windows: dict[str, list[tuple[int, int, Optional[str]]]] = {}
        for event in self.plan.events:
            if isinstance(event, ChannelBlackout):
                endpoints = (self.channel.a.name, self.channel.b.name)
                if event.direction != "both" and event.direction not in endpoints:
                    raise ValueError(
                        f"blackout direction {event.direction!r} names neither "
                        f"endpoint of the channel {endpoints}"
                    )
                self.sim.call_at(event.start, lambda e=event: self._begin_blackout(e))
                self.sim.call_at(event.end, lambda e=event: self._end_blackout(e))
            elif isinstance(event, AgentCrash):
                self.sim.call_at(event.start, lambda e=event: self._crash(e))
                if event.restart_after is not None:
                    self.sim.call_at(
                        event.start + event.restart_after,
                        lambda e=event: self._restart(e),
                    )
            elif isinstance(event, ManagerStall):
                self.sim.call_at(event.start, lambda e=event: self._stall(e))
            elif isinstance(event, ActuationFault):
                fault_windows.setdefault(event.island, []).append(
                    (event.start, event.end, event.entity)
                )
            else:
                raise TypeError(f"unknown fault event {event!r}")
        for island_name, windows in fault_windows.items():
            self._install_actuation_gate(island_name, windows)

    # -- channel blackouts ----------------------------------------------------

    def _blocked_names(self, event: ChannelBlackout) -> tuple[str, ...]:
        if event.direction == "both":
            return (self.channel.a.name, self.channel.b.name)
        return (event.direction,)

    def _begin_blackout(self, event: ChannelBlackout) -> None:
        for name in self._blocked_names(event):
            refs = self._block_refs.get(name, 0)
            self._block_refs[name] = refs + 1
            if refs == 0:
                self.channel.blocked_senders.add(name)
        self._note("fault-injected", f"blackout:{event.direction}",
                   duration=event.duration)

    def _end_blackout(self, event: ChannelBlackout) -> None:
        for name in self._blocked_names(event):
            refs = self._block_refs.get(name, 0) - 1
            self._block_refs[name] = refs
            if refs <= 0:
                self.channel.blocked_senders.discard(name)
        self._note("fault-cleared", f"blackout:{event.direction}")

    # -- agent crash / stall ---------------------------------------------------

    def _agent(self, name: str):
        try:
            return self.agents[name]
        except KeyError:
            raise KeyError(
                f"fault plan names agent {name!r}; known: {sorted(self.agents)}"
            ) from None

    def _crash(self, event: AgentCrash) -> None:
        self._agent(event.agent).crash()
        self._note("fault-injected", f"crash:{event.agent}")

    def _restart(self, event: AgentCrash) -> None:
        self._agent(event.agent).restart()
        self._note("fault-cleared", f"crash:{event.agent}")

    def _stall(self, event: ManagerStall) -> None:
        self._agent(event.agent).stall(event.duration)
        self._note("fault-injected", f"stall:{event.agent}",
                   duration=event.duration)

    # -- actuation faults ------------------------------------------------------

    def _install_actuation_gate(
        self, island_name: str, windows: list[tuple[int, int, Optional[str]]]
    ) -> None:
        try:
            island = self.islands[island_name]
        except KeyError:
            raise KeyError(
                f"fault plan names island {island_name!r}; known: {sorted(self.islands)}"
            ) from None
        sim = self.sim

        def gate(entity_id, op, _windows=tuple(windows)) -> bool:
            now = sim.now
            for start, end, local in _windows:
                if start <= now < end and (local is None or entity_id.local_name == local):
                    return True
            return False

        island.knobs.fault_gate = gate
        for start, end, local in windows:
            target = local or "*"
            self.sim.call_at(start, lambda t=target: self._note(
                "fault-injected", f"actuation:{island_name}:{t}"))
            self.sim.call_at(end, lambda t=target: self._note(
                "fault-cleared", f"actuation:{island_name}:{t}"))

    # -- bookkeeping -----------------------------------------------------------

    def _note(self, kind: str, detail: str, **payload) -> None:
        self.log.append((self.sim.now, kind, detail))
        if self.tracer.wants(kind):
            self.tracer.emit("faults", kind, fault=detail, **payload)

    def __repr__(self) -> str:
        return f"<FaultInjector events={len(self.plan)} fired={len(self.log)}>"
