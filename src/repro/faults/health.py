"""Peer health: heartbeats, miss-threshold failure detection, epochs.

Each armed :class:`~repro.coordination.CoordinationAgent` gets a
:class:`FailureDetector` watching its *peer* through two independent
signals:

* **Heartbeats** — periodic :class:`HeartbeatMessage` datagrams over the
  raw mailbox (never the reliable wrapper: a retransmitted stale
  heartbeat carries no information). Consecutive misses walk the peer
  UP -> SUSPECT -> DOWN.
* **Dead letters** — frames the local reliable endpoint gave up on,
  surfaced through ``on_dead_letter``. These catch the one-way partition
  a heartbeat receiver cannot see: our sends die while the peer's
  heartbeats keep arriving. ``dead_letter_down`` consecutive dead
  letters force DOWN even with fresh heartbeats.

State machine (the platform's ``PeerHealth``):

* ``UP -> SUSPECT`` on ``suspect_misses`` missed heartbeats or a single
  dead letter; SUSPECT changes nothing (policies keep sending) — it is
  the observable early warning.
* ``* -> DOWN`` on ``down_misses`` missed heartbeats or
  ``dead_letter_down`` consecutive dead letters. DOWN triggers
  degradation: the agent reverts its declared baselines and
  ``peer_available`` turns False, so policies stop emitting remote
  Tunes/Triggers.
* ``DOWN -> UP`` needs evidence the channel works again: a heartbeat
  (when dead-letter pressure is clear, or after a sustained resumed
  streak), or ack progress on the reliable endpoint. Recovery bumps the
  local agent's **epoch**; the first message carrying the new epoch makes
  the receiver discard stale older-epoch frames and revert to baselines
  before the sender replays its desired snapshot on top.

Everything is driven by simulation-time periodic tasks — deterministic
for a given seed and plan, and identical across simulator fast path
modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim import PeriodicTask, Simulator, Tracer

#: PeerHealth states.
PEER_UP = "up"
PEER_SUSPECT = "suspect"
PEER_DOWN = "down"

#: Trace kinds emitted by the health layer (source = ``health``) and the
#: fault-armed agent (source = ``coord``). Subscribed by
#: :class:`~repro.metrics.HealthCollector`.
HEALTH_TRACE_KINDS = (
    "heartbeat-sent",
    "heartbeat-received",
    "peer-suspect",
    "peer-down",
    "peer-up",
    "epoch-bump",
    "dead-letter-signal",
    "stale-epoch-dropped",
    "degraded-suppressed",
    "agent-crashed",
    "agent-restarted",
    "agent-stalled",
    "agent-resumed",
)

_STATE_KIND = {PEER_UP: "peer-up", PEER_SUSPECT: "peer-suspect", PEER_DOWN: "peer-down"}


@dataclass(frozen=True, slots=True)
class HeartbeatMessage:
    """Periodic liveness datagram between the two agents.

    Rides the *raw* mailbox (lossy, unacknowledged) even when the data
    path is reliable. ``epoch`` is the sender's current epoch, so a
    recovering peer's bump propagates with its first heartbeat.
    """

    sender: str
    epoch: int = 0
    seq: int = 0
    sent_at: int = -1

    def __repr__(self) -> str:
        return f"Heartbeat({self.sender}, epoch={self.epoch}, #{self.seq})"


class FailureDetector:
    """Miss-threshold failure detector for one agent's peer."""

    def __init__(
        self,
        sim: Simulator,
        agent,
        config,
        tracer: Optional[Tracer] = None,
    ):
        """``agent`` is the local :class:`CoordinationAgent` whose peer is
        watched; ``config`` is a :class:`~repro.faults.FaultConfig`."""
        self.sim = sim
        self.agent = agent
        self.config = config
        self.tracer = tracer or Tracer(sim, enabled=False)
        #: The local island/endpoint name (this detector's identity).
        self.name = agent.endpoint.name
        self.state = PEER_UP
        #: Highest epoch observed from the peer (heartbeats and data).
        self.peer_epoch = 0
        #: (time, state, reason) history — the deterministic health
        #: timeline the chaos experiment asserts on.
        self.transitions: list[tuple[int, str, str]] = [(sim.now, PEER_UP, "init")]
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self.dead_letters_seen = 0
        self._consecutive_dead_letters = 0
        self._resume_streak = 0
        self._last_heartbeat_at = sim.now
        self._last_frames_acked = 0
        self._seq = 0
        self._on_down: list = []
        self._on_up: list = []
        # Heartbeats always ride the raw mailbox (datagram semantics).
        self._wire = getattr(agent.endpoint, "raw", agent.endpoint)
        agent.attach_detector(self)
        agent.register_message_handler(HeartbeatMessage, self._on_heartbeat)
        endpoint = agent.endpoint
        if hasattr(endpoint, "on_dead_letter"):
            previous = endpoint.on_dead_letter

            def chained(message, _previous=previous):
                if _previous is not None:
                    _previous(message)
                self._note_dead_letter(message)

            endpoint.on_dead_letter = chained
        period = config.heartbeat_period
        self._heartbeat_task = PeriodicTask(
            sim, period, self._heartbeat_tick, name=f"heartbeat-{self.name}"
        )
        self._check_task = PeriodicTask(
            sim, period, self._check_tick, name=f"failure-detector-{self.name}"
        )

    # -- subscriptions ------------------------------------------------------

    @property
    def is_down(self) -> bool:
        return self.state == PEER_DOWN

    def on_down(self, callback) -> None:
        """Run ``callback()`` whenever the peer transitions to DOWN."""
        self._on_down.append(callback)

    def on_up(self, callback) -> None:
        """Run ``callback()`` on recovery (DOWN -> UP), after the epoch
        bump — the hook where policies replay their desired snapshots."""
        self._on_up.append(callback)

    # -- periodic tasks -----------------------------------------------------

    def _heartbeat_tick(self) -> None:
        agent = self.agent
        if agent.crashed or agent.stalled:
            return  # a dead or stalled manager cannot heartbeat
        self._seq += 1
        self.heartbeats_sent += 1
        if self.tracer.wants("heartbeat-sent"):
            self.tracer.emit(
                "health", "heartbeat-sent", island=self.name,
                seq=self._seq, epoch=agent.epoch,
            )
        self._wire.send(HeartbeatMessage(
            sender=self.name, epoch=agent.epoch, seq=self._seq,
            sent_at=self.sim.now,
        ))

    def _check_tick(self) -> None:
        period = self.config.heartbeat_period
        agent = self.agent
        if agent.crashed:
            # While dead we judge nothing; refresh the horizon so a
            # restart gets a full grace window before suspecting.
            self._last_heartbeat_at = self.sim.now
            return
        acked = getattr(agent.endpoint, "frames_acked", 0)
        if acked > self._last_frames_acked:
            # Ack progress proves the forward path works: clear the
            # dead-letter pressure (and recover, if heartbeats agree).
            self._last_frames_acked = acked
            self._consecutive_dead_letters = 0
            if self.state != PEER_UP and self._heartbeat_fresh():
                self._transition(PEER_UP, "ack-progress")
        silent = self.sim.now - self._last_heartbeat_at
        misses = silent // period
        if misses >= self.config.down_misses:
            self._resume_streak = 0
            self._transition(PEER_DOWN, f"missed {misses} heartbeats")
        elif misses >= self.config.suspect_misses:
            self._resume_streak = 0
            self._transition(PEER_SUSPECT, f"missed {misses} heartbeats")

    def _heartbeat_fresh(self) -> bool:
        silent = self.sim.now - self._last_heartbeat_at
        return silent < self.config.suspect_misses * self.config.heartbeat_period

    # -- evidence feeds -----------------------------------------------------

    def _on_heartbeat(self, message: HeartbeatMessage) -> None:
        self.heartbeats_received += 1
        self._last_heartbeat_at = self.sim.now
        self._resume_streak += 1
        if message.epoch > self.peer_epoch:
            self.note_peer_epoch(message.epoch)
        if self.tracer.wants("heartbeat-received"):
            self.tracer.emit(
                "health", "heartbeat-received", island=self.name,
                frm=message.sender, seq=message.seq, epoch=message.epoch,
            )
        if self.state == PEER_SUSPECT:
            self._transition(PEER_UP, "heartbeat-resumed")
        elif self.state == PEER_DOWN:
            # Heartbeats alone recover a silence-driven DOWN immediately.
            # A dead-letter-driven DOWN additionally needs either ack
            # progress (see the check loop) or a sustained resumed streak,
            # so a one-way partition does not flap on every heartbeat.
            if (self._consecutive_dead_letters < self.config.dead_letter_down
                    or self._resume_streak >= self.config.down_misses):
                self._consecutive_dead_letters = 0
                self._transition(PEER_UP, "heartbeat-resumed")

    def _note_dead_letter(self, message: Any) -> None:
        self.dead_letters_seen += 1
        self._consecutive_dead_letters += 1
        self._resume_streak = 0
        if self.tracer.wants("dead-letter-signal"):
            self.tracer.emit(
                "health", "dead-letter-signal", island=self.name,
                consecutive=self._consecutive_dead_letters,
                message=repr(message),
            )
        if self.state == PEER_UP:
            self._transition(PEER_SUSPECT, "dead-letter")
        if (self._consecutive_dead_letters >= self.config.dead_letter_down
                and self.state != PEER_DOWN):
            self._transition(
                PEER_DOWN,
                f"{self._consecutive_dead_letters} consecutive dead letters",
            )

    def note_peer_epoch(self, epoch: int) -> None:
        """Adopt a higher peer epoch (called by the agent on any message
        carrying one). Crossing an epoch boundary reverts this side to its
        declared baselines *before* the new epoch's replay applies — so a
        replayed delta-from-baseline lands on a baseline, even if this
        side never detected the outage (one-way partition)."""
        if epoch <= self.peer_epoch:
            return
        self.peer_epoch = epoch
        self.agent.revert_to_baselines(f"epoch-{epoch}-boundary")

    # -- state machine ------------------------------------------------------

    def _transition(self, new_state: str, reason: str) -> None:
        old = self.state
        if old == new_state:
            return
        if new_state == PEER_SUSPECT and old != PEER_UP:
            return  # SUSPECT never downgrades DOWN
        self.state = new_state
        self.transitions.append((self.sim.now, new_state, reason))
        if self.tracer.wants(_STATE_KIND[new_state]):
            self.tracer.emit(
                "health", _STATE_KIND[new_state], island=self.name, reason=reason,
            )
        if new_state == PEER_DOWN:
            self.agent.revert_to_baselines(f"peer-down:{reason}")
            for callback in self._on_down:
                callback()
        elif new_state == PEER_UP and old == PEER_DOWN:
            self.agent.epoch += 1
            if self.tracer.wants("epoch-bump"):
                self.tracer.emit(
                    "health", "epoch-bump", island=self.name,
                    epoch=self.agent.epoch, reason=reason,
                )
            for callback in self._on_up:
                callback()

    # -- introspection ------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Snapshot for :meth:`GlobalController.health`."""
        return {
            "state": self.state,
            "epoch": self.agent.epoch,
            "peer_epoch": self.peer_epoch,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_received": self.heartbeats_received,
            "dead_letters_seen": self.dead_letters_seen,
            "transitions": list(self.transitions),
        }

    def __repr__(self) -> str:
        return f"<FailureDetector {self.name} peer={self.state} epoch={self.agent.epoch}>"
