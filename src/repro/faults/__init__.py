"""Fault domains: scripted failure injection, heartbeat failure
detection, degraded-mode fallback, and epoch-based recovery.

The paper argues independently-managed islands must coordinate; this
package makes the platform survive the moment coordination *stops*.
Armed via ``TestbedConfig(faults=FaultConfig(...))``; with the default
``faults=None`` nothing here is constructed and the platform behaves
bit-identically to an unarmed build.
"""

from .health import (
    HEALTH_TRACE_KINDS,
    PEER_DOWN,
    PEER_SUSPECT,
    PEER_UP,
    FailureDetector,
    HeartbeatMessage,
)
from .injector import FAULT_TRACE_KINDS, FaultInjector
from .plan import (
    BLACKOUT_DIRECTIONS,
    ActuationFault,
    AgentCrash,
    ChannelBlackout,
    FaultConfig,
    FaultEvent,
    FaultPlan,
    ManagerStall,
)

__all__ = [
    "ActuationFault",
    "AgentCrash",
    "BLACKOUT_DIRECTIONS",
    "ChannelBlackout",
    "FAULT_TRACE_KINDS",
    "FailureDetector",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HEALTH_TRACE_KINDS",
    "HeartbeatMessage",
    "ManagerStall",
    "PEER_DOWN",
    "PEER_SUSPECT",
    "PEER_UP",
]
