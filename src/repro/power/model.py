"""Power models for the platform's components.

The paper's second motivating use case (§1): "While power budgeting can be
performed on a per tile-basis ..., it is well-known that properties like
caps on total power usage must be obtained at platform level. This is
because turning off or slowing down processors in certain tiles may
negatively impact the performance of application components executing on
others."

The x86 cores follow the classic CMOS model — dynamic power roughly cubic
in frequency (P = C·V²·f with V scaling with f), plus static leakage — and
the IXP draws a base plus per-microengine-activity dynamic component.
Numbers are of 2008-era silicon: a 2.66 GHz Xeon core around 20 W busy,
the IXP2850 card around 25-30 W.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CorePowerModel:
    """Power of one x86 core as a function of utilisation and DVFS speed."""

    #: Static/leakage watts, paid at any speed while the core is powered.
    static_w: float = 6.0
    #: Dynamic watts at full utilisation and nominal frequency.
    dynamic_w: float = 14.0
    #: Dynamic-power exponent in the speed factor (V~f gives ~3).
    speed_exponent: float = 3.0

    def power(self, utilization: float, speed: float) -> float:
        """Watts drawn at the given utilisation (0-1) and speed (0-1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0,1], got {utilization}")
        if not 0.0 < speed <= 1.0:
            raise ValueError(f"speed must be in (0,1], got {speed}")
        return self.static_w + self.dynamic_w * utilization * speed**self.speed_exponent

    def power_integrated(self, busy_fractions: dict[float, float]) -> float:
        """Mean watts over a window whose busy time is split by DVFS speed.

        ``busy_fractions`` maps speed -> fraction of the window spent busy
        at that speed. Pricing each slice at its own speed makes the energy
        integral exact across mid-window frequency changes, where
        :meth:`power` with the end-of-window speed would mis-bill the whole
        window at whatever level the ladder happened to finish on.
        """
        dynamic = 0.0
        for speed, fraction in busy_fractions.items():
            if not 0.0 < speed <= 1.0:
                raise ValueError(f"speed must be in (0,1], got {speed}")
            dynamic += self.dynamic_w * max(0.0, min(1.0, fraction)) * speed**self.speed_exponent
        return self.static_w + dynamic


@dataclass(frozen=True, slots=True)
class IXPPowerModel:
    """Power of the network-processor card."""

    #: Card base power: memories, MACs, XScale (watts).
    base_w: float = 14.0
    #: Per-microengine dynamic watts at full pipeline utilisation.
    per_engine_w: float = 1.0

    def power(self, engine_utilizations: list[float]) -> float:
        """Watts for the card given each microengine's utilisation."""
        dynamic = sum(self.per_engine_w * min(1.0, max(0.0, u)) for u in engine_utilizations)
        return self.base_w + dynamic


#: Conventional DVFS ladder (fractions of nominal frequency).
DVFS_LEVELS = (1.0, 0.85, 0.7, 0.55)


def next_level_down(speed: float, levels=DVFS_LEVELS) -> float:
    """The next lower DVFS level (or the floor if already there)."""
    below = [lv for lv in levels if lv < speed - 1e-9]
    return max(below) if below else levels[-1]


def next_level_up(speed: float, levels=DVFS_LEVELS) -> float:
    """The next higher DVFS level (or nominal if already there)."""
    above = [lv for lv in levels if lv > speed + 1e-9]
    return min(above) if above else levels[0]
