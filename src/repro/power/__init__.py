"""Platform power management: models, metering and cap governors.

Implements the paper's second motivating use case (§1, "Platform-level
power management") and its future-work item of power coordination policies
(§5): the same Tune/Trigger-carrying channel also carries power telemetry,
letting a platform cap be enforced with application-level awareness
instead of static per-island budgets.
"""

from .governor import (
    CoordinatedPowerCapGovernor,
    LocalPowerCapGovernor,
    PowerReportMessage,
)
from .meter import PowerMeter, PowerSample
from .model import (
    DVFS_LEVELS,
    CorePowerModel,
    IXPPowerModel,
    next_level_down,
    next_level_up,
)

__all__ = [
    "CoordinatedPowerCapGovernor",
    "CorePowerModel",
    "DVFS_LEVELS",
    "IXPPowerModel",
    "LocalPowerCapGovernor",
    "PowerMeter",
    "PowerReportMessage",
    "PowerSample",
    "next_level_down",
    "next_level_up",
]
