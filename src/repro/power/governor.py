"""Platform power-cap governors: uncoordinated vs coordinated.

The paper's §1 power use case in executable form. Both governors enforce
the *same platform cap* by DVFS-throttling the x86 cores; they differ in
what they know:

* :class:`LocalPowerCapGovernor` — per-island budgeting. The x86 island
  cannot observe the IXP's draw, so it must reserve the card's *rated*
  power out of the platform cap and live inside the remainder, throttling
  the application even while the card idles.
* :class:`CoordinatedPowerCapGovernor` — the IXP island reports its
  measured draw over the coordination channel (a
  :class:`PowerReportMessage`, carried by the same agents as Tune and
  Trigger); the x86 governor budgets against *actual* remote draw plus a
  guard band, reclaiming the slack for application performance at equal
  platform power compliance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coordination import CoordinationAgent
from ..platform import EntityId
from ..sim import PeriodicTask, Simulator, Tracer, seconds
from ..x86 import X86Island
from .meter import PowerMeter


@dataclass(frozen=True, slots=True)
class PowerReportMessage:
    """IXP -> x86 power telemetry over the coordination channel."""

    watts: float

    def __repr__(self) -> str:
        return f"PowerReport({self.watts:.1f}W)"


class _DvfsActuator:
    """Shared DVFS stepping logic against a wattage allowance.

    Actuation goes through the x86 island's ``dvfs`` knob — the governor
    is a coordination client like any policy, so every frequency step it
    takes lands in the platform actuation audit.
    """

    def __init__(self, x86: X86Island, hysteresis_w: float):
        self.x86 = x86
        self.hysteresis_w = hysteresis_w
        self.dvfs_entity = EntityId(x86.name, "dvfs")
        self.steps_down = 0
        self.steps_up = 0
        #: Steps withheld because another actor moved the ladder at this
        #: same instant (two governors reacting to one meter sample).
        self.steps_deferred = 0

    @property
    def current_speed(self) -> float:
        """Speed of core 0 (all cores are stepped together)."""
        return self.x86.scheduler.cpus[0].speed

    def _raced(self) -> bool:
        """Whether another actor already stepped the ladder this instant.

        Two governors sharing one meter (local + coordinated racing, or a
        coordinated energy policy alongside a cap governor) would both see
        the same over/under-budget sample and double-step the ladder.
        The actuation audit is the shared ground truth: if a non-zero Tune
        on the dvfs entity already landed at this simulation time, this
        actuator yields its step.
        """
        last = self.x86.knobs.last_actuation(self.dvfs_entity)
        return (
            last is not None
            and last.time == self.x86.sim.now
            and last.op == "tune"
            and bool(last.requested_delta)
        )

    def actuate(self, measured_w: float, allowance_w: float) -> None:
        if measured_w > allowance_w:
            if self._raced():
                self.steps_deferred += 1
                return
            record = self.x86.apply_tune(self.dvfs_entity, -1)
            if record.applied_value != record.previous_value:
                self.steps_down += 1
        elif measured_w < allowance_w - self.hysteresis_w:
            if self._raced():
                self.steps_deferred += 1
                return
            record = self.x86.apply_tune(self.dvfs_entity, +1)
            if record.applied_value != record.previous_value:
                self.steps_up += 1


class LocalPowerCapGovernor:
    """Uncoordinated enforcement: static split of the platform cap."""

    def __init__(
        self,
        sim: Simulator,
        meter: PowerMeter,
        x86: X86Island,
        platform_cap_w: float,
        remote_rated_w: float = 30.0,
        period: int = seconds(1),
        hysteresis_w: float = 4.0,
        tracer: Tracer | None = None,
    ):
        """``remote_rated_w`` is the IXP card's nameplate power — all the
        local governor can safely assume about the other island."""
        if platform_cap_w <= remote_rated_w:
            raise ValueError("cap leaves no budget for the x86 island")
        self.sim = sim
        self.meter = meter
        self.platform_cap_w = platform_cap_w
        self.x86_budget_w = platform_cap_w - remote_rated_w
        self.actuator = _DvfsActuator(x86, hysteresis_w)
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._task = PeriodicTask(sim, period, self._govern, name="power-governor-local")

    def _govern(self) -> None:
        sample = self.meter.instantaneous()
        self.actuator.actuate(sample.x86_w, self.x86_budget_w)
        self.tracer.emit(
            "power", "local-govern", x86_w=sample.x86_w,
            budget=self.x86_budget_w, speed=self.actuator.current_speed,
        )


class CoordinatedPowerCapGovernor:
    """Platform-level enforcement via cross-island power telemetry."""

    def __init__(
        self,
        sim: Simulator,
        meter: PowerMeter,
        x86: X86Island,
        x86_agent: CoordinationAgent,
        ixp_agent: CoordinationAgent,
        platform_cap_w: float,
        guard_w: float = 2.0,
        period: int = seconds(1),
        hysteresis_w: float = 4.0,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.meter = meter
        self.platform_cap_w = platform_cap_w
        self.guard_w = guard_w
        self.actuator = _DvfsActuator(x86, hysteresis_w)
        self.tracer = tracer or Tracer(sim, enabled=False)
        self.reports_received = 0
        self._last_remote_w = 30.0  # rated, until the first report lands
        x86_agent.register_message_handler(PowerReportMessage, self._on_report)
        self._ixp_agent = ixp_agent
        sim.spawn(self._report_loop(period), name="power-telemetry")
        sim.spawn(self._govern_loop(period), name="power-governor-coord")

    # -- IXP side: telemetry over the coordination channel -----------------

    def _report_loop(self, period):
        while True:
            yield self.sim.timeout(period)
            sample = self.meter.instantaneous()
            self._ixp_agent.endpoint.send(PowerReportMessage(watts=sample.ixp_w))

    def _on_report(self, message: PowerReportMessage) -> None:
        self.reports_received += 1
        self._last_remote_w = message.watts

    # -- x86 side: budget against actual remote draw -----------------------

    def _govern_loop(self, period):
        while True:
            yield self.sim.timeout(period)
            sample = self.meter.instantaneous()
            allowance = self.platform_cap_w - self._last_remote_w - self.guard_w
            self.actuator.actuate(sample.x86_w, allowance)
            self.tracer.emit(
                "power", "coord-govern", x86_w=sample.x86_w, remote_w=self._last_remote_w,
                allowance=allowance, speed=self.actuator.current_speed,
            )
