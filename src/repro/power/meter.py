"""Platform power metering.

Samples per-island power periodically from utilisation deltas — what a
platform management controller (or a wall-socket meter in the lab) would
see. Produces per-island and platform series plus energy integrals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ixp import IXPIsland
from ..sim import PeriodicTask, Simulator, seconds, to_seconds
from ..x86 import X86Island
from .model import CorePowerModel, IXPPowerModel


@dataclass
class PowerSample:
    """One metering window."""

    time: int
    x86_w: float
    ixp_w: float

    @property
    def total_w(self) -> float:
        """Platform draw for this window."""
        return self.x86_w + self.ixp_w


class PowerMeter:
    """Windowed power sampler over both islands."""

    def __init__(
        self,
        sim: Simulator,
        x86: X86Island,
        ixp: IXPIsland,
        core_model: Optional[CorePowerModel] = None,
        ixp_model: Optional[IXPPowerModel] = None,
        window: int = seconds(1),
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.x86 = x86
        self.ixp = ixp
        self.core_model = core_model or CorePowerModel()
        self.ixp_model = ixp_model or IXPPowerModel()
        self.window = window
        self.samples: list[PowerSample] = []
        self._last_busy_by_speed: list[dict[float, int]] = [
            dict(cpu.busy_by_speed) for cpu in x86.scheduler.cpus
        ]
        self._last_busy = [me.busy_time for me in ixp.microengines]
        self._task = PeriodicTask(sim, window, self._tick, name="power-meter")

    def _tick(self) -> None:
        self.samples.append(self._sample())

    def _sample(self) -> PowerSample:
        x86_w = 0.0
        for i, cpu in enumerate(self.x86.scheduler.cpus):
            # Busy time this window, split by the DVFS speed it ran at.
            # A mid-window frequency step therefore bills each slice at
            # its true speed instead of pricing the whole window at the
            # end-of-window level.
            previous = self._last_busy_by_speed[i]
            fractions: dict[float, float] = {}
            for speed, total in cpu.busy_by_speed.items():
                delta = total - previous.get(speed, 0)
                if delta > 0:
                    fractions[speed] = delta / self.window
            self._last_busy_by_speed[i] = dict(cpu.busy_by_speed)
            x86_w += self.core_model.power_integrated(fractions)

        engine_utils = []
        for i, me in enumerate(self.ixp.microengines):
            busy = me.busy_time
            engine_utils.append((busy - self._last_busy[i]) / self.window)
            self._last_busy[i] = busy
        ixp_w = self.ixp_model.power(engine_utils)
        return PowerSample(time=self.sim.now, x86_w=x86_w, ixp_w=ixp_w)

    # -- aggregates --------------------------------------------------------

    def instantaneous(self) -> PowerSample:
        """The most recent window (sampling one early if none yet)."""
        if not self.samples:
            return PowerSample(time=self.sim.now, x86_w=0.0, ixp_w=0.0)
        return self.samples[-1]

    def mean_total_w(self, skip_first: int = 0) -> float:
        """Mean platform power across collected windows."""
        samples = self.samples[skip_first:]
        if not samples:
            return 0.0
        return sum(s.total_w for s in samples) / len(samples)

    def energy_j(self) -> float:
        """Total energy over all windows (joules)."""
        return sum(s.total_w for s in self.samples) * to_seconds(self.window)

    def peak_total_w(self) -> float:
        """Highest platform draw in any window."""
        return max((s.total_w for s in self.samples), default=0.0)
