"""Measurement: summary statistics, CPU sampling, response-time recording
and the paper's platform-efficiency metric."""

from .actuation import ActuationCollector
from .breakdown import RX_PATH_STAGES, LatencyBreakdown, StageStats
from .channel import (
    CHANNEL_TRACE_KINDS,
    RAW_DROP_KIND,
    RELIABLE_TRACE_KINDS,
    ChannelReliabilityCollector,
)
from .collector import (
    CpuUtilizationSampler,
    TimePoint,
    UtilizationSample,
    WindowedCounter,
)
from .efficiency import platform_efficiency
from .energyqos import (
    ENERGY_QOS_KNOB_KINDS,
    EnergyQosCollector,
    QosCheck,
    WindowedQosSource,
)
from .health import HealthCollector
from .response import ResponseTimeRecorder
from .timeline import RunInterval, SchedulingTimeline
from .stats import OnlineStats, Summary, percentile, summarize

__all__ = [
    "ActuationCollector",
    "CHANNEL_TRACE_KINDS",
    "ChannelReliabilityCollector",
    "CpuUtilizationSampler",
    "ENERGY_QOS_KNOB_KINDS",
    "EnergyQosCollector",
    "QosCheck",
    "RAW_DROP_KIND",
    "WindowedQosSource",
    "RELIABLE_TRACE_KINDS",
    "HealthCollector",
    "LatencyBreakdown",
    "RX_PATH_STAGES",
    "StageStats",
    "OnlineStats",
    "ResponseTimeRecorder",
    "RunInterval",
    "SchedulingTimeline",
    "Summary",
    "TimePoint",
    "UtilizationSample",
    "WindowedCounter",
    "percentile",
    "platform_efficiency",
    "summarize",
]
