"""End-to-end response-time recording, keyed by request type."""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, to_ms
from .stats import Summary, summarize


class ResponseTimeRecorder:
    """Collects per-key latency samples (in clock ticks) and summarises
    them in milliseconds, the unit the paper reports."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._samples: dict[str, list[int]] = {}

    def record(self, key: str, latency: int) -> None:
        """Add one latency observation for ``key``."""
        if latency < 0:
            raise ValueError(f"negative latency {latency} for {key!r}")
        self._samples.setdefault(key, []).append(latency)

    def keys(self) -> list[str]:
        """All request types observed, in first-seen order."""
        return list(self._samples)

    def count(self, key: Optional[str] = None) -> int:
        """Observations for ``key`` (or across all keys)."""
        if key is not None:
            return len(self._samples.get(key, []))
        return sum(len(v) for v in self._samples.values())

    def summary_ms(self, key: str) -> Summary:
        """Latency summary for one request type, in milliseconds."""
        samples = self._samples.get(key)
        if not samples:
            raise KeyError(f"no samples recorded for {key!r}")
        return summarize(to_ms(s) for s in samples)

    def overall_summary_ms(self) -> Summary:
        """Latency summary across every request type."""
        merged = [s for values in self._samples.values() for s in values]
        if not merged:
            raise ValueError("no samples recorded")
        return summarize(to_ms(s) for s in merged)

    def table_ms(self) -> dict[str, Summary]:
        """Per-type summaries for all keys (the Table 1 shape)."""
        return {key: self.summary_ms(key) for key in self._samples}
