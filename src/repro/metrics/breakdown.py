"""Per-stage latency breakdown from packet stage stamps.

Every pipeline stage stamps the packets it forwards (``Packet.stamp``), so
an end-to-end latency decomposes into per-hop components for free. The
:class:`LatencyBreakdown` aggregates those per-stage deltas across many
packets — the tool used to attribute where coordination saves time (IXP
queueing vs PCIe vs Dom0 relay vs guest scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import Packet
from .stats import OnlineStats

#: The receive path's canonical stage order on the testbed.
RX_PATH_STAGES = ("ixp-rx", "pci-dma", "vif-rx", "bridge")


@dataclass
class StageStats:
    """Latency statistics of one pipeline hop."""

    from_stage: str
    to_stage: str
    stats: OnlineStats

    @property
    def label(self) -> str:
        return f"{self.from_stage} -> {self.to_stage}"


class LatencyBreakdown:
    """Aggregates per-hop latencies over observed packets."""

    def __init__(self, stages: tuple[str, ...] = RX_PATH_STAGES):
        if len(stages) < 2:
            raise ValueError("need at least two stages to form a hop")
        self.stages = stages
        self._hops = [
            StageStats(stages[i], stages[i + 1], OnlineStats())
            for i in range(len(stages) - 1)
        ]
        self.packets_observed = 0
        self.packets_skipped = 0

    def observe(self, packet: Packet) -> bool:
        """Fold one packet's stamps in; False if stamps are incomplete."""
        stamps = packet.stamps
        if not all(stage in stamps for stage in self.stages):
            self.packets_skipped += 1
            return False
        for hop in self._hops:
            hop.stats.add(stamps[hop.to_stage] - stamps[hop.from_stage])
        self.packets_observed += 1
        return True

    def hops(self) -> list[StageStats]:
        """Per-hop statistics, in path order."""
        return list(self._hops)

    def total_mean(self) -> float:
        """Mean end-to-end latency across the configured stages (ns)."""
        return sum(hop.stats.mean for hop in self._hops)

    def dominant_hop(self) -> StageStats:
        """The hop with the highest mean latency."""
        if self.packets_observed == 0:
            raise ValueError("no packets observed")
        return max(self._hops, key=lambda hop: hop.stats.mean)

    def report(self) -> str:
        """Human-readable per-hop table (microseconds)."""
        lines = [f"latency breakdown over {self.packets_observed} packets"]
        for hop in self._hops:
            mean_us = hop.stats.mean / 1000.0
            worst_us = (hop.stats.maximum / 1000.0) if hop.stats.count else 0.0
            lines.append(f"  {hop.label:24s} mean {mean_us:10.1f} us   max {worst_us:10.1f} us")
        lines.append(f"  {'total':24s} mean {self.total_mean() / 1000.0:10.1f} us")
        return "\n".join(lines)
