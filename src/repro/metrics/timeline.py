"""Scheduling timelines: who ran where, reconstructed from trace events.

Subscribe a :class:`SchedulingTimeline` to a testbed's tracer (tracing must
be enabled) and it records every context switch the credit scheduler
performs. Afterwards it answers occupancy queries and renders an ASCII
Gantt chart — the tool for eyeballing OVER-band starvation, boost
preemptions and slice convoys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Simulator, TraceRecord, Tracer


@dataclass(frozen=True, slots=True)
class RunInterval:
    """One contiguous occupancy of a core by a VM."""

    cpu: int
    vm: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


class SchedulingTimeline:
    """Collects context-switch events into per-core interval lists."""

    def __init__(self, sim: Simulator, tracer: Tracer):
        self.sim = sim
        self.intervals: list[RunInterval] = []
        self._open: dict[int, tuple[str, int]] = {}  # cpu -> (vm, start)
        tracer.subscribe(self._on_record, kinds=["ctxsw-in", "ctxsw-out"])

    def _on_record(self, record: TraceRecord) -> None:
        cpu = record.payload["cpu"]
        if record.kind == "ctxsw-in":
            self._open[cpu] = (record.payload["vm"], record.time)
        else:
            opened = self._open.pop(cpu, None)
            if opened is not None:
                vm, start = opened
                if record.time > start:
                    self.intervals.append(
                        RunInterval(cpu=cpu, vm=vm, start=start, end=record.time)
                    )

    def close(self) -> None:
        """Close any still-open intervals at the current time."""
        for cpu, (vm, start) in list(self._open.items()):
            if self.sim.now > start:
                self.intervals.append(
                    RunInterval(cpu=cpu, vm=vm, start=start, end=self.sim.now)
                )
        self._open.clear()

    # -- queries ----------------------------------------------------------

    def busy_time(self, vm: str, start: int = 0, end: Optional[int] = None) -> int:
        """Total core time ``vm`` held within [start, end)."""
        end = self.sim.now if end is None else end
        total = 0
        for interval in self.intervals:
            if interval.vm != vm:
                continue
            lo = max(interval.start, start)
            hi = min(interval.end, end)
            if hi > lo:
                total += hi - lo
        return total

    def longest_gap(self, vm: str) -> int:
        """Longest stretch (ns) the VM held no core at all."""
        spans = sorted(
            (i.start, i.end) for i in self.intervals if i.vm == vm
        )
        if not spans:
            return self.sim.now
        gaps = [spans[0][0]]
        horizon = spans[0][1]
        for start, end in spans[1:]:
            if start > horizon:
                gaps.append(start - horizon)
            horizon = max(horizon, end)
        gaps.append(max(0, self.sim.now - horizon))
        return max(gaps)

    # -- rendering ------------------------------------------------------------

    def render_gantt(
        self, start: int, end: int, width: int = 80, cpus: Optional[list[int]] = None
    ) -> str:
        """ASCII Gantt: one row per core, one letter per VM."""
        if end <= start:
            raise ValueError("end must be after start")
        vms = sorted({i.vm for i in self.intervals})
        letters = {vm: chr(ord("A") + index % 26) for index, vm in enumerate(vms)}
        cpu_ids = cpus if cpus is not None else sorted({i.cpu for i in self.intervals})
        scale = (end - start) / width

        lines = [
            "legend: " + "  ".join(f"{letters[vm]}={vm}" for vm in vms) + "  .=idle"
        ]
        for cpu in cpu_ids:
            row = ["."] * width
            for interval in self.intervals:
                if interval.cpu != cpu or interval.end <= start or interval.start >= end:
                    continue
                lo = max(0, int((interval.start - start) / scale))
                hi = min(width, max(lo + 1, int((interval.end - start) / scale)))
                for x in range(lo, hi):
                    row[x] = letters[interval.vm]
            lines.append(f"cpu{cpu} |" + "".join(row) + "|")
        return "\n".join(lines)
