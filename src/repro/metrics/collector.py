"""Time-series collectors: CPU utilisation sampling and windowed counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import NS_PER_S, PeriodicTask, Simulator, seconds
from ..x86.vm import VirtualMachine


@dataclass
class TimePoint:
    """One sample of a windowed time series."""

    time: int
    value: float


@dataclass
class UtilizationSample:
    """CPU utilisation of one VM over one sampling window (percent of one
    core, so a 2-VCPU domain can exceed 100)."""

    time: int
    total: float
    user: float
    sys: float
    iowait: float
    steal: float


class CpuUtilizationSampler:
    """Periodically samples per-VM CPU accounting deltas.

    Mirrors what ``xentop``/``sar`` produced for the paper's Figure 5 and
    Figure 7: utilisation percentages per domain per window.
    """

    def __init__(self, sim: Simulator, vms: list[VirtualMachine], window: int = seconds(1)):
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.vms = vms
        self.window = window
        self.samples: dict[str, list[UtilizationSample]] = {vm.name: [] for vm in vms}
        self._previous = {vm.name: vm.accounting.snapshot() for vm in vms}
        self._task = PeriodicTask(sim, window, self._sample_window, name="cpu-sampler")

    def _sample_window(self) -> None:
        for vm in self.vms:
            now_counters = vm.accounting.snapshot()
            prev = self._previous[vm.name]
            delta = {k: now_counters[k] - prev[k] for k in now_counters}
            self._previous[vm.name] = now_counters
            scale = 100.0 / self.window
            self.samples[vm.name].append(
                UtilizationSample(
                    time=self.sim.now,
                    total=(delta["user"] + delta["sys"]) * scale,
                    user=delta["user"] * scale,
                    sys=delta["sys"] * scale,
                    iowait=delta["iowait"] * scale,
                    steal=delta["steal"] * scale,
                )
            )

    def mean_total(self, vm_name: str, skip_first: int = 0) -> float:
        """Mean total utilisation of a VM across collected windows."""
        samples = self.samples[vm_name][skip_first:]
        if not samples:
            return 0.0
        return sum(s.total for s in samples) / len(samples)

    def series(self, vm_name: str) -> list[UtilizationSample]:
        """All windows sampled for ``vm_name``."""
        return list(self.samples[vm_name])


@dataclass
class WindowedCounter:
    """Counts events into fixed windows (throughput series)."""

    sim: Simulator
    window: int = seconds(1)
    total: int = 0
    _counts: dict[int, int] = field(default_factory=dict)

    def record(self, count: int = 1) -> None:
        """Count ``count`` events at the current time."""
        bucket = self.sim.now // self.window
        self._counts[bucket] = self._counts.get(bucket, 0) + count
        self.total += count

    def rate_per_second(self, start: Optional[int] = None, end: Optional[int] = None) -> float:
        """Mean event rate over ``[start, end)`` (defaults to full range).

        Counts are stored per window, so the range is clamped *outward* to
        window-aligned boundaries: a bucket straddling ``start`` or ``end``
        is counted in full and the clamped span is used as the divisor.
        (Attributing a whole straddling bucket to a shorter, unaligned span
        — the previous behaviour — over- or under-stated the rate by up to
        one bucket's worth of events.)
        """
        if not self._counts:
            return 0.0
        first_bucket = min(self._counts) if start is None else start // self.window
        last_bucket = max(self._counts) + 1 if end is None else -(-end // self.window)
        if last_bucket <= first_bucket:
            return 0.0
        counted = sum(
            c
            for bucket, c in self._counts.items()
            if first_bucket <= bucket < last_bucket
        )
        span = (last_bucket - first_bucket) * self.window
        return counted * NS_PER_S / span

    def series(self) -> list[TimePoint]:
        """Per-window counts, ascending by time."""
        return [
            TimePoint(time=bucket * self.window, value=float(count))
            for bucket, count in sorted(self._counts.items())
        ]
