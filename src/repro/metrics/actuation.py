"""Actuation metrics: windowed counters over the knob registry's traces.

The typed actuation layer (``repro.platform.knobs``) publishes every Tune,
Trigger, clamp, lease release and rejection as trace records; this
collector is the matching sink, so actuation behaviour (tune storms,
clamp rates, trigger churn, policy mistakes) can be read off a run like
any other throughput metric — and every scheduler change can be
attributed to a coordination decision.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from ..platform.knobs import ACTUATION_TRACE_KINDS
from ..sim import Simulator, Tracer, seconds
from .collector import TimePoint, WindowedCounter


class ActuationCollector:
    """Windowed counters over the actuation trace kinds.

    Requires a tracer with tracing *enabled*; with tracing off, no records
    arrive and every counter stays at zero. Besides per-kind windows, the
    collector keeps per-entity totals of applied Tunes and Triggers so
    experiments can answer "who actuated what, how often".
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Tracer,
        window: int = seconds(1),
        kinds: Iterable[str] = ACTUATION_TRACE_KINDS,
    ):
        self.sim = sim
        self.counters: dict[str, WindowedCounter] = {
            kind: WindowedCounter(sim, window=window) for kind in kinds
        }
        #: entity -> count of applied tunes / triggers (attribution table).
        self.tunes_by_entity: Counter[str] = Counter()
        self.triggers_by_entity: Counter[str] = Counter()
        tracer.subscribe(self._on_record, kinds=list(self.counters))

    def _on_record(self, record) -> None:
        self.counters[record.kind].record()
        entity = record.payload.get("entity")
        if entity is None:
            return
        if record.kind == "tune-applied":
            self.tunes_by_entity[entity] += 1
        elif record.kind == "trigger-applied":
            self.triggers_by_entity[entity] += 1

    def total(self, kind: str) -> int:
        """Cumulative count of one trace kind."""
        return self.counters[kind].total

    def totals(self) -> dict[str, int]:
        """Cumulative count per subscribed kind."""
        return {kind: counter.total for kind, counter in self.counters.items()}

    def rate_per_second(
        self, kind: str, start: Optional[int] = None, end: Optional[int] = None
    ) -> float:
        """Mean event rate of one kind over ``[start, end)``."""
        return self.counters[kind].rate_per_second(start=start, end=end)

    def series(self, kind: str) -> list[TimePoint]:
        """Per-window counts of one kind, ascending by time."""
        return self.counters[kind].series()

    def attribution(self) -> dict[str, dict[str, int]]:
        """Per-entity applied-actuation totals (tunes and triggers)."""
        entities = set(self.tunes_by_entity) | set(self.triggers_by_entity)
        return {
            entity: {
                "tunes": self.tunes_by_entity.get(entity, 0),
                "triggers": self.triggers_by_entity.get(entity, 0),
            }
            for entity in sorted(entities)
        }
