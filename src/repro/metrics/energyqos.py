"""Energy/QoS measurement: sliding-window latency percentiles and the
per-mode scoreboard of the energy/QoS co-optimization experiment.

The :class:`WindowedQosSource` is what closes the loop for the
coordinated governor: unlike :class:`~repro.metrics.response.
ResponseTimeRecorder` (whole-run summaries), it answers "what is this
VM's p95 *right now*", over a sliding window, so a policy reacting to it
sees the effect of its own actuations a window later — the real feedback
delay of a latency-driven controller.

The :class:`EnergyQosCollector` is policy-independent: it samples QoS
compliance on its own clock, so the DVFS-only and partition-only
ablations are scored by exactly the same observer as the coordinated
mode. Power and actuation inputs are duck-typed (``meter.energy_j`` /
``knobs.audit``) to keep :mod:`repro.metrics` free of upward imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import PeriodicTask, Simulator, seconds, to_ms
from .stats import percentile

#: Knob kinds the energy/QoS experiment attributes actuations to.
ENERGY_QOS_KNOB_KINDS = ("dvfs-level", "llc-ways", "bw-share", "prefetch-throttle")


class WindowedQosSource:
    """Sliding-window response-time percentiles, keyed by VM name."""

    def __init__(self, sim: Simulator, window: int = seconds(4)):
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.window = window
        self._samples: dict[str, list[tuple[int, int]]] = {}

    def record(self, key: str, latency: int) -> None:
        """Add one latency observation (clock ticks) for ``key``."""
        if latency < 0:
            raise ValueError(f"negative latency {latency} for {key!r}")
        self._samples.setdefault(key, []).append((self.sim.now, latency))

    def _window_values(self, key: str) -> list[int]:
        samples = self._samples.get(key)
        if not samples:
            return []
        horizon = self.sim.now - self.window
        # Samples arrive in time order; drop the expired prefix in place so
        # repeated reads stay O(window), not O(run).
        drop = 0
        while drop < len(samples) and samples[drop][0] < horizon:
            drop += 1
        if drop:
            del samples[:drop]
        return [latency for _when, latency in samples]

    def p95_ms(self, key: str) -> Optional[float]:
        """p95 of ``key``'s last window, in ms (None while empty)."""
        values = self._window_values(key)
        if not values:
            return None
        return to_ms(percentile(sorted(values), 95.0))

    def count(self, key: str) -> int:
        """Observations currently inside ``key``'s window."""
        return len(self._window_values(key))


@dataclass
class QosCheck:
    """One compliance sample of one VM."""

    time: int
    vm: str
    p95_ms: float
    target_ms: float

    @property
    def violated(self) -> bool:
        return self.p95_ms > self.target_ms


class EnergyQosCollector:
    """Scores one experiment arm: QoS violations, energy, actuations.

    Samples every managed VM's windowed p95 against its target once per
    ``period``; checks before ``measure_from`` (warm-up) are not counted.
    """

    def __init__(
        self,
        sim: Simulator,
        targets: dict[str, float],
        source: WindowedQosSource,
        period: int = seconds(1),
        measure_from: int = 0,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.targets = dict(targets)
        self.source = source
        self.period = period
        self.measure_from = measure_from
        self.checks: list[QosCheck] = []
        self.violations = 0
        self.violations_by_vm: dict[str, int] = {vm: 0 for vm in targets}
        self._task = PeriodicTask(sim, period, self._check_window, name="energyqos-collector")

    def _check_window(self) -> None:
        if self.sim.now < self.measure_from:
            return
        for vm, target_ms in self.targets.items():
            p95 = self.source.p95_ms(vm)
            if p95 is None:
                continue
            check = QosCheck(time=self.sim.now, vm=vm, p95_ms=p95, target_ms=target_ms)
            self.checks.append(check)
            if check.violated:
                self.violations += 1
                self.violations_by_vm[vm] += 1

    # -- scoring ------------------------------------------------------------

    def actuation_counts(self, knobs) -> dict[str, int]:
        """Non-zero Tunes per energy/QoS knob kind in ``knobs``' audit."""
        counts = {kind: 0 for kind in ENERGY_QOS_KNOB_KINDS}
        for record in knobs.audit:
            if record.op != "tune" or not record.requested_delta:
                continue
            if record.kind in counts:
                counts[record.kind] += 1
        return counts

    def summary(self, meter=None, knobs=None) -> dict:
        """The arm's scoreboard (energy/actuations when inputs given)."""
        out: dict = {
            "checks": len(self.checks),
            "violations": self.violations,
            "violations_by_vm": dict(self.violations_by_vm),
        }
        if meter is not None:
            out["energy_j"] = meter.energy_j()
        if knobs is not None:
            out["actuations"] = self.actuation_counts(knobs)
        return out
