"""The paper's platform-efficiency metric.

"a measure of the average request throughput (i.e., application
performance) over the mean CPU utilization (i.e., resource utilization),
since the use of only a system-level metric like CPU utilization does not
provide sufficient insight into how that utilization is translated into
better application performance" (§3.1).

With Table 2's numbers (throughput 68 req/s, efficiency 51.28) the implied
denominator is total CPU utilisation expressed in units of one fully busy
core (68 / 1.326 ~ 51.28), which is how we compute it.
"""

from __future__ import annotations


def platform_efficiency(throughput_per_s: float, total_cpu_percent: float) -> float:
    """Requests per second per fully-utilised core.

    ``total_cpu_percent`` sums all domains' utilisation, 100 = one core.
    """
    if total_cpu_percent <= 0:
        raise ValueError("total CPU utilisation must be positive")
    return throughput_per_s / (total_cpu_percent / 100.0)
