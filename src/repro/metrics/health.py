"""Health metrics: failure-detector and fault-injection trace sink.

The fault domain (``repro.faults``) publishes every heartbeat, peer-state
transition, epoch bump, injected fault and degraded-mode suppression as
trace records; this collector is the matching sink, turning a chaos run
into per-island state timelines and the robustness numbers the chaos
experiment reports (detection latency, fallback latency, time-to-recover).

Requires a tracer with tracing *enabled*. The chaos experiment itself runs
with tracing off for speed and reads ``FailureDetector.transitions``
directly; this collector is for interactive runs and trace tooling, where
the same timeline should appear alongside every other trace stream.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..faults.health import HEALTH_TRACE_KINDS, PEER_UP
from ..faults.injector import FAULT_TRACE_KINDS
from ..sim import Simulator, Tracer


class HealthCollector:
    """Counters, event log, and per-island peer-state timelines."""

    def __init__(self, sim: Simulator, tracer: Tracer):
        self.sim = sim
        #: kind -> cumulative count across every island.
        self.counts: Counter[str] = Counter()
        #: (time, kind, payload) for every non-heartbeat health event.
        #: Heartbeats are counted but not logged (they dominate by volume).
        self.events: list[tuple[int, str, dict]] = []
        #: island -> [(time, state)] peer-state transitions, ascending.
        self.state_timeline: dict[str, list[tuple[int, str]]] = {}
        kinds = list(HEALTH_TRACE_KINDS) + list(FAULT_TRACE_KINDS)
        tracer.subscribe(self._on_record, kinds=kinds)

    def _on_record(self, record) -> None:
        self.counts[record.kind] += 1
        if record.kind in ("heartbeat-sent", "heartbeat-received"):
            return
        self.events.append((record.time, record.kind, dict(record.payload)))
        if record.kind in ("peer-up", "peer-suspect", "peer-down"):
            island = record.payload.get("island", record.source)
            state = record.kind.removeprefix("peer-")
            self.state_timeline.setdefault(island, []).append((record.time, state))

    # -- derived robustness numbers -------------------------------------------

    def transitions(self, island: str) -> list[tuple[int, str]]:
        """Peer-state transitions observed *at* ``island``."""
        return list(self.state_timeline.get(island, ()))

    def first_event(self, kind: str, after: int = 0) -> Optional[tuple[int, dict]]:
        """Earliest logged event of ``kind`` at or after ``after``, or None."""
        for time, event_kind, payload in self.events:
            if event_kind == kind and time >= after:
                return time, payload
        return None

    def detection_latency(self, island: str, fault_start: int) -> Optional[int]:
        """Time from ``fault_start`` until ``island`` left the UP state."""
        for time, state in self.state_timeline.get(island, ()):
            if time >= fault_start and state != PEER_UP:
                return time - fault_start
        return None

    def recovery_latency(self, island: str, fault_end: int) -> Optional[int]:
        """Time from ``fault_end`` until ``island`` saw its peer UP again."""
        for time, state in self.state_timeline.get(island, ()):
            if time >= fault_end and state == PEER_UP:
                return time - fault_end
        return None

    def downtime(self, island: str, end: Optional[int] = None) -> int:
        """Total sim-time ``island``'s peer spent in the DOWN state."""
        horizon = self.sim.now if end is None else end
        total = 0
        down_since: Optional[int] = None
        for time, state in self.state_timeline.get(island, ()):
            if state == "down" and down_since is None:
                down_since = time
            elif state != "down" and down_since is not None:
                total += time - down_since
                down_since = None
        if down_since is not None:
            total += max(0, horizon - down_since)
        return total

    def totals(self) -> dict[str, int]:
        """Cumulative count per observed kind, sorted by kind."""
        return dict(sorted(self.counts.items()))
