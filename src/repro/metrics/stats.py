"""Summary statistics helpers (no numpy dependency in the core library)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def spread(self) -> float:
        """Max - min: the paper's min-max variability band."""
        return self.maximum - self.minimum


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sample."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (len(sorted_values) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(sorted_values[low])
    frac = rank - low
    interpolated = float(sorted_values[low]) * (1 - frac) + float(sorted_values[high]) * frac
    # Clamp against float round-off: a percentile can never leave the
    # interval spanned by its neighbours.
    return min(max(interpolated, float(sorted_values[low])), float(sorted_values[high]))


def summarize(values: Iterable[float]) -> Summary:
    """Full :class:`Summary` of a sample (population std)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    n = len(data)
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / n
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
    )


class OnlineStats:
    """Welford streaming mean/variance with min/max tracking."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Running mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 when fewer than two observations)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)
