"""Coordination-channel reliability metrics.

The reliable delivery layer (``repro.interconnect.reliable``) and the raw
mailbox publish their accounting as trace records; this collector is the
matching sink, turning those records into windowed time series so channel
health (retransmission storms, dead-letter spikes, coalescing pressure)
can be read off a run like any other throughput metric.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..sim import Simulator, Tracer, seconds
from .collector import TimePoint, WindowedCounter

#: Trace kinds emitted by the reliable layer (source ``"reliable"``).
RELIABLE_TRACE_KINDS = (
    "frame-sent",
    "frame-retransmit",
    "frame-acked",
    "frame-dup-dropped",
    "frame-dead-letter",
    "frame-coalesced",
)

#: Trace kind emitted by the raw lossy mailbox (source ``"channel"``).
RAW_DROP_KIND = "msg-dropped"

#: Everything the collector subscribes to by default.
CHANNEL_TRACE_KINDS = RELIABLE_TRACE_KINDS + (RAW_DROP_KIND,)


class ChannelReliabilityCollector:
    """Windowed counters over the channel-reliability trace kinds.

    Requires a tracer with tracing *enabled* (the testbed's ``tracing``
    config knob); with tracing off, no records arrive and every counter
    stays at zero.
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Tracer,
        window: int = seconds(1),
        kinds: Iterable[str] = CHANNEL_TRACE_KINDS,
    ):
        self.sim = sim
        self.counters: dict[str, WindowedCounter] = {
            kind: WindowedCounter(sim, window=window) for kind in kinds
        }
        tracer.subscribe(self._on_record, kinds=list(self.counters))

    def _on_record(self, record) -> None:
        self.counters[record.kind].record()

    def total(self, kind: str) -> int:
        """Cumulative count of one trace kind."""
        return self.counters[kind].total

    def totals(self) -> dict[str, int]:
        """Cumulative count per subscribed kind."""
        return {kind: counter.total for kind, counter in self.counters.items()}

    def rate_per_second(
        self, kind: str, start: Optional[int] = None, end: Optional[int] = None
    ) -> float:
        """Mean event rate of one kind over ``[start, end)``."""
        return self.counters[kind].rate_per_second(start=start, end=end)

    def series(self, kind: str) -> list[TimePoint]:
        """Per-window counts of one kind, ascending by time."""
        return self.counters[kind].series()
