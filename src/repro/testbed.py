"""The x86-IXP prototype testbed (paper Figure 3), assembled in one call.

A :class:`Testbed` wires together everything the paper's prototype had: the
Xen-managed x86 island, the IXP island, the PCIe DMA path with its host
message rings and Dom0 messaging driver, the Xen bridge, the coordination
channel with an agent on each side, and the global controller. Application
models then only need :meth:`create_guest_vm` and :meth:`add_client_host`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional

from .coordination import MESSAGE_HANDLING_COST, CoordinationAgent
from .faults import FailureDetector, FaultConfig, FaultInjector
from .interconnect import (
    DEFAULT_CHANNEL_LATENCY,
    CoordinationChannel,
    MessageRing,
    MessagingDriver,
    PCIeBus,
    ReliableChannel,
    ReliableConfig,
)
from .ixp import IXPIsland, IXPParams
from .net import DuplexLink, VirtualNIC, XenBridge
from .obs import ControlLoopCollector, SpanMinter
from .platform import EntityId, FabricTopology, GlobalController, build_directory
from .platform.mesh import CoordinationMesh
from .shard.config import ShardConfig
from .sim import RandomStreams, Simulator, Tracer, us
from .x86 import VirtualMachine, X86Island, X86Params


@dataclass(frozen=True, slots=True)
class ChannelConfig:
    """Shape of the PCI-config-space coordination channel.

    Grouped out of :class:`TestbedConfig` so channel experiments (latency
    sweeps, loss injection, the reliability ablation) vary one sub-config
    instead of a handful of flat knobs.
    """

    #: One-way delivery latency of the mailbox.
    latency: int = DEFAULT_CHANNEL_LATENCY
    #: Drop probability of the raw coordination mailbox (failure
    #: injection; the paper's prototype channel is unacknowledged).
    loss_probability: float = 0.0
    #: Wrap the mailbox in the reliable delivery layer (acks, retransmit
    #: with backoff, Tune coalescing). Off by default: the paper's figures
    #: are measured over the raw channel.
    reliable: bool = False
    #: Retry budget per frame when ``reliable`` is on; exhausted frames
    #: are dead-lettered, never raised.
    reliable_max_retries: int = 8
    #: Model the paper's §3.3 hardware-assisted coordination: fast on-chip
    #: signalling (1 us channel) delivered by hardware queues, with no
    #: Dom0 software handling cost per message. Overrides ``latency``.
    hardware: bool = False

    def __post_init__(self) -> None:
        # Validate at config construction so a bad experiment sweep fails
        # at the call site with the offending value, not deep inside
        # CoordinationChannel once the testbed is half-built.
        if self.latency < 0:
            raise ValueError(
                f"ChannelConfig.latency must be non-negative, got {self.latency}"
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                "ChannelConfig.loss_probability must be a probability in "
                f"[0, 1), got {self.loss_probability} (the testbed wires the "
                "loss RNG stream automatically when it is non-zero)"
            )
        if self.reliable_max_retries < 0:
            raise ValueError(
                "ChannelConfig.reliable_max_retries must be non-negative, "
                f"got {self.reliable_max_retries}"
            )

    @property
    def effective_latency(self) -> int:
        """The one-way latency the platform actually wires up."""
        return us(1) if self.hardware else self.latency


#: (legacy TestbedConfig field, ChannelConfig field) pairs the shim maps.
_LEGACY_CHANNEL_FIELDS = (
    ("channel_latency", "latency"),
    ("channel_loss_probability", "loss_probability"),
    ("reliable", "reliable"),
    ("reliable_max_retries", "reliable_max_retries"),
    ("hardware_coordination", "hardware"),
)

#: Warn-once latch for the flat-kwarg deprecation (reset in tests).
_legacy_channel_warned = False


@dataclass(frozen=True, slots=True)
class TestbedConfig:
    """Shape and timing of the whole platform — prototype *or* fabric.

    One config drives both testbed flavours through
    :func:`build_testbed`: with the default ``topology=None`` it shapes
    the two-island :class:`Testbed`; with a
    :class:`~repro.platform.FabricTopology` it shapes a K-island
    :class:`FabricTestbed` (``directory`` picks the control plane,
    :attr:`shard` the execution mode). Channel knobs live in
    :attr:`channel`; the flat fields at the bottom are a deprecated
    compatibility shim that maps onto it (and warns once).
    """

    seed: int = 1
    x86: X86Params = X86Params()
    ixp: IXPParams = IXPParams()
    #: The coordination-channel sub-config (latency, loss, reliability,
    #: hardware assistance).
    channel: ChannelConfig = ChannelConfig()
    #: IXP -> host interrupt moderation delay.
    interrupt_delay: int = us(50)
    #: Fraction of one Dom0 VCPU the polling messaging driver burns
    #: spinning on the rings (0 = pure interrupt mode, free).
    driver_poll_burn_duty: float = 0.0
    #: Wire link latency between client hosts and the IXP ports.
    wire_latency: int = us(100)
    #: Wire bandwidth in bytes/ns (default: 1 GbE).
    wire_bandwidth: float = 0.125
    #: Host message ring sizes, in descriptors.
    ring_capacity: int = 1024
    #: Enable structured tracing (off by default: it costs time). Also
    #: arms the control-loop observatory: the testbed attaches a
    #: :class:`~repro.obs.ControlLoopCollector` so causal spans are minted
    #: and assembled.
    tracing: bool = False
    #: Arm the fault domain: heartbeats + failure detectors on both
    #: agents, declared baselines for created VMs/flows, and the scripted
    #: :class:`~repro.faults.FaultPlan` injected at its simulation times.
    #: None (the default) constructs nothing — runs are bit-identical to
    #: an unarmed build.
    faults: Optional[FaultConfig] = None
    #: Build a K-island fabric instead of the two-island prototype.
    topology: Optional[FabricTopology] = None
    #: Directory flavour of a fabric build: ``"central"``,
    #: ``"hierarchical"`` or ``"gossip"`` (ignored without a topology).
    directory: str = "central"
    #: Sharded-execution knobs (shards, worker budget, window override);
    #: the default ``ShardConfig()`` is the classic single-process mode.
    shard: ShardConfig = ShardConfig()
    # -- deprecated flat channel knobs (use ``channel=ChannelConfig(...)``).
    # Non-None values are merged into ``channel`` by __post_init__, which
    # warns once per process; they normalise back to None afterwards so
    # equality, hashing and dataclasses.replace() see one canonical form.
    channel_latency: Optional[int] = None
    channel_loss_probability: Optional[float] = None
    reliable: Optional[bool] = None
    reliable_max_retries: Optional[int] = None
    hardware_coordination: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.shard.shards > 1 and self.topology is None:
            raise ValueError(
                "ShardConfig(shards>1) needs a fabric: pass topology=... "
                "(the two-island prototype has no cluster boundaries to cut)"
            )
        overrides = {
            new: getattr(self, old)
            for old, new in _LEGACY_CHANNEL_FIELDS
            if getattr(self, old) is not None
        }
        if not overrides:
            return
        global _legacy_channel_warned
        if not _legacy_channel_warned:
            _legacy_channel_warned = True
            warnings.warn(
                "flat TestbedConfig channel knobs (channel_latency, "
                "channel_loss_probability, reliable, reliable_max_retries, "
                "hardware_coordination) are deprecated; pass "
                "TestbedConfig(channel=ChannelConfig(...)) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        object.__setattr__(self, "channel", replace(self.channel, **overrides))
        for old, _new in _LEGACY_CHANNEL_FIELDS:
            object.__setattr__(self, old, None)


class ClientHost:
    """An external client machine: a NIC on the wire, no CPU model.

    The paper's clients ran on a separate dual-core box that was never the
    bottleneck, so client application logic executes untimed; only its
    traffic is real.
    """

    def __init__(self, sim: Simulator, name: str, nic: VirtualNIC):
        self.sim = sim
        self.name = name
        self.nic = nic

    def __repr__(self) -> str:
        return f"<ClientHost {self.name}>"


class Testbed:
    """The fully-wired two-island platform."""

    def __init__(self, config: Optional[TestbedConfig] = None):
        self.config = config or TestbedConfig()
        if self.config.topology is not None:
            raise ValueError(
                "this config declares a fabric topology; build it with "
                "build_testbed(config) (or FabricTestbed(config=config))"
            )
        self.sim = Simulator()
        self.rng = RandomStreams(self.config.seed)
        self.tracer = Tracer(self.sim, enabled=self.config.tracing)

        # Islands.
        self.x86 = X86Island(self.sim, self.config.x86, tracer=self.tracer)
        self.ixp = IXPIsland(self.sim, self.config.ixp, tracer=self.tracer)
        self.dom0 = self.x86.dom0

        # Host <-> IXP data path.
        self.pcie = PCIeBus(self.sim)
        self.rx_ring = MessageRing(self.sim, "ixp-to-host", capacity=self.config.ring_capacity)
        self.tx_ring = MessageRing(self.sim, "host-to-ixp", capacity=self.config.ring_capacity)
        self.driver = MessagingDriver(
            self.sim,
            self.dom0,
            self.rx_ring,
            self.tx_ring,
            interrupt_delay=self.config.interrupt_delay,
            poll_burn_duty=self.config.driver_poll_burn_duty,
            tracer=self.tracer,
        )
        self.bridge = XenBridge(self.sim, self.dom0, tracer=self.tracer)
        self.driver.connect_stack(self.bridge.submit)
        self.bridge.set_uplink(self.driver.transmit)
        self.ixp.attach_host(self.pcie, self.rx_ring, self.tx_ring)

        # Coordination channel + per-island agents.
        channel_config = self.config.channel
        loss = channel_config.loss_probability
        self.channel = CoordinationChannel(
            self.sim,
            latency=channel_config.effective_latency,
            loss_probability=loss,
            rng=self.rng.stream("channel-loss") if loss > 0 else None,
            tracer=self.tracer,
        )
        #: The reliable wrapper, when the experiment opted in; agents and
        #: the XScale then talk to its endpoints instead of the raw ones.
        self.reliable_channel: Optional[ReliableChannel] = None
        if channel_config.reliable:
            self.reliable_channel = ReliableChannel(
                self.channel,
                ReliableConfig(max_retries=channel_config.reliable_max_retries),
                tracer=self.tracer,
            )
            coord = self.reliable_channel
        else:
            coord = self.channel
        self.ixp.attach_channel(coord.endpoint("ixp"))
        self.ixp_agent = CoordinationAgent(
            self.sim, self.ixp, coord.endpoint("ixp"), tracer=self.tracer
        )
        self.x86_agent = CoordinationAgent(
            self.sim,
            self.x86,
            coord.endpoint("x86"),
            handler_vm=self.dom0,
            handling_cost=0 if channel_config.hardware else MESSAGE_HANDLING_COST,
            tracer=self.tracer,
        )

        # Global controller (a Dom0 function in the prototype, §2.3).
        self.controller = GlobalController(self.sim, tracer=self.tracer)
        self.controller.register_island(self.x86)
        self.controller.register_island(self.ixp)
        self.controller.register_channel("ixp-x86", coord)

        # The fault domain, when armed: a failure detector per agent
        # (heartbeats + miss thresholds + dead-letter feed) and the
        # scripted injector. With faults=None nothing below runs and the
        # platform is bit-identical to an unarmed build.
        self.detectors: dict[str, FailureDetector] = {}
        self.fault_injector: Optional[FaultInjector] = None
        if self.config.faults is not None:
            faults = self.config.faults
            self.detectors = {
                "ixp": FailureDetector(self.sim, self.ixp_agent, faults,
                                       tracer=self.tracer),
                "x86": FailureDetector(self.sim, self.x86_agent, faults,
                                       tracer=self.tracer),
            }
            for name, detector in self.detectors.items():
                self.controller.register_health(name, detector)
            self.fault_injector = FaultInjector(
                self.sim,
                faults.plan,
                channel=self.channel,
                agents={"ixp": self.ixp_agent, "x86": self.x86_agent},
                islands={"ixp": self.ixp, "x86": self.x86},
                tracer=self.tracer,
            )
            self.fault_injector.arm()

        # The control-loop observatory: constructing the collector is what
        # arms span minting platform-wide (the producers' Tracer.wants
        # gates open); with tracing off nothing is built and every span
        # guard stays a memoized False.
        self.observatory: Optional[ControlLoopCollector] = None
        if self.config.tracing:
            self.observatory = ControlLoopCollector(self.sim, self.tracer)
            self.controller.attach_observatory(self.observatory)
        #: The platform-wide span minter (shared with every policy).
        self.span_minter = SpanMinter.shared(self.tracer)

        self._clients: dict[str, ClientHost] = {}

    # -- deployment -----------------------------------------------------------

    def create_guest_vm(
        self,
        name: str,
        weight: Optional[int] = None,
        uses_ixp: bool = True,
        nic_rx_capacity: int = 2048,
    ) -> tuple[VirtualMachine, VirtualNIC]:
        """Boot a guest domain with a bridged NIC; optionally give it an
        IXP flow queue (VMs whose traffic transits the IXP).

        ``nic_rx_capacity`` is the netfront ring depth in packets; a slow
        guest overflows it and loses packets, like the real I/O path.
        """
        vm = self.x86.create_vm(name, weight=weight)
        nic = VirtualNIC(self.sim, name, rx_capacity=nic_rx_capacity)
        self.bridge.add_port(name, nic)
        queue = self.ixp.register_vm_flow(name) if uses_ixp else None
        if self.detectors:
            # Fault domain armed: the VM's boot-time knob values are its
            # declared local baselines — what each side falls back to on
            # peer-DOWN and the reference replayed deltas apply against.
            self.x86_agent.declare_baseline(EntityId(self.x86.name, name), vm.weight)
            if queue is not None:
                self.ixp_agent.declare_baseline(
                    EntityId(self.ixp.name, name), queue.service_weight
                )
        return vm, nic

    def add_client_host(self, name: str) -> ClientHost:
        """Attach an external client machine to the IXP's wire ports."""
        if name in self._clients:
            raise ValueError(f"client host {name!r} already attached")
        nic = VirtualNIC(self.sim, name)
        uplink = DuplexLink(
            self.sim,
            f"wire-{name}",
            bandwidth_bytes_per_ns=self.config.wire_bandwidth,
            latency=self.config.wire_latency,
            tracer=self.tracer,
        )
        # client -> IXP
        nic.attach_egress(uplink.forward.send)
        uplink.forward.connect(self.ixp.wire_sink())
        # IXP -> client
        uplink.backward.connect(nic.deliver)
        self.ixp.connect_peer(name, uplink.backward)
        client = ClientHost(self.sim, name, nic)
        self._clients[name] = client
        return client

    def vm_entity(self, vm_name: str) -> EntityId:
        """The coordination identity of a guest VM on the x86 island."""
        return EntityId(self.x86.name, vm_name)

    # -- convenience ---------------------------------------------------------------

    def run(self, until: int) -> None:
        """Advance the whole platform to time ``until``."""
        self.sim.run(until=until)


#: Warn-once latch for the flat FabricTestbed signature (reset in tests).
_legacy_fabric_warned = False


class FabricTestbed:
    """A K-island platform built from a declarative fabric spec.

    Where :class:`Testbed` hand-wires the paper's two-island prototype,
    a ``FabricTestbed`` consumes a :class:`~repro.platform.FabricTopology`:
    one x86 island per declared name, a :class:`~repro.platform.mesh.
    CoordinationMesh` carrying the spec's links at their declared
    latencies, and a :class:`~repro.platform.directory.Directory` of the
    requested flavour (``"central"``, ``"hierarchical"`` or ``"gossip"``)
    registered over all of it. Every mesh agent resolves remote entities
    through the directory, so changing the control plane's shape is a
    one-argument change here.

    Canonical construction is config-driven —
    ``FabricTestbed(config=TestbedConfig(topology=..., directory=...))``
    or simply :func:`build_testbed` — so fabric runs are shaped by the
    same :class:`TestbedConfig` as prototype runs. The old flat
    signature ``FabricTestbed(topology, directory, seed=..., ...)``
    still works through a deprecation shim that warns once per process.
    """

    def __init__(
        self,
        topology: Optional[FabricTopology] = None,
        directory: Optional[str] = None,
        *,
        seed: Optional[int] = None,
        x86: Optional[X86Params] = None,
        tracing: Optional[bool] = None,
        faults: Optional[FaultConfig] = None,
        config: Optional[TestbedConfig] = None,
    ):
        flat = {
            "topology": topology, "directory": directory, "seed": seed,
            "x86": x86, "tracing": tracing, "faults": faults,
        }
        given = {name: value for name, value in flat.items() if value is not None}
        if config is not None:
            if given:
                raise ValueError(
                    "pass either config=TestbedConfig(...) or the flat "
                    f"arguments, not both (got {sorted(given)} alongside config)"
                )
            if config.topology is None:
                raise ValueError("FabricTestbed needs TestbedConfig(topology=...)")
        else:
            if topology is None:
                raise ValueError(
                    "FabricTestbed needs a topology: pass "
                    "config=TestbedConfig(topology=...)"
                )
            global _legacy_fabric_warned
            if not _legacy_fabric_warned:
                _legacy_fabric_warned = True
                warnings.warn(
                    "the flat FabricTestbed(topology, directory, ...) "
                    "signature is deprecated; pass config="
                    "TestbedConfig(topology=..., directory=..., ...) or use "
                    "build_testbed()",
                    DeprecationWarning,
                    stacklevel=2,
                )
            config = TestbedConfig(
                topology=topology,
                directory=directory if directory is not None else "central",
                seed=seed if seed is not None else 1,
                x86=x86 if x86 is not None else X86Params(),
                tracing=bool(tracing),
                faults=faults,
            )
        self.config = config
        topology = config.topology
        self.topology = topology
        self.directory_kind = config.directory
        seed = config.seed
        self.sim = Simulator()
        self.rng = RandomStreams(seed)
        self.tracer = Tracer(self.sim, enabled=config.tracing)
        params = config.x86

        #: name -> island, in topology order.
        self.islands: dict[str, X86Island] = {}
        self.mesh = CoordinationMesh(
            self.sim, latency=topology.link_latency, tracer=self.tracer
        )
        for name in topology.islands:
            island = X86Island(self.sim, params, name=name, tracer=self.tracer)
            self.islands[name] = island
            self.mesh.add_island(island, handler_vm=island.dom0)
        self.mesh.apply_topology(topology)

        #: The pluggable control plane.
        self.directory = build_directory(
            config.directory, self.sim, topology=topology,
            tracer=self.tracer, seed=seed,
        )
        for island in self.islands.values():
            self.directory.register_island(island)
        for name_a, name_b, _latency in topology.links():
            self.directory.register_channel(
                f"{name_a}<->{name_b}", self.mesh.channel(name_a, name_b)
            )
        self.mesh.attach_directory(self.directory)

        if config.faults is not None:
            self.mesh.arm_fault_domain(config.faults)
            for (frm, to), detector in sorted(self.mesh._detectors.items()):
                self.directory.register_health(f"{frm}->{to}", detector)

    def island(self, name: str) -> X86Island:
        """The island built for topology name ``name``."""
        return self.islands[name]

    def agent(self, from_island: str, to_island: str) -> CoordinationAgent:
        """The mesh agent at ``from_island`` toward ``to_island``."""
        return self.mesh.agent(from_island, to_island)

    def run(self, until: int) -> None:
        """Advance the whole fabric to time ``until``."""
        self.sim.run(until=until)

    def __repr__(self) -> str:
        return (
            f"<FabricTestbed islands={len(self.islands)} "
            f"directory={self.directory_kind!r}>"
        )


def build_testbed(config: Optional[TestbedConfig] = None):
    """The unified entry point: one config, the right platform.

    Returns a :class:`FabricTestbed` when ``config.topology`` declares a
    fabric, otherwise the classic two-island :class:`Testbed`. Every
    experiment and tool that builds a platform from a
    :class:`TestbedConfig` should come through here, so adding a fabric
    (or shards) to a run is a config edit, not a call-site rewrite.
    """
    config = config or TestbedConfig()
    if config.topology is not None:
        return FabricTestbed(config=config)
    return Testbed(config)
