"""Extension experiment: coordination-mechanism scalability (paper §5).

"Also ongoing are evaluations of the scalability of such mechanisms to
large-scale multicore platforms, part of which involve the use of
distributed coordination algorithms across multiple island resource
managers."

K x86 islands ("cells") each run a latency-sensitive probe VM and a CPU
hog whose heavy phases rotate across cells. Three arms per K:

* ``none``        — no coordination: probes suffer during their cell's
                    hot phase;
* ``centralized`` — a star mesh: every cell streams load reports to the
                    hub's Dom0, which Tunes remote probe weights. All
                    coordination messages concentrate at the hub (O(K));
* ``distributed`` — each cell's manager tunes locally and only exchanges
                    heartbeats with its two ring neighbours (O(1) per
                    cell, no concentration point).

Both coordinated arms should deliver comparable QoS; what scales
differently is where the messages land.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import OnlineStats
from ..platform import EntityId
from ..platform.mesh import CoordinationMesh
from ..sim import RandomStreams, Simulator, ms, seconds, us
from ..x86 import X86Island, X86Params
from .report import render_table

ARMS = ("none", "centralized", "distributed")

#: Probe service: a latency-sensitive 15 ms task every 20 ms (75% of a
#: core, like a media decoder) — heavy enough that an equal-weight cell
#: under hog pressure pushes it into the OVER band, where it suffers.
PROBE_PERIOD = ms(20)
PROBE_DEMAND = ms(15)
LATENCY_HIGH = ms(3)
LATENCY_LOW = ms(1.5)
POLICY_PERIOD = ms(250)
HOT_PHASE = seconds(2)


@dataclass(frozen=True, slots=True)
class LoadReportMessage:
    """Cell -> coordinator (or neighbour) load telemetry."""

    island: str
    probe_latency_ns: float


@dataclass
class CellHandles:
    """One cell's components."""

    island: X86Island
    probe_vm: object
    recent: OnlineStats
    overall: OnlineStats


@dataclass
class ScalabilityArmResult:
    """One (arm, K) measurement."""

    arm: str
    num_cells: int
    mean_probe_latency_ms: float
    worst_cell_latency_ms: float
    hub_messages: int
    max_cell_messages: int
    total_messages: int


def _build_cells(sim: Simulator, count: int) -> list[CellHandles]:
    rng = RandomStreams(17)
    cells = []
    for index in range(count):
        island = X86Island(sim, X86Params(num_cpus=2), name=f"cell-{index}")
        probe_vm = island.create_vm("probe")
        # Two hog domains: during a hot phase they demand both cores, so
        # an equal-weight probe's credit inflow (1/3 of the pool) drops
        # below its 75% burn and it falls into the OVER band.
        hog_vms = [island.create_vm(f"hog-{h}") for h in range(2)]
        cell = CellHandles(island, probe_vm, OnlineStats(), OnlineStats())

        def probe_loop(sim, vm=probe_vm, cell=cell,
                       jitter=rng.stream(f"probe-{index}")):
            yield sim.timeout(jitter.randrange(0, PROBE_PERIOD))
            while True:
                start = sim.now
                yield vm.execute(PROBE_DEMAND, "user")
                latency = sim.now - start - PROBE_DEMAND
                cell.recent.add(latency)
                cell.overall.add(latency)
                yield sim.timeout(PROBE_PERIOD)

        def hog_loop(sim, vm, phase_index=index, total=count):
            cycle = HOT_PHASE * total
            while True:
                position = sim.now % cycle
                hot_start = phase_index * HOT_PHASE
                if hot_start <= position < hot_start + HOT_PHASE:
                    yield vm.execute(ms(5), "user")
                else:
                    yield sim.timeout(ms(5))

        sim.spawn(probe_loop(sim), name=f"probe-{index}")
        for hog_vm in hog_vms:
            sim.spawn(hog_loop(sim, hog_vm), name=f"hog-{index}")
        cells.append(cell)
    return cells


def _reset_recent(cell: CellHandles) -> float:
    mean = cell.recent.mean if cell.recent.count else 0.0
    cell.recent = OnlineStats()
    return mean


def _probe_entity(cell: CellHandles) -> EntityId:
    return EntityId(cell.island.name, "probe")


def run_scalability_arm(arm: str, num_cells: int, duration: int = seconds(12)) -> ScalabilityArmResult:
    """Run one arm at one cell count."""
    if arm not in ARMS:
        raise ValueError(f"unknown arm {arm!r}")
    sim = Simulator()
    cells = _build_cells(sim, num_cells)
    by_name = {cell.island.name: cell for cell in cells}
    mesh = CoordinationMesh(sim, latency=us(150))
    for cell in cells:
        mesh.add_island(cell.island, handler_vm=cell.island.dom0)

    heartbeat_counts = {cell.island.name: 0 for cell in cells}

    if arm == "centralized":
        hub = cells[0].island.name
        mesh.connect_star(hub)

        def on_report(message: LoadReportMessage) -> None:
            heartbeat_counts[hub] += 1
            cell = by_name[message.island]
            if message.probe_latency_ns > LATENCY_HIGH:
                mesh.agent(hub, message.island).send_tune(_probe_entity(cell), +128)
            elif message.probe_latency_ns < LATENCY_LOW and cell.probe_vm.weight > 256:
                mesh.agent(hub, message.island).send_tune(_probe_entity(cell), -128)

        for name in mesh.neighbors(hub):
            mesh.agent(hub, name).register_message_handler(LoadReportMessage, on_report)

        def reporter(sim, cell):
            while True:
                yield sim.timeout(POLICY_PERIOD)
                mean = _reset_recent(cell)
                mesh.agent(cell.island.name, hub).endpoint.send(
                    LoadReportMessage(island=cell.island.name, probe_latency_ns=mean)
                )

        for cell in cells[1:] + cells[:1]:
            if cell.island.name != hub:
                sim.spawn(reporter(sim, cell), name=f"report-{cell.island.name}")

    elif arm == "distributed":
        mesh.connect_ring()

        def on_heartbeat(message: LoadReportMessage, receiver: str) -> None:
            heartbeat_counts[receiver] += 1

        for cell in cells:
            name = cell.island.name
            for neighbor in mesh.neighbors(name):
                mesh.agent(name, neighbor).register_message_handler(
                    LoadReportMessage, lambda m, receiver=name: on_heartbeat(m, receiver)
                )

        def local_controller(sim, cell):
            name = cell.island.name
            while True:
                yield sim.timeout(POLICY_PERIOD)
                mean = _reset_recent(cell)
                # Local decision: the cell's own manager tunes itself.
                if mean > LATENCY_HIGH:
                    cell.island.apply_tune(_probe_entity(cell), +128)
                elif mean < LATENCY_LOW and cell.probe_vm.weight > 256:
                    cell.island.apply_tune(_probe_entity(cell), -128)
                # Gossip a heartbeat to ring neighbours only.
                for neighbor in mesh.neighbors(name):
                    mesh.agent(name, neighbor).endpoint.send(
                        LoadReportMessage(island=name, probe_latency_ns=mean)
                    )

        for cell in cells:
            sim.spawn(local_controller(sim, cell), name=f"ctrl-{cell.island.name}")

    sim.run(until=duration)

    latencies = [cell.overall.mean / 1e6 for cell in cells]
    per_cell_messages = {
        name: heartbeat_counts[name] + mesh.messages_handled_at(name)
        for name in by_name
    }
    hub_messages = per_cell_messages.get(cells[0].island.name, 0) if arm != "none" else 0
    return ScalabilityArmResult(
        arm=arm,
        num_cells=num_cells,
        mean_probe_latency_ms=sum(latencies) / len(latencies),
        worst_cell_latency_ms=max(latencies),
        hub_messages=hub_messages,
        max_cell_messages=max(per_cell_messages.values()) if arm != "none" else 0,
        total_messages=sum(per_cell_messages.values()),
    )


def run_scalability(cell_counts=(2, 4, 8)) -> dict[tuple[str, int], ScalabilityArmResult]:
    """The full arm x K sweep."""
    results = {}
    for count in cell_counts:
        for arm in ARMS:
            results[(arm, count)] = run_scalability_arm(arm, count)
    return results


def render_scalability(results: dict[tuple[str, int], ScalabilityArmResult]) -> str:
    """Tabulate QoS and message concentration per arm and K."""
    rows = []
    for (arm, count), result in sorted(results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        rows.append(
            (
                str(count),
                arm,
                f"{result.mean_probe_latency_ms:.2f}",
                f"{result.worst_cell_latency_ms:.2f}",
                str(result.hub_messages),
                str(result.max_cell_messages),
            )
        )
    return render_table(
        ["Cells", "Arm", "Mean probe lat (ms)", "Worst cell (ms)",
         "Hub msgs", "Max per-cell msgs"],
        rows,
        title="Extension: coordination scalability across islands",
    )
