"""The experiment registry: one declarative table of runnable artefacts.

The CLI (``python -m repro``) used to hard-code a ``cmd_*`` if-chain; new
experiments had to edit the parser, the dispatch table and the ``list``
output separately. Now an experiment registers itself once::

    @experiment("rubis", help="Tables 1-2, Figures 2/4/5",
                artefacts=("figure2", "figure4", "table1", "table2", "figure5"))
    def cmd_rubis(args): ...

and ``list``, ``all`` and command dispatch all derive from the registry.
Registration is idempotent per name (latest wins), so module reloads and
test re-imports never raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: An experiment entry point: receives the parsed CLI namespace.
ExperimentRunner = Callable[[Any], None]


@dataclass(frozen=True, slots=True)
class Experiment:
    """One registered, CLI-runnable experiment."""

    name: str
    run: ExperimentRunner
    help: str = ""
    #: Paper artefacts (tables/figures) the run prints or writes.
    artefacts: tuple[str, ...] = ()
    #: Whether ``python -m repro all`` includes this experiment. Side-
    #: effectful or diagnostic commands (e.g. ``trace``) opt out.
    in_all: bool = True


#: name -> Experiment, in registration order.
_REGISTRY: dict[str, Experiment] = {}


def register(exp: Experiment) -> Experiment:
    """Admit ``exp``; re-registering a name replaces the old entry."""
    _REGISTRY[exp.name] = exp
    return exp


def experiment(
    name: str,
    help: str = "",
    artefacts: tuple[str, ...] = (),
    in_all: bool = True,
) -> Callable[[ExperimentRunner], ExperimentRunner]:
    """Decorator form of :func:`register` (see module docstring)."""

    def decorate(fn: ExperimentRunner) -> ExperimentRunner:
        doc = (fn.__doc__ or "").strip().splitlines()
        register(Experiment(
            name=name,
            run=fn,
            help=help or (doc[0] if doc else ""),
            artefacts=tuple(artefacts),
            in_all=in_all,
        ))
        return fn

    return decorate


def get(name: str) -> Experiment:
    """The experiment registered under ``name``; KeyError if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no experiment {name!r}; registered: {', '.join(_REGISTRY) or '(none)'}"
        ) from None


def names() -> list[str]:
    """Registered experiment names, in registration order."""
    return list(_REGISTRY)


def all_experiments() -> list[Experiment]:
    """Every registered experiment, in registration order."""
    return list(_REGISTRY.values())
