"""ASCII rendering of experiment results (the paper's tables and figures).

Everything renders to plain strings so experiment drivers, examples and
benchmarks can print identical artefacts.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with a rule under the header."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_bars(
    items: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
    title: str = "",
    maximum: Optional[float] = None,
) -> str:
    """Horizontal bar chart; one bar per (label, value)."""
    if not items:
        return title
    peak = maximum if maximum is not None else max(v for _, v in items)
    peak = max(peak, 1e-12)
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.1f}{unit}")
    return "\n".join(lines)


def render_minmax(
    items: Sequence[tuple[str, float, float]],
    width: int = 60,
    unit: str = "ms",
    title: str = "",
) -> str:
    """Min-max range chart (the paper's Figures 2 and 4).

    Each row draws ``[min .. max]`` as a positioned span.
    """
    if not items:
        return title
    peak = max(high for _, _, high in items)
    peak = max(peak, 1e-12)
    label_width = max(len(label) for label, _, _ in items)
    lines = [title] if title else []
    for label, low, high in items:
        start = round(width * low / peak)
        end = max(start + 1, round(width * high / peak))
        span = " " * start + "|" + "=" * (end - start - 1) + "|"
        lines.append(
            f"{label.ljust(label_width)} {span.ljust(width + 2)} "
            f"min={low:.0f}{unit} max={high:.0f}{unit}"
        )
    return "\n".join(lines)


def render_series(
    points: Sequence[tuple[float, float]],
    height: int = 12,
    width: int = 72,
    title: str = "",
    y_label: str = "",
) -> str:
    """Down-sampled ASCII line plot of a (time, value) series."""
    if not points:
        return title
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    # Resample to the plot width.
    step = max(1, len(points) // width)
    sampled = [points[i] for i in range(0, len(points), step)][:width]
    grid = [[" "] * len(sampled) for _ in range(height)]
    for x, (_, value) in enumerate(sampled):
        y = round((value - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = [title] if title else []
    lines.append(f"{hi:10.1f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:10.1f} +" + "".join(grid[-1]))
    if y_label:
        lines.append(" " * 12 + y_label)
    return "\n".join(lines)


def percent_change(before: float, after: float) -> float:
    """Relative change in percent (positive = increase)."""
    if before == 0:
        raise ValueError("cannot compute percent change from zero")
    return (after - before) / before * 100.0
