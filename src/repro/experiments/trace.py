"""Traced control-loop capture: one observed run, exported for Chrome.

Runs a short coordinated RUBiS arm with ``tracing=True`` — which arms the
testbed's :class:`~repro.obs.ControlLoopCollector` — and exports every
completed decision loop as Chrome-trace JSON (``chrome://tracing`` /
Perfetto), alongside a textual per-stage latency breakdown. This is the
observability counterpart of the paper's §3.1 experiment: the same
classified-packet -> Tune -> credit-weight loops, but rendered as spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..apps.rubis import RubisConfig, deploy_rubis
from ..metrics import Summary
from ..obs import export_chrome_trace
from ..sim import ms, seconds
from .report import render_table

#: Measured duration of the traced arm (after warmup) — short: the point
#: is a representative trace, not a statistics-grade run.
DEFAULT_TRACE_DURATION = seconds(12)


@dataclass
class TraceRunResult:
    """Everything a traced capture produced."""

    destination: str
    events_written: int
    loops_completed: int
    loops_coalesced: int
    spans_minted: int
    #: Fraction of applied coordination messages a decision span explains.
    link_fraction: float
    #: The controller's control-loop introspection blob.
    report: dict[str, Any] = field(default_factory=dict)


def run_traced_rubis(
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 1,
    destination: str = "trace.json",
    config: Optional[RubisConfig] = None,
) -> TraceRunResult:
    """Run one coordinated RUBiS arm with causal tracing on and export
    its control loops as Chrome-trace JSON at ``destination``."""
    base = config or RubisConfig(
        num_sessions=40,
        requests_per_session=10,
        think_time_mean=ms(300),
        warmup=seconds(4),
    )
    run_config = replace(
        base,
        coordinated=True,
        testbed=replace(base.testbed, seed=seed, tracing=True),
    )
    deployment = deploy_rubis(run_config)
    deployment.run(run_config.warmup + duration)

    testbed = deployment.testbed
    collector = testbed.observatory
    assert collector is not None  # tracing=True wired it
    events = export_chrome_trace(
        collector.records,
        destination,
        metadata={"experiment": "rubis", "seed": seed, "duration_ns": duration},
    )
    agent = testbed.x86_agent
    applied = agent.tunes_applied + agent.triggers_applied
    stats = collector.stats()
    return TraceRunResult(
        destination=destination,
        events_written=events,
        loops_completed=stats.applied,
        loops_coalesced=stats.coalesced_applied,
        spans_minted=stats.minted,
        link_fraction=collector.link_fraction(applied),
        report=testbed.controller.control_loops(),
    )


def _ms(ns: float) -> str:
    return f"{ns / 1e6:.3f}"


def render_control_loops(result: TraceRunResult) -> str:
    """Per-reason stage-latency table of a traced capture (milliseconds)."""
    rows = []
    for reason, stages in sorted(result.report.get("by_reason", {}).items()):
        total: Summary = stages["total"]
        rows.append((
            reason,
            str(total.count),
            *(_ms(stages[name].mean) for name in
              ("classify-send", "ring", "wire", "handle", "apply")),
            _ms(total.p50),
            _ms(total.p95),
        ))
    table = render_table(
        ["reason", "loops", "classify-send", "ring", "wire", "handle",
         "apply", "total p50", "total p95"],
        rows,
        title="Control-loop latency breakdown (mean per stage, ms)",
    )
    footer = (
        f"{result.loops_completed} loops ({result.loops_coalesced} coalesced) "
        f"from {result.spans_minted} decisions; "
        f"{result.link_fraction:.1%} of applied messages span-linked; "
        f"{result.events_written} Chrome events -> {result.destination}"
    )
    return f"{table}\n{footer}"
