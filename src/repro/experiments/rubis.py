"""RUBiS experiment drivers: Figures 2, 4, 5 and Tables 1, 2.

One paired run (baseline vs ``coord-ixp-dom0``) produces everything the
paper's §3.1 reports; each artefact then renders from the same
:class:`RubisPairResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..apps.rubis import REQUEST_TYPES, RubisConfig, deploy_rubis
from ..apps.rubis.setup import APP_VM, DB_VM, WEB_VM
from ..metrics import Summary, platform_efficiency
from ..sim import seconds
from ..x86.island import DOM0_NAME
from .report import percent_change, render_bars, render_minmax, render_table
from .runner import Job, run_jobs

#: Default measured duration of one arm (after its internal warmup).
DEFAULT_DURATION = seconds(80)


@dataclass
class RubisRunResult:
    """Everything measured from one RUBiS run."""

    coordinated: bool
    per_type: dict[str, Summary]
    overall: Summary
    throughput: float
    sessions_completed: int
    mean_session_time_s: float
    utilization: dict[str, float]
    iowait: dict[str, float] = field(default_factory=dict)
    tunes_applied: int = 0
    #: Reliability counters of the IXP-side (sending) endpoint; empty when
    #: the run used the raw, unacknowledged mailbox.
    channel_stats: dict[str, int] = field(default_factory=dict)

    @property
    def total_utilization(self) -> float:
        """Sum of all domains' CPU percent (100 = one core)."""
        return sum(self.utilization.values())

    @property
    def efficiency(self) -> float:
        """The paper's platform-efficiency metric."""
        return platform_efficiency(self.throughput, self.total_utilization)


@dataclass
class RubisPairResult:
    """Baseline and coordinated runs over the same workload seed."""

    base: RubisRunResult
    coord: RubisRunResult

    def common_types(self) -> list[str]:
        """Request types observed in both runs, in catalogue order."""
        return [
            rt.name
            for rt in REQUEST_TYPES
            if rt.name in self.base.per_type and rt.name in self.coord.per_type
        ]


def run_rubis(
    coordinated: bool,
    duration: int = DEFAULT_DURATION,
    seed: int = 1,
    config: Optional[RubisConfig] = None,
    reliable: Optional[bool] = None,
    fastpath: bool = True,
) -> RubisRunResult:
    """Run one RUBiS arm and collect its metrics.

    ``reliable`` opts the coordination channel into the ack/retransmit
    layer (overriding the testbed config); None keeps whatever the config
    says — the paper's figures use the raw mailbox. ``fastpath=False``
    routes every integer yield through the allocating Timeout path — a
    determinism-audit knob (the metrics must not change), not a feature.
    """
    base_config = config or RubisConfig()
    testbed_config = replace(base_config.testbed, seed=seed)
    if reliable is not None:
        testbed_config = replace(
            testbed_config,
            channel=replace(testbed_config.channel, reliable=reliable),
        )
    run_config = replace(
        base_config,
        coordinated=coordinated,
        testbed=testbed_config,
    )
    deployment = deploy_rubis(run_config)
    deployment.sim._fastpath = fastpath
    deployment.run(run_config.warmup + duration)

    stats = deployment.client.stats
    skip = max(1, run_config.warmup // run_config.cpu_sample_window)
    vms = [DOM0_NAME, WEB_VM, APP_VM, DB_VM]
    utilization = {vm: deployment.cpu_sampler.mean_total(vm, skip_first=skip) for vm in vms}
    iowait = {}
    for vm in vms:
        samples = deployment.cpu_sampler.series(vm)[skip:]
        iowait[vm] = sum(s.iowait for s in samples) / len(samples) if samples else 0.0

    return RubisRunResult(
        coordinated=coordinated,
        per_type=stats.responses.table_ms(),
        overall=stats.responses.overall_summary_ms(),
        throughput=stats.throughput.rate_per_second(),
        sessions_completed=stats.sessions_completed,
        mean_session_time_s=stats.mean_session_time_s(),
        utilization=utilization,
        iowait=iowait,
        tunes_applied=deployment.testbed.x86_agent.tunes_applied,
        channel_stats=deployment.testbed.ixp_agent.channel_stats(),
    )


def run_rubis_pair(
    duration: int = DEFAULT_DURATION,
    seed: int = 1,
    config: Optional[RubisConfig] = None,
    parallel: bool = True,
    fastpath: bool = True,
) -> RubisPairResult:
    """Run both arms on the same seed, side by side on a multicore host.

    The arms are independent simulators, so the pair fans out through
    :mod:`repro.experiments.runner`; ``parallel=False`` forces the serial
    path (the results are identical either way).
    """
    shared = dict(duration=duration, seed=seed, config=config, fastpath=fastpath)
    base, coord = run_jobs(
        [
            Job(run_rubis, kwargs=dict(coordinated=False, **shared), label="rubis:base"),
            Job(run_rubis, kwargs=dict(coordinated=True, **shared), label="rubis:coord"),
        ],
        max_workers=None if parallel else 1,
    )
    return RubisPairResult(base=base, coord=coord)


# -- artefact renderers ---------------------------------------------------


def render_figure2(pair: RubisPairResult) -> str:
    """Figure 2: baseline min-max response-time variability."""
    items = [
        (name, pair.base.per_type[name].minimum, pair.base.per_type[name].maximum)
        for name in pair.common_types()
    ]
    return render_minmax(
        items, title="Figure 2: RUBiS min-max response latencies (no coordination)"
    )


def render_figure4(pair: RubisPairResult) -> str:
    """Figure 4: min-max with and without coordination."""
    lines = [
        "Figure 4: RUBiS min-max response times (base vs coord-ixp-dom0)",
        render_table(
            ["Request type", "base min", "coord min", "base max", "coord max",
             "base std", "coord std"],
            [
                (
                    name,
                    f"{pair.base.per_type[name].minimum:.1f}",
                    f"{pair.coord.per_type[name].minimum:.1f}",
                    f"{pair.base.per_type[name].maximum:.0f}",
                    f"{pair.coord.per_type[name].maximum:.0f}",
                    f"{pair.base.per_type[name].std:.0f}",
                    f"{pair.coord.per_type[name].std:.0f}",
                )
                for name in pair.common_types()
            ],
        ),
    ]
    return "\n".join(lines)


def render_table1(pair: RubisPairResult) -> str:
    """Table 1: average request response times."""
    return render_table(
        ["Request Type", "Base(ms)", "coord-ixp-dom0(ms)", "change"],
        [
            (
                name,
                f"{pair.base.per_type[name].mean:.0f}",
                f"{pair.coord.per_type[name].mean:.0f}",
                f"{percent_change(pair.base.per_type[name].mean, pair.coord.per_type[name].mean):+.0f}%",
            )
            for name in pair.common_types()
        ],
        title="Table 1: RUBiS - Average Request Response Times",
    )


def render_table2(pair: RubisPairResult) -> str:
    """Table 2: throughput, sessions, session time, platform efficiency."""
    rows = [
        ("Throughput (req/s)", f"{pair.base.throughput:.0f}", f"{pair.coord.throughput:.0f}"),
        (
            "Sessions completed",
            str(pair.base.sessions_completed),
            str(pair.coord.sessions_completed),
        ),
        (
            "Avg session time (s)",
            f"{pair.base.mean_session_time_s:.0f}",
            f"{pair.coord.mean_session_time_s:.0f}",
        ),
        (
            "Platform efficiency",
            f"{pair.base.efficiency:.2f}",
            f"{pair.coord.efficiency:.2f}",
        ),
    ]
    return render_table(
        ["Metric", "Base", "coord-ixp-dom0"], rows, title="Table 2: RUBiS - Throughput Results"
    )


def render_figure5(pair: RubisPairResult) -> str:
    """Figure 5: per-tier CPU utilisation."""
    items = []
    for vm in (WEB_VM, APP_VM, DB_VM):
        items.append((f"{vm} (base)", pair.base.utilization[vm]))
        items.append((f"{vm} (coord)", pair.coord.utilization[vm]))
    return render_bars(
        items, unit="%", title="Figure 5: RUBiS CPU utilization (percent of one core)"
    )
