"""Chaos experiment: blackout sweep over the armed fault domain.

The robustness counterpart of the paper's coordination experiments: the
same coordinated RUBiS scenario, but the PCI-config-space mailbox is
blacked out mid-run for a swept duration while a lease-holding Trigger
loop keeps exercising the IXP's transient flow-weight boosts. Each arm
demonstrates — and measures — the full fault arc:

* **detection** — heartbeats stop crossing; both failure detectors walk
  their peer UP -> SUSPECT -> DOWN (sim-time latency per side);
* **fallback** — the DOWN transition reverts declared baselines: first
  ``op == "revert"`` record in the platform actuation audit;
* **recovery** — heartbeats resume after the blackout, the detectors
  return to UP and bump epochs;
* **reconvergence** — the RUBiS policy replays its desired snapshot and
  the x86 tier weights catch the policy's shadow again;
* **no leaks** — after a drain window every transient boost lease has
  expired (``outstanding_leases() == 0``) and stale-epoch frames from the
  blackout were discarded, not applied.

Everything is read from deterministic structures (detector transition
timelines, the actuation audit); the arm runs with tracing off, so the
fault domain is measured at its production cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.rubis import WEB_VM, RubisConfig, deploy_rubis
from ..faults import ChannelBlackout, FaultConfig, FaultPlan
from ..platform import EntityId
from ..sim import ms, seconds
from ..testbed import ChannelConfig, TestbedConfig
from .report import render_table
from .runner import Job, Sweep

#: Swept blackout durations (ns).
DEFAULT_BLACKOUTS = (ms(500), seconds(1), seconds(2))
#: Blackout onset: after warmup, with the steady-state mix established.
FAULT_START = seconds(6)
#: Period of the lease-exercising x86 -> IXP boost-trigger loop. Much
#: longer than the 2 ms lease hold, so each lease expires (and restores)
#: between triggers and a stuck lease is unambiguous.
BOOST_PERIOD = ms(25)

_SIDES = ("ixp", "x86")


@dataclass
class ChaosArmResult:
    """Robustness numbers of one blackout arm (all latencies in ms)."""

    blackout_ms: float
    seed: int
    #: island -> time from blackout start until its detector left UP.
    detection_ms: dict[str, float] = field(default_factory=dict)
    #: Time from blackout start to the first baseline revert in the audit.
    fallback_ms: float = -1.0
    #: island -> time from blackout end until its detector returned to UP.
    recovery_ms: dict[str, float] = field(default_factory=dict)
    #: Time from blackout end until x86 tier weights == policy shadow.
    reconverge_ms: float = -1.0
    #: Held boost-lease levels after the drain window (must be zero).
    stuck_leases: int = 0
    tunes_suppressed: int = 0
    replays_sent: int = 0
    stale_epoch_drops: int = 0
    dead_letters: int = 0
    boost_triggers_sent: int = 0
    #: island -> final agent epoch (1 after one full outage round-trip).
    epoch: dict[str, int] = field(default_factory=dict)
    #: island -> the detector's full (time, state, reason) timeline — the
    #: determinism fixture: identical across runs and fast path modes.
    transitions: dict[str, list] = field(default_factory=dict)
    #: Final x86 tier weights, for the determinism fixture.
    final_weights: dict[str, int] = field(default_factory=dict)


def chaos_config(blackout: int, seed: int = 1) -> RubisConfig:
    """The coordinated RUBiS workload with one scripted mid-run blackout
    and the fault domain armed over the reliable channel."""
    plan = FaultPlan((ChannelBlackout(start=FAULT_START, duration=blackout),))
    return RubisConfig(
        num_sessions=40,
        requests_per_session=10,
        think_time_mean=ms(300),
        warmup=seconds(4),
        coordinated=True,
        testbed=TestbedConfig(
            seed=seed,
            driver_poll_burn_duty=0.5,
            channel=ChannelConfig(reliable=True),
            faults=FaultConfig(plan=plan),
        ),
    )


def _boost_loop(testbed, entity, active):
    """Periodic x86 -> IXP Trigger exercising the flow-weight boost lease
    (2 ms hold); suppressed while the peer is DOWN, like any policy."""
    agent = testbed.x86_agent
    while True:
        yield BOOST_PERIOD
        if not active[0]:
            return
        if not agent.peer_available:
            continue
        agent.send_trigger(entity, reason="chaos-lease-exercise")


def _first_leaving_up(transitions, start):
    for time, state, _reason in transitions:
        if time >= start and state != "up":
            return time
    return None


def _first_up_after(transitions, start):
    for time, state, _reason in transitions:
        if time >= start and state == "up":
            return time
    return None


def run_chaos_arm(
    blackout: int, seed: int = 1, fastpath: bool = True
) -> ChaosArmResult:
    """Run one blackout arm and measure the detection -> fallback ->
    recovery -> reconvergence arc. ``fastpath=False`` forces the classic
    simulation kernel — results must be identical (the determinism
    acceptance test runs both)."""
    config = chaos_config(blackout, seed=seed)
    deployment = deploy_rubis(config)
    testbed = deployment.testbed
    testbed.sim._fastpath = fastpath
    sim = testbed.sim
    policy = deployment.policy
    assert policy is not None  # coordinated=True wired it

    boost_entity = EntityId(testbed.ixp.name, WEB_VM)
    boost_active = [True]
    boosts_before = testbed.ixp_agent.triggers_applied
    sim.spawn(
        _boost_loop(testbed, boost_entity, boost_active), name="chaos-boost"
    )

    fault_end = FAULT_START + blackout
    # Phase 1: through the blackout. Detection and fallback happen here.
    testbed.run(fault_end)

    # Phase 2: poll for recovery (both detectors back to UP), in steps
    # short enough to timestamp it within one heartbeat period.
    recovery_deadline = fault_end + seconds(5)
    while sim.now < recovery_deadline and any(
        testbed.detectors[side].state != "up" for side in _SIDES
    ):
        testbed.run(sim.now + ms(20))

    # Phase 3: poll for reconvergence — every x86 tier weight equal to
    # the policy's shadow (the replayed desired snapshot, then kept in
    # step by live steering once the mix quiesces).
    def reconverged() -> bool:
        return all(
            testbed.x86.vm(entity.local_name).weight == desired
            for entity, desired in policy.shadow_weights().items()
        )

    reconverge_deadline = fault_end + seconds(20)
    while sim.now < reconverge_deadline and not reconverged():
        testbed.run(sim.now + ms(20))
    reconverge_at = sim.now if reconverged() else None

    # Phase 4: drain. Stop the boost loop and give every held lease
    # several hold periods to expire; anything still held is stuck.
    boost_active[0] = False
    hold = testbed.ixp.params.monitor_period * 4
    testbed.run(sim.now + max(ms(10), 4 * hold) + BOOST_PERIOD)

    detection_ms = {}
    recovery_ms = {}
    for side in _SIDES:
        transitions = testbed.detectors[side].transitions
        left_up = _first_leaving_up(transitions, FAULT_START)
        back_up = _first_up_after(transitions, fault_end)
        detection_ms[side] = -1.0 if left_up is None else (left_up - FAULT_START) / 1e6
        recovery_ms[side] = -1.0 if back_up is None else (back_up - fault_end) / 1e6

    fallback_at = next(
        (
            record.time
            for record in testbed.controller.actuation_audit()
            if record.op == "revert" and record.time >= FAULT_START
        ),
        None,
    )

    stuck = sum(
        island.knobs.outstanding_leases() for island in (testbed.x86, testbed.ixp)
    )
    return ChaosArmResult(
        blackout_ms=blackout / 1e6,
        seed=seed,
        detection_ms=detection_ms,
        fallback_ms=-1.0 if fallback_at is None else (fallback_at - FAULT_START) / 1e6,
        recovery_ms=recovery_ms,
        reconverge_ms=(
            -1.0 if reconverge_at is None else (reconverge_at - fault_end) / 1e6
        ),
        stuck_leases=stuck,
        tunes_suppressed=policy.tunes_suppressed,
        replays_sent=policy.replays_sent,
        stale_epoch_drops=(
            testbed.ixp_agent.stale_epoch_drops + testbed.x86_agent.stale_epoch_drops
        ),
        dead_letters=sum(
            testbed.detectors[side].dead_letters_seen for side in _SIDES
        ),
        boost_triggers_sent=testbed.ixp_agent.triggers_applied - boosts_before,
        epoch={
            "ixp": testbed.ixp_agent.epoch,
            "x86": testbed.x86_agent.epoch,
        },
        transitions={
            side: list(testbed.detectors[side].transitions) for side in _SIDES
        },
        final_weights={
            entity.local_name: testbed.x86.vm(entity.local_name).weight
            for entity in policy.shadow_weights()
        },
    )


def run_chaos_sweep(
    blackouts=DEFAULT_BLACKOUTS, seed: int = 1
) -> list[ChaosArmResult]:
    """Sweep blackout durations, one independent arm each, fanned out."""
    return Sweep(
        Job(
            run_chaos_arm,
            kwargs={"blackout": blackout, "seed": seed},
            label=f"chaos:{blackout}",
        )
        for blackout in blackouts
    ).run()


def render_chaos(results: list[ChaosArmResult]) -> str:
    """Tabulate the fault arc per blackout duration."""
    rows = []
    for arm in results:
        rows.append((
            f"{arm.blackout_ms:.0f}",
            f"{arm.detection_ms['ixp']:.1f} / {arm.detection_ms['x86']:.1f}",
            f"{arm.fallback_ms:.1f}",
            f"{arm.recovery_ms['ixp']:.1f} / {arm.recovery_ms['x86']:.1f}",
            f"{arm.reconverge_ms:.1f}",
            str(arm.replays_sent),
            str(arm.tunes_suppressed),
            str(arm.stale_epoch_drops),
            str(arm.stuck_leases),
        ))
    table = render_table(
        ["Blackout (ms)", "Detect ixp/x86 (ms)", "Fallback (ms)",
         "Recover ixp/x86 (ms)", "Reconverge (ms)", "Replays",
         "Suppressed", "Stale drops", "Stuck leases"],
        rows,
        title="Chaos: channel blackout sweep (fault domain armed)",
    )
    leaked = sum(arm.stuck_leases for arm in results)
    footer = (
        "all boost leases expired cleanly"
        if leaked == 0
        else f"WARNING: {leaked} boost-lease level(s) still held after drain"
    )
    return f"{table}\n{footer}"
