"""Experiment drivers: one callable + renderer per paper table/figure.

| Artefact | Runner | Renderer |
|---|---|---|
| Figure 2 | :func:`run_rubis_pair` | :func:`render_figure2` |
| Figure 4 | :func:`run_rubis_pair` | :func:`render_figure4` |
| Table 1  | :func:`run_rubis_pair` | :func:`render_table1` |
| Table 2  | :func:`run_rubis_pair` | :func:`render_table2` |
| Figure 5 | :func:`run_rubis_pair` | :func:`render_figure5` |
| Figure 6 | :func:`run_qos_ladder` | :func:`render_figure6` |
| Figure 7 | :func:`run_trigger_pair` | :func:`render_figure7` |
| Table 3  | :func:`run_trigger_pair` | :func:`render_table3` |
"""

from .chaos import (
    ChaosArmResult,
    chaos_config,
    render_chaos,
    run_chaos_arm,
    run_chaos_sweep,
)
from .mplayer import (
    QoSLadderResult,
    TriggerPairResult,
    TriggerRunResult,
    render_figure6,
    render_figure7,
    render_table3,
    run_qos_ladder,
    run_trigger_arm,
    run_trigger_pair,
    trigger_config,
)
from .fabric import (
    FabricArmResult,
    render_fabric,
    run_fabric,
    run_fabric_arm,
)
from .fabric_sharded import (
    FabricShardedArmResult,
    render_fabric_sharded,
    run_fabric_sharded,
    run_fabric_sharded_arm,
    sharded_topology,
)
from .shard_chaos import (
    ShardChaosArmResult,
    chaos_scenarios,
    render_shard_chaos,
    run_shard_chaos,
    run_shard_chaos_arm,
)
from .scalability import (
    ScalabilityArmResult,
    render_scalability,
    run_scalability,
    run_scalability_arm,
)
from .energyqos import (
    GUEST_SPECS,
    EnergyQosArmResult,
    EnergyQosResult,
    render_energy_qos,
    run_energy_qos,
    run_energy_qos_arm,
)
from .power import (
    PowerCapArmResult,
    PowerCapResult,
    render_power_cap,
    run_power_cap,
    run_power_cap_arm,
)
from .registry import Experiment, all_experiments, experiment, get, names, register
from .report import percent_change, render_bars, render_minmax, render_series, render_table
from .runner import (
    ExecutionPlan,
    Job,
    Sweep,
    default_workers,
    parallelism_enabled,
    plan_execution,
    run_jobs,
)
from .rubis import (
    RubisPairResult,
    RubisRunResult,
    render_figure2,
    render_figure4,
    render_figure5,
    render_table1,
    render_table2,
    run_rubis,
    run_rubis_pair,
)
from .trace import (
    DEFAULT_TRACE_DURATION,
    TraceRunResult,
    render_control_loops,
    run_traced_rubis,
)

__all__ = [
    "ChaosArmResult",
    "ExecutionPlan",
    "Job",
    "Sweep",
    "DEFAULT_TRACE_DURATION",
    "Experiment",
    "chaos_config",
    "TraceRunResult",
    "all_experiments",
    "experiment",
    "QoSLadderResult",
    "RubisPairResult",
    "RubisRunResult",
    "TriggerPairResult",
    "TriggerRunResult",
    "EnergyQosArmResult",
    "EnergyQosResult",
    "FabricArmResult",
    "FabricShardedArmResult",
    "ScalabilityArmResult",
    "ShardChaosArmResult",
    "chaos_scenarios",
    "render_fabric",
    "render_fabric_sharded",
    "render_scalability",
    "render_shard_chaos",
    "run_fabric",
    "run_fabric_arm",
    "run_fabric_sharded",
    "run_fabric_sharded_arm",
    "run_shard_chaos",
    "run_shard_chaos_arm",
    "sharded_topology",
    "run_scalability",
    "run_scalability_arm",
    "GUEST_SPECS",
    "PowerCapArmResult",
    "PowerCapResult",
    "render_energy_qos",
    "render_power_cap",
    "run_energy_qos",
    "run_energy_qos_arm",
    "run_power_cap",
    "run_power_cap_arm",
    "default_workers",
    "parallelism_enabled",
    "percent_change",
    "names",
    "register",
    "render_bars",
    "render_chaos",
    "render_control_loops",
    "render_figure2",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_minmax",
    "render_series",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "plan_execution",
    "run_jobs",
    "run_chaos_arm",
    "run_chaos_sweep",
    "run_traced_rubis",
    "get",
    "run_qos_ladder",
    "run_rubis",
    "run_rubis_pair",
    "run_trigger_arm",
    "run_trigger_pair",
    "trigger_config",
]
