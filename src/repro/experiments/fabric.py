"""Extension experiment: control-plane fabrics at scale (paper §5).

"Also ongoing are evaluations of the scalability of such mechanisms to
large-scale multicore platforms, part of which involve the use of
distributed coordination algorithms across multiple island resource
managers."

Where :mod:`~repro.experiments.scalability` compared coordination
*algorithms* over hand-wired meshes, this sweep compares control-plane
*fabrics* built from declarative topologies: K x86 islands, each running
a latency-sensitive probe VM and two duty-cycled CPU hogs, under the
same local QoS policy — only the directory changes shape:

* ``central``      — a star behind one hub
  (:class:`~repro.platform.CentralDirectory`): every load report and
  every discovery message lands on the hub, O(K) concentration;
* ``hierarchical`` — islands clustered behind aggregators
  (:class:`~repro.platform.HierarchicalDirectory`): raw reports stop at
  the local aggregator and coalesce into one upward summary per period,
  O(fanout) concentration;
* ``gossip``       — a ring with no rendezvous point
  (:class:`~repro.platform.GossipDirectory`): anti-entropy rounds spread
  ownership epidemically, O(1) messages per node per round.

Mid-run, one island is partitioned away from the control plane and a new
entity registers on it while isolated; after the heal, the sweep measures
*discovery convergence* — how long until the whole fabric can resolve
the new entity. QoS must hold across arms: the fabrics differ in where
control messages land, not in what the platform delivers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import OnlineStats
from ..platform import EntityId, FabricTopology
from ..sim import RandomStreams, ms, seconds
from ..testbed import FabricTestbed, TestbedConfig
from .report import render_table
from .scalability import LoadReportMessage

ARMS = ("central", "hierarchical", "gossip")

#: Probe service: a latency-sensitive 15 ms task every 20 ms (75% of a
#: core) — heavy enough that an equal-weight island under hog pressure
#: pushes it into the OVER band, where it suffers.
PROBE_PERIOD = ms(20)
PROBE_DEMAND = ms(15)
LATENCY_HIGH = ms(3)
LATENCY_LOW = ms(1.5)
POLICY_PERIOD = ms(250)
#: Hog duty cycle: each island's hogs are hot one slot in four, phases
#: staggered by island index — aggregate pressure is K-independent, so a
#: K=8 and a K=128 fabric stress each island identically.
HOT_SLOT = ms(500)
DUTY_SLOTS = 4
#: Cluster fanout of the hierarchical arm.
FANOUT = 8


@dataclass
class FabricArmResult:
    """One (arm, K) measurement."""

    arm: str
    num_islands: int
    mean_probe_latency_ms: float
    worst_probe_latency_ms: float
    #: Control-plane + coordination messages at the busiest node.
    max_node_messages: int
    #: ... and the fabric-wide per-node mean.
    mean_node_messages: float
    #: Messages at the topology root (the hub in the central arm).
    root_messages: int
    total_messages: int
    #: Discovery convergence after the partition heals: how long until
    #: the entity registered *during* the partition is fabric-wide
    #: resolvable. None if it never converged before the run ended.
    convergence_ms: float | None
    #: Dead-lettered frames across the mesh (0 expected at 0% loss).
    dead_letters: int


def _topology(arm: str, names: tuple[str, ...]) -> FabricTopology:
    if arm == "central":
        return FabricTopology.star(names)
    if arm == "hierarchical":
        return FabricTopology.clustered(names, fanout=FANOUT)
    if arm == "gossip":
        return FabricTopology.ring(names)
    raise ValueError(f"unknown arm {arm!r}")


def run_fabric_arm(
    arm: str, num_islands: int, duration: int = seconds(4), seed: int = 1
) -> FabricArmResult:
    """Run one fabric arm at one island count."""
    if arm not in ARMS:
        raise ValueError(f"unknown arm {arm!r}; expected one of {ARMS}")
    names = tuple(f"isle-{i}" for i in range(num_islands))
    testbed = FabricTestbed(
        config=TestbedConfig(topology=_topology(arm, names), directory=arm, seed=seed)
    )
    sim, directory, mesh = testbed.sim, testbed.directory, testbed.mesh
    rng = RandomStreams(seed)

    probe_stats: dict[str, OnlineStats] = {}
    recent: dict[str, OnlineStats] = {}
    #: Custom control messages (load reports) handled per node — the mesh
    #: only counts Tunes/Triggers/relays, so reports are tallied here.
    report_counts: dict[str, int] = {name: 0 for name in names}

    for index, name in enumerate(names):
        island = testbed.island(name)
        probe_vm = island.create_vm("probe")
        hog_vms = [island.create_vm(f"hog-{h}") for h in range(2)]
        probe_stats[name] = OnlineStats()
        recent[name] = OnlineStats()

        def probe_loop(sim, vm=probe_vm, name=name,
                       jitter=rng.stream(f"probe-{index}")):
            yield sim.timeout(jitter.randrange(0, PROBE_PERIOD))
            while True:
                start = sim.now
                yield vm.execute(PROBE_DEMAND, "user")
                latency = sim.now - start - PROBE_DEMAND
                probe_stats[name].add(latency)
                recent[name].add(latency)
                yield sim.timeout(PROBE_PERIOD)

        def hog_loop(sim, vm, phase=index % DUTY_SLOTS):
            while True:
                if (sim.now // HOT_SLOT) % DUTY_SLOTS == phase:
                    yield vm.execute(ms(5), "user")
                else:
                    yield sim.timeout(ms(5))

        sim.spawn(probe_loop(sim), name=f"probe-{name}")
        for hog_vm in hog_vms:
            sim.spawn(hog_loop(sim, hog_vm), name=f"hog-{name}")

    by_name = {name: testbed.island(name) for name in names}

    def _reset_recent(name: str) -> float:
        mean = recent[name].mean if recent[name].count else 0.0
        recent[name] = OnlineStats()
        return mean

    def _decide(name: str, mean: float) -> int:
        probe = by_name[name].vm("probe")
        if mean > LATENCY_HIGH:
            return +128
        if mean < LATENCY_LOW and probe.weight > 256:
            return -128
        return 0

    if arm == "central":
        # Every island streams load reports to the hub, whose manager
        # decides and Tunes remote probe weights — all control messages
        # concentrate at the hub.
        hub = testbed.topology.root

        def on_report(message: LoadReportMessage) -> None:
            report_counts[hub] += 1
            delta = _decide(message.island, message.probe_latency_ns)
            if delta:
                mesh.agent(hub, message.island).send_tune(
                    EntityId(message.island, "probe"), delta
                )

        for neighbor in mesh.neighbors(hub):
            mesh.agent(hub, neighbor).register_message_handler(
                LoadReportMessage, on_report
            )

        def reporter(sim, name):
            while True:
                yield sim.timeout(POLICY_PERIOD)
                mesh.agent(name, hub).endpoint.send(LoadReportMessage(
                    island=name, probe_latency_ns=_reset_recent(name)
                ))

        for name in names:
            if name != hub:
                sim.spawn(reporter(sim, name), name=f"report-{name}")

    else:
        # Hierarchical and gossip arms: each island's own manager applies
        # the same policy locally. What differs is the control plane
        # around it — hierarchical islands stream raw reports to their
        # aggregator (coalesced upward once per period); gossip islands
        # rely on the directory's anti-entropy rounds alone.
        def local_controller(sim, name):
            while True:
                yield sim.timeout(POLICY_PERIOD)
                mean = _reset_recent(name)
                delta = _decide(name, mean)
                if delta:
                    by_name[name].apply_tune(EntityId(name, "probe"), delta)
                if arm == "hierarchical":
                    directory.report_load(name, mean)
                    report_counts[name] += 1

        for name in names:
            sim.spawn(local_controller(sim, name), name=f"ctrl-{name}")

    # Partition one non-root island away from the control plane mid-run;
    # while isolated, a new entity registers on it. Convergence is how
    # long after the heal the whole fabric can resolve that entity.
    target = names[-1]
    partition_at = duration // 2
    heal_at = (duration * 5) // 8
    spare_entity = EntityId(target, "spare")

    def _partition() -> None:
        directory.isolate(target)
        by_name[target].create_vm("spare")

    sim.call_at(partition_at, _partition)
    sim.call_at(heal_at, lambda: directory.heal(target))

    sim.run(until=duration)

    latencies = {name: probe_stats[name].mean / 1e6 for name in names}
    node_messages = {
        name: (directory.messages_at(name) + mesh.messages_handled_at(name)
               + report_counts[name])
        for name in names
    }
    visible = directory.visible_at(spare_entity)
    convergence = (visible - heal_at) / 1e6 if visible is not None else None
    return FabricArmResult(
        arm=arm,
        num_islands=num_islands,
        mean_probe_latency_ms=sum(latencies.values()) / len(latencies),
        worst_probe_latency_ms=max(latencies.values()),
        max_node_messages=max(node_messages.values()),
        mean_node_messages=sum(node_messages.values()) / len(node_messages),
        root_messages=node_messages[testbed.topology.root],
        total_messages=sum(node_messages.values()),
        convergence_ms=convergence,
        dead_letters=mesh.dead_letters(),
    )


def run_fabric(
    island_counts=(8, 32, 128), duration: int = seconds(4), seed: int = 1
) -> dict[tuple[str, int], FabricArmResult]:
    """The full arm x K sweep."""
    results = {}
    for count in island_counts:
        for arm in ARMS:
            results[(arm, count)] = run_fabric_arm(
                arm, count, duration=duration, seed=seed
            )
    return results


def render_fabric(results: dict[tuple[str, int], FabricArmResult]) -> str:
    """Tabulate QoS, concentration and convergence per arm and K."""
    rows = []
    for (arm, count), r in sorted(results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        rows.append((
            str(count),
            arm,
            f"{r.mean_probe_latency_ms:.2f}",
            f"{r.worst_probe_latency_ms:.2f}",
            str(r.root_messages),
            str(r.max_node_messages),
            f"{r.mean_node_messages:.1f}",
            "-" if r.convergence_ms is None else f"{r.convergence_ms:.1f}",
        ))
    return render_table(
        ["K", "Fabric", "Mean probe (ms)", "Worst probe (ms)",
         "Root msgs", "Max node msgs", "Mean node msgs", "Converge (ms)"],
        rows,
        title="Extension: control-plane fabrics at scale "
              "(concentration and post-partition discovery convergence)",
    )
