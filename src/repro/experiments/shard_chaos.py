"""Robustness experiment: chaos drills against the shard supervisor.

The sharded fabric's headline guarantee — ``shards=N`` bit-identical to
``shards=1`` — is only worth anything if it survives the harness itself
misbehaving. This experiment runs the sharded fabric of
:mod:`~repro.experiments.fabric_sharded` under *scripted worker faults*
(a picklable :class:`~repro.shard.FaultScript` delivered into the worker
processes) and asserts, for every K and every scenario, that the merged
simulation outcome is bit-identical to an undisturbed single-process
reference:

* **none** — the clean supervised run (the recovery-overhead baseline);
* **crash** — one worker is killed (``os._exit``) mid-run; the
  supervisor respawns it and fast-forwards it by replaying the window
  journal;
* **hang** — one worker falls silent at a barrier; the deadline fires,
  the worker is killed and recovered the same way;
* **exhaust** — the fault fires on every respawn too, spending the
  budget; the whole run degrades to the inline engine, rebuilt from the
  journal.

Reported per row: engine, respawn/crash/hang counts, replayed windows,
recovery wall time, and total wall time next to the clean baseline (the
honest cost of self-healing). Simulation metrics never include any of
these — the ``supervision.*`` counters describe the harness, not the
fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..shard import FaultScript, ShardConfig, ShardPlan, run_sharded
from ..sim import ms
from .fabric import FANOUT
from .fabric_sharded import (
    _merge_shard_results,
    build_fabric_world,
    sharded_topology,
)
from .report import render_table

#: Default Ks drilled (the fabric sweep's lower rungs; clusters = K/16).
ISLAND_COUNTS = (128, 512)
#: Simulated time per run (100 windows at the fabric's 5 ms lookahead).
DURATION = ms(500)
#: Longer than any barrier deadline: hung workers are killed, not waited.
HANG_S = 30.0
#: Supervision knobs for the drills: a tight barrier so hang detection
#: is visibly bounded, heartbeats on, fast respawn backoff.
CHAOS_KNOBS = dict(
    barrier_timeout_s=2.0,
    heartbeat_interval_s=0.1,
    probe_timeout_s=1.0,
    max_respawns=2,
    respawn_backoff_s=0.01,
)


def chaos_scenarios(
    windows: int, shards: int
) -> tuple[tuple[str, FaultScript | None, dict], ...]:
    """The scripted drills for a run of ``windows`` windows: (name,
    fault script, ShardConfig overrides) triples."""
    victim = 1 % shards
    mid = max(1, windows // 4)
    late = max(2, (windows * 3) // 4)
    return (
        ("none", None, {}),
        ("crash", FaultScript(kills=((victim, mid),)), {}),
        ("hang", FaultScript(hangs=((0, late, HANG_S),)), {}),
        (
            "exhaust",
            FaultScript(kills=((victim, mid),), persistent=True),
            {"max_respawns": 1},
        ),
    )


@dataclass
class ShardChaosArmResult:
    """One (K, scenario) drill: recovery accounting + execution cost."""

    num_islands: int
    scenario: str
    shards: int
    engine: str
    windows: int
    crashes: int
    hangs: int
    respawns: int
    replayed_windows: int
    degraded: int
    #: Wall time spent inside recovery (kill -> caught up / replayed).
    recovery_seconds: float
    wall_seconds: float
    #: Run survived every scripted fault bit-identical to the reference
    #: (asserted before this result exists; recorded for the table).
    bit_identical: bool


def run_shard_chaos_arm(
    plan: ShardPlan,
    scenario: str,
    script,
    overrides: dict,
    reference_metrics: dict,
    duration: int,
    seed: int,
    workers: int,
) -> ShardChaosArmResult:
    """One drill: run under the fault script, assert bit-equality."""
    config = ShardConfig(**{**CHAOS_KNOBS, **overrides})
    run = run_sharded(
        plan, build_fabric_world, (seed, duration, False),
        duration=duration, workers=workers, config=config, fault_hook=script,
    )
    metrics = _merge_shard_results(run.results, run.counters)
    if metrics != reference_metrics:
        raise AssertionError(
            f"scenario {scenario!r} diverged from the undisturbed "
            f"single-process reference at K={len(plan.topology.islands)}, "
            f"shards={plan.shards}"
        )
    return ShardChaosArmResult(
        num_islands=len(plan.topology.islands),
        scenario=scenario,
        shards=plan.shards,
        engine=run.engine,
        windows=run.windows,
        crashes=run.counters["supervision.crashes"],
        hangs=run.counters["supervision.hangs"],
        respawns=run.counters["supervision.respawns"],
        replayed_windows=run.counters["supervision.replayed_windows"],
        degraded=run.counters["supervision.degraded_inline"],
        recovery_seconds=run.supervision["recovery_seconds"],
        wall_seconds=run.wall_seconds,
        bit_identical=True,
    )


def run_shard_chaos(
    island_counts=ISLAND_COUNTS,
    shards: int = 4,
    duration: int = DURATION,
    seed: int = 1,
    workers: int = 2,
    fanout: int = FANOUT,
) -> dict[int, list[ShardChaosArmResult]]:
    """The sweep: per K, an undisturbed single-process reference, then
    every chaos scenario asserted bit-identical to it.

    ``workers`` is passed straight to :func:`~repro.shard.run_sharded`
    as an explicit budget, so the drills exercise real worker processes
    even on hosts whose CPU count would normally degrade them inline.
    """
    results: dict[int, list[ShardChaosArmResult]] = {}
    for count in island_counts:
        topology = sharded_topology(count, fanout=fanout)
        reference = run_sharded(
            ShardPlan(topology, shards=1), build_fabric_world,
            (seed, duration, False), duration=duration,
        )
        reference_metrics = _merge_shard_results(
            reference.results, reference.counters
        )
        plan = ShardPlan(
            topology, shards=min(shards, len(topology.clusters))
        )
        results[count] = [
            run_shard_chaos_arm(
                plan, scenario, script, overrides,
                reference_metrics, duration, seed, workers,
            )
            for scenario, script, overrides in chaos_scenarios(
                reference.windows, plan.shards
            )
        ]
    return results


def render_shard_chaos(results: dict[int, list[ShardChaosArmResult]]) -> str:
    """Tabulate each drill's recovery accounting and wall-time cost."""
    rows = []
    for count in sorted(results):
        baseline = next(
            (arm for arm in results[count] if arm.scenario == "none"), None
        )
        for arm in results[count]:
            overhead = "-"
            if (
                baseline is not None
                and arm is not baseline
                and baseline.wall_seconds > 0
            ):
                overhead = (
                    f"{(arm.wall_seconds - baseline.wall_seconds):+.2f}s"
                )
            rows.append((
                str(arm.num_islands),
                arm.scenario,
                arm.engine,
                str(arm.crashes),
                str(arm.hangs),
                str(arm.respawns),
                str(arm.replayed_windows),
                str(arm.degraded),
                f"{arm.recovery_seconds:.2f}",
                f"{arm.wall_seconds:.2f}",
                overhead,
                "yes" if arm.bit_identical else "NO",
            ))
    return render_table(
        ["K", "Scenario", "Engine", "Crashes", "Hangs", "Respawns",
         "Replayed", "Degraded", "Recovery (s)", "Wall (s)", "Overhead",
         "Bit-identical"],
        rows,
        title="Robustness: self-healing sharded execution "
              "(every row bit-identical to its undisturbed reference)",
    )
