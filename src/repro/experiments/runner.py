"""Process-parallel fan-out for independent simulation runs.

Every experiment arm is one isolated :class:`~repro.sim.core.Simulator` —
arms share no state, so a config sweep or a baseline/coordinated pair is
embarrassingly parallel. The unit of work is a :class:`Job` (a picklable
module-level callable, its arguments, a display label and an optional
cache key); a :class:`Sweep` fans a list of jobs out over a
``ProcessPoolExecutor`` (one worker process per job, results in
submission order).

Whether a sweep actually runs in parallel is decided once, up front, by
:func:`repro.parallel.plan_execution` — the same rules (``REPRO_*``
environment knobs, single-CPU hosts, nested-in-worker) that gate the
shard coordinator in :mod:`repro.shard.runtime`, re-exported here. A
failure of the pool itself — unpicklable arguments, a broken worker, a
sandbox refusing to fork — still falls back to re-running everything
serially, but the reason is logged once per distinct cause (logger
``repro.parallel``) instead of being swallowed silently.

Determinism is untouched by construction: a job's result depends only on
its callable and arguments, never on which process executed it — asserted
by ``tests/experiments/test_runner.py``, which compares serial and
parallel results bit-for-bit.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional, Sequence

from ..parallel import (
    _IN_WORKER_ENV,
    PARALLEL_ENV,
    WORKERS_ENV,
    ExecutionPlan,
    default_workers,
    log_fallback,
    mark_worker,
    parallelism_enabled,
    plan_execution,
)

__all__ = [
    "_IN_WORKER_ENV",
    "PARALLEL_ENV",
    "WORKERS_ENV",
    "ExecutionPlan",
    "Job",
    "Sweep",
    "default_workers",
    "parallelism_enabled",
    "plan_execution",
    "run_jobs",
]


@dataclass(frozen=True)
class Job:
    """One unit of work: a picklable module-level callable plus arguments.

    ``label`` names the job in logs and progress output; ``cache_key``
    (any hashable, or None) lets a :class:`Sweep` reuse a previous result
    for an identical job instead of re-running it.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    label: str = ""
    cache_key: Optional[Hashable] = None

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def __repr__(self) -> str:
        name = self.label or getattr(self.fn, "__name__", repr(self.fn))
        return f"Job({name})"


def _run_job(job: Job) -> Any:
    return job.run()


class Sweep:
    """An ordered batch of independent :class:`Job`\\ s.

    ``Sweep.run()`` returns one result per job, in submission order,
    fanning out over a process pool when
    :func:`~repro.parallel.plan_execution` says it can help. An optional
    ``cache`` dict (keyed by ``Job.cache_key``) short-circuits jobs whose
    result is already known — shared arms in a multi-figure report run
    once.
    """

    def __init__(self, jobs: Iterable[Job] = ()):
        self.jobs: list[Job] = list(jobs)

    @classmethod
    def of(
        cls,
        fn: Callable[..., Any],
        points: Sequence[dict],
        label: str = "",
    ) -> "Sweep":
        """One job per sweep point: ``fn(**point)`` for every point."""
        name = label or getattr(fn, "__name__", "sweep")
        return cls(
            Job(fn, kwargs=dict(point), label=f"{name}[{i}]")
            for i, point in enumerate(points)
        )

    def add(self, job: Job) -> "Sweep":
        self.jobs.append(job)
        return self

    def __len__(self) -> int:
        return len(self.jobs)

    def run(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[dict] = None,
    ) -> list[Any]:
        """Run every job; results in submission order."""
        jobs = self.jobs
        if cache is not None:
            pending = [
                job for job in jobs
                if job.cache_key is None or job.cache_key not in cache
            ]
        else:
            pending = list(jobs)
        plan = plan_execution(len(pending), max_workers=max_workers)
        if not plan.parallel:
            fresh = {id(job): job.run() for job in pending}
        else:
            try:
                with ProcessPoolExecutor(
                    max_workers=plan.workers, initializer=mark_worker
                ) as pool:
                    futures = [(job, pool.submit(_run_job, job)) for job in pending]
                    fresh = {id(job): future.result() for job, future in futures}
            except Exception as exc:
                # Pool trouble (unpicklable job, broken worker, fork
                # refused by the sandbox): jobs are pure functions of
                # their arguments, so a serial re-run is always safe — a
                # genuine experiment error re-raises from here with an
                # honest traceback.
                log_fallback(f"{type(exc).__name__}: {exc}")
                fresh = {id(job): job.run() for job in pending}
        results = []
        for job in jobs:
            if id(job) in fresh:
                result = fresh[id(job)]
                if cache is not None and job.cache_key is not None:
                    cache[job.cache_key] = result
            else:
                result = cache[job.cache_key]
            results.append(result)
        return results


def run_jobs(jobs: Iterable[Job], max_workers: Optional[int] = None) -> list[Any]:
    """Run a batch of jobs; shorthand for ``Sweep(jobs).run(...)``."""
    return Sweep(jobs).run(max_workers=max_workers)
