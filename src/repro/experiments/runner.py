"""Process-parallel fan-out for independent simulation runs.

Every experiment arm is one isolated :class:`~repro.sim.core.Simulator` —
arms share no state, so a config sweep or a baseline/coordinated pair is
embarrassingly parallel. :func:`run_calls` fans a list of :class:`Call`\\ s
out over a ``ProcessPoolExecutor`` (one worker process per arm, results in
submission order) and degrades to plain serial execution whenever
parallelism cannot help or cannot be trusted:

* fewer than two calls, or ``max_workers=1``;
* a single-CPU machine (worker start-up would only add overhead);
* ``REPRO_PARALLEL=0`` in the environment (CI knob, also handy under
  profilers that cannot follow forks);
* inside a worker process (nested fan-out must not spawn pools of pools);
* any failure of the pool itself — unpicklable arguments, a broken
  worker — falls back to re-running everything serially, so callers never
  need a try/except around :func:`run_calls`.

Determinism is untouched by construction: a run's result depends only on
its config and seed, never on which process executed it — asserted by
``tests/experiments/test_runner.py``, which compares serial and parallel
results bit-for-bit.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

#: Set to "0" to force serial execution regardless of core count.
PARALLEL_ENV = "REPRO_PARALLEL"
#: Overrides the worker count (useful to cap memory on wide machines).
WORKERS_ENV = "REPRO_WORKERS"
#: Present (any value) inside pool workers; nested run_calls go serial.
_IN_WORKER_ENV = "_REPRO_IN_WORKER"


@dataclass(frozen=True)
class Call:
    """One unit of work: a picklable module-level callable plus arguments."""

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def default_workers() -> int:
    """Worker budget: ``REPRO_WORKERS`` if set, else the CPU count."""
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def parallelism_enabled() -> bool:
    """Whether run_calls may use worker processes at all."""
    if os.environ.get(PARALLEL_ENV, "1") == "0":
        return False
    if _IN_WORKER_ENV in os.environ:
        return False
    return default_workers() >= 2


def _mark_worker() -> None:
    os.environ[_IN_WORKER_ENV] = "1"


def _run_call(call: Call) -> Any:
    return call.run()


def run_calls(calls: Iterable[Call], max_workers: Optional[int] = None) -> list[Any]:
    """Run every call, in parallel when it can help; results in order."""
    calls = list(calls)
    if max_workers is None:
        max_workers = default_workers()
    workers = min(max_workers, len(calls))
    if workers < 2 or not parallelism_enabled():
        return [call.run() for call in calls]
    try:
        with ProcessPoolExecutor(max_workers=workers, initializer=_mark_worker) as pool:
            futures = [pool.submit(_run_call, call) for call in calls]
            return [future.result() for future in futures]
    except Exception:
        # Pool trouble (unpicklable call, broken worker, fork refused by
        # the sandbox): arms are pure functions of their arguments, so a
        # serial re-run is always safe — a genuine experiment error will
        # re-raise from here with an honest traceback.
        return [call.run() for call in calls]


def run_pair(first: Call, second: Call, max_workers: Optional[int] = None) -> tuple[Any, Any]:
    """Run two arms (typically baseline vs coordinated) side by side."""
    first_result, second_result = run_calls([first, second], max_workers=max_workers)
    return first_result, second_result


def run_sweep(
    fn: Callable[..., Any],
    points: Sequence[dict],
    max_workers: Optional[int] = None,
) -> list[Any]:
    """Evaluate ``fn(**point)`` for every sweep point, fanning out."""
    return run_calls([Call(fn, kwargs=dict(point)) for point in points], max_workers=max_workers)
