"""MPlayer experiment drivers: Figure 6, Figure 7 and Table 3."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..apps.mplayer import (
    BurstProfile,
    DOM1,
    HIGH_RATE_STREAM,
    MPlayerConfig,
    deploy_mplayer,
)
from ..coordination.mplayer_policy import STAGE_BITRATE, STAGE_FRAMERATE
from ..sim import ms, seconds
from ..testbed import TestbedConfig
from ..x86 import X86Params
from .report import percent_change, render_series, render_table
from .runner import Job, run_jobs

#: Per-stage measured window of the Figure 6 ladder.
QOS_STAGE_DURATION = seconds(25)
#: Warm-up before stage A is measured.
QOS_WARMUP = seconds(10)
#: Duration of the Figure 7 / Table 3 runs.
TRIGGER_DURATION = seconds(180)
TRIGGER_WARMUP = seconds(20)


@dataclass
class QoSLadderResult:
    """Per-stage frame rates of the Figure 6 evolving run."""

    stage_a: tuple[float, float]  # (dom1 fps, dom2 fps) at weights 256-256
    stage_b: tuple[float, float]  # 384-512 after bit-rate tunes
    stage_c: tuple[float, float]  # 384-640 + IXP threads
    weights: dict[str, int]
    ixp_threads: dict[str, int]


def run_qos_ladder(
    seed: int = 1,
    config: Optional[MPlayerConfig] = None,
    reliable: Optional[bool] = None,
) -> QoSLadderResult:
    """Figure 6: one evolving run, escalating the stream-QoS policy.

    Mirrors the paper's narrative: start both guests at default weights,
    then raise weights on high-bit-rate detection, then reward Domain-2's
    frame-rate requirement and add IXP dequeue threads in tandem.

    ``reliable`` opts the coordination channel into the ack/retransmit
    layer; None keeps the testbed config's (raw-mailbox) default.
    """
    base = config or MPlayerConfig()
    testbed_config = replace(base.testbed, seed=seed)
    if reliable is not None:
        testbed_config = replace(
            testbed_config,
            channel=replace(testbed_config.channel, reliable=reliable),
        )
    deployment = deploy_mplayer(replace(base, testbed=testbed_config))
    t0 = QOS_WARMUP
    t1 = t0 + QOS_STAGE_DURATION
    deployment.run(t1)
    stage_a = (deployment.dom1_fps(t0, t1), deployment.dom2_fps(t0, t1))

    deployment.qos_policy.advance_stage(STAGE_BITRATE)
    t2 = t1 + QOS_STAGE_DURATION
    deployment.run(QOS_STAGE_DURATION)
    stage_b = (deployment.dom1_fps(t1, t2), deployment.dom2_fps(t1, t2))

    deployment.qos_policy.advance_stage(STAGE_FRAMERATE)
    t3 = t2 + QOS_STAGE_DURATION
    deployment.run(QOS_STAGE_DURATION)
    stage_c = (deployment.dom1_fps(t2, t3), deployment.dom2_fps(t2, t3))

    ixp = deployment.testbed.ixp
    return QoSLadderResult(
        stage_a=stage_a,
        stage_b=stage_b,
        stage_c=stage_c,
        weights={vm.name: vm.weight for vm in deployment.testbed.x86.guest_vms()},
        ixp_threads={
            name: ixp.dequeuer.threads_for(queue) for name, queue in ixp.flow_queues.items()
        },
    )


def render_figure6(result: QoSLadderResult) -> str:
    """Figure 6: video-stream quality of service per weight stage."""
    rows = [
        ("256-256 (no coordination)", f"{result.stage_a[0]:.1f}", f"{result.stage_a[1]:.1f}"),
        ("384-512 (bit-rate tunes)", f"{result.stage_b[0]:.1f}", f"{result.stage_b[1]:.1f}"),
        ("384-640 (+frame-rate, +IXP threads)",
         f"{result.stage_c[0]:.1f}", f"{result.stage_c[1]:.1f}"),
    ]
    table = render_table(
        ["Weights (Dom1-Dom2)", "Dom1 frames/s", "Dom2 frames/s"],
        rows,
        title="Figure 6: MPlayer video-stream QoS (targets: Dom1 20 fps, Dom2 25 fps)",
    )
    threads = ", ".join(f"{k}={v}" for k, v in sorted(result.ixp_threads.items()))
    return f"{table}\nfinal IXP dequeue threads: {threads}"


# -- Figure 7 / Table 3 -----------------------------------------------------


def trigger_config(buffer_trigger: bool, seed: int = 1) -> MPlayerConfig:
    """The UDP-bulk + CPU-hog scenario configuration (Figure 7, Table 3).

    Dom1 plays the 1 Mbit 25 fps stream with no-flow-control bursts; Dom2
    decodes a clip from its local disk and touches no IXP resources. The
    polling driver runs at a moderate duty and Dom0 keeps the default
    weight; Dom1's flow queue is drained by a finite-rate (polled) thread
    set so bursts show up in DRAM occupancy.
    """
    return MPlayerConfig(
        testbed=TestbedConfig(
            seed=seed, driver_poll_burn_duty=0.3, x86=X86Params(dom0_weight=256)
        ),
        dom1_stream=HIGH_RATE_STREAM,
        dom2_disk=True,
        dom1_burst=BurstProfile(period_s=20.0, duration_s=3.0, factor=3.0),
        buffer_trigger=buffer_trigger,
        dom1_ixp_poll_interval=ms(57),
    )


@dataclass
class TriggerRunResult:
    """One arm of the buffer-monitoring experiment."""

    buffer_trigger: bool
    dom1_fps: float
    dom2_fps: float
    triggers_sent: int
    #: (time, cpu-percent) of Dom1 per sampling window.
    dom1_cpu_series: list[tuple[int, float]]
    #: (time, occupancy-bytes) of Dom1's IXP flow queue.
    buffer_series: list[tuple[int, int]]
    buffer_high_watermark: int


@dataclass
class TriggerPairResult:
    """Baseline vs trigger-coordinated runs (Figure 7 + Table 3)."""

    base: TriggerRunResult
    coord: TriggerRunResult

    @property
    def dom1_change_percent(self) -> float:
        """Dom1 frame-rate change from coordination."""
        return percent_change(self.base.dom1_fps, self.coord.dom1_fps)

    @property
    def dom2_change_percent(self) -> float:
        """Dom2 (victim) frame-rate change from coordination."""
        return percent_change(self.base.dom2_fps, self.coord.dom2_fps)


def run_trigger_arm(buffer_trigger: bool, seed: int = 1) -> TriggerRunResult:
    """Run one arm of the Figure 7 / Table 3 scenario."""
    deployment = deploy_mplayer(trigger_config(buffer_trigger, seed=seed))
    queue = deployment.testbed.ixp.flow_queues[DOM1]
    buffer_series: list[tuple[int, int]] = []

    def sample_buffer():
        while True:
            yield deployment.sim.timeout(seconds(1))
            buffer_series.append((deployment.sim.now, queue.occupancy_bytes))

    deployment.sim.spawn(sample_buffer(), name="buffer-series")
    deployment.run(TRIGGER_DURATION)

    cpu_series = [
        (s.time, s.total) for s in deployment.cpu_sampler.series(DOM1)
    ]
    return TriggerRunResult(
        buffer_trigger=buffer_trigger,
        dom1_fps=deployment.dom1_fps(TRIGGER_WARMUP, TRIGGER_DURATION),
        dom2_fps=deployment.dom2_fps(TRIGGER_WARMUP, TRIGGER_DURATION),
        triggers_sent=(
            deployment.trigger_policy.triggers_sent if deployment.trigger_policy else 0
        ),
        dom1_cpu_series=cpu_series,
        buffer_series=buffer_series,
        buffer_high_watermark=queue.bytes_high_watermark,
    )


def run_trigger_pair(seed: int = 1, parallel: bool = True) -> TriggerPairResult:
    """Both arms of the buffer-monitoring experiment, fanned out in
    parallel on a multicore host (identical results either way)."""
    base, coord = run_jobs(
        [
            Job(run_trigger_arm, args=(False,), kwargs=dict(seed=seed), label="trigger:base"),
            Job(run_trigger_arm, args=(True,), kwargs=dict(seed=seed), label="trigger:coord"),
        ],
        max_workers=None if parallel else 1,
    )
    return TriggerPairResult(base=base, coord=coord)


def render_figure7(pair: TriggerPairResult) -> str:
    """Figure 7: Dom1 CPU utilisation and IXP buffer occupancy over time."""
    parts = [
        "Figure 7: MPlayer - tuning credit adjustments using IXP buffer monitoring",
        render_series(
            [(t, v) for t, v in pair.coord.dom1_cpu_series],
            title="Dom1 CPU utilization, coordinated (percent of one core)",
        ),
        render_series(
            [(t, float(v)) for t, v in pair.coord.buffer_series],
            title="Dom1 IXP flow-queue occupancy (bytes)",
        ),
        f"triggers sent: {pair.coord.triggers_sent}; "
        f"buffer high watermark: {pair.coord.buffer_high_watermark // 1024} KB; "
        f"Dom1 fps {pair.base.dom1_fps:.1f} -> {pair.coord.dom1_fps:.1f}",
    ]
    return "\n\n".join(parts)


def render_table3(pair: TriggerPairResult) -> str:
    """Table 3: trigger interference on the co-located disk player."""
    rows = [
        (
            "Domain-1 (network stream)",
            f"{pair.base.dom1_fps:.1f}",
            f"{pair.coord.dom1_fps:.1f}",
            f"{pair.dom1_change_percent:+.2f}%",
        ),
        (
            "Domain-2 (local disk)",
            f"{pair.base.dom2_fps:.1f}",
            f"{pair.coord.dom2_fps:.1f}",
            f"{pair.dom2_change_percent:+.2f}%",
        ),
    ]
    return render_table(
        ["Guest Domain", "Baseline Frames/s", "With Co-ord Frames/s", "% change"],
        rows,
        title="Table 3: MPlayer - Trigger Interference",
    )
