"""Extension experiment: sharded fabric execution (paper §5 at scale).

The :mod:`~repro.experiments.fabric` sweep grows a control-plane fabric
to K=128 islands inside one simulator. This experiment takes the same
hierarchical fabric shape to K=2048 by *sharding* it: the topology is
cut at cluster boundaries into per-shard worlds
(:class:`~repro.shard.ShardPlan`), each shard simulates its clusters in
its own process, and the conservative window protocol of
:func:`~repro.shard.run_sharded` synchronizes them so tightly that the
sharded run is **bit-identical** to the single-process run — asserted
here, every time, for every K.

Each cluster runs the fabric experiment's workload (a latency-sensitive
probe VM plus duty-cycled hogs per island) under a two-level control
plane whose cross-cluster traffic all rides boundary messages:

* **reports** — each aggregator coalesces its members' probe latencies
  once per policy period and reports upward to the root;
* **tunes** — the root picks the worst over-budget cluster per period
  and sends a Tune back to its aggregator, which actuates the member's
  credit weight;
* **gossip** — aggregators push their dynamic-entity views around a
  ring of peer links, a root-free dissemination path;
* **heartbeats** — a :class:`~repro.shard.LinkHealth` pair guards every
  aggregator <-> root uplink.

Mid-run a scripted blackout partitions the last cluster's aggregator
from every cross-cluster link; a spare entity registers while isolated.
Both uplink endpoints must walk UP -> SUSPECT -> DOWN, the aggregator
must suppress reports while DOWN, and on heal the epoch bump triggers a
view replay — discovery convergence is measured fabric-wide, exactly as
in the fabric sweep, but now across process boundaries.

Execution-side numbers (engine, wall clock, events/sec) are reported
next to the bit-equal simulation metrics, never mixed into them: on a
many-core host the sharded arm shows the speedup, on a single-CPU host
it honestly shows the windowing overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..faults import ChannelBlackout
from ..metrics import OnlineStats
from ..platform import EntityId, FabricTopology
from ..shard import LinkHealth, ShardPlan, run_sharded
from ..sim import PeriodicTask, RandomStreams, ms, seconds
from ..x86 import X86Island, X86Params
from .fabric import (
    DUTY_SLOTS,
    FANOUT,
    HOT_SLOT,
    LATENCY_HIGH,
    LATENCY_LOW,
    POLICY_PERIOD,
    PROBE_DEMAND,
    PROBE_PERIOD,
)
from .report import render_table

#: One-way latency of intra-cluster and ring links (the lookahead, and
#: therefore the synchronization window, once clusters >= 3).
LINK_LATENCY = ms(5)
#: One-way latency of aggregator <-> root uplinks.
UPLINK_LATENCY = ms(10)
#: Ring gossip period (dynamic-entity view pushes to the ring successor).
GOSSIP_PERIOD = ms(50)
#: Root tune step applied to the worst over-budget cluster's worst probe.
ROOT_TUNE_DELTA = 128


def sharded_topology(num_islands: int, fanout: int = FANOUT) -> FabricTopology:
    """The hierarchical fabric this experiment shards: clusters of
    ``fanout`` behind aggregators, aggregator -> root uplinks, and a
    ring of peer links over the aggregators (the gossip substrate)."""
    if num_islands <= fanout:
        raise ValueError(
            f"need more than one cluster to shard: K={num_islands} with "
            f"fanout={fanout} yields a single cluster"
        )
    names = tuple(f"isle-{i}" for i in range(num_islands))
    aggregators = tuple(names[i] for i in range(0, num_islands, fanout))
    ring = tuple(
        (aggregators[i], aggregators[(i + 1) % len(aggregators)])
        for i in range(len(aggregators))
    )
    return FabricTopology.clustered(
        names,
        fanout=fanout,
        link_latency=LINK_LATENCY,
        uplink_latency=UPLINK_LATENCY,
        extra_links=ring,
        gossip_period=GOSSIP_PERIOD,
    )


class _ClusterAgent:
    """One cluster's control locus, living on its shard.

    Local side: the fabric experiment's QoS policy over the member
    probes. Boundary side: upward reports, inbound root tunes, ring
    gossip of the dynamic-entity view, and uplink heartbeats.
    """

    def __init__(self, world: "_ShardWorld", cluster) -> None:
        self.world = world
        self.name = cluster.name
        self.aggregator = cluster.aggregator
        self.members = cluster.islands
        topo = world.topology
        self.is_root = self.aggregator == topo.root
        aggs = topo.aggregators
        self.ring_next = aggs[(aggs.index(self.aggregator) + 1) % len(aggs)]
        #: Dynamic-entity view: name -> (epoch, version, registered_at),
        #: plus the local discovery time of each entry.
        self.view: dict[str, tuple[int, int, int]] = {}
        self.seen_at: dict[str, int] = {}
        self.reports_sent = 0
        self.reports_suppressed = 0
        self.tunes_received = 0
        router, sim = world.router, world.sim
        router.register(self.aggregator, "tune", self._on_tune)
        router.register(self.aggregator, "gossip", self._on_gossip)
        if not self.is_root:
            router.register(self.aggregator, "announce", self._on_announce)
            router.register(self.aggregator, "sync", self._on_sync)
            self.uplink = LinkHealth(sim, router, self.aggregator, topo.root)
            self.uplink.on_up(self._replay_view)
        else:
            self.uplink = None
        PeriodicTask(sim, POLICY_PERIOD, self._policy, name=f"policy-{self.name}")
        PeriodicTask(sim, GOSSIP_PERIOD, self._gossip, name=f"gossip-{self.name}")

    # -- local QoS policy + upward report ------------------------------------

    def _policy(self) -> None:
        world = self.world
        worst_member, worst_mean, total = self.members[0], -1.0, 0.0
        for member in self.members:
            mean = world.reset_recent(member)
            total += mean
            if mean > worst_mean:
                worst_member, worst_mean = member, mean
            delta = world.decide(member, mean)
            if delta:
                world.islands[member].apply_tune(EntityId(member, "probe"), delta)
                world.tunes_local[member] += 1
        payload = {
            "cluster": self.name,
            "mean": total / len(self.members),
            "worst": worst_member,
            "worst_mean": worst_mean,
        }
        if self.is_root:
            self.world.root.receive_report(payload)
        elif self.uplink.is_down:
            self.reports_suppressed += 1
        else:
            self.world.router.send(
                self.aggregator, self.world.topology.root, "report",
                payload, self.world.sim.now,
            )
            self.reports_sent += 1

    def _on_tune(self, message) -> None:
        member = message.payload["member"]
        self.world.islands[member].apply_tune(
            EntityId(member, "probe"), message.payload["delta"]
        )
        self.tunes_received += 1

    # -- the dynamic-entity view ---------------------------------------------

    def merge(self, name: str, stamp: tuple[int, int, int]) -> bool:
        """Adopt ``stamp`` if it is news; returns whether it was."""
        current = self.view.get(name)
        if current is not None and current[:2] >= stamp[:2]:
            return False
        self.view[name] = stamp
        self.seen_at.setdefault(name, self.world.sim.now)
        return True

    def register_entity(self, name: str, now: int) -> None:
        """A new entity appeared on this cluster: version it, try to
        announce it upward (a blackout may swallow the attempt)."""
        epoch = self.uplink.epoch if self.uplink is not None else 0
        self.merge(name, (epoch, 1, now))
        if self.is_root:
            self.world.root.receive_announce(name, self.view[name], origin=self.name)
        else:
            self.world.router.send(
                self.aggregator, self.world.topology.root, "announce",
                {"name": name, "stamp": self.view[name]}, now,
            )

    def _on_announce(self, message) -> None:
        self.merge(message.payload["name"], tuple(message.payload["stamp"]))

    def _on_sync(self, message) -> None:
        for name, stamp in sorted(message.payload["view"].items()):
            self.merge(name, tuple(stamp))

    def _gossip(self) -> None:
        if not self.view:
            return
        self.world.router.send(
            self.aggregator, self.ring_next, "gossip",
            {"view": dict(self.view)}, self.world.sim.now,
        )

    def _on_gossip(self, message) -> None:
        for name, stamp in sorted(message.payload["view"].items()):
            self.merge(name, tuple(stamp))

    def _replay_view(self) -> None:
        """Uplink recovery (epoch bumped): replay every known dynamic
        entity upward so the root can fan out whatever the fabric missed."""
        now = self.world.sim.now
        for name in sorted(self.view):
            epoch, version, registered_at = self.view[name]
            stamp = (max(epoch, self.uplink.epoch), version + 1, registered_at)
            self.view[name] = stamp
            self.world.router.send(
                self.aggregator, self.world.topology.root, "announce",
                {"name": name, "stamp": stamp}, now,
            )

    def collect(self) -> dict[str, Any]:
        return {
            "reports_sent": self.reports_sent,
            "reports_suppressed": self.reports_suppressed,
            "tunes_received": self.tunes_received,
            "view": {name: tuple(stamp) for name, stamp in self.view.items()},
            "seen_at": dict(self.seen_at),
            "health": None if self.uplink is None else self.uplink.health(),
        }


class _RootAgent:
    """The fabric root: cluster-load ledger, global tune policy, and the
    announce fan-out hub. Lives on whichever shard owns the root."""

    def __init__(self, world: "_ShardWorld", agent: _ClusterAgent) -> None:
        self.world = world
        self.agent = agent  # the root is also cluster-0's aggregator
        self.cluster_loads: dict[str, dict] = {}
        self.reports_received = 0
        self.tunes_sent = 0
        self.announces_relayed = 0
        topo = world.topology
        self.downlinks = {}
        for cluster in topo.clusters:
            if cluster.aggregator != topo.root:
                link = LinkHealth(world.sim, world.router, topo.root, cluster.aggregator)
                link.on_up(lambda agg=cluster.aggregator: self._sync_peer(agg))
                self.downlinks[cluster.aggregator] = link
        world.router.register(topo.root, "report", self._on_report)
        world.router.register(topo.root, "announce", self._on_announce)
        PeriodicTask(world.sim, POLICY_PERIOD, self._policy, name="root-policy")

    def receive_report(self, payload: dict) -> None:
        self.reports_received += 1
        self.cluster_loads[payload["cluster"]] = payload

    def _on_report(self, message) -> None:
        self.receive_report(message.payload)

    def _policy(self) -> None:
        """Tune the worst over-budget cluster's worst probe upward."""
        over = [
            load for load in self.cluster_loads.values()
            if load["worst_mean"] > LATENCY_HIGH
        ]
        if not over:
            return
        worst = max(over, key=lambda load: (load["worst_mean"], load["cluster"]))
        aggregator = self.world.topology.cluster_named(worst["cluster"]).aggregator
        payload = {"member": worst["worst"], "delta": ROOT_TUNE_DELTA}
        if aggregator == self.world.topology.root:
            self.agent._on_tune(_LocalTune(payload))
        else:
            self.world.router.send(
                self.world.topology.root, aggregator, "tune",
                payload, self.world.sim.now,
            )
        self.tunes_sent += 1

    def receive_announce(self, name: str, stamp, origin: str) -> None:
        """Merge and fan out to every other cluster's aggregator."""
        if not self.agent.merge(name, tuple(stamp)):
            return
        topo = self.world.topology
        for cluster in topo.clusters:
            if cluster.name == origin or cluster.aggregator == topo.root:
                continue
            self.world.router.send(
                topo.root, cluster.aggregator, "announce",
                {"name": name, "stamp": tuple(stamp)}, self.world.sim.now,
            )
            self.announces_relayed += 1

    def _on_announce(self, message) -> None:
        origin = self.world.topology.cluster_of(message.src).name
        self.receive_announce(
            message.payload["name"], message.payload["stamp"], origin
        )

    def _sync_peer(self, aggregator: str) -> None:
        """Downlink recovery: push the root's full view to the healed peer."""
        self.world.router.send(
            self.world.topology.root, aggregator, "sync",
            {"view": {k: tuple(v) for k, v in self.agent.view.items()}},
            self.world.sim.now,
        )

    def collect(self) -> dict[str, Any]:
        return {
            "reports_received": self.reports_received,
            "tunes_sent": self.tunes_sent,
            "announces_relayed": self.announces_relayed,
            "downlinks": {
                agg: link.health() for agg, link in sorted(self.downlinks.items())
            },
        }


class _LocalTune:
    """Shim so the root can hand its own cluster a tune without a link."""

    __slots__ = ("payload",)

    def __init__(self, payload: dict) -> None:
        self.payload = payload


class _ShardWorld:
    """One shard's slice of the fabric: islands, workload, agents."""

    def __init__(self, ctx, seed: int, duration: int, blackout: bool) -> None:
        self.sim = ctx.sim
        self.router = ctx.router
        self.topology = ctx.plan.topology
        topo = self.topology
        rng = RandomStreams(seed)
        index_of = {name: i for i, name in enumerate(topo.islands)}

        self.islands: dict[str, X86Island] = {}
        self.probe_stats: dict[str, OnlineStats] = {}
        self.recent: dict[str, OnlineStats] = {}
        self.tunes_local: dict[str, int] = {}
        for name in ctx.islands:
            island = X86Island(self.sim, X86Params(), name=name)
            self.islands[name] = island
            probe_vm = island.create_vm("probe")
            hog_vms = [island.create_vm(f"hog-{h}") for h in range(2)]
            self.probe_stats[name] = OnlineStats()
            self.recent[name] = OnlineStats()
            self.tunes_local[name] = 0
            self.sim.spawn(
                _probe_loop(self, probe_vm, name, rng.stream(f"probe-{name}")),
                name=f"probe-{name}",
            )
            for hog_vm in hog_vms:
                self.sim.spawn(
                    _hog_loop(self.sim, hog_vm, index_of[name] % DUTY_SLOTS),
                    name=f"hog-{name}",
                )

        owned = set(ctx.plan.clusters_of(ctx.shard_index))
        self.agents: dict[str, _ClusterAgent] = {}
        self.root: Optional[_RootAgent] = None
        for cluster in topo.clusters:
            if cluster.name not in owned:
                continue
            agent = _ClusterAgent(self, cluster)
            self.agents[cluster.name] = agent
            if agent.is_root:
                self.root = _RootAgent(self, agent)

        # The partition scenario: every shard scripts the same blackouts
        # (send-side filtering makes only the owning shards act on them),
        # and the shard owning the target cluster registers the spare.
        self.spare_registered_at: Optional[int] = None
        target_cluster = topo.clusters[-1]
        self.partition_at = duration // 2
        heal_at = (duration * 7) // 8
        if blackout:
            window = ChannelBlackout(
                start=self.partition_at,
                duration=heal_at - self.partition_at,
                direction="both",
            )
            target = target_cluster.aggregator
            for a, b, _latency in topo.cross_cluster_links():
                if target in (a, b):
                    self.router.add_blackout(a, b, window)
            if target_cluster.name in owned:
                register_at = self.partition_at + ms(60)

                def _register_spare() -> None:
                    self.islands[target].create_vm("spare")
                    self.spare_registered_at = self.sim.now
                    self.agents[target_cluster.name].register_entity(
                        "spare", self.sim.now
                    )

                self.sim.call_at(register_at, _register_spare)

    # -- workload plumbing ---------------------------------------------------

    def reset_recent(self, name: str) -> float:
        mean = self.recent[name].mean if self.recent[name].count else 0.0
        self.recent[name] = OnlineStats()
        return mean

    def decide(self, name: str, mean: float) -> int:
        probe = self.islands[name].vm("probe")
        if mean > LATENCY_HIGH:
            return +128
        if mean < LATENCY_LOW and probe.weight > 256:
            return -128
        return 0

    def collect(self) -> dict[str, Any]:
        return {
            "islands": {
                name: {
                    "probe_mean_ns": self.probe_stats[name].mean,
                    "probe_count": self.probe_stats[name].count,
                    "tunes_local": self.tunes_local[name],
                }
                for name in sorted(self.islands)
            },
            "clusters": {
                name: agent.collect() for name, agent in sorted(self.agents.items())
            },
            "root": None if self.root is None else self.root.collect(),
            "spare_registered_at": self.spare_registered_at,
        }


def _probe_loop(world: _ShardWorld, vm, name: str, jitter):
    yield world.sim.timeout(jitter.randrange(0, PROBE_PERIOD))
    while True:
        start = world.sim.now
        yield vm.execute(PROBE_DEMAND, "user")
        latency = world.sim.now - start - PROBE_DEMAND
        world.probe_stats[name].add(latency)
        world.recent[name].add(latency)
        yield world.sim.timeout(PROBE_PERIOD)


def _hog_loop(sim, vm, phase: int):
    while True:
        if (sim.now // HOT_SLOT) % DUTY_SLOTS == phase:
            yield vm.execute(ms(5), "user")
        else:
            yield sim.timeout(ms(5))


def build_fabric_world(ctx, seed: int, duration: int, blackout: bool) -> _ShardWorld:
    """Module-level world builder (pickled into shard workers)."""
    return _ShardWorld(ctx, seed, duration, blackout)


# -- the arm and the sweep ----------------------------------------------------


@dataclass
class FabricShardedArmResult:
    """One (K, shards) run: bit-equal simulation metrics + execution."""

    num_islands: int
    shards: int
    #: The full merged simulation outcome — the bit-equality artefact.
    metrics: dict
    mean_probe_latency_ms: float
    worst_probe_latency_ms: float
    root_reports: int
    root_tunes: int
    detect_ms: Optional[float]
    convergence_ms: Optional[float]
    recovery_epoch: int
    #: Execution side: allowed (expected!) to differ between arms.
    engine: str
    windows: int
    events: int
    wall_seconds: float

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _merge_shard_results(shard_results: list, counters: dict) -> dict:
    """Fold per-shard ``collect()`` payloads into one layout-independent
    view of the fabric — the dict two arms must agree on bit-for-bit."""
    merged: dict[str, Any] = {
        "islands": {}, "clusters": {}, "root": None,
        "spare_registered_at": None,
        # The supervision.* keys describe the harness (journal volume,
        # recovery events) and legitimately differ across shard layouts;
        # only the simulation-side counters belong in the artefact.
        "boundary": {
            key: value
            for key, value in counters.items()
            if not key.startswith("supervision.")
        },
    }
    for entry in shard_results:
        merged["islands"].update(entry["islands"])
        merged["clusters"].update(entry["clusters"])
        if entry["root"] is not None:
            merged["root"] = entry["root"]
        if entry["spare_registered_at"] is not None:
            merged["spare_registered_at"] = entry["spare_registered_at"]
    return merged


def run_fabric_sharded_arm(
    num_islands: int,
    shards: int = 1,
    duration: int = seconds(1),
    seed: int = 1,
    fastpath: bool = True,
    workers: Optional[int] = None,
    blackout: bool = True,
    fanout: int = FANOUT,
) -> FabricShardedArmResult:
    """Run the sharded fabric once at one (K, shards) point."""
    topology = sharded_topology(num_islands, fanout=fanout)
    plan = ShardPlan(topology, shards=shards)
    run = run_sharded(
        plan, build_fabric_world, (seed, duration, blackout),
        duration=duration, fastpath=fastpath, workers=workers,
    )
    metrics = _merge_shard_results(run.results, run.counters)
    metrics["windows"] = run.windows
    metrics["undelivered"] = run.undelivered

    latencies = {
        name: data["probe_mean_ns"] / 1e6
        for name, data in metrics["islands"].items()
    }
    root = metrics["root"] or {}
    target = topology.clusters[-1].name
    target_data = metrics["clusters"].get(target, {})
    health = target_data.get("health") or {}
    detect = next(
        (
            (when - duration // 2) / 1e6
            for when, state, _reason in health.get("transitions", ())
            if state == "down"
        ),
        None,
    )
    registered = metrics["spare_registered_at"]
    convergence: Optional[float] = None
    if registered is not None:
        seen = [
            data["seen_at"].get("spare")
            for data in metrics["clusters"].values()
        ]
        if all(when is not None for when in seen):
            convergence = (max(seen) - registered) / 1e6
    return FabricShardedArmResult(
        num_islands=num_islands,
        shards=plan.shards,
        metrics=metrics,
        mean_probe_latency_ms=sum(latencies.values()) / len(latencies),
        worst_probe_latency_ms=max(latencies.values()),
        root_reports=root.get("reports_received", 0),
        root_tunes=root.get("tunes_sent", 0),
        detect_ms=detect,
        convergence_ms=convergence,
        recovery_epoch=health.get("epoch", 0),
        engine=run.engine,
        windows=run.windows,
        events=run.events,
        wall_seconds=run.wall_seconds,
    )


def run_fabric_sharded(
    island_counts=(128, 512, 2048),
    shards: int = 4,
    duration: int = seconds(1),
    seed: int = 1,
    workers: Optional[int] = None,
) -> dict[int, tuple[FabricShardedArmResult, FabricShardedArmResult]]:
    """The sweep: for each K, a single-process reference run and a
    sharded run — asserted bit-identical before anything is reported."""
    results = {}
    for count in island_counts:
        clusters = (count + FANOUT - 1) // FANOUT
        arm_shards = min(shards, clusters)
        reference = run_fabric_sharded_arm(
            count, shards=1, duration=duration, seed=seed
        )
        sharded = run_fabric_sharded_arm(
            count, shards=arm_shards, duration=duration, seed=seed,
            workers=workers,
        )
        if sharded.metrics != reference.metrics:
            raise AssertionError(
                f"sharded run diverged from the single-process reference at "
                f"K={count}, shards={arm_shards}"
            )
        results[count] = (reference, sharded)
    return results


def render_fabric_sharded(
    results: dict[int, tuple[FabricShardedArmResult, FabricShardedArmResult]]
) -> str:
    """Tabulate QoS, fault handling and execution per K."""
    rows = []
    for count in sorted(results):
        reference, sharded = results[count]
        speedup = (
            reference.wall_seconds / sharded.wall_seconds
            if sharded.wall_seconds > 0 else 0.0
        )
        rows.append((
            str(count),
            f"{sharded.shards} ({sharded.engine})",
            f"{sharded.mean_probe_latency_ms:.2f}",
            f"{sharded.worst_probe_latency_ms:.2f}",
            str(sharded.root_tunes),
            "-" if sharded.detect_ms is None else f"{sharded.detect_ms:.0f}",
            "-" if sharded.convergence_ms is None
            else f"{sharded.convergence_ms:.1f}",
            f"{reference.events_per_second / 1e3:.0f}",
            f"{sharded.events_per_second / 1e3:.0f}",
            f"{speedup:.2f}x",
        ))
    return render_table(
        ["K", "Shards", "Mean probe (ms)", "Worst probe (ms)", "Root tunes",
         "Detect (ms)", "Converge (ms)", "kEv/s x1", "kEv/s xN", "Speedup"],
        rows,
        title="Extension: sharded fabric execution "
              "(every row bit-identical to its single-process reference)",
    )
