"""Extension experiment: energy/QoS co-optimization across DVFS, LLC
partitioning and memory bandwidth (the paper's §5 coordinated-management
thesis applied to the uncore).

Three consolidated guest domains share the x86 island's cores, LLC and
memory pipe:

* ``web``   — latency-critical and cache-hungry (a big working set whose
  miss ratio collapses only with most of the LLC);
* ``db``    — bandwidth-heavy (streaming scans: modest cache benefit,
  lots of memory traffic);
* ``batch`` — compute-bound best-effort work with a loose deadline, the
  natural way donor.

All three arms run the identical workload from the identical seed; only
the governor differs:

* ``coordinated``    — the joint greedy search over (dvfs × ways × bw ×
  prefetch): fix stalls with partition moves, then convert the bought
  slack into downward DVFS steps;
* ``dvfs-only``      — frequency is the only lever (the classic
  per-resource governor); cache starvation looks like load, so it burns
  frequency without fixing the stalls;
* ``partition-only`` — ways/bandwidth/prefetch move but the ladder is
  pinned at nominal: QoS is met, energy is not recovered.

The expected artefact: coordinated meets every per-VM p95 target at
strictly lower platform energy than both ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..coordination.energy_policy import ENERGY_QOS_MODES, EnergyQosGovernor, QosTarget
from ..metrics.energyqos import EnergyQosCollector, WindowedQosSource
from ..power import PowerMeter
from ..sim import ms, seconds, to_seconds
from ..testbed import Testbed, TestbedConfig
from ..x86 import MemoryProfile, MemorySystem, MemorySystemParams
from .report import render_table

#: Per-VM deployment shape: (memory profile, initial ways, per-request
#: CPU demand, closed-loop clients, think time, p95 target).
@dataclass(frozen=True, slots=True)
class GuestSpec:
    """One consolidated guest of the energy/QoS workload."""

    name: str
    profile: MemoryProfile
    ways: int
    demand: int
    clients: int
    think: int
    p95_target_ms: float
    #: Boot-time prefetcher throttle percent (a mis-set uncoordinated
    #: default the governors may re-aim).
    prefetch: int = 0


#: The consolidated three-guest scenario (16 LLC ways total).
GUEST_SPECS = (
    GuestSpec(
        name="web",
        profile=MemoryProfile(
            mem_fraction=0.6, ways_needed=12, base_miss=0.05, bw_demand_gbps=2.5
        ),
        ways=5,
        demand=ms(8),
        clients=3,
        think=ms(50),
        p95_target_ms=25.0,
        # Boot default has web's prefetcher off: re-aiming it is the
        # cheapest stall reduction available, but its waste traffic then
        # contends with the db's streams — the CBP trade-off.
        prefetch=100,
    ),
    GuestSpec(
        name="db",
        profile=MemoryProfile(
            mem_fraction=0.35, ways_needed=4, base_miss=0.3, bw_demand_gbps=7.0
        ),
        ways=5,
        demand=ms(6),
        clients=2,
        think=ms(60),
        p95_target_ms=25.0,
    ),
    GuestSpec(
        name="batch",
        profile=MemoryProfile(
            mem_fraction=0.1, ways_needed=2, base_miss=0.1, bw_demand_gbps=0.5
        ),
        ways=6,
        demand=ms(12),
        clients=1,
        think=ms(80),
        p95_target_ms=90.0,
    ),
)

#: Memory-pipe capacity: tight enough that the db's streaming traffic
#: (with aggressive prefetch) contends, so the bandwidth-share and
#: prefetch-throttle dimensions of the search actually matter.
PIPE_CAPACITY_GBPS = 5.0

#: Warm-up before QoS compliance and energy are scored — long enough for
#: the governors' first partition moves to show in the 4 s QoS window.
WARMUP = seconds(8)


@dataclass
class EnergyQosArmResult:
    """One arm of the energy/QoS experiment."""

    mode: str
    energy_j: float
    mean_power_w: float
    violations: int
    checks: int
    violations_by_vm: dict[str, int]
    p95_ms: dict[str, float]
    final_speed: float
    actuations: dict[str, int]
    governor: dict[str, int]


@dataclass
class EnergyQosResult:
    """All three arms plus the targets they were scored against."""

    targets: dict[str, float]
    arms: dict[str, EnergyQosArmResult]

    def arm(self, mode: str) -> EnergyQosArmResult:
        """Result of one arm by mode name."""
        return self.arms[mode]


def _client_loop(sim, vm, source, rng, spec: GuestSpec):
    """One closed-loop client: think, submit, record response time."""
    while True:
        yield sim.timeout(max(1, int(rng.exponential(spec.think))))
        start = sim.now
        yield vm.execute(spec.demand)
        source.record(spec.name, sim.now - start)


def run_energy_qos_arm(
    mode: str,
    seed: int = 1,
    duration: int = seconds(40),
    fastpath: Optional[bool] = None,
) -> EnergyQosArmResult:
    """Run one arm of the energy/QoS experiment.

    ``fastpath`` pins the simulator kernel mode for determinism audits;
    None keeps the build default.
    """
    if mode not in ENERGY_QOS_MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {ENERGY_QOS_MODES}")
    testbed = Testbed(TestbedConfig(seed=seed))
    if fastpath is not None:
        testbed.sim._fastpath = fastpath

    memory = MemorySystem(
        MemorySystemParams(capacity_gbps=PIPE_CAPACITY_GBPS), tracer=testbed.tracer
    )
    testbed.x86.attach_memory_system(memory)
    source = WindowedQosSource(testbed.sim, window=seconds(4))
    targets = [QosTarget(vm=s.name, p95_ms=s.p95_target_ms) for s in GUEST_SPECS]
    for spec in GUEST_SPECS:
        vm, _nic = testbed.create_guest_vm(spec.name, uses_ixp=False)
        testbed.x86.memory_manage(
            vm, spec.profile, ways=spec.ways, prefetch_throttle=spec.prefetch
        )
        rng = testbed.rng.stream(f"energyqos-{spec.name}")
        for _ in range(spec.clients):
            testbed.sim.spawn(
                _client_loop(testbed.sim, vm, source, rng, spec),
                name=f"client-{spec.name}",
            )

    meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp, window=seconds(1))
    governor = EnergyQosGovernor(
        testbed.sim,
        testbed.x86,
        meter,
        source,
        targets,
        mode=mode,
        tracer=testbed.tracer,
    )
    collector = EnergyQosCollector(
        testbed.sim,
        {t.vm: t.p95_ms for t in targets},
        source,
        measure_from=WARMUP,
    )
    testbed.run(WARMUP + duration)

    measured = meter.samples[WARMUP // meter.window:]
    mean_w = sum(s.total_w for s in measured) / len(measured) if measured else 0.0
    energy_j = sum(s.total_w for s in measured) * to_seconds(meter.window)
    return EnergyQosArmResult(
        mode=mode,
        energy_j=energy_j,
        mean_power_w=mean_w,
        violations=collector.violations,
        checks=len(collector.checks),
        violations_by_vm=dict(collector.violations_by_vm),
        p95_ms={s.name: source.p95_ms(s.name) or 0.0 for s in GUEST_SPECS},
        final_speed=testbed.x86.scheduler.cpus[0].speed,
        actuations=collector.actuation_counts(testbed.x86.knobs),
        governor=governor.stats(),
    )


def run_energy_qos(seed: int = 1, duration: int = seconds(40)) -> EnergyQosResult:
    """Run the coordinated mode and both ablations."""
    return EnergyQosResult(
        targets={s.name: s.p95_target_ms for s in GUEST_SPECS},
        arms={
            mode: run_energy_qos_arm(mode, seed=seed, duration=duration)
            for mode in ENERGY_QOS_MODES
        },
    )


def render_energy_qos(result: EnergyQosResult) -> str:
    """Tabulate energy, QoS compliance and actuations per mode."""
    rows = []
    for mode in ENERGY_QOS_MODES:
        arm = result.arm(mode)
        acts = arm.actuations
        rows.append((
            mode,
            f"{arm.energy_j:.0f}",
            f"{arm.mean_power_w:.1f}",
            f"{arm.violations}/{arm.checks}",
            " ".join(f"{vm}:{arm.p95_ms[vm]:.0f}" for vm in result.targets),
            f"{arm.final_speed:.2f}",
            f"{acts['dvfs-level']}",
            f"{acts['llc-ways']}+{acts['bw-share']}+{acts['prefetch-throttle']}",
        ))
    targets = " ".join(f"{vm}:{t:.0f}" for vm, t in result.targets.items())
    return render_table(
        ["Governor", "Energy (J)", "Mean power (W)", "QoS violations",
         "p95 (ms)", "Final DVFS", "DVFS tunes", "Uncore tunes"],
        rows,
        title=f"Extension: energy/QoS co-optimization (p95 targets ms — {targets})",
    )
