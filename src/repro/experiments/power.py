"""Extension experiment: platform power capping with and without
cross-island coordination (the paper's §1 power use case, §5 future work).

Three arms run the RUBiS workload under the same platform conditions:

* ``none``  — no power cap (reference for QoS and for the uncapped draw);
* ``local`` — the x86 island enforces its share of the cap alone,
  reserving the IXP card's rated power;
* ``coord`` — the IXP reports measured draw over the coordination channel
  and the x86 governor budgets against actuals plus a guard band.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.rubis import RubisConfig, deploy_rubis
from ..power import CoordinatedPowerCapGovernor, LocalPowerCapGovernor, PowerMeter
from ..sim import ms, seconds
from ..testbed import TestbedConfig
from .report import render_table

#: Default platform cap (watts): below the uncapped draw, above the floor.
DEFAULT_CAP_W = 48.0

ARMS = ("none", "local", "coord")


@dataclass
class PowerCapArmResult:
    """One arm of the power-cap experiment."""

    mode: str
    throughput: float
    mean_response_ms: float
    p95_response_ms: float
    mean_power_w: float
    peak_power_w: float
    final_speed: float
    reports_received: int = 0


@dataclass
class PowerCapResult:
    """All three arms."""

    cap_w: float
    arms: dict[str, PowerCapArmResult]

    def arm(self, mode: str) -> PowerCapArmResult:
        """Result of one arm by mode name."""
        return self.arms[mode]


def _workload_config(seed: int) -> RubisConfig:
    return RubisConfig(
        num_sessions=60,
        think_time_mean=ms(600),
        warmup=seconds(5),
        testbed=TestbedConfig(seed=seed, driver_poll_burn_duty=0.5),
    )


def run_power_cap_arm(
    mode: str, cap_w: float = DEFAULT_CAP_W, seed: int = 1, duration: int = seconds(40)
) -> PowerCapArmResult:
    """Run one arm of the power-cap experiment."""
    if mode not in ARMS:
        raise ValueError(f"unknown mode {mode!r}; expected one of {ARMS}")
    deployment = deploy_rubis(_workload_config(seed))
    testbed = deployment.testbed
    meter = PowerMeter(testbed.sim, testbed.x86, testbed.ixp)
    governor = None
    if mode == "local":
        governor = LocalPowerCapGovernor(
            testbed.sim, meter, testbed.x86, platform_cap_w=cap_w
        )
    elif mode == "coord":
        governor = CoordinatedPowerCapGovernor(
            testbed.sim,
            meter,
            testbed.x86,
            testbed.x86_agent,
            testbed.ixp_agent,
            platform_cap_w=cap_w,
        )
    deployment.run(seconds(5) + duration)

    stats = deployment.client.stats
    overall = stats.responses.overall_summary_ms()
    return PowerCapArmResult(
        mode=mode,
        throughput=stats.throughput.rate_per_second(),
        mean_response_ms=overall.mean,
        p95_response_ms=overall.p95,
        mean_power_w=meter.mean_total_w(skip_first=5),
        peak_power_w=meter.peak_total_w(),
        final_speed=testbed.x86.scheduler.cpus[0].speed,
        reports_received=(
            governor.reports_received
            if isinstance(governor, CoordinatedPowerCapGovernor)
            else 0
        ),
    )


def run_power_cap(cap_w: float = DEFAULT_CAP_W, seed: int = 1) -> PowerCapResult:
    """Run all three arms."""
    return PowerCapResult(
        cap_w=cap_w,
        arms={mode: run_power_cap_arm(mode, cap_w=cap_w, seed=seed) for mode in ARMS},
    )


def render_power_cap(result: PowerCapResult) -> str:
    """Tabulate QoS and power per arm."""
    rows = []
    for mode in ARMS:
        arm = result.arm(mode)
        rows.append(
            (
                mode,
                f"{arm.throughput:.1f}",
                f"{arm.mean_response_ms:.0f}",
                f"{arm.p95_response_ms:.0f}",
                f"{arm.mean_power_w:.1f}",
                f"{arm.final_speed:.2f}",
            )
        )
    return render_table(
        ["Governor", "Throughput (req/s)", "Mean resp (ms)", "p95 (ms)",
         "Mean power (W)", "Final DVFS"],
        rows,
        title=f"Extension: platform power cap at {result.cap_w:.0f} W",
    )
