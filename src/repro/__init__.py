"""repro — coordinated resource management in heterogeneous multicore
platforms.

A full-system, discrete-event reproduction of Tembey, Gavrilovska &
Schwan's WIOSCA 2010 case paper: an IXP2850-like network-processor island
and a Xen-credit-scheduled x86 island, joined by a PCIe message path and a
coordination channel carrying the paper's two standard mechanisms —
**Tune** and **Trigger** — plus the RUBiS and MPlayer workloads used to
evaluate them.

Quick start::

    from repro import Testbed, TestbedConfig

    testbed = Testbed(TestbedConfig(seed=7))
    vm, nic = testbed.create_guest_vm("my-service")
    client = testbed.add_client_host("client")
    ...
    testbed.run(until=...)

or run a whole paper experiment::

    from repro.experiments import run_rubis_pair, render_table1

    pair = run_rubis_pair()
    print(render_table1(pair))
"""

from .platform import EntityId, GlobalController, Island
from .shard import ShardConfig
from .testbed import (
    ChannelConfig,
    ClientHost,
    FabricTestbed,
    Testbed,
    TestbedConfig,
    build_testbed,
)

__version__ = "1.0.0"

__all__ = [
    "ChannelConfig",
    "ClientHost",
    "EntityId",
    "GlobalController",
    "Island",
    "FabricTestbed",
    "ShardConfig",
    "Testbed",
    "TestbedConfig",
    "build_testbed",
    "__version__",
]
