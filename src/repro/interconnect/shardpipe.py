"""Seq-numbered framing over inter-process pipes (the shard transport).

The sharded execution mode (:mod:`repro.shard`) runs shard workers in
separate OS processes and exchanges window grants, boundary-message
batches and results over :mod:`multiprocessing` pipes. An OS pipe is
lossless and ordered, so this module carries the PR-1 reliable-frame
idiom in its cheapest form: every frame is sequence-numbered like a
:class:`~repro.interconnect.reliable.DataFrame`, but the numbers are an
*integrity check* rather than an ARQ — a gap, a reorder or an unexpected
kind is a protocol bug in the coordinator/worker state machines and is
raised immediately instead of retransmitted around.

Two liveness features serve the supervision layer
(:mod:`repro.shard.supervisor`):

* :meth:`FramedConnection.send` is thread-safe (one lock per endpoint),
  so a worker's heartbeat thread can prove the process alive with
  ``HEARTBEAT`` frames while the main thread simulates a window;
* :meth:`FramedConnection.recv` accepts a wall-clock ``timeout`` and
  raises :class:`ShardTimeoutError` instead of blocking forever on a
  hung peer — the primitive barrier deadlines are built from.

Determinism note: frames carry only picklable simulation *data* (times,
message batches, metric payloads), never live simulator objects, so what
crosses a pipe is exactly what an in-process shard would have handed
over by reference. Heartbeats are wall-clock chatter and never carry
simulation state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional, Sequence


class ShardProtocolError(RuntimeError):
    """A frame violated the inter-shard protocol (gap, reorder, bad kind)."""


class ShardTimeoutError(TimeoutError):
    """No frame arrived within the recv deadline (peer hung or wedged)."""


#: Frame kind workers emit from their liveness thread; consumes sequence
#: numbers like any frame but carries no simulation data, so receivers
#: may skip any number of them without protocol consequence.
HEARTBEAT = "heartbeat"


@dataclass(frozen=True, slots=True)
class ShardFrame:
    """One sequence-numbered frame on an inter-shard pipe."""

    seq: int
    kind: str
    payload: Any = None

    def __repr__(self) -> str:
        return f"ShardFrame(#{self.seq}, {self.kind!r})"


class FramedConnection:
    """A duplex pipe endpoint speaking sequence-numbered frames.

    Wraps a :class:`multiprocessing.connection.Connection` (or anything
    with ``send``/``recv``/``poll``/``close``). Each direction numbers
    its frames 0, 1, 2, ... independently; :meth:`recv` asserts the next
    frame is exactly the one expected, so a desynchronized peer fails
    loudly at the first frame instead of silently skewing a simulation
    window.
    """

    def __init__(self, conn):
        self._conn = conn
        self._tx_seq = 0
        self._rx_seq = 0
        # Serializes sends: the worker's heartbeat thread and its main
        # thread share one endpoint, and both the seq counter and the
        # underlying pipe write must be atomic per frame.
        self._tx_lock = threading.Lock()

    def send(self, kind: str, payload: Any = None) -> ShardFrame:
        """Send one frame; returns it (mostly for tests/diagnostics).

        Thread-safe: concurrent senders are serialized, so frames are
        numbered and written atomically.
        """
        with self._tx_lock:
            frame = ShardFrame(self._tx_seq, kind, payload)
            self._tx_seq += 1
            self._conn.send(frame)
        return frame

    def recv(
        self,
        expect: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
    ) -> ShardFrame:
        """Receive the next frame, validating seq contiguity (and, when
        ``expect`` is given, the frame kind).

        Blocks until a frame is available, or — with ``timeout`` (wall
        seconds) — raises :class:`ShardTimeoutError` once the deadline
        passes with nothing on the pipe.
        """
        if timeout is not None and not self._conn.poll(timeout):
            raise ShardTimeoutError(
                f"no frame within {timeout:.3f}s (awaiting seq {self._rx_seq})"
            )
        frame = self._conn.recv()
        if not isinstance(frame, ShardFrame):
            raise ShardProtocolError(f"expected a ShardFrame, got {frame!r}")
        if frame.seq != self._rx_seq:
            raise ShardProtocolError(
                f"frame gap: expected seq {self._rx_seq}, got {frame!r}"
            )
        self._rx_seq += 1
        if expect is not None and frame.kind not in expect:
            raise ShardProtocolError(
                f"expected a frame of kind {tuple(expect)}, got {frame!r}"
            )
        return frame

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a frame is ready to :meth:`recv`."""
        return self._conn.poll(timeout)

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:
        return f"<FramedConnection tx={self._tx_seq} rx={self._rx_seq}>"
