"""Host-IXP message queues (descriptor rings).

"Communication with the host is performed via one or more message queues
between Dom0 and the IXP. The message queues contain descriptors to
locations in a buffer pool region where packet payloads reside" (paper
§2.1). We carry the packet object itself as the descriptor; capacity is in
descriptors, as in the real rings.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Store, StoreGet
from ..net import Packet


class MessageRing:
    """A bounded descriptor ring with a non-empty notification hook."""

    def __init__(self, sim: Simulator, name: str, capacity: int = 1024):
        self.sim = sim
        self.name = name
        self._store: Store[Packet] = Store(sim, capacity=capacity, name=name)
        #: Invoked (if set) whenever a descriptor lands in an empty ring —
        #: this is the hardware's "interrupt the host" hookup point.
        self.on_first_descriptor: Optional[Callable[[], None]] = None
        self.pushed = 0
        self.full_rejections = 0

    @property
    def capacity(self) -> int:
        """Ring size in descriptors."""
        return self._store.capacity or 0

    def push(self, packet: Packet) -> bool:
        """Post a descriptor; False when the ring is full."""
        was_empty = len(self._store) == 0
        if not self._store.try_put(packet):
            self.full_rejections += 1
            return False
        self.pushed += 1
        if was_empty and self.on_first_descriptor is not None:
            self.on_first_descriptor()
        return True

    def pop(self) -> Optional[Packet]:
        """Take one descriptor without blocking (None when empty)."""
        return self._store.try_get()

    def get(self) -> StoreGet:
        """Blocking take: event that fires with the next descriptor."""
        return self._store.get()

    def cancel_get(self, event: StoreGet) -> bool:
        """Withdraw a pending blocking take."""
        return self._store.cancel_get(event)

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:
        return f"<MessageRing {self.name} {len(self)}/{self.capacity}>"
