"""The inter-island coordination channel.

"Part of the PCI configuration space of the IXP device is used to setup a
coordination channel between the IXP and the x86 host, used for exchanging
messages between the two islands which drive various coordination schemes"
(paper §2.3). The channel is symmetric, message-based and — critically for
the paper's observed artefacts — *slow*: one-way latency is a first-class
knob, swept by the channel-latency ablation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..obs import span_of
from ..sim import Simulator, Tracer, us

#: Default one-way delivery latency over the PCI-config-space mailbox.
DEFAULT_CHANNEL_LATENCY = us(150)

MessageHandler = Callable[[Any], None]


class ChannelEndpoint:
    """One side of the coordination channel."""

    def __init__(self, channel: "CoordinationChannel", name: str):
        self.channel = channel
        self.name = name
        self._handler: Optional[MessageHandler] = None
        self._peer: Optional["ChannelEndpoint"] = None
        #: Send *attempts* — incremented whether or not the message survives
        #: the lossy mailbox. ``sent - dropped - peer.received`` is the
        #: number of messages currently in flight.
        self.sent = 0
        #: Attempts dropped by the lossy mailbox before delivery.
        self.dropped = 0
        self.received = 0

    def set_receiver(self, handler: MessageHandler) -> None:
        """Register the callback invoked for each delivered message."""
        self._handler = handler

    def send(self, message: Any) -> None:
        """Deliver ``message`` to the peer after the channel latency.

        Lossy channels silently drop messages with the configured
        probability. ``sent`` counts *attempts*; a dropped attempt is
        accounted on this endpoint (``dropped``), on the channel
        (``messages_lost``) and as a distinct ``msg-dropped`` trace, so
        ``sent - dropped - peer.received`` cleanly separates in-flight
        messages from lost ones.
        """
        if self._peer is None:
            raise RuntimeError(f"endpoint {self.name!r} is not connected")
        self.sent += 1
        channel = self.channel
        # The wire hop of a causal span: the message (or the reliable
        # frame wrapping it) entering the mailbox. Emitted per *attempt*,
        # before the loss draw, so a span's wire stage starts at its first
        # put even when that put is dropped and a retransmission delivers.
        # Guarded by the memoized wants() so span-off runs pay nothing.
        span = span_of(message) if channel.tracer.wants("span-wire") else None
        if span is not None:
            channel.tracer.emit(
                "channel", "span-wire", trace=span.trace_id, span=span.span_id,
                frm=self.name, to=self._peer.name,
            )
        if channel.blocked_senders and self.name in channel.blocked_senders:
            # Fault-injected blackout: the drop is deterministic (no RNG
            # draw, so armed-but-idle runs stay bit-identical) and keeps
            # the in-flight invariant — blocked attempts are accounted as
            # dropped/lost plus a dedicated blackout counter.
            self.dropped += 1
            channel.messages_lost += 1
            channel.messages_blacked_out += 1
            if span is not None:
                channel.tracer.emit(
                    "channel", "span-lost", trace=span.trace_id, span=span.span_id,
                    frm=self.name,
                )
            if channel.tracer.wants("msg-blackout"):
                channel.tracer.emit(
                    "channel", "msg-blackout", frm=self.name, to=self._peer.name,
                    message=repr(message),
                )
            return
        if channel.loss_probability > 0 and channel.rng.random() < channel.loss_probability:
            self.dropped += 1
            channel.messages_lost += 1
            if span is not None:
                channel.tracer.emit(
                    "channel", "span-lost", trace=span.trace_id, span=span.span_id,
                    frm=self.name,
                )
            channel.tracer.emit(
                "channel", "msg-dropped", frm=self.name, to=self._peer.name,
                message=repr(message),
            )
            return
        channel.tracer.emit(
            "channel", "msg-sent", frm=self.name, to=self._peer.name,
            message=repr(message),
        )
        peer = self._peer
        channel.sim.call_in(channel.latency, lambda: peer._receive(message))

    def _receive(self, message: Any) -> None:
        self.received += 1
        if self._handler is None:
            raise RuntimeError(f"endpoint {self.name!r} received a message but has no handler")
        self._handler(message)


class CoordinationChannel:
    """A bidirectional mailbox pair between two islands."""

    def __init__(
        self,
        sim: Simulator,
        latency: int = DEFAULT_CHANNEL_LATENCY,
        a_name: str = "ixp",
        b_name: str = "x86",
        loss_probability: float = 0.0,
        rng: Optional[object] = None,
        tracer: Optional[Tracer] = None,
    ):
        """``loss_probability`` drops each message independently — failure
        injection for testing that coordination degrades gracefully (the
        mailbox is unacknowledged, like the prototype's config-space
        channel). Requires ``rng`` (a RandomStream) when non-zero."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {loss_probability}")
        if loss_probability > 0 and rng is None:
            raise ValueError("a random stream is required for lossy channels")
        self.sim = sim
        self.latency = latency
        self.loss_probability = loss_probability
        self.rng = rng
        self.messages_lost = 0
        #: Endpoint names whose sends are currently blacked out (fault
        #: injection; managed by :class:`~repro.faults.FaultInjector`).
        #: Empty for the whole run unless a fault plan blacks out the
        #: channel — the send path pays one truthiness test.
        self.blocked_senders: set[str] = set()
        #: Attempts dropped by injected blackouts (subset of
        #: ``messages_lost``).
        self.messages_blacked_out = 0
        self.tracer = tracer or Tracer(sim, enabled=False)
        self.a = ChannelEndpoint(self, a_name)
        self.b = ChannelEndpoint(self, b_name)
        self.a._peer = self.b
        self.b._peer = self.a

    def endpoint(self, name: str) -> ChannelEndpoint:
        """Fetch an endpoint by island name."""
        if name == self.a.name:
            return self.a
        if name == self.b.name:
            return self.b
        raise KeyError(f"channel has endpoints {self.a.name!r}/{self.b.name!r}, not {name!r}")

    def stats(self) -> dict[str, int]:
        """Raw mailbox accounting: attempts, drops and deliveries."""
        return {
            "sent": self.a.sent + self.b.sent,
            "dropped": self.a.dropped + self.b.dropped,
            "received": self.a.received + self.b.received,
            "raw_lost": self.messages_lost,
            "blacked_out": self.messages_blacked_out,
        }
