"""Host-IXP interconnect: PCIe DMA, message rings, the Dom0 messaging
driver, the PCI-config-space coordination channel, and the optional
reliable delivery layer (acks, retransmission, Tune coalescing)."""

from .channel import DEFAULT_CHANNEL_LATENCY, ChannelEndpoint, CoordinationChannel
from .reliable import (
    AckFrame,
    DataFrame,
    ReliableChannel,
    ReliableConfig,
    ReliableEndpoint,
)
from .driver import (
    PER_PACKET_RX_COST,
    PER_PACKET_TX_COST,
    SERVICE_COST,
    MessagingDriver,
)
from .msgq import MessageRing
from .pcie import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, PCIeBus
from .shardpipe import (
    HEARTBEAT,
    FramedConnection,
    ShardFrame,
    ShardProtocolError,
    ShardTimeoutError,
)

__all__ = [
    "AckFrame",
    "FramedConnection",
    "HEARTBEAT",
    "ShardFrame",
    "ShardProtocolError",
    "ShardTimeoutError",
    "ChannelEndpoint",
    "CoordinationChannel",
    "DataFrame",
    "ReliableChannel",
    "ReliableConfig",
    "ReliableEndpoint",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_CHANNEL_LATENCY",
    "DEFAULT_LATENCY",
    "MessageRing",
    "MessagingDriver",
    "PCIeBus",
    "PER_PACKET_RX_COST",
    "PER_PACKET_TX_COST",
    "SERVICE_COST",
]
