"""Reliable delivery over the raw PCI-config-space mailbox.

The paper's coordination channel is an *unacknowledged* mailbox (§2.3): a
lost Tune is simply a stale weight until the next one. That is faithful to
the prototype — and it is what the paper's figures are measured over — but
policies layered on top degrade unpredictably once loss is injected. This
module adds an optional reliability layer in the spirit of MARS-style
coordination substrates: the raw channel stays untouched (and remains the
default), while :class:`ReliableEndpoint` wraps a :class:`ChannelEndpoint`
with

* sequence-numbered :class:`DataFrame` transmission,
* receiver-side acknowledgement and duplicate suppression,
* sender-side retransmission with exponential backoff and a bounded retry
  budget, and
* a dead-letter counter for frames that exhaust the budget — reliability
  degrades *gracefully* into the raw channel's semantics, it never raises.

On top of the ARQ machinery sits a generic **coalescing** hook: the owner
of an endpoint may install ``(key_fn, merge_fn)`` so that while a frame
with key K is awaiting its ack, later messages with the same key merge
into one not-yet-sent pending frame. The coordination agent uses this to
merge per-request Tune deltas for the same entity (the RUBiS classifier
emits a Tune per classified request), bounding channel occupancy to one
in-flight Tune per entity under bursty policies.

Frames are delivered in arrival order, not send order: a retransmission
can overtake a younger frame. Tune deltas are commutative so the
coordination vocabulary is insensitive to this, and the raw mailbox never
guaranteed ordering under loss anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..obs import span_of
from ..sim import Tracer, seconds, us
from .channel import ChannelEndpoint, CoordinationChannel, MessageHandler

#: Fallback floor for the retransmission timeout when the channel latency
#: is very small (e.g. the §3.3 hardware-assisted 1 us channel).
MIN_RTO = us(50)

#: A coalesce key: anything hashable, or None for "do not coalesce".
CoalesceKey = Optional[Any]
CoalesceKeyFn = Callable[[Any], CoalesceKey]
#: Merges the pending (older) message with a newer one; returning None
#: cancels the pending frame entirely (e.g. Tune deltas that sum to zero).
CoalesceMergeFn = Callable[[Any, Any], Optional[Any]]


@dataclass(frozen=True, slots=True)
class DataFrame:
    """A sequence-numbered application message on the wire."""

    seq: int
    payload: Any

    def __repr__(self) -> str:
        return f"Data(#{self.seq}, {self.payload!r})"


@dataclass(frozen=True, slots=True)
class AckFrame:
    """Receiver acknowledgement for one :class:`DataFrame`."""

    seq: int

    def __repr__(self) -> str:
        return f"Ack(#{self.seq})"


@dataclass(frozen=True)
class ReliableConfig:
    """Tunables of the reliability layer."""

    #: Initial retransmission timeout in ns. None derives it from the
    #: channel: 4x the one-way latency (one RTT of slack past the RTT),
    #: floored at MIN_RTO.
    initial_rto: Optional[int] = None
    #: Multiplicative backoff applied to the RTO after every retry.
    backoff: float = 2.0
    #: Upper bound on the (backed-off) RTO.
    max_rto: int = seconds(2)
    #: Retransmissions allowed per frame before it is dead-lettered, so a
    #: frame is transmitted at most ``1 + max_retries`` times. Zero makes
    #: the layer a pure ack/dedup observer of the raw channel.
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.initial_rto is not None and self.initial_rto <= 0:
            raise ValueError("initial_rto must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_rto <= 0:
            raise ValueError("max_rto must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


@dataclass
class _Pending:
    """Sender-side state of one unacknowledged frame."""

    seq: int
    message: Any
    key: CoalesceKey
    first_sent_at: int
    rto: int
    #: Retransmissions performed so far (0 = only the initial send).
    retries: int = 0
    #: The live RTO timer event; cancelled when the frame is acked so the
    #: dead timer does not churn the simulator heap.
    timer: Optional[Any] = None


class ReliableEndpoint:
    """One side of the channel with ack/retransmit/coalescing semantics.

    Duck-type compatible with :class:`ChannelEndpoint` where it matters:
    ``send``/``set_receiver``/``name``/``sent``/``received``, so agents and
    the XScale control core work unchanged on either flavour.
    """

    def __init__(
        self,
        raw: ChannelEndpoint,
        config: Optional[ReliableConfig] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.raw = raw
        self.name = raw.name
        self.sim = raw.channel.sim
        self.config = config or ReliableConfig()
        self.tracer = tracer or raw.channel.tracer
        self._initial_rto = self.config.initial_rto or max(
            4 * raw.channel.latency, MIN_RTO
        )
        raw.set_receiver(self._on_frame)
        self._handler: Optional[MessageHandler] = None
        self._next_seq = 0
        #: seq -> pending state of every unacknowledged frame.
        self._inflight: dict[int, _Pending] = {}
        #: coalesce key -> seq of the in-flight frame holding that key.
        self._inflight_key: dict[Any, int] = {}
        #: coalesce key -> merged message waiting for the in-flight ack.
        self._pending_merge: dict[Any, Any] = {}
        #: Receiver-side seqs already delivered (duplicate suppression).
        self._delivered_seqs: set[int] = set()
        self._coalesce_key: Optional[CoalesceKeyFn] = None
        self._coalesce_merge: Optional[CoalesceMergeFn] = None
        #: Sender-side dead-letter hook: called with the application
        #: message whose frame exhausted its retry budget, so the owner
        #: can *react* (feed a failure detector, re-plan) instead of only
        #: reading a counter after the fact. None (the default) costs one
        #: attribute test per dead letter.
        self.on_dead_letter: Optional[Callable[[Any], None]] = None
        #: Dead-lettered messages per target entity (stringified), for
        #: entity-granular channel health. Messages without an ``entity``
        #: attribute (acks, heartbeats, customs) are not keyed.
        self.dead_letters_by_entity: dict[str, int] = {}

        # -- counters (all cumulative) ----------------------------------
        #: Application messages accepted by send() (attempts, like the raw
        #: endpoint's ``sent``; coalesced messages count here too).
        self.sent = 0
        #: Unique frames put on the wire (excludes retransmissions).
        self.frames_sent = 0
        #: Frames acknowledged by the peer.
        self.frames_acked = 0
        #: Application messages delivered to the local handler.
        self.received = 0
        self.retransmits = 0
        self.dups_dropped = 0
        self.coalesced = 0
        self.dead_lettered = 0
        self.acks_sent = 0
        self.acks_received = 0

    # -- configuration ----------------------------------------------------

    def set_receiver(self, handler: MessageHandler) -> None:
        """Register the callback invoked for each delivered payload."""
        self._handler = handler

    def set_coalescer(self, key_fn: CoalesceKeyFn, merge_fn: CoalesceMergeFn) -> None:
        """Install the coalescing hooks (see module docstring)."""
        self._coalesce_key = key_fn
        self._coalesce_merge = merge_fn

    # -- send path ---------------------------------------------------------

    def send(self, message: Any) -> None:
        """Transmit ``message`` reliably (ack + retransmit until the retry
        budget is exhausted, then dead-letter silently)."""
        self.sent += 1
        key = self._coalesce_key(message) if self._coalesce_key else None
        if key is not None and key in self._inflight_key:
            self._merge_pending(key, message)
            return
        self._transmit_new(message, key)

    def _merge_pending(self, key: Any, message: Any) -> None:
        pending = self._pending_merge.get(key)
        merged = message if pending is None else self._coalesce_merge(pending, message)
        self.coalesced += 1
        self.tracer.emit(
            "reliable", "frame-coalesced", frm=self.name, key=str(key),
            cancelled=merged is None,
        )
        if pending is not None and self.tracer.wants("span-coalesced"):
            self._emit_merge_spans(key, pending, message, merged)
        if merged is None:
            # The deltas cancelled out: nothing left to send for this key.
            self._pending_merge.pop(key, None)
        else:
            self._pending_merge[key] = merged

    def _emit_merge_spans(self, key: Any, pending: Any, message: Any, merged: Any) -> None:
        """Span bookkeeping for one coalescing step: the absorbed spans are
        announced (``span-coalesced`` into the survivor) or, when the merge
        cancelled the frame outright, every participant is ``span-cancelled``.
        The survivor additionally carries the absorbed ids in its
        ``merged_from`` so the collector can close absorbed loops at apply
        time even if these events are missed."""
        old_span = span_of(pending)
        new_span = span_of(message)
        if merged is None:
            for span in (old_span, new_span):
                if span is not None:
                    self.tracer.emit(
                        "reliable", "span-cancelled", trace=span.trace_id,
                        span=span.span_id, frm=self.name, key=str(key),
                    )
            return
        survivor = span_of(merged)
        if survivor is None:
            return
        for span in (old_span, new_span):
            if span is not None and span.span_id != survivor.span_id:
                self.tracer.emit(
                    "reliable", "span-coalesced", trace=span.trace_id,
                    span=span.span_id, into=survivor.span_id, frm=self.name,
                )

    def _transmit_new(self, message: Any, key: CoalesceKey) -> None:
        seq = self._next_seq
        self._next_seq += 1
        entry = _Pending(
            seq=seq,
            message=message,
            key=key,
            first_sent_at=self.sim.now,
            rto=self._initial_rto,
        )
        self._inflight[seq] = entry
        if key is not None:
            self._inflight_key[key] = seq
        self.frames_sent += 1
        self.tracer.emit("reliable", "frame-sent", frm=self.name, seq=seq)
        self._put_on_wire(entry)

    def _put_on_wire(self, entry: _Pending) -> None:
        self.raw.send(DataFrame(entry.seq, entry.message))
        retries_at_send = entry.retries
        entry.timer = self.sim.call_in(
            entry.rto, lambda: self._on_retransmit_timer(entry.seq, retries_at_send)
        )

    def _on_retransmit_timer(self, seq: int, retries_at_send: int) -> None:
        entry = self._inflight.get(seq)
        if entry is None or entry.retries != retries_at_send:
            return  # acked meanwhile, or a newer timer owns this frame
        if entry.retries >= self.config.max_retries:
            self._dead_letter(entry)
            return
        entry.retries += 1
        entry.rto = min(int(entry.rto * self.config.backoff), self.config.max_rto)
        self.retransmits += 1
        self.tracer.emit(
            "reliable", "frame-retransmit", frm=self.name, seq=seq, retry=entry.retries
        )
        if self.tracer.wants("span-retransmit"):
            span = span_of(entry.message)
            if span is not None:
                self.tracer.emit(
                    "reliable", "span-retransmit", trace=span.trace_id,
                    span=span.span_id, retry=entry.retries, frm=self.name,
                )
        self._put_on_wire(entry)

    def _dead_letter(self, entry: _Pending) -> None:
        del self._inflight[entry.seq]
        self.dead_lettered += 1
        self.tracer.emit(
            "reliable", "frame-dead-letter", frm=self.name, seq=entry.seq,
            message=repr(entry.message),
        )
        if self.tracer.wants("span-dead"):
            span = span_of(entry.message)
            if span is not None:
                self.tracer.emit(
                    "reliable", "span-dead", trace=span.trace_id,
                    span=span.span_id, retries=entry.retries, frm=self.name,
                )
        entity = getattr(entry.message, "entity", None)
        if entity is not None:
            key = str(entity)
            self.dead_letters_by_entity[key] = self.dead_letters_by_entity.get(key, 0) + 1
        # The merged successor (if any) still deserves its own attempts:
        # a dead frame must not take queued adjustments down with it.
        self._release_key(entry)
        if self.on_dead_letter is not None:
            self.on_dead_letter(entry.message)

    def _release_key(self, entry: _Pending) -> None:
        if entry.key is None or self._inflight_key.get(entry.key) != entry.seq:
            return
        del self._inflight_key[entry.key]
        follow_up = self._pending_merge.pop(entry.key, None)
        if follow_up is not None:
            self._transmit_new(follow_up, entry.key)

    # -- receive path -----------------------------------------------------------

    def _on_frame(self, frame: Any) -> None:
        if isinstance(frame, AckFrame):
            self._on_ack(frame)
        elif isinstance(frame, DataFrame):
            self._on_data(frame)
        else:
            # Raw (unframed) message from a non-reliable sender sharing the
            # channel: pass it through with mailbox semantics.
            self.received += 1
            self._deliver(frame)

    def _on_ack(self, frame: AckFrame) -> None:
        self.acks_received += 1
        entry = self._inflight.pop(frame.seq, None)
        if entry is None:
            return  # duplicate ack (retransmitted frame acked twice)
        if entry.timer is not None:
            entry.timer.cancel()  # retire the RTO timer instead of letting
            entry.timer = None  # it fire as a guarded no-op
        self.frames_acked += 1
        self.tracer.emit(
            "reliable", "frame-acked", frm=self.name, seq=frame.seq,
            retries=entry.retries,
        )
        self._release_key(entry)

    def _on_data(self, frame: DataFrame) -> None:
        # Always re-ack: a duplicate means our previous ack was lost (or is
        # still in flight) and the sender is burning retries.
        self.acks_sent += 1
        self.raw.send(AckFrame(frame.seq))
        if frame.seq in self._delivered_seqs:
            self.dups_dropped += 1
            self.tracer.emit("reliable", "frame-dup-dropped", frm=self.name, seq=frame.seq)
            return
        self._delivered_seqs.add(frame.seq)
        self.received += 1
        self._deliver(frame.payload)

    def _deliver(self, payload: Any) -> None:
        if self._handler is None:
            raise RuntimeError(f"endpoint {self.name!r} received a message but has no handler")
        self._handler(payload)

    # -- introspection ----------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Frames sent but not yet acked or dead-lettered."""
        return len(self._inflight)

    @property
    def pending_coalesced(self) -> int:
        """Merged messages waiting for an in-flight ack before sending."""
        return len(self._pending_merge)

    def stats(self) -> dict[str, int]:
        """Snapshot of every reliability counter."""
        return {
            "sent": self.sent,
            "frames_sent": self.frames_sent,
            "frames_acked": self.frames_acked,
            "received": self.received,
            "retransmits": self.retransmits,
            "dups_dropped": self.dups_dropped,
            "coalesced": self.coalesced,
            "dead_lettered": self.dead_lettered,
            "acks_sent": self.acks_sent,
            "acks_received": self.acks_received,
            "inflight": self.inflight,
        }

    def __repr__(self) -> str:
        return f"<ReliableEndpoint {self.name} inflight={self.inflight}>"


class ReliableChannel:
    """Both sides of a :class:`CoordinationChannel`, wrapped reliably.

    The raw channel object is untouched apart from its endpoints' receive
    handlers, so its loss/latency knobs and ``messages_lost`` accounting
    keep working — acks and retransmissions ride the same lossy mailbox.
    """

    def __init__(
        self,
        channel: CoordinationChannel,
        config: Optional[ReliableConfig] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.channel = channel
        self.config = config or ReliableConfig()
        tracer = tracer or channel.tracer
        self.a = ReliableEndpoint(channel.a, self.config, tracer=tracer)
        self.b = ReliableEndpoint(channel.b, self.config, tracer=tracer)

    def endpoint(self, name: str) -> ReliableEndpoint:
        """Fetch a reliable endpoint by island name."""
        if name == self.a.name:
            return self.a
        if name == self.b.name:
            return self.b
        raise KeyError(
            f"channel has endpoints {self.a.name!r}/{self.b.name!r}, not {name!r}"
        )

    def stats(self) -> dict[str, int]:
        """Channel-wide counters: both endpoints summed, plus raw losses."""
        combined = {
            key: self.a.stats()[key] + self.b.stats()[key] for key in self.a.stats()
        }
        combined["raw_lost"] = self.channel.messages_lost
        combined["blacked_out"] = self.channel.messages_blacked_out
        return combined

    def dead_letters_by_entity(self) -> dict[str, int]:
        """Dead-lettered messages per target entity, both directions
        merged — the entity-granular view :meth:`GlobalController.
        channel_health` surfaces so operators can see *who* is losing
        coordination, not just that frames died."""
        merged = dict(self.a.dead_letters_by_entity)
        for entity, count in self.b.dead_letters_by_entity.items():
            merged[entity] = merged.get(entity, 0) + count
        return merged
