"""The Dom0 messaging driver and IXP virtual interface (ViF).

Receive path (paper §2): the IXP interrupts the host at a configurable
frequency (or the driver strictly polls); on service, outstanding
descriptors are dequeued from the host-IXP message ring, converted to
socket buffers (Dom0 system CPU), and handed to the network stack — in our
platform, the Xen bridge. Transmit converts back and posts descriptors to
the TX ring for the IXP's PCI engine to pull.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Tracer, us
from ..net import Packet
from ..x86.vm import VirtualMachine
from .msgq import MessageRing

#: Dom0 CPU cost to service one interrupt / poll pass (IRQ entry, ring scan).
SERVICE_COST = us(8)
#: Dom0 CPU cost per received descriptor (skb conversion + stack entry).
PER_PACKET_RX_COST = us(6)
#: Dom0 CPU cost per transmitted packet (skb -> packet buffer conversion).
PER_PACKET_TX_COST = us(5)


class MessagingDriver:
    """Host side of the IXP messaging interface, living in the Dom0 kernel."""

    def __init__(
        self,
        sim: Simulator,
        dom0: VirtualMachine,
        rx_ring: MessageRing,
        tx_ring: MessageRing,
        interrupt_delay: int = us(50),
        poll_period: Optional[int] = None,
        rx_batch_limit: int = 64,
        poll_burn_duty: float = 0.0,
        tracer: Optional[Tracer] = None,
    ):
        """``interrupt_delay`` is the IXP's interrupt-moderation latency:
        how long after a descriptor lands before the host gets poked. Pass
        ``poll_period`` to instead model the strict periodic polling the
        paper's driver also supports (costlier in idle CPU, similar
        latency ~ period/2).

        ``poll_burn_duty`` models the CPU appetite of an aggressive
        polling driver ("the messaging driver handles packet-receive by
        periodic polling", §2.1): the given fraction of one Dom0 VCPU is
        burned spinning on the rings regardless of traffic. Because Dom0
        competes under the same credit scheduler, this burn shrinks
        automatically when guest weights rise — one of the cross-island
        couplings coordination exploits.
        """
        self.sim = sim
        self.dom0 = dom0
        self.rx_ring = rx_ring
        self.tx_ring = tx_ring
        self.interrupt_delay = interrupt_delay
        self.poll_period = poll_period
        self.rx_batch_limit = rx_batch_limit
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._deliver: Optional[Callable[[Packet], None]] = None
        self._service_pending = False
        self.rx_delivered = 0
        self.tx_posted = 0
        self.tx_dropped = 0

        if poll_period is not None:
            sim.spawn(self._poll_loop(), name="msgdriver-poll")
        else:
            rx_ring.on_first_descriptor = self._raise_interrupt
        self.poll_burn_duty = poll_burn_duty
        if poll_burn_duty > 0:
            if not 0 < poll_burn_duty <= 1:
                raise ValueError(f"poll_burn_duty must be in (0, 1], got {poll_burn_duty}")
            sim.spawn(self._poll_burn_loop(), name="msgdriver-poll-burn")

    # -- wiring -----------------------------------------------------------

    def connect_stack(self, deliver: Callable[[Packet], None]) -> None:
        """Attach the ViF's hand-off into the host network stack (bridge)."""
        self._deliver = deliver

    # -- receive path --------------------------------------------------------

    def _raise_interrupt(self) -> None:
        if self._service_pending:
            return
        self._service_pending = True
        self.sim.call_in(self.interrupt_delay, self._start_service)

    def _start_service(self) -> None:
        self.sim.spawn(self._service_rx(), name="msgdriver-rx-service")

    def _service_rx(self):
        """One interrupt service pass: drain the ring in batches."""
        yield self.dom0.execute(SERVICE_COST, kind="sys")
        drained = 0
        while drained < self.rx_batch_limit:
            packet = self.rx_ring.pop()
            if packet is None:
                break
            yield self.dom0.execute(PER_PACKET_RX_COST, kind="sys")
            packet.stamp("vif-rx", self.sim.now)
            self.rx_delivered += 1
            if self._deliver is None:
                raise RuntimeError("messaging driver has no stack attached")
            self._deliver(packet)
            drained += 1
        self._service_pending = False
        # Work may have arrived while we were draining (or the batch limit
        # stopped us): rearm immediately instead of losing the edge.
        if len(self.rx_ring) > 0:
            self._raise_interrupt()

    def _poll_loop(self):
        """Strict polling mode: check the ring every ``poll_period``."""
        while True:
            yield self.poll_period
            yield self.dom0.execute(SERVICE_COST, kind="sys")
            drained = 0
            while drained < self.rx_batch_limit:
                packet = self.rx_ring.pop()
                if packet is None:
                    break
                yield self.dom0.execute(PER_PACKET_RX_COST, kind="sys")
                packet.stamp("vif-rx", self.sim.now)
                self.rx_delivered += 1
                if self._deliver is None:
                    raise RuntimeError("messaging driver has no stack attached")
                self._deliver(packet)
                drained += 1

    def _poll_burn_loop(self):
        """Duty-cycled ring-spinning burn of the polling driver.

        Submitted as ordinary Dom0 system work so the credit scheduler
        arbitrates it against guest domains; when Dom0's share shrinks the
        poll loop simply runs less often (higher ring latency, no loss).
        """
        period = us(3000)
        burst = round(period * self.poll_burn_duty)
        gap = period - burst
        while True:
            yield self.dom0.execute(burst, kind="sys")
            if gap > 0:
                yield gap

    def transmit(self, packet: Packet) -> None:
        """ViF TX entry point: queue a packet toward the IXP (async)."""
        self.sim.spawn(self._do_transmit(packet), name="msgdriver-tx")

    def _do_transmit(self, packet: Packet):
        yield self.dom0.execute(PER_PACKET_TX_COST, kind="sys")
        packet.stamp("vif-tx", self.sim.now)
        if self.tx_ring.push(packet):
            self.tx_posted += 1
        else:
            self.tx_dropped += 1
            self.tracer.emit("msgdriver", "tx-ring-drop", pid=packet.pid)
