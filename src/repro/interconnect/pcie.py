"""The PCIe interconnect between the IXP card and the x86 host.

DMA transfers share one logical channel: each transfer pays a fixed setup
latency plus serialisation at the link bandwidth. The paper points to this
link's latency as the main source of coordination overhead ("the relatively
large latency of the PCIe-based messaging channel"), so both numbers are
explicit knobs — the channel-latency ablation sweeps them.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator, us

#: PCIe x4 gen1-era effective payload bandwidth, bytes per nanosecond.
DEFAULT_BANDWIDTH = 0.8
#: Per-transfer setup latency (doorbell + descriptor fetch).
DEFAULT_LATENCY = us(2)


class PCIeBus:
    """Serialised DMA channel with setup latency and finite bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_ns: float = DEFAULT_BANDWIDTH,
        latency: int = DEFAULT_LATENCY,
    ):
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.bandwidth = bandwidth_bytes_per_ns
        self.latency = latency
        self._channel = Resource(sim, capacity=1, name="pcie-dma")
        self.transfers = 0
        self.bytes_moved = 0

    def transfer_time(self, size: int) -> int:
        """Wire time for ``size`` bytes, excluding queueing."""
        return self.latency + round(size / self.bandwidth)

    def dma(self, size: int) -> Generator:
        """Move ``size`` bytes; use as ``yield from bus.dma(n)``."""
        if size <= 0:
            raise ValueError(f"DMA size must be positive, got {size}")
        request = self._channel.request()
        yield request
        try:
            yield self.transfer_time(size)
        finally:
            self._channel.release(request)
        self.transfers += 1
        self.bytes_moved += size
