"""A GPU device shared by VMs through per-context kernel queues.

The paper's introduction points at GPU/x86 co-scheduling (GViM, Hong &
Kim) as another place where independent resource managers must coordinate.
This device model captures what matters for that argument: VMs own *GPU
contexts*; each context queues kernel launches; a runlist scheduler serves
contexts weighted-round-robin, one kernel at a time (no preemption — 2010
GPUs ran kernels to completion).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Event, Simulator, Tracer, us

#: Fixed launch overhead per kernel (driver + DMA of arguments).
LAUNCH_OVERHEAD = us(15)


@dataclass
class KernelLaunch:
    """One queued kernel execution request."""

    context_name: str
    demand: int
    done: Event
    enqueued_at: int
    started_at: Optional[int] = None


class GpuContext:
    """A VM's execution context on the device (the Tune target)."""

    def __init__(self, device: "GpuDevice", name: str, weight: int = 100):
        self.device = device
        self.name = name
        self.weight = max(1, weight)
        self.pending: deque[KernelLaunch] = deque()
        self.kernels_completed = 0
        self.busy_time = 0
        self.total_wait = 0
        self._deficit = 0.0

    def launch(self, demand: int) -> Event:
        """Queue a kernel; the event fires at completion."""
        return self.device.submit(self.name, demand)

    def __len__(self) -> int:
        return len(self.pending)


class GpuDevice:
    """The device engine: weighted round-robin runlist over contexts."""

    def __init__(self, sim: Simulator, name: str = "gpu0",
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.name = name
        self.tracer = tracer or Tracer(sim, enabled=False)
        self.contexts: dict[str, GpuContext] = {}
        self.kernels_served = 0
        self.busy_time = 0
        self._wakeup: Optional[Event] = None
        #: Invoked with (context_name, launch) at each kernel completion —
        #: the co-scheduling policy's tap.
        self.on_kernel_complete: Optional[Callable[[str, KernelLaunch], None]] = None
        sim.spawn(self._engine(), name=f"{name}-engine")

    # -- context management --------------------------------------------------

    def create_context(self, name: str, weight: int = 100) -> GpuContext:
        """Create a VM's context."""
        if name in self.contexts:
            raise ValueError(f"context {name!r} already exists")
        context = GpuContext(self, name, weight)
        self.contexts[name] = context
        return context

    def set_weight(self, name: str, weight: int) -> int:
        """Set a context's runlist weight absolutely (floor 1)."""
        context = self.contexts[name]
        context.weight = max(1, weight)
        return context.weight

    def adjust_weight(self, name: str, delta: int) -> int:
        """Tune translation: runlist service weight."""
        return self.set_weight(name, self.contexts[name].weight + delta)

    def prioritize(self, name: str) -> None:
        """Trigger translation: the context's next kernel jumps the runlist
        (served immediately after the in-flight kernel completes)."""
        context = self.contexts[name]
        context._deficit += 10 * max(
            (c._deficit for c in self.contexts.values()), default=0.0
        ) + 1.0

    # -- submission ------------------------------------------------------------

    def submit(self, context_name: str, demand: int) -> Event:
        """Queue a kernel launch on a context."""
        if demand <= 0:
            raise ValueError(f"kernel demand must be positive, got {demand}")
        context = self.contexts[context_name]
        launch = KernelLaunch(
            context_name=context_name,
            demand=demand,
            done=self.sim.event(name=f"kernel-{context_name}"),
            enqueued_at=self.sim.now,
        )
        context.pending.append(launch)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return launch.done

    # -- engine -------------------------------------------------------------------

    def _pick(self) -> Optional[GpuContext]:
        backlogged = [c for c in self.contexts.values() if c.pending]
        if not backlogged:
            return None
        total = sum(c.weight for c in backlogged)
        for context in backlogged:
            context._deficit += context.weight / total
        chosen = max(backlogged, key=lambda c: c._deficit)
        chosen._deficit -= 1.0
        return chosen

    def _engine(self):
        while True:
            context = self._pick()
            if context is None:
                self._wakeup = self.sim.event(name=f"{self.name}-idle")
                yield self._wakeup
                self._wakeup = None
                continue
            launch = context.pending.popleft()
            launch.started_at = self.sim.now
            context.total_wait += self.sim.now - launch.enqueued_at
            yield self.sim.timeout(LAUNCH_OVERHEAD + launch.demand)
            context.busy_time += launch.demand
            self.busy_time += launch.demand
            context.kernels_completed += 1
            self.kernels_served += 1
            launch.done.succeed(launch)
            if self.on_kernel_complete is not None:
                self.on_kernel_complete(context.name, launch)

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` spent executing kernels."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0
