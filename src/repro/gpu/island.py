"""The GPU scheduling island.

A third island type, proving the coordination interface's generality: the
paper's §1 names "an island with x86 vs. GPU cores" as an island boundary
and cites GViM-style co-scheduling gains as motivating evidence. The GPU's
resource manager is the device runlist; its Tune translation is context
weight, its Trigger translation is a runlist jump.
"""

from __future__ import annotations

from typing import Optional

from ..platform import EntityId, Island, TriggerSpec, weight_knob
from ..sim import Simulator, Tracer
from .device import GpuContext, GpuDevice


class GPUIsland(Island):
    """GPU cores under the device runlist scheduler.

    Tune dispatches through a runlist-weight knob; Trigger is a pulse —
    the context's next kernel jumps the runlist.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "gpu",
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(sim, name, tracer=tracer)
        self.device = GpuDevice(sim, name=f"{name}-dev", tracer=self.tracer)

    def create_context(self, vm_name: str, weight: int = 100) -> GpuContext:
        """Create a VM's context and register it for coordination."""
        context = self.device.create_context(vm_name, weight)
        self.register_entity(
            EntityId(self.name, vm_name),
            context,
            knob=weight_knob(
                kind="runlist-weight",
                unit="share",
                read=lambda context=context: context.weight,
                apply=lambda value, name=vm_name: self.device.set_weight(name, int(value)),
                trigger=TriggerSpec(
                    pulse=lambda name=vm_name: self.device.prioritize(name)
                ),
            ),
        )
        return context
