"""The GPU scheduling island.

A third island type, proving the coordination interface's generality: the
paper's §1 names "an island with x86 vs. GPU cores" as an island boundary
and cites GViM-style co-scheduling gains as motivating evidence. The GPU's
resource manager is the device runlist; its Tune translation is context
weight, its Trigger translation is a runlist jump.
"""

from __future__ import annotations

from typing import Optional

from ..platform import EntityId, Island
from ..sim import Simulator, Tracer
from .device import GpuContext, GpuDevice


class GPUIsland(Island):
    """GPU cores under the device runlist scheduler."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "gpu",
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(sim, name, tracer=tracer)
        self.device = GpuDevice(sim, name=f"{name}-dev", tracer=self.tracer)

    def create_context(self, vm_name: str, weight: int = 100) -> GpuContext:
        """Create a VM's context and register it for coordination."""
        context = self.device.create_context(vm_name, weight)
        self.register_entity(EntityId(self.name, vm_name), context)
        return context

    def _resolve(self, entity_id: EntityId) -> GpuContext:
        entity = self.entity(entity_id)
        if not isinstance(entity, GpuContext):
            raise TypeError(f"{entity_id} is not a GPU context on island {self.name!r}")
        return entity

    def apply_tune(self, entity_id: EntityId, delta: int) -> None:
        """Tune -> runlist weight adjustment."""
        context = self._resolve(entity_id)
        applied = self.device.adjust_weight(context.name, delta)
        self.tracer.emit(self.name, "tune-applied", context=context.name, weight=applied)

    def apply_trigger(self, entity_id: EntityId) -> None:
        """Trigger -> the context's next kernel jumps the runlist."""
        context = self._resolve(entity_id)
        self.device.prioritize(context.name)
        self.tracer.emit(self.name, "trigger-applied", context=context.name)
