"""The GPU island: a third scheduling-island type (paper §1's GViM
co-scheduling motivation), sharing the standard Tune/Trigger interface."""

from .device import LAUNCH_OVERHEAD, GpuContext, GpuDevice, KernelLaunch
from .island import GPUIsland

__all__ = [
    "GPUIsland",
    "GpuContext",
    "GpuDevice",
    "KernelLaunch",
    "LAUNCH_OVERHEAD",
]
