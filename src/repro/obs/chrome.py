"""Chrome-trace (``chrome://tracing`` / Perfetto) export of control loops.

Each completed :class:`~repro.obs.collector.ControlLoopRecord` renders as
one stage-colored lane of ``X`` (complete) events across three per-island
tracks — the IXP (decision + send-side queueing), the coordination channel
(wire, including retransmission delays), and the x86 island (Dom0 handling
and the knob apply) — tied together by a flow arrow per trace id. Lease
restores appear as instant events on the x86 track. Load the emitted JSON
straight into ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Union

from .collector import ControlLoopRecord

#: Synthetic "process" ids — one track per island, as chrome://tracing
#: groups lanes by pid.
PID_IXP = 1
PID_CHANNEL = 2
PID_X86 = 3

_TRACK_NAMES = {
    PID_IXP: "ixp island (classify + send)",
    PID_CHANNEL: "coordination channel (wire)",
    PID_X86: "x86 island (handle + apply)",
}

#: Which track each stage renders on.
_STAGE_TRACKS = {
    "classify-send": PID_IXP,
    "ring": PID_IXP,
    "wire": PID_CHANNEL,
    "handle": PID_X86,
    "apply": PID_X86,
}


def _us(ns: int) -> float:
    """Chrome trace timestamps are microseconds (floats allowed)."""
    return ns / 1000.0


def chrome_trace_events(records: Iterable[ControlLoopRecord]) -> list[dict[str, Any]]:
    """The ``traceEvents`` list for a set of completed control loops."""
    events: list[dict[str, Any]] = []
    tids: dict[tuple[int, str], int] = {}

    def tid_for(pid: int, entity: str) -> int:
        key = (pid, entity)
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == pid]) + 1
            tids[key] = tid
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": entity or "(unattributed)"},
            })
        return tid

    for pid, name in _TRACK_NAMES.items():
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "args": {"sort_index": pid},
        })

    for record in records:
        label = f"{record.op or 'tune'}:{record.reason or record.entity}"
        args = {
            "trace_id": record.trace_id,
            "span_id": record.span_id,
            "entity": record.entity,
            "reason": record.reason,
            "outcome": record.outcome,
            "retries": record.retries,
            "coalesced": record.coalesced,
        }
        if record.packet is not None:
            args["packet"] = record.packet
        starts = {
            "classify-send": record.minted_at,
            "ring": record.sent_at,
            "wire": record.wire_at,
            "handle": record.recv_at,
            "apply": record.handle_at,
        }
        for stage, duration in record.stages.items():
            pid = _STAGE_TRACKS[stage]
            events.append({
                "ph": "X",
                "name": f"{stage} {label}",
                "cat": stage,
                "pid": pid,
                "tid": tid_for(pid, record.entity),
                "ts": _us(starts[stage]),
                "dur": _us(max(duration, 0)),
                "args": args,
            })
        # One flow arrow per loop: decision (IXP) -> actuation (x86).
        flow_id = record.span_id
        events.append({
            "ph": "s", "id": flow_id, "name": "control-loop", "cat": "flow",
            "pid": PID_IXP, "tid": tid_for(PID_IXP, record.entity),
            "ts": _us(record.minted_at),
        })
        events.append({
            "ph": "f", "id": flow_id, "name": "control-loop", "cat": "flow",
            "bp": "e",
            "pid": PID_X86, "tid": tid_for(PID_X86, record.entity),
            "ts": _us(record.applied_at),
        })
        if record.restored_at is not None:
            events.append({
                "ph": "i", "s": "t", "name": f"lease-restore {record.entity}",
                "cat": "trigger",
                "pid": PID_X86, "tid": tid_for(PID_X86, record.entity),
                "ts": _us(record.restored_at),
                "args": {"span_id": record.span_id},
            })
    return events


def export_chrome_trace(
    records: Iterable[ControlLoopRecord],
    destination: Union[str, IO[str]],
    metadata: dict[str, Any] | None = None,
) -> int:
    """Write the Chrome-trace JSON for ``records`` to a path or stream.

    Returns the number of trace events written. The document shape is the
    standard ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` object
    form, which both ``chrome://tracing`` and Perfetto accept.
    """
    events = chrome_trace_events(records)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", **(metadata or {})},
    }
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=None, separators=(",", ":"))
    else:
        json.dump(document, destination, indent=None, separators=(",", ":"))
    return len(events)


def validate_chrome_trace(document: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is loadable Chrome JSON.

    Checks the object form: a ``traceEvents`` list whose members carry the
    mandatory ``ph``/``pid``/``ts`` fields (metadata events excepted for
    ``ts``), and that complete events have non-negative durations.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a Chrome trace: missing traceEvents")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for event in events:
        if not isinstance(event, dict):
            raise ValueError(f"trace event is not an object: {event!r}")
        if "ph" not in event or "pid" not in event:
            raise ValueError(f"trace event missing ph/pid: {event!r}")
        if event["ph"] != "M":
            if "ts" not in event:
                raise ValueError(f"trace event missing ts: {event!r}")
            if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
                raise ValueError(f"bad ts in trace event: {event!r}")
        if event["ph"] == "X":
            if event.get("dur", 0) < 0:
                raise ValueError(f"negative duration: {event!r}")
