"""Causal observability: span tracing across islands and the control-loop
latency observatory.

``repro.obs`` closes the attribution gap the per-hop collectors leave
open: a :class:`SpanContext` minted at an IXP classification decision
rides inside the coordination messages (and their reliable-channel
frames) all the way to the knob registry's actuation audit, the
:class:`ControlLoopCollector` turns the resulting span events into
per-stage latency percentiles, and :func:`export_chrome_trace` renders
completed loops on per-island ``chrome://tracing`` tracks.
"""

from .chrome import chrome_trace_events, export_chrome_trace, validate_chrome_trace
from .collector import (
    CONTROL_LOOP_STAGES,
    ControlLoopCollector,
    ControlLoopRecord,
    ControlLoopStats,
)
from .span import NO_PARENT, SPAN_TRACE_KINDS, SpanContext, SpanMinter, span_of

__all__ = [
    "CONTROL_LOOP_STAGES",
    "ControlLoopCollector",
    "ControlLoopRecord",
    "ControlLoopStats",
    "NO_PARENT",
    "SPAN_TRACE_KINDS",
    "SpanContext",
    "SpanMinter",
    "chrome_trace_events",
    "export_chrome_trace",
    "span_of",
    "validate_chrome_trace",
]
