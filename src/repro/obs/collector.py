"""The control-loop latency observatory.

A :class:`ControlLoopCollector` subscribes to the span trace kinds and
reassembles each decision's end-to-end journey into one
:class:`ControlLoopRecord` with a per-stage latency breakdown:

========== ===================================================== ========
stage      covers                                                 bounds
========== ===================================================== ========
classify   policy decision -> message handed to the endpoint     t0 -> t1
ring       endpoint accept -> first put on the raw mailbox        t1 -> t2
           (reliable-layer queueing, coalescing wait)
wire       first wire put -> delivered to the receiving agent     t2 -> t3
           (channel latency, plus loss/retransmission delays)
handle     receive -> knob dispatch (Dom0 scheduling + handling)  t3 -> t4
apply      knob dispatch -> actuation recorded                    t4 -> t5
========== ===================================================== ========

Spans absorbed by Tune coalescing complete when their *surviving* merged
span is applied: the absorbed decision keeps its own decision and send
times (t0, t1) and inherits the survivor's wire/handle/apply times, so
its loop honestly includes the time it sat merged behind the in-flight
frame. Percentile summaries are available per entity and per reason tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..metrics.stats import Summary, summarize
from ..sim import Simulator, Tracer
from .span import SPAN_TRACE_KINDS

#: Stage names of the per-loop latency breakdown, in causal order.
CONTROL_LOOP_STAGES = ("classify-send", "ring", "wire", "handle", "apply")


@dataclass
class _SpanState:
    """Mutable assembly buffer for one in-flight span."""

    trace_id: int
    span_id: int
    source: str = ""
    entity: str = ""
    reason: str = ""
    op: str = ""
    pid: Optional[int] = None
    pkt_rx: Optional[int] = None
    minted_at: Optional[int] = None
    sent_at: Optional[int] = None
    wire_at: Optional[int] = None
    recv_at: Optional[int] = None
    handle_at: Optional[int] = None
    retries: int = 0
    wire_attempts: int = 0
    losses: int = 0


@dataclass(frozen=True)
class ControlLoopRecord:
    """One completed sensing-to-actuation loop."""

    trace_id: int
    span_id: int
    entity: str
    reason: str
    op: str  #: ``tune`` | ``trigger``
    minted_at: int
    sent_at: int
    wire_at: int
    recv_at: int
    handle_at: int
    applied_at: int
    outcome: str
    #: Retransmissions the carrying frame needed (0 over a clean channel).
    retries: int = 0
    #: Wire attempts dropped by the lossy mailbox before delivery.
    losses: int = 0
    #: True when this decision reached the knob merged into another span.
    coalesced: bool = False
    #: Span ids this loop's frame absorbed through coalescing.
    merged_from: tuple[int, ...] = ()
    #: The classified packet that caused the decision, when known.
    packet: Optional[int] = None
    #: The packet's ``ixp-rx`` stamp (wire arrival), when known.
    packet_rx_at: Optional[int] = None
    #: Lease-restore time for triggers (filled in after apply).
    restored_at: Optional[int] = None

    @property
    def stages(self) -> dict[str, int]:
        """Per-stage latency breakdown (ns), keyed by stage name."""
        return {
            "classify-send": self.sent_at - self.minted_at,
            "ring": self.wire_at - self.sent_at,
            "wire": self.recv_at - self.wire_at,
            "handle": self.handle_at - self.recv_at,
            "apply": self.applied_at - self.handle_at,
        }

    @property
    def total(self) -> int:
        """Decision-to-actuation latency (ns)."""
        return self.applied_at - self.minted_at


@dataclass
class ControlLoopStats:
    """Aggregate counters of one collector."""

    minted: int = 0
    applied: int = 0
    coalesced_applied: int = 0
    cancelled: int = 0
    dead_lettered: int = 0
    restored: int = 0
    open: int = 0
    by_entity: dict[str, int] = field(default_factory=dict)
    by_reason: dict[str, int] = field(default_factory=dict)


class ControlLoopCollector:
    """Assembles span trace events into per-loop latency records.

    Subscribing to the span kinds is what arms span minting platform-wide
    (the producers' ``Tracer.wants`` gates open once a sink exists), so
    constructing this collector *is* the opt-in.
    """

    def __init__(self, sim: Simulator, tracer: Tracer):
        self.sim = sim
        self.tracer = tracer
        self._open: dict[int, _SpanState] = {}
        #: span_id -> restore-pending index into ``records`` (for leases).
        self._await_restore: dict[int, int] = {}
        self.records: list[ControlLoopRecord] = []
        self.minted = 0
        self.cancelled = 0
        self.dead_lettered = 0
        self.restored = 0
        tracer.subscribe(self._on_record, kinds=list(SPAN_TRACE_KINDS))

    # -- event assembly ----------------------------------------------------

    def _state(self, record) -> _SpanState:
        span_id = record.payload["span"]
        state = self._open.get(span_id)
        if state is None:
            state = _SpanState(
                trace_id=record.payload.get("trace", 0), span_id=span_id
            )
            self._open[span_id] = state
        return state

    def _on_record(self, record) -> None:
        kind = record.kind
        payload = record.payload
        if "span" not in payload:
            return
        state = self._state(record)
        if kind == "span-minted":
            self.minted += 1
            state.source = record.source
            state.minted_at = record.time
            state.entity = payload.get("entity", "")
            state.reason = payload.get("reason", "")
            state.op = payload.get("op", "")
            state.pid = payload.get("pid")
            state.pkt_rx = payload.get("pkt_rx")
        elif kind == "span-sent":
            state.sent_at = record.time
        elif kind == "span-wire":
            state.wire_attempts += 1
            if state.wire_at is None:
                state.wire_at = record.time
        elif kind == "span-lost":
            state.losses += 1
        elif kind == "span-retransmit":
            state.retries += 1
        elif kind == "span-recv":
            state.recv_at = record.time
        elif kind == "span-handle":
            state.handle_at = record.time
        elif kind == "span-applied":
            self._complete(state, record)
        elif kind == "span-cancelled":
            self.cancelled += 1
            self._open.pop(state.span_id, None)
        elif kind == "span-dead":
            self.dead_lettered += 1
            self._open.pop(state.span_id, None)
        elif kind == "span-restored":
            self.restored += 1
            index = self._await_restore.pop(state.span_id, None)
            if index is not None:
                from dataclasses import replace  # noqa: PLC0415 — tiny, stdlib

                self.records[index] = replace(
                    self.records[index], restored_at=record.time
                )
        # span-coalesced carries bookkeeping only; completion of absorbed
        # spans rides the survivor's merged_from at span-applied time.

    def _complete(self, state: _SpanState, record) -> None:
        payload = record.payload
        merged = tuple(payload.get("merged_from", ()))
        survivor = self._finish(state, record, coalesced=False, merged_from=merged)
        for absorbed_id in merged:
            absorbed = self._open.pop(absorbed_id, None)
            if absorbed is None:
                continue
            self._finish(
                absorbed, record, coalesced=True, merged_from=(),
                inherit=survivor,
            )

    def _finish(
        self,
        state: _SpanState,
        record,
        coalesced: bool,
        merged_from: tuple[int, ...],
        inherit: Optional[ControlLoopRecord] = None,
    ) -> Optional[ControlLoopRecord]:
        self._open.pop(state.span_id, None)
        minted_at = state.minted_at
        if minted_at is None:
            return None  # event arrived for a span minted before we attached
        sent_at = state.sent_at if state.sent_at is not None else minted_at
        if inherit is not None:
            wire_at, recv_at = inherit.wire_at, inherit.recv_at
            handle_at, applied_at = inherit.handle_at, inherit.applied_at
            retries, losses = inherit.retries, inherit.losses
        else:
            applied_at = record.time
            wire_at = state.wire_at if state.wire_at is not None else sent_at
            recv_at = state.recv_at if state.recv_at is not None else wire_at
            handle_at = state.handle_at if state.handle_at is not None else recv_at
            retries, losses = state.retries, state.losses
        loop = ControlLoopRecord(
            trace_id=state.trace_id,
            span_id=state.span_id,
            entity=state.entity or record.payload.get("entity", ""),
            reason=state.reason,
            op=state.op or record.payload.get("op", ""),
            minted_at=minted_at,
            sent_at=sent_at,
            wire_at=max(wire_at, sent_at),
            recv_at=recv_at,
            handle_at=handle_at,
            applied_at=applied_at,
            outcome=record.payload.get("outcome", "applied"),
            retries=retries,
            losses=losses,
            coalesced=coalesced,
            merged_from=merged_from,
            packet=state.pid,
            packet_rx_at=state.pkt_rx,
        )
        if loop.op == "trigger":
            self._await_restore[loop.span_id] = len(self.records)
        self.records.append(loop)
        return loop

    # -- introspection -----------------------------------------------------

    @property
    def applied(self) -> int:
        """Completed loops (including coalesced-absorbed decisions)."""
        return len(self.records)

    def link_fraction(self, total_applied: int) -> float:
        """Fraction of ``total_applied`` actuations that a span explains.

        Coalesced decisions share one actuation, so the numerator counts
        *distinct actuations carrying a span*, not loop records.
        """
        if total_applied <= 0:
            return 0.0
        direct = sum(1 for r in self.records if not r.coalesced)
        return min(1.0, direct / total_applied)

    def stage_percentiles(self, by: str = "entity") -> dict[str, dict[str, Summary]]:
        """Per-``by`` (``"entity"`` or ``"reason"``) stage summaries.

        Returns ``{key: {stage: Summary, ..., "total": Summary}}`` over
        every completed loop; keys with no loops are absent.
        """
        if by not in ("entity", "reason"):
            raise ValueError(f"by must be 'entity' or 'reason', got {by!r}")
        grouped: dict[str, list[ControlLoopRecord]] = {}
        for record in self.records:
            grouped.setdefault(getattr(record, by) or "(none)", []).append(record)
        out: dict[str, dict[str, Summary]] = {}
        for key, loops in grouped.items():
            stages: dict[str, Summary] = {}
            for stage in CONTROL_LOOP_STAGES:
                stages[stage] = summarize(loop.stages[stage] for loop in loops)
            stages["total"] = summarize(loop.total for loop in loops)
            out[key] = stages
        return out

    def stats(self) -> ControlLoopStats:
        """Aggregate counters (mirrors the channel/knob ``stats`` idiom)."""
        by_entity: dict[str, int] = {}
        by_reason: dict[str, int] = {}
        coalesced = 0
        for record in self.records:
            by_entity[record.entity] = by_entity.get(record.entity, 0) + 1
            by_reason[record.reason] = by_reason.get(record.reason, 0) + 1
            if record.coalesced:
                coalesced += 1
        return ControlLoopStats(
            minted=self.minted,
            applied=len(self.records),
            coalesced_applied=coalesced,
            cancelled=self.cancelled,
            dead_lettered=self.dead_lettered,
            restored=self.restored,
            open=len(self._open),
            by_entity=by_entity,
            by_reason=by_reason,
        )

    def report(self) -> dict[str, Any]:
        """Structured introspection blob: counters plus per-entity and
        per-reason stage percentiles (what
        :meth:`~repro.platform.controller.GlobalController.control_loops`
        returns)."""
        stats = self.stats()
        return {
            "minted": stats.minted,
            "applied": stats.applied,
            "coalesced_applied": stats.coalesced_applied,
            "cancelled": stats.cancelled,
            "dead_lettered": stats.dead_lettered,
            "restored": stats.restored,
            "open": stats.open,
            "by_entity": self.stage_percentiles(by="entity"),
            "by_reason": self.stage_percentiles(by="reason"),
        }
