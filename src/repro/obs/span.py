"""Causal span contexts: the identity a coordination decision carries.

The paper's argument is end-to-end — a classified packet on the IXP must
become a credit-weight change on x86 "as soon as possible" (§3.3) — yet
each hop (channel, agent, knob registry) can only be observed in
isolation. A :class:`SpanContext` is the small value that makes the whole
loop attributable: it is minted when a policy makes a classification-driven
decision, rides *by value* inside :class:`~repro.coordination.messages.
TuneMessage` / ``TriggerMessage`` (and therefore inside reliable-channel
frames, surviving retransmission), and is finally stamped onto the knob
registry's :class:`~repro.platform.knobs.ActuationRecord`. One trace id
then links packet -> classification -> policy decision -> send ->
(retries) -> receive -> clamp/apply -> lease expiry/restore.

Ids are minted from plain monotonic counters, one :class:`SpanMinter` per
tracer (i.e. per testbed), so span ids are deterministic across kernel
fast-path modes and across the serial vs. parallel experiment runner —
each arm owns its own simulator, tracer and minter.

Zero-cost rule: every producer guards minting and event emission behind
the tracer's memoized :meth:`~repro.sim.tracing.Tracer.wants` check. With
tracing disabled (or nobody subscribed to span kinds), ``mint()`` returns
``None``, messages carry ``span=None``, and not a single extra object is
allocated on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim import Tracer

#: Trace kinds emitted along a span's life (subscribe to these to observe
#: control loops; the :class:`~repro.obs.collector.ControlLoopCollector`
#: does exactly that).
SPAN_TRACE_KINDS = (
    "span-minted",       # policy decision (classifier/monitor) - t0
    "span-sent",         # agent handed the message to its endpoint - t1
    "span-wire",         # message (or its frame) put on the raw mailbox - t2
    "span-lost",         # a wire attempt was dropped by the lossy mailbox
    "span-retransmit",   # the reliable layer retransmitted the frame
    "span-coalesced",    # absorbed into a pending merged frame
    "span-cancelled",    # coalesced deltas summed to zero; never sent
    "span-dead",         # frame dead-lettered after the retry budget
    "span-recv",         # delivered to the receiving agent - t3
    "span-handle",       # Dom0 handling paid; dispatching to the knob - t4
    "span-applied",      # actuation recorded by the knob registry - t5
    "span-restored",     # a trigger lease expired back to the original
)

#: The root span id: ``parent_id == 0`` marks a decision-root span.
NO_PARENT = 0


@dataclass(frozen=True, slots=True)
class SpanContext:
    """Trace identity carried by value through the coordination stack.

    ``trace_id`` names the causal chain rooted at one policy decision;
    ``span_id`` names this hop's span (globally unique per minter);
    ``parent_id`` is the span that caused this one (0 for roots).
    ``merged_from`` records the span ids this span absorbed through
    Tune coalescing — when it is applied, the absorbed decisions were
    applied too (as one merged delta).
    """

    trace_id: int
    span_id: int
    parent_id: int = NO_PARENT
    merged_from: tuple[int, ...] = ()

    def absorbing(self, other: "SpanContext") -> "SpanContext":
        """This span, additionally carrying ``other`` (and everything
        ``other`` had already absorbed) as merged parents."""
        return SpanContext(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            merged_from=other.merged_from + (other.span_id,) + self.merged_from,
        )

    def __repr__(self) -> str:
        merged = f" merged={list(self.merged_from)}" if self.merged_from else ""
        return f"Span({self.trace_id}:{self.span_id}{merged})"


def span_of(message: Any) -> Optional[SpanContext]:
    """The span a message (or a reliable frame wrapping one) carries.

    Duck-typed so the channel layer needs no knowledge of message or
    frame classes: a bare coordination message exposes ``.span``; a
    :class:`~repro.interconnect.reliable.DataFrame` exposes the message as
    ``.payload``.
    """
    span = getattr(message, "span", None)
    if span is not None:
        return span
    payload = getattr(message, "payload", None)
    if payload is not None and not isinstance(payload, dict):
        return getattr(payload, "span", None)
    return None


class SpanMinter:
    """Allocates deterministic trace/span ids and emits span events.

    One minter per tracer (use :meth:`shared`): ids are unique across all
    producers of one platform, and the counters advance in simulation
    event order, which is itself deterministic — so two runs of the same
    scenario mint identical ids regardless of kernel fast-path mode or
    experiment-runner parallelism.
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._next_trace = 1
        self._next_span = 1
        #: Root spans handed out (mint() calls that returned a context).
        self.minted = 0

    @classmethod
    def shared(cls, tracer: Tracer) -> "SpanMinter":
        """The tracer's platform-wide minter (created on first use).

        Policies and the testbed all resolve their minter through here so
        span ids never collide within one platform.
        """
        minter = getattr(tracer, "_span_minter", None)
        if minter is None:
            minter = cls(tracer)
            tracer._span_minter = minter
        return minter

    @property
    def active(self) -> bool:
        """Whether minting would produce observable spans (memoized in
        the tracer's ``wants`` cache — this is the zero-cost gate)."""
        return self.tracer.wants("span-minted")

    def mint(self, source: str, **payload: Any) -> Optional[SpanContext]:
        """Mint a root span for one policy decision, or ``None`` when
        nobody is observing spans (tracing off / no subscriber).

        ``payload`` should carry the decision's attribution: ``entity``,
        ``reason``, ``op`` (tune/trigger) and — when the decision came from
        a classified packet — ``pid`` and the packet's ``ixp-rx`` stamp.
        """
        if not self.tracer.wants("span-minted"):
            return None
        span = SpanContext(trace_id=self._next_trace, span_id=self._next_span)
        self._next_trace += 1
        self._next_span += 1
        self.minted += 1
        self.tracer.emit(
            source, "span-minted", trace=span.trace_id, span=span.span_id, **payload
        )
        return span
