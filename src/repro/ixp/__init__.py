"""The IXP2850 network-processor island."""

from .classifier import Classifier, ClassifierRule, classify_by_destination, make_payload_field_rule
from .dequeue import WeightedDequeuer
from .egress import EgressQueue, EgressScheduler, classify_by_source
from .flowqueue import FlowQueue
from .island import IXPIsland
from .memory import BufferPool, MemoryHierarchy
from .microengine import HardwareThread, Microengine
from .params import CYCLE_NS, IXPParams, MemoryLatencies, cycles
from .rx import RxPipeline, TwoStageRxPipeline
from .scratch import HardwareSignal, ScratchRing
from .tx import TxPipeline
from .xscale import XScaleCore

__all__ = [
    "BufferPool",
    "CYCLE_NS",
    "Classifier",
    "ClassifierRule",
    "FlowQueue",
    "HardwareThread",
    "IXPIsland",
    "IXPParams",
    "MemoryHierarchy",
    "MemoryLatencies",
    "Microengine",
    "RxPipeline",
    "ScratchRing",
    "TwoStageRxPipeline",
    "EgressQueue",
    "EgressScheduler",
    "HardwareSignal",
    "classify_by_source",
    "TxPipeline",
    "WeightedDequeuer",
    "XScaleCore",
    "classify_by_destination",
    "cycles",
    "make_payload_field_rule",
]
