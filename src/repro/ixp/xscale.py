"""The XScale control core.

"An ARM XScale core, used for control and management purposes, runs
Montavista Linux" (paper §2.1). In our model it hosts the IXP side of the
coordination policies: periodic monitor tasks and the coordination-channel
endpoint. Control-plane work is lightweight and the XScale is otherwise
idle, so tasks run unconstrained but each dispatch pays a fixed overhead to
keep reaction latency honest.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim import PeriodicTask, Simulator, Tracer, us
from ..interconnect import ChannelEndpoint

#: Control-core overhead per message send or monitor pass.
DISPATCH_OVERHEAD = us(20)


class XScaleCore:
    """Control-plane runtime of the IXP island."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._endpoint: Optional[ChannelEndpoint] = None
        self.messages_sent = 0
        self.monitor_tasks = 0

    def attach_channel(self, endpoint: ChannelEndpoint) -> None:
        """Connect the coordination-channel endpoint (host direction)."""
        self._endpoint = endpoint

    @property
    def channel(self) -> Optional[ChannelEndpoint]:
        """The attached coordination endpoint, if any."""
        return self._endpoint

    def send_message(self, message: Any) -> None:
        """Send a coordination message to the x86 island (async, with
        control-core dispatch overhead)."""
        if self._endpoint is None:
            raise RuntimeError("XScale has no coordination channel attached")
        endpoint = self._endpoint
        self.messages_sent += 1
        self.sim.call_in(DISPATCH_OVERHEAD, lambda: endpoint.send(message))

    def every(self, period: int, task: Callable[[], None], name: str = "monitor") -> PeriodicTask:
        """Run ``task()`` every ``period`` ns (a monitor loop).

        Returns the cancellable :class:`PeriodicTask` driving the loop.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        self.monitor_tasks += 1
        return PeriodicTask(self.sim, period, task, name=f"xscale-{name}")
