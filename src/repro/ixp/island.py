"""The IXP scheduling island: chip, pipelines, flow queues and control core.

Mirrors the paper's §2.1 execution model (Figure 3): Rx threads classify
wire traffic into per-VM flow queues; PCI-Tx threads dequeue them — with
tunable per-queue thread counts — and DMA descriptors into the host RX
ring; PCI-Rx/Tx threads move host-posted packets back onto the wire. The
island's native Tune knob is the flow-queue service weight; its Trigger is
a transient service boost, held as a refcounted lease so overlapping
triggers stack and expire back to the true original weight.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..platform import EntityId, Island, TriggerSpec, weight_knob
from ..sim import Simulator, Store, Tracer
from ..interconnect import ChannelEndpoint, MessageRing, PCIeBus
from ..net import Link, Packet
from .classifier import Classifier
from .dequeue import WeightedDequeuer
from .egress import EgressScheduler
from .flowqueue import FlowQueue
from .memory import BufferPool, MemoryHierarchy
from .microengine import Microengine
from .params import IXPParams
from .rx import ClassifiedHook, RxPipeline
from .tx import TxPipeline
from .xscale import XScaleCore

#: Default microengine task layout (paper: "IXP microengine threads ...
#: execute one of: packet receipt (Rx), packet transmission (Tx), or
#: classification", plus the two PCI engines).
RX_MICROENGINE = 0
CLASSIFIER_MICROENGINE = 1
PCI_TX_MICROENGINE = 2
PCI_RX_MICROENGINE = 3

DEFAULT_RX_THREADS = 8
DEFAULT_TX_THREADS = 4


class IXPIsland(Island):
    """The IXP2850 island and its runtime."""

    def __init__(
        self,
        sim: Simulator,
        params: Optional[IXPParams] = None,
        name: str = "ixp",
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(sim, name, tracer=tracer)
        self.params = params or IXPParams()
        self.memory = MemoryHierarchy(self.params.memory)
        self.buffer_pool = BufferPool(sim, self.params.buffer_pool_bytes, tracer=self.tracer)
        self.microengines = [
            Microengine(sim, i, self.memory, self.params.threads_per_microengine)
            for i in range(self.params.num_microengines)
        ]
        self.classifier = Classifier()
        self.xscale = XScaleCore(sim, tracer=self.tracer)
        #: Wire-side ingress shared by Rx threads.
        self.ingress: Store[Packet] = Store(sim, name="ixp-wire-ingress")
        self.flow_queues: dict[str, FlowQueue] = {}
        self._wire_routes: dict[str, Link] = {}
        self._default_route: Optional[Link] = None

        rx_threads = [
            self.microengines[RX_MICROENGINE].allocate_thread("rx")
            for _ in range(DEFAULT_RX_THREADS)
        ]
        if self.params.two_stage_rx:
            from .rx import TwoStageRxPipeline  # noqa: PLC0415 — feature-gated, avoids cycle
            from .scratch import ScratchRing  # noqa: PLC0415 — feature-gated, avoids cycle

            classify_threads = [
                self.microengines[CLASSIFIER_MICROENGINE].allocate_thread("classify")
                for _ in range(DEFAULT_RX_THREADS)
            ]
            self.rx_ring = ScratchRing(
                sim, self.memory, capacity=self.params.rx_ring_depth, name="rx-cls-ring"
            )
            self.rx = TwoStageRxPipeline(
                sim,
                self.ingress,
                self.classifier,
                self._queue_for_packet,
                rx_threads,
                classify_threads,
                self.params,
                self.rx_ring,
                tracer=self.tracer,
            )
        else:
            self.rx = RxPipeline(
                sim,
                self.ingress,
                self.classifier,
                self._queue_for_packet,
                rx_threads,
                self.params,
                tracer=self.tracer,
            )
        # Host-facing pipelines are created by attach_host().
        self.dequeuer: Optional[WeightedDequeuer] = None
        self.tx: Optional[TxPipeline] = None

    # -- host attachment ---------------------------------------------------

    def attach_host(self, pcie: PCIeBus, rx_ring: MessageRing, tx_ring: MessageRing) -> None:
        """Connect the PCIe DMA engines and host message rings."""
        if self.dequeuer is not None:
            raise RuntimeError("host already attached")
        dequeue_threads = [
            self.microengines[PCI_TX_MICROENGINE].allocate_thread("pci-tx")
            for _ in range(self.params.dequeue_threads)
        ]
        self.dequeuer = WeightedDequeuer(
            self.sim, dequeue_threads, pcie, rx_ring, self.params, tracer=self.tracer
        )
        for queue in self.flow_queues.values():
            self.dequeuer.add_queue(queue)
        tx_threads = [
            self.microengines[PCI_RX_MICROENGINE].allocate_thread("pci-rx")
            for _ in range(DEFAULT_TX_THREADS)
        ]
        self.tx = TxPipeline(
            self.sim, tx_ring, pcie, self._route_for_packet, tx_threads, self.params,
            tracer=self.tracer,
        )

    def attach_channel(self, endpoint: ChannelEndpoint) -> None:
        """Connect the coordination channel (runs on the XScale)."""
        self.xscale.attach_channel(endpoint)

    # -- wire side ------------------------------------------------------------

    def wire_sink(self) -> Callable[[Packet], None]:
        """Sink callable for client-side links delivering into the IXP."""

        def sink(packet: Packet) -> None:
            self.ingress.try_put(packet)  # unbounded: the MAC FIFO never
            # backpressures in our workloads; flow queues do the dropping.

        return sink

    def connect_peer(self, host_name: str, link: Link) -> None:
        """Route packets destined to ``host_name`` out through ``link``."""
        self._wire_routes[host_name] = link
        if self._default_route is None:
            self._default_route = link

    def _route_for_packet(self, packet: Packet) -> Optional[Link]:
        return self._wire_routes.get(packet.dst, self._default_route)

    # -- flow queues / VM registration ----------------------------------------

    def register_vm_flow(self, vm_name: str, service_weight: int = 1) -> FlowQueue:
        """Create the per-VM flow queue (paper §2.3's VM registration).

        Called when a guest VM that uses the IXP as its network interface
        registers with the global controller; the identifier information
        reaches the IXP through its driver interface in Dom0.
        """
        if vm_name in self.flow_queues:
            raise ValueError(f"flow queue for {vm_name!r} already registered")
        queue = FlowQueue(
            self.sim,
            name=vm_name,
            pool=self.buffer_pool,
            capacity_bytes=self.params.flow_queue_bytes,
            service_weight=service_weight,
            poll_interval=self.params.default_poll_interval,
            tracer=self.tracer,
        )
        self.flow_queues[vm_name] = queue
        self.register_entity(
            EntityId(self.name, vm_name),
            queue,
            knob=weight_knob(
                kind="flow-service-weight",
                unit="threads-share",
                read=lambda queue=queue: queue.service_weight,
                apply=lambda value, queue=queue: self._set_service_weight(queue, value),
                trigger=TriggerSpec(
                    # The transient boost of the paper's §3.3: doubled
                    # weight plus one, held for four monitor periods. Held
                    # as a lease: a second trigger before the first expiry
                    # stacks another level instead of capturing the boosted
                    # weight as "original" (the old restore bug).
                    boost=lambda weight: weight * 2 + 1,
                    hold=self.params.monitor_period * 4,
                ),
            ),
        )
        if self.dequeuer is not None:
            self.dequeuer.add_queue(queue)
        return queue

    def _set_service_weight(self, queue: FlowQueue, value: float) -> int:
        """Absolute service-weight setter; re-runs the thread division."""
        queue.service_weight = max(1, int(value))
        if self.dequeuer is not None:
            self.dequeuer.rebalance()
        return queue.service_weight

    def _queue_for_packet(self, packet: Packet) -> Optional[FlowQueue]:
        return self.flow_queues.get(packet.dst)

    def add_classified_hook(self, hook: ClassifiedHook) -> None:
        """Observe every classified packet (IXP-side policy tap)."""
        self.rx.add_classified_hook(hook)

    # -- egress QoS (Figure 3's Tx classifier/scheduler) -----------------------

    def enable_egress_qos(self) -> EgressScheduler:
        """Insert the weighted egress scheduler on the transmit path.

        Outbound packets are classified per source VM and served by
        weight, optionally rate-capped — "control the ingress and egress
        network bandwidth seen by the VM" (§2.1). Egress flows register
        as tunable entities ``egress:<vm>``.
        """
        if self.tx is None:
            raise RuntimeError("attach_host() must be called before enabling egress QoS")
        if getattr(self, "egress", None) is not None:
            raise RuntimeError("egress QoS already enabled")
        self.egress = EgressScheduler(self.sim, self.tx.send_to_wire, tracer=self.tracer)
        self.tx.egress = self.egress
        return self.egress

    def register_egress_flow(self, vm_name: str, weight: int = 1,
                             rate_bytes_per_s: int = 0):
        """Create (and expose for Tunes) a VM's egress queue."""
        if getattr(self, "egress", None) is None:
            raise RuntimeError("egress QoS is not enabled")
        queue = self.egress.register_flow(vm_name, weight=weight,
                                          rate_bytes_per_s=rate_bytes_per_s)
        self.register_entity(
            EntityId(self.name, f"egress:{vm_name}"),
            queue,
            knob=weight_knob(
                kind="egress-weight",
                unit="share",
                read=lambda queue=queue: queue.weight,
                apply=lambda value, name=vm_name: self._set_egress_weight(name, value),
            ),
        )
        return queue

    def _set_egress_weight(self, vm_name: str, value: float) -> int:
        self.egress.set_weight(vm_name, int(value))
        return self.egress.queues[vm_name].weight
