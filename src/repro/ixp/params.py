"""Constants of the IXP2850 network-processor model.

Figures follow the Intel IXP2850 datasheet and the paper's description
(§2.1): 16 eight-way hyper-threaded RISC microengines at 1.4 GHz, 640 words
of local memory and 256 GPRs per microengine, 16 KB scratchpad, 256 MB
external SRAM (packet descriptor queues) and 256 MB external DRAM (packet
payload), all with increasing access latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import us

#: Nanoseconds per microengine cycle at 1.4 GHz.
CYCLE_NS = 1.0 / 1.4


def cycles(count: float) -> int:
    """Microengine cycles -> nanoseconds at the 1.4 GHz clock."""
    return round(count * CYCLE_NS)


@dataclass(frozen=True, slots=True)
class MemoryLatencies:
    """Read/write access latency per level of the IXP memory hierarchy."""

    local: int = cycles(3)  # 640-word per-ME local memory
    scratch: int = cycles(60)  # 16 KB shared scratchpad
    sram: int = cycles(90)  # 256 MB external SRAM (descriptors)
    dram: int = cycles(120)  # 256 MB external DRAM (payload)


@dataclass(frozen=True, slots=True)
class IXPParams:
    """Shape and costs of the IXP island."""

    num_microengines: int = 16
    threads_per_microengine: int = 8
    memory: MemoryLatencies = MemoryLatencies()

    #: DRAM buffer-pool capacity for queued packet payloads (bytes).
    buffer_pool_bytes: int = 256 * 1024 * 1024
    #: Per-flow-queue default capacity (bytes) before tail drop.
    flow_queue_bytes: int = 4 * 1024 * 1024

    #: Rx path compute costs (per packet), in ME cycles.
    rx_header_cycles: int = 300
    classify_cycles: int = 1100  # deep packet inspection
    enqueue_cycles: int = 120

    #: Dequeue/DMA-issue compute cost per packet, in ME cycles.
    dequeue_cycles: int = 250

    #: Tx path compute cost per packet, in ME cycles.
    tx_cycles: int = 350

    #: Number of PCI-Tx threads dequeuing flow queues toward the host.
    dequeue_threads: int = 8
    #: Extra delay between dequeue batches per queue (the 'poll interval'
    #: knob of the paper's weighted scheduler); 0 = fully event-driven.
    default_poll_interval: int = 0

    #: How often the XScale control core samples flow-queue occupancy for
    #: system-level monitoring (Figure 7's buffer monitor).
    monitor_period: int = us(500)

    #: Split the Rx path across two microengines (receive + classifier)
    #: joined by a scratchpad ring, as in the paper's Figure 3. Default
    #: off: the combined image behaves identically at our traffic rates.
    two_stage_rx: bool = False
    #: Scratch-ring depth between the two Rx stages (descriptors).
    rx_ring_depth: int = 128
