"""Scratchpad rings and hardware signals for inter-microengine handoff.

§2.1: "there are 16KB of shared scratchpad memory ... which can be used
for inter-microengine communication. ... the hardware supports signals,
which can be used for inter-thread signaling within a microengine, as well
as externally between micro-engines."

A :class:`ScratchRing` is a bounded descriptor ring in scratchpad memory:
producers pay a scratch write, consumers a scratch read, and an optional
:class:`HardwareSignal` wakes a waiting consumer without polling.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from ..sim import Event, Simulator
from .memory import MemoryHierarchy


class HardwareSignal:
    """An inter-thread signal line: ``assert_signal`` wakes one waiter."""

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._waiters: deque[Event] = deque()
        self.asserted_count = 0

    def wait(self) -> Event:
        """Event that fires at the next assertion (one waiter per assert)."""
        event = self.sim.event(name=f"sig-{self.name}")
        self._waiters.append(event)
        return event

    def assert_signal(self) -> None:
        """Wake the oldest waiter (no-op when nobody waits: edge signal)."""
        self.asserted_count += 1
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return


class ScratchRing:
    """Bounded descriptor ring in scratchpad memory with signal wakeup."""

    def __init__(self, sim: Simulator, memory: MemoryHierarchy, capacity: int = 128,
                 name: str = "scratch-ring"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.memory = memory
        self.capacity = capacity
        self.name = name
        self.items: deque = deque()
        self.signal = HardwareSignal(sim, name=f"{name}-nonempty")
        self.put_count = 0
        self.full_rejections = 0

    def put(self, item) -> Generator:
        """Producer side: scratch write + signal. False if the ring is full.

        Use as ``ok = yield from ring.put(item)``.
        """
        yield self.sim.timeout(self.memory.latency("scratch"))
        if len(self.items) >= self.capacity:
            self.full_rejections += 1
            return False
        self.items.append(item)
        self.put_count += 1
        self.signal.assert_signal()
        return True

    def get(self) -> Generator:
        """Consumer side: wait for a descriptor, pay the scratch read.

        Use as ``item = yield from ring.get()``.
        """
        while not self.items:
            yield self.signal.wait()
        yield self.sim.timeout(self.memory.latency("scratch"))
        return self.items.popleft()

    def __len__(self) -> int:
        return len(self.items)
