"""The weighted dequeue engine: flow queues -> DMA -> host RX ring.

This is the paper's scheduler-like functionality "on top of round-robin
switching" (§2.1): quality of service for classified flows is managed by
tuning the number of threads assigned to each flow queue and their polling
intervals. The engine owns a pool of PCI-Tx hardware threads and divides
them among flow queues in proportion to each queue's ``service_weight`` —
the IXP island's translation of the **Tune** mechanism re-runs the
division.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Interrupt, Simulator, Tracer
from ..interconnect import MessageRing, PCIeBus
from .flowqueue import FlowQueue
from .microengine import HardwareThread
from .params import IXPParams


class WeightedDequeuer:
    """Thread pool serving flow queues by weight."""

    def __init__(
        self,
        sim: Simulator,
        threads: list[HardwareThread],
        pcie: PCIeBus,
        host_rx_ring: MessageRing,
        params: IXPParams,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.threads = threads
        self.pcie = pcie
        self.host_rx_ring = host_rx_ring
        self.params = params
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._queues: list[FlowQueue] = []
        self._assignment: list[Optional[FlowQueue]] = [None] * len(threads)
        self._slot_state = ["parked"] * len(threads)
        self._slot_process = [None] * len(threads)
        self._park_events = [None] * len(threads)
        self.shipped = 0
        self.ring_full_stalls = 0
        for slot, thread in enumerate(threads):
            self._slot_process[slot] = sim.spawn(
                self._thread_loop(slot, thread), name=f"deq-{thread.name}"
            )

    # -- queue management ---------------------------------------------------

    def add_queue(self, queue: FlowQueue) -> None:
        """Start serving a new flow queue."""
        self._queues.append(queue)
        self.rebalance()

    def threads_for(self, queue: FlowQueue) -> int:
        """How many threads currently serve ``queue``."""
        return sum(1 for q in self._assignment if q is queue)

    def rebalance(self) -> None:
        """Recompute the thread -> queue map from service weights.

        Largest-remainder apportionment with a floor of one thread per
        non-empty weight class, so no registered VM's queue is starved
        outright even at minimum weight.
        """
        queues = [q for q in self._queues]
        new_assignment: list[Optional[FlowQueue]] = [None] * len(self.threads)
        if queues:
            total_weight = sum(q.service_weight for q in queues)
            n = len(self.threads)
            shares = [(q, q.service_weight * n / total_weight) for q in queues]
            counts = {q: max(1, int(share)) for q, share in shares} if n >= len(queues) else {}
            if not counts:  # more queues than threads: top weights win
                ranked = sorted(queues, key=lambda q: -q.service_weight)
                counts = {q: (1 if i < n else 0) for i, q in enumerate(ranked)}
            # Distribute leftover threads by largest fractional remainder.
            used = sum(counts.values())
            remainders = sorted(
                shares, key=lambda pair: pair[1] - int(pair[1]), reverse=True
            )
            i = 0
            while used < n and remainders:
                queue = remainders[i % len(remainders)][0]
                counts[queue] = counts.get(queue, 0) + 1
                used += 1
                i += 1
            while used > n:  # floors overshot: trim the largest allocations
                victim = max(counts, key=lambda q: counts[q])
                counts[victim] -= 1
                used -= 1
            slot = 0
            for queue in queues:
                for _ in range(counts.get(queue, 0)):
                    new_assignment[slot] = queue
                    slot += 1

        changed = [
            slot
            for slot in range(len(self.threads))
            if new_assignment[slot] is not self._assignment[slot]
        ]
        self._assignment = new_assignment
        self.tracer.emit(
            "dequeuer",
            "rebalance",
            assignment={q.name: self.threads_for(q) for q in queues},
        )
        # Kick re-assigned threads that are idle (waiting or parked); busy
        # threads pick up the new assignment after their current packet.
        for slot in changed:
            if self._slot_state[slot] in ("waiting", "parked"):
                process = self._slot_process[slot]
                if process is not None and process.is_alive:
                    process.interrupt("reassigned")

    # -- thread task image -------------------------------------------------------

    def _thread_loop(self, slot: int, thread: HardwareThread):
        while True:
            queue = self._assignment[slot]
            if queue is None:
                self._slot_state[slot] = "parked"
                park = self.sim.event(name=f"park-{thread.name}")
                self._park_events[slot] = park
                try:
                    yield park
                except Interrupt:
                    pass
                continue

            self._slot_state[slot] = "waiting"
            get_event = queue.get()
            try:
                packet = yield get_event
            except Interrupt:
                if get_event.triggered:
                    packet = get_event.value  # raced with arrival: ship it
                else:
                    queue.cancel_get(get_event)
                    continue

            self._slot_state[slot] = "busy"
            yield from self._ship(thread, queue, packet)

    def _ship(self, thread: HardwareThread, queue: FlowQueue, packet):
        # Descriptor read + DMA issue.
        yield from thread.compute(self.params.dequeue_cycles)
        yield from thread.mem("sram")
        yield from self.pcie.dma(packet.size)
        packet.stamp("pci-dma", self.sim.now)
        while not self.host_rx_ring.push(packet):
            # Host ring full: back off briefly and retry (hardware engines
            # spin on the ring's consumer index the same way).
            self.ring_full_stalls += 1
            yield self.params.memory.dram * 8
        self.shipped += 1
        if queue.poll_interval > 0:
            yield queue.poll_interval
