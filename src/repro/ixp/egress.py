"""Egress-side classification and weighted transmit scheduling.

The paper's Figure 3 shows a *Tx classifier* and *Tx scheduler* mirroring
the receive side: traffic leaving the host is classified (per source VM)
into egress queues that transmit threads serve by weight — "we can control
the ingress **and egress** network bandwidth seen by the VM" (§2.1).

The egress scheduler slots between the host TX ring and the wire: PCI-Rx
threads still DMA packets out of host memory, but instead of transmitting
directly they enqueue per-flow; Tx threads drain the queues weighted-
round-robin with an optional per-queue rate cap.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..sim import Event, Simulator, Tracer
from ..net import Packet

#: Resolves the egress flow of a host-originated packet (the source VM).
EgressClassifier = Callable[[Packet], str]


def classify_by_source(packet: Packet) -> str:
    """Default egress rule: flow = source VM name."""
    return packet.src


class EgressQueue:
    """One egress flow's transmit queue."""

    def __init__(self, name: str, weight: int = 1, rate_bytes_per_s: int = 0,
                 capacity_packets: int = 512):
        self.name = name
        self.weight = max(1, weight)
        #: Token-bucket rate cap in bytes/second (0 = unlimited).
        self.rate_bytes_per_s = rate_bytes_per_s
        self.capacity_packets = capacity_packets
        self.pending: deque[Packet] = deque()
        self.sent = 0
        self.dropped = 0
        self.bytes_sent = 0
        self._tokens = 0.0
        self._last_refill = 0

    def __len__(self) -> int:
        return len(self.pending)

    def _refill(self, now: int) -> None:
        if self.rate_bytes_per_s <= 0:
            return
        elapsed_s = (now - self._last_refill) / 1e9
        self._last_refill = now
        burst_cap = self.rate_bytes_per_s  # one second of burst
        self._tokens = min(burst_cap, self._tokens + elapsed_s * self.rate_bytes_per_s)

    def eligible(self, now: int) -> bool:
        """Whether the head packet may transmit under the rate cap."""
        if not self.pending:
            return False
        if self.rate_bytes_per_s <= 0:
            return True
        self._refill(now)
        return self._tokens >= self.pending[0].size

    def consume(self, size: int) -> None:
        if self.rate_bytes_per_s > 0:
            self._tokens -= size


class EgressScheduler:
    """Weighted round-robin over egress queues, feeding the wire."""

    def __init__(
        self,
        sim: Simulator,
        transmit: Callable[[Packet], None],
        classifier: EgressClassifier = classify_by_source,
        tracer: Optional[Tracer] = None,
    ):
        """``transmit`` puts a packet on the wire (the Tx pipeline's port
        resolution + link send)."""
        self.sim = sim
        self.transmit = transmit
        self.classifier = classifier
        self.tracer = tracer or Tracer(sim, enabled=False)
        self.queues: dict[str, EgressQueue] = {}
        self._default_queue = EgressQueue("default")
        self._wakeup: Optional[Event] = None
        self._credits: dict[str, float] = {}
        sim.spawn(self._loop(), name="egress-scheduler")

    # -- configuration ------------------------------------------------------

    def register_flow(self, name: str, weight: int = 1,
                      rate_bytes_per_s: int = 0) -> EgressQueue:
        """Create an egress queue for a VM's outbound traffic."""
        if name in self.queues:
            raise ValueError(f"egress flow {name!r} already registered")
        queue = EgressQueue(name, weight=weight, rate_bytes_per_s=rate_bytes_per_s)
        self.queues[name] = queue
        return queue

    def set_weight(self, name: str, weight: int) -> None:
        """Tune translation for egress service shares."""
        self.queues[name].weight = max(1, weight)

    def set_rate(self, name: str, rate_bytes_per_s: int) -> None:
        """Tune translation for hard egress rate caps."""
        self.queues[name].rate_bytes_per_s = max(0, rate_bytes_per_s)

    # -- data path ---------------------------------------------------------------

    def submit(self, packet: Packet) -> bool:
        """Classify and enqueue an outbound packet; False on tail drop."""
        flow = self.classifier(packet)
        queue = self.queues.get(flow, self._default_queue)
        if len(queue.pending) >= queue.capacity_packets:
            queue.dropped += 1
            self.tracer.emit("egress", "drop", flow=queue.name, pid=packet.pid)
            return False
        queue.pending.append(packet)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return True

    def _all_queues(self):
        yield from self.queues.values()
        yield self._default_queue

    def _pick(self) -> Optional[EgressQueue]:
        """Weighted selection among rate-eligible backlogged queues."""
        now = self.sim.now
        candidates = [q for q in self._all_queues() if q.eligible(now)]
        if not candidates:
            return None
        # Smooth weighted round robin via accumulated credits.
        for queue in candidates:
            self._credits[queue.name] = self._credits.get(queue.name, 0.0) + queue.weight
        chosen = max(candidates, key=lambda q: self._credits[q.name])
        total = sum(q.weight for q in candidates)
        self._credits[chosen.name] -= total
        return chosen

    def _loop(self):
        while True:
            queue = self._pick()
            if queue is None:
                if any(len(q) for q in self._all_queues()):
                    # Backlogged but rate-capped: wait for tokens.
                    yield self.sim.timeout(1_000_000)  # 1 ms
                    continue
                self._wakeup = self.sim.event(name="egress-idle")
                yield self._wakeup
                self._wakeup = None
                continue
            packet = queue.pending.popleft()
            queue.consume(packet.size)
            queue.sent += 1
            queue.bytes_sent += packet.size
            self.transmit(packet)
            # Wire pacing is handled by the link; a small inter-packet gap
            # models the Tx thread's per-packet work.
            yield self.sim.timeout(2_000)  # 2 us
