"""Per-VM classified flow queues in IXP DRAM.

The Rx classifier sorts incoming packets into per-guest-VM flow queues
(paper §2.1: "if the classification engine classifies incoming packets into
per VM flow queues, then by tuning the number of dequeuing threads per
queue and their polling intervals, we can control the ingress and egress
network bandwidth seen by the VM"). Occupancy in bytes is what the Figure 7
buffer monitor watches.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, Store, Tracer
from ..net import Packet
from .memory import BufferPool


class FlowQueue:
    """A packet ring for one classified flow, backed by the DRAM pool."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        pool: BufferPool,
        capacity_bytes: int,
        service_weight: int = 1,
        poll_interval: int = 0,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.name = name
        self.pool = pool
        self.capacity_bytes = capacity_bytes
        #: Relative share of dequeue threads this queue receives; the
        #: island's Tune handler adjusts this.
        self.service_weight = max(1, service_weight)
        #: Extra delay between dequeue operations (the poll-interval knob).
        self.poll_interval = poll_interval
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._store: Store[Packet] = Store(sim, name=f"flowq-{name}")
        self.bytes_queued = 0
        self.bytes_high_watermark = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0

    def enqueue(self, packet: Packet) -> bool:
        """Add a packet; drops (tail-drop) when queue or pool is full."""
        if self.bytes_queued + packet.size > self.capacity_bytes:
            self.dropped += 1
            self.tracer.emit(self.name, "flowq-drop", pid=packet.pid, reason="queue-full")
            return False
        if not self.pool.allocate(packet.size):
            self.dropped += 1
            self.tracer.emit(self.name, "flowq-drop", pid=packet.pid, reason="pool-full")
            return False
        self.bytes_queued += packet.size
        if self.bytes_queued > self.bytes_high_watermark:
            self.bytes_high_watermark = self.bytes_queued
        self.enqueued += 1
        self._store.put(packet)
        return True

    def get(self):
        """Event that fires with the next packet (blocking dequeue).

        Byte/pool accounting is released here, when the dequeuing engine
        claims the packet for DMA.
        """
        event = self._store.get()
        event.callbacks.append(self._on_dequeue)
        return event

    def cancel_get(self, event) -> bool:
        """Withdraw a pending blocking dequeue (thread reassignment)."""
        return self._store.cancel_get(event)

    def _on_dequeue(self, event) -> None:
        packet: Packet = event.value
        self.bytes_queued -= packet.size
        self.pool.free(packet.size)
        self.dequeued += 1

    def __len__(self) -> int:
        return len(self._store)

    @property
    def occupancy_bytes(self) -> int:
        """Bytes currently waiting in the queue (Figure 7's signal)."""
        return self.bytes_queued

    def __repr__(self) -> str:
        return f"<FlowQueue {self.name} {len(self)}pkts {self.bytes_queued}B w={self.service_weight}>"
