"""The IXP receive pipeline: wire -> classify -> per-VM flow queue.

Rx microengine threads pull packets off the wire-side ingress, write the
payload to DRAM, run the classification engine (deep packet inspection),
and enqueue a descriptor on the destination VM's flow queue. Classified
packets are also announced to observer hooks — that is where the IXP-side
coordination policies tap application knowledge.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Store, Tracer
from ..net import Packet
from .classifier import Classifier
from .microengine import HardwareThread
from .params import IXPParams

#: Observer invoked as ``hook(packet, flow)`` after classification.
ClassifiedHook = Callable[[Packet, str], None]


class RxPipeline:
    """A set of Rx task threads sharing one wire-side ingress queue."""

    def __init__(
        self,
        sim: Simulator,
        ingress: Store[Packet],
        classifier: Classifier,
        queue_resolver: Callable[[Packet], Optional[object]],
        threads: list[HardwareThread],
        params: IXPParams,
        tracer: Optional[Tracer] = None,
    ):
        """``queue_resolver`` maps a classified packet to its FlowQueue
        (None = no queue registered for this destination: count a drop)."""
        self.sim = sim
        self.ingress = ingress
        self.classifier = classifier
        self.queue_resolver = queue_resolver
        self.params = params
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._hooks: list[ClassifiedHook] = []
        self.processed = 0
        self.unroutable = 0
        for thread in threads:
            sim.spawn(self._thread_loop(thread), name=f"rx-{thread.name}")

    def add_classified_hook(self, hook: ClassifiedHook) -> None:
        """Subscribe to every classified packet (coordination policies)."""
        self._hooks.append(hook)

    def _classify_and_enqueue(self, thread: HardwareThread, packet: Packet):
        """Shared tail of the Rx path: DPI, hooks, flow-queue enqueue."""
        yield from thread.compute(self.params.classify_cycles)
        flow = self.classifier.classify(packet)
        for hook in self._hooks:
            hook(packet, flow)
        yield from thread.compute(self.params.enqueue_cycles)
        yield from thread.mem("sram")
        queue = self.queue_resolver(packet)
        if queue is None:
            self.unroutable += 1
            self.tracer.emit("ixp-rx", "unroutable", pid=packet.pid, dst=packet.dst)
            return
        queue.enqueue(packet)
        self.processed += 1

    def _thread_loop(self, thread: HardwareThread):
        while True:
            packet: Packet = yield self.ingress.get()
            packet.stamp("ixp-rx", self.sim.now)
            # Header parse + payload store to DRAM.
            yield from thread.compute(self.params.rx_header_cycles)
            yield from thread.mem("dram")
            yield from self._classify_and_enqueue(thread, packet)


class TwoStageRxPipeline(RxPipeline):
    """Figure 3's split Rx: receive threads and classifier threads on
    separate microengines, handed off over a scratchpad ring.

    Stage 1 (Rx ME): wire ingress -> header parse -> DRAM payload store ->
    scratch-ring descriptor + signal. Stage 2 (classifier ME): ring ->
    DPI -> per-VM flow queue. Latency grows by the ring hop; stage-1
    threads are freed for line-rate receive — the structure the real IXP
    images used.
    """

    def __init__(
        self,
        sim: Simulator,
        ingress: Store[Packet],
        classifier: Classifier,
        queue_resolver,
        rx_threads: list[HardwareThread],
        classify_threads: list[HardwareThread],
        params: IXPParams,
        ring,
        tracer: Optional[Tracer] = None,
    ):
        self.ring = ring
        # The base constructor spawns stage-1 loops on rx_threads.
        super().__init__(
            sim, ingress, classifier, queue_resolver, rx_threads, params, tracer=tracer
        )
        for thread in classify_threads:
            sim.spawn(self._classifier_loop(thread), name=f"rx-cls-{thread.name}")

    def _thread_loop(self, thread: HardwareThread):
        while True:
            packet: Packet = yield self.ingress.get()
            packet.stamp("ixp-rx", self.sim.now)
            yield from thread.compute(self.params.rx_header_cycles)
            yield from thread.mem("dram")
            accepted = yield from self.ring.put(packet)
            if not accepted:
                self.unroutable += 1
                self.tracer.emit("ixp-rx", "ring-full-drop", pid=packet.pid)

    def _classifier_loop(self, thread: HardwareThread):
        while True:
            packet = yield from self.ring.get()
            yield from self._classify_and_enqueue(thread, packet)
