"""The IXP transmit pipeline: host TX ring -> DMA -> wire.

PCI-Rx threads pull descriptors the host posted, DMA the payload out of
host memory, and hand packets to Tx threads that put them on the wire
toward the destination's port. Port resolution is a pluggable callable so
the island decides the wiring.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Tracer
from ..interconnect import MessageRing, PCIeBus
from ..net import Link, Packet
from .microengine import HardwareThread
from .params import IXPParams

#: Resolves the wire link a packet should leave through (None = no route).
PortResolver = Callable[[Packet], Optional[Link]]


class TxPipeline:
    """Threads moving host-posted packets onto the wire."""

    def __init__(
        self,
        sim: Simulator,
        host_tx_ring: MessageRing,
        pcie: PCIeBus,
        port_resolver: PortResolver,
        threads: list[HardwareThread],
        params: IXPParams,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.host_tx_ring = host_tx_ring
        self.pcie = pcie
        self.port_resolver = port_resolver
        self.params = params
        self.tracer = tracer or Tracer(sim, enabled=False)
        #: When set, packets are handed to the egress QoS scheduler (the
        #: Figure 3 Tx classifier/scheduler) instead of the wire directly.
        self.egress = None
        self.transmitted = 0
        self.unroutable = 0
        for thread in threads:
            sim.spawn(self._thread_loop(thread), name=f"tx-{thread.name}")

    def send_to_wire(self, packet: Packet) -> None:
        """Resolve the port and transmit (the final pipeline stage)."""
        link = self.port_resolver(packet)
        if link is None:
            self.unroutable += 1
            self.tracer.emit("ixp-tx", "unroutable", pid=packet.pid, dst=packet.dst)
            return
        link.send(packet)
        self.transmitted += 1

    def _thread_loop(self, thread: HardwareThread):
        while True:
            packet: Packet = yield self.host_tx_ring.get()
            yield from self.pcie.dma(packet.size)
            yield from thread.compute(self.params.tx_cycles)
            yield from thread.mem("dram")
            packet.stamp("ixp-tx", self.sim.now)
            if self.egress is not None:
                self.egress.submit(packet)
            else:
                self.send_to_wire(packet)
