"""The IXP memory hierarchy: latency model plus buffer-pool accounting.

Packet payloads live in external DRAM, descriptors in external SRAM; both
are also mapped into the host address space (paper §2.1). The
:class:`BufferPool` tracks DRAM bytes in use so the system-level
buffer-monitoring coordination policy (Figure 7) has something real to
watch.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, Tracer
from .params import MemoryLatencies


class MemoryHierarchy:
    """Access-latency oracle for the four levels of IXP memory."""

    LEVELS = ("local", "scratch", "sram", "dram")

    def __init__(self, latencies: Optional[MemoryLatencies] = None):
        self.latencies = latencies or MemoryLatencies()
        self.accesses = {level: 0 for level in self.LEVELS}

    def latency(self, level: str) -> int:
        """Access latency for one reference to ``level``."""
        if level not in self.LEVELS:
            raise ValueError(f"unknown memory level {level!r}; expected one of {self.LEVELS}")
        self.accesses[level] += 1
        return getattr(self.latencies, level)


class BufferPool:
    """Byte-granularity accounting of the DRAM packet-buffer region."""

    def __init__(
        self, sim: Simulator, capacity_bytes: int, name: str = "dram-pool",
        tracer: Optional[Tracer] = None,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity_bytes
        self.tracer = tracer or Tracer(sim, enabled=False)
        self.in_use = 0
        self.high_watermark = 0
        self.allocation_failures = 0

    def allocate(self, size: int) -> bool:
        """Reserve ``size`` bytes; False (and a counted failure) when full."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self.in_use + size > self.capacity:
            self.allocation_failures += 1
            return False
        self.in_use += size
        if self.in_use > self.high_watermark:
            self.high_watermark = self.in_use
        return True

    def free(self, size: int) -> None:
        """Release ``size`` bytes back to the pool."""
        if size > self.in_use:
            raise ValueError(f"freeing {size} bytes but only {self.in_use} in use")
        self.in_use -= size

    @property
    def available(self) -> int:
        """Bytes not currently allocated."""
        return self.capacity - self.in_use
