"""Microengines: the IXP's packet-processing cores.

Each microengine executes one hardware thread at a time; by default the
hardware rotates threads round-robin, "with context switches occurring on
each memory reference" (paper §2.1). We model the single-issue pipeline as
a unit resource: a thread holds it while executing instruction cycles and
releases it across memory references, so compute from different threads
interleaves exactly the way the latency-hiding hardware does it.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator
from .memory import MemoryHierarchy
from .params import cycles


class Microengine:
    """One 8-way hyper-threaded RISC core."""

    def __init__(self, sim: Simulator, index: int, memory: MemoryHierarchy, num_threads: int = 8):
        self.sim = sim
        self.index = index
        self.memory = memory
        self.num_threads = num_threads
        self.pipeline = Resource(sim, capacity=1, name=f"me{index}-pipeline")
        self.busy_time = 0
        self._threads_allocated = 0

    def allocate_thread(self, task_name: str) -> "HardwareThread":
        """Claim one of the ME's hardware contexts for a task image."""
        if self._threads_allocated >= self.num_threads:
            raise RuntimeError(f"microengine {self.index} has no free threads")
        thread = HardwareThread(self, self._threads_allocated, task_name)
        self._threads_allocated += 1
        return thread

    @property
    def threads_free(self) -> int:
        """Hardware contexts not yet allocated to a task."""
        return self.num_threads - self._threads_allocated

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` the pipeline was executing instructions."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:
        return f"<Microengine {self.index} threads={self._threads_allocated}/{self.num_threads}>"


class HardwareThread:
    """A hardware context on a microengine.

    Task images are written as plain generator processes that call
    ``yield from thread.compute(n_cycles)`` and
    ``yield from thread.mem(level)``; the thread takes care of pipeline
    arbitration and context-switch semantics.
    """

    def __init__(self, me: Microengine, index: int, task_name: str):
        self.me = me
        self.index = index
        self.task_name = task_name
        self.name = f"me{me.index}.t{index}({task_name})"
        self.compute_time = 0

    def compute(self, n_cycles: float) -> Generator:
        """Execute ``n_cycles`` instruction cycles (holds the pipeline)."""
        duration = cycles(n_cycles)
        request = self.me.pipeline.request()
        yield request
        try:
            # Pure delay: the integer fast path skips Timeout allocation on
            # the simulator's hottest yield site.
            yield duration
        finally:
            self.me.pipeline.release(request)
        self.me.busy_time += duration
        self.compute_time += duration

    def mem(self, level: str) -> Generator:
        """One memory reference: the pipeline is free for sibling threads."""
        yield self.me.memory.latency(level)

    def __repr__(self) -> str:
        return f"<HardwareThread {self.name}>"
