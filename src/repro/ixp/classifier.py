"""The request/stream classification engine running on Rx microengines.

Classification is pluggable: rules map a packet to a flow name plus
arbitrary annotations (e.g. the RUBiS request type recovered by deep packet
inspection, or the destination VM of an RTP stream). Rules are pure
functions; the CPU cost of running them is charged to the microengine by
the Rx pipeline.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net import Packet

#: A rule inspects a packet and returns the flow name it belongs to (or
#: None to pass to the next rule).
ClassifierRule = Callable[[Packet], Optional[str]]


class Classifier:
    """Ordered rule chain with a default flow for unmatched packets."""

    def __init__(self, default_flow: str = "default"):
        self.default_flow = default_flow
        self._rules: list[tuple[str, ClassifierRule]] = []
        self.classified = 0
        self.by_flow: dict[str, int] = {}

    def add_rule(self, name: str, rule: ClassifierRule) -> None:
        """Append a rule; earlier rules win."""
        self._rules.append((name, rule))

    def classify(self, packet: Packet) -> str:
        """Assign (and record on the packet) the flow for ``packet``."""
        flow = None
        for _name, rule in self._rules:
            flow = rule(packet)
            if flow is not None:
                break
        if flow is None:
            flow = self.default_flow
        packet.flow = flow
        self.classified += 1
        self.by_flow[flow] = self.by_flow.get(flow, 0) + 1
        return flow


def classify_by_destination(packet: Packet) -> Optional[str]:
    """The MPlayer-style rule: flow = destination VM 'IP' (host name)."""
    return packet.dst


def make_payload_field_rule(field: str, prefix: str = "") -> ClassifierRule:
    """DPI-style rule: flow named after a payload field (if present).

    With ``field="request_type"`` this models the RUBiS request
    classification engine performing deep packet inspection.
    """

    def rule(packet: Packet) -> Optional[str]:
        value = packet.payload.get(field)
        if value is None:
            return None
        return f"{prefix}{value}"

    return rule
