"""The shard worker process: a ShardHost driven over a framed pipe.

Protocol (every frame sequence-numbered by
:class:`~repro.interconnect.FramedConnection`; the supervising
coordinator side lives in :mod:`repro.shard.supervisor`):

* worker -> ``ready`` after building its world;
* coordinator -> ``grant (until, batch)`` per window; worker replies
  ``done (outbound, events)``;
* coordinator -> ``finish``; worker replies ``result (collect, events,
  counters)`` and exits;
* any exception inside the worker becomes an ``error (traceback)``
  frame so the coordinator can re-raise with the real story (a Python
  exception is deterministic — replaying would only hit it again — so
  the supervisor never respawns around an ``error`` frame);
* worker -> ``heartbeat`` from a daemon thread every
  ``heartbeat_interval`` wall seconds, proving the process alive while
  the main thread simulates a window.

A respawned worker is indistinguishable from a first-born one on the
wire: the coordinator replays its journaled grants in order and the
worker, being a pure function of its grants, walks back into the exact
state the dead one held. ``attempt`` (0 for the first spawn, +1 per
respawn) exists solely for the fault hook, so scripted chaos can fire
once and stay quiet during the replay.

The fault hook, when given, must be a module-level picklable callable
``hook(shard_index, window_index, attempt)``. It is invoked with
``window_index=BUILD_WINDOW`` before the world is built, with the
running window count (0, 1, 2, ...) before each granted window is
simulated, and with ``window_index=FINISH_WINDOW`` after the result
frame is sent (the hook that refuses to let the process exit). Hooks
kill (``os._exit``) or hang (``time.sleep``) the worker; they must not
touch simulation state, or the replay-equality argument is void.

The worker marks itself with the runner's in-worker env flag, so any
fan-out attempted inside a shard (an experiment nested in a world)
degrades to serial instead of spawning pools of pools.
"""

from __future__ import annotations

import threading
import traceback
from typing import Callable, Optional

from ..interconnect import HEARTBEAT, FramedConnection
from ..parallel import mark_worker
from .host import ShardHost
from .plan import ShardPlan

#: ``window_index`` the fault hook sees while the world is being built.
BUILD_WINDOW = -1
#: ``window_index`` the fault hook sees after the result frame is sent.
FINISH_WINDOW = -2

#: Signature of a worker fault hook (must be picklable).
FaultHook = Callable[[int, int, int], None]


def _heartbeat_loop(
    link: FramedConnection, interval: float, stop: threading.Event
) -> None:
    """Prove liveness on the pipe until told to stop or the pipe dies."""
    while not stop.wait(interval):
        try:
            link.send(HEARTBEAT)
        except (OSError, ValueError, BrokenPipeError):
            return  # coordinator gone or pipe closed mid-shutdown


def shard_worker_main(
    raw_conn,
    plan: ShardPlan,
    shard_index: int,
    build,
    build_args: tuple,
    fastpath: bool,
    attempt: int = 0,
    heartbeat_interval: float = 0.0,
    fault_hook: Optional[FaultHook] = None,
) -> None:
    """Entry point of one shard worker process."""
    mark_worker()
    link = FramedConnection(raw_conn)
    stop_heartbeats = threading.Event()
    try:
        if fault_hook is not None:
            fault_hook(shard_index, BUILD_WINDOW, attempt)
        host = ShardHost(
            plan, shard_index, build, build_args=build_args, fastpath=fastpath
        )
        if heartbeat_interval > 0:
            threading.Thread(
                target=_heartbeat_loop,
                args=(link, heartbeat_interval, stop_heartbeats),
                name=f"shard-{shard_index}-heartbeat",
                daemon=True,
            ).start()
        link.send("ready")
        window = 0
        while True:
            frame = link.recv(expect=("grant", "finish"))
            if frame.kind == "finish":
                stop_heartbeats.set()
                link.send("result", {
                    "result": host.collect(),
                    "events": host.events,
                    "counters": host.router.counters(),
                })
                if fault_hook is not None:
                    fault_hook(shard_index, FINISH_WINDOW, attempt)
                return
            until, batch = frame.payload
            if fault_hook is not None:
                fault_hook(shard_index, window, attempt)
            host.enqueue(batch)
            outbound = host.advance(until)
            link.send("done", (outbound, host.events))
            window += 1
    except Exception:
        stop_heartbeats.set()
        try:
            link.send("error", traceback.format_exc())
        except (OSError, ValueError):
            pass  # coordinator already gone; its recv will fail loudly
    finally:
        stop_heartbeats.set()
        link.close()
