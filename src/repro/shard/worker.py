"""The shard worker process: a ShardHost driven over a framed pipe.

Protocol (every frame sequence-numbered by
:class:`~repro.interconnect.FramedConnection`; the coordinator side
lives in :mod:`repro.shard.runtime`):

* worker -> ``ready`` after building its world;
* coordinator -> ``grant (until, batch)`` per window; worker replies
  ``done (outbound, events)``;
* coordinator -> ``finish``; worker replies ``result (collect, events,
  counters)`` and exits;
* any exception inside the worker becomes an ``error (traceback)``
  frame so the coordinator can re-raise with the real story.

The worker marks itself with the runner's in-worker env flag, so any
fan-out attempted inside a shard (an experiment nested in a world)
degrades to serial instead of spawning pools of pools.
"""

from __future__ import annotations

import traceback

from ..interconnect import FramedConnection
from ..parallel import mark_worker
from .host import ShardHost
from .plan import ShardPlan


def shard_worker_main(
    raw_conn,
    plan: ShardPlan,
    shard_index: int,
    build,
    build_args: tuple,
    fastpath: bool,
) -> None:
    """Entry point of one shard worker process."""
    mark_worker()
    link = FramedConnection(raw_conn)
    try:
        host = ShardHost(
            plan, shard_index, build, build_args=build_args, fastpath=fastpath
        )
        link.send("ready")
        while True:
            frame = link.recv(expect=("grant", "finish"))
            if frame.kind == "finish":
                link.send("result", {
                    "result": host.collect(),
                    "events": host.events,
                    "counters": host.router.counters(),
                })
                return
            until, batch = frame.payload
            host.enqueue(batch)
            outbound = host.advance(until)
            link.send("done", (outbound, host.events))
    except Exception:
        try:
            link.send("error", traceback.format_exc())
        except (OSError, ValueError):
            pass  # coordinator already gone; its recv will fail loudly
    finally:
        link.close()
