"""The shard coordinator: window grants, barriers, boundary routing.

One run is a sequence of lockstep windows. For each window ``[T, T+W)``
(``W`` = the plan's lookahead-bounded width) the coordinator grants
every shard the window, barriers on their completion, collects the
boundary messages each produced, routes them to the shard owning each
destination island, and folds them into the next grant. Conservative
lookahead guarantees every routed message is due *at or after* the next
window's start, so no shard ever receives a message from its past.

Two engines run the same protocol:

* **inline** — every :class:`~repro.shard.host.ShardHost` lives in this
  process (``shards=1``, serial degradation, and the reference arm of
  the bit-equality tests);
* **process** — one worker process per shard
  (:func:`~repro.shard.worker.shard_worker_main`) over seq-numbered
  framed pipes.

The engine choice follows the runner's
:func:`~repro.experiments.runner.plan_execution` rules (``REPRO_*``
knobs, nested-in-worker, single CPU) and any spawn failure degrades to
inline with its reason logged once — never silently, and never with a
different simulation result: both engines drive identical hosts through
identical windows with identical message batches.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..interconnect import FramedConnection, ShardProtocolError
from ..parallel import plan_execution
from .host import ShardHost
from .plan import ShardPlan
from .ports import BoundaryMessage
from .worker import shard_worker_main

_log = logging.getLogger(__name__)
#: Degradation causes already reported; each distinct cause logs once.
_logged_degradations: set[str] = set()


class ShardWorkerError(RuntimeError):
    """A shard worker died; carries its formatted traceback."""


@dataclass
class ShardRunResult:
    """What one sharded run produced, plus how it ran.

    ``results`` holds each shard's ``collect()`` payload in shard order —
    the *simulation* outcome, bit-identical across engines and shard
    layouts. The remaining fields describe the *execution* (wall clock,
    engine, window count) and are the only parts allowed to differ.
    """

    results: list
    shards: int
    engine: str
    windows: int
    events: int
    wall_seconds: float
    #: Boundary messages still in flight when the run ended (due at or
    #: after ``duration``; identical across engines).
    undelivered: int
    counters: dict = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _note_degradation(cause: str) -> None:
    if cause not in _logged_degradations:
        _logged_degradations.add(cause)
        _log.warning("shard workers unavailable (%s); running shards inline", cause)


class _InlineEngine:
    """All shard hosts in this process, stepped in shard order."""

    name = "inline"

    def __init__(self, plan, build, build_args, fastpath):
        self.hosts = [
            ShardHost(plan, index, build, build_args=build_args, fastpath=fastpath)
            for index in range(plan.shards)
        ]

    def step(self, until: int, batches: list) -> list:
        outbound = []
        for host, batch in zip(self.hosts, batches):
            host.enqueue(batch)
            outbound.append(host.advance(until))
        return outbound

    def finish(self) -> list:
        return [
            {
                "result": host.collect(),
                "events": host.events,
                "counters": host.router.counters(),
            }
            for host in self.hosts
        ]

    def close(self) -> None:
        pass


class _ProcessEngine:
    """One worker process per shard over framed pipes."""

    name = "process"

    def __init__(self, plan, build, build_args, fastpath):
        ctx = multiprocessing.get_context()
        self._procs = []
        self._links = []
        try:
            for index in range(plan.shards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=shard_worker_main,
                    args=(child, plan, index, build, build_args, fastpath),
                    name=f"shard-{index}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._links.append(FramedConnection(parent))
            for link in self._links:
                self._expect(link, "ready")
        except BaseException:
            self.close()
            raise

    def _expect(self, link, kind: str):
        frame = link.recv()
        if frame.kind == "error":
            raise ShardWorkerError(f"shard worker failed:\n{frame.payload}")
        if frame.kind != kind:
            raise ShardProtocolError(f"expected {kind!r}, got {frame!r}")
        return frame

    def step(self, until: int, batches: list) -> list:
        for link, batch in zip(self._links, batches):
            link.send("grant", (until, batch))
        outbound = []
        for link in self._links:
            shard_out, _events = self._expect(link, "done").payload
            outbound.append(shard_out)
        return outbound

    def finish(self) -> list:
        for link in self._links:
            link.send("finish")
        results = [self._expect(link, "result").payload for link in self._links]
        for proc in self._procs:
            proc.join(timeout=30)
        return results

    def close(self) -> None:
        for link in self._links:
            try:
                link.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)


def _route(plan: ShardPlan, outbound: list) -> list[list[BoundaryMessage]]:
    """Route every drained message to the shard owning its destination."""
    batches: list[list[BoundaryMessage]] = [[] for _ in range(plan.shards)]
    for shard_out in outbound:
        for message in shard_out:
            batches[plan.shard_of(message.dst)].append(message)
    for batch in batches:
        batch.sort(key=BoundaryMessage.sort_key)
    return batches


def run_sharded(
    plan: ShardPlan,
    build,
    build_args: tuple = (),
    *,
    duration: int,
    fastpath: bool = True,
    workers: Optional[int] = None,
) -> ShardRunResult:
    """Run ``build``'s world over ``plan`` for ``duration`` ns.

    ``build(ctx, *build_args)`` is called once per shard (in a worker
    process when the engine is parallel), so it must be a module-level
    picklable callable; per-shard determinism must come from the plan
    and explicit seeds in ``build_args``, never from ambient state.
    """
    window = plan.window_for(duration)
    if window <= 0:
        raise ValueError(
            "cannot run windows of non-positive width; a zero-latency "
            "cross-cluster link offers no lookahead"
        )
    engine: Any = None
    if plan.shards >= 2:
        exec_plan = plan_execution(plan.shards, max_workers=workers)
        if exec_plan.parallel:
            try:
                engine = _ProcessEngine(plan, build, build_args, fastpath)
            except ShardWorkerError:
                raise  # the world itself failed to build; not a pool problem
            except Exception as exc:
                _note_degradation(f"{type(exc).__name__}: {exc}")
        else:
            _note_degradation(exec_plan.reason)
    if engine is None:
        engine = _InlineEngine(plan, build, build_args, fastpath)
    start = time.perf_counter()
    batches: list[list[BoundaryMessage]] = [[] for _ in range(plan.shards)]
    now = 0
    windows = 0
    try:
        while now < duration:
            until = min(now + window, duration)
            outbound = engine.step(until, batches)
            batches = _route(plan, outbound)
            now = until
            windows += 1
        shard_results = engine.finish()
    finally:
        engine.close()
    wall = time.perf_counter() - start
    counters: dict[str, int] = {}
    for entry in shard_results:
        for key, value in entry["counters"].items():
            counters[key] = counters.get(key, 0) + value
    return ShardRunResult(
        results=[entry["result"] for entry in shard_results],
        shards=plan.shards,
        engine=engine.name,
        windows=windows,
        events=sum(entry["events"] for entry in shard_results),
        wall_seconds=wall,
        undelivered=sum(len(batch) for batch in batches),
        counters=counters,
    )
