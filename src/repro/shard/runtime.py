"""The shard coordinator: window grants, barriers, boundary routing.

One run is a sequence of lockstep windows. For each window ``[T, T+W)``
(``W`` = the plan's lookahead-bounded width) the coordinator journals
the window's complete input (:class:`~repro.shard.journal.WindowJournal`),
grants every shard the window, barriers on their completion, collects
the boundary messages each produced, routes them to the shard owning
each destination island, and folds them into the next grant.
Conservative lookahead guarantees every routed message is due *at or
after* the next window's start, so no shard ever receives a message from
its past.

Two engines run the same protocol:

* **inline** — every :class:`~repro.shard.host.ShardHost` lives in this
  process (``shards=1``, serial degradation, and the reference arm of
  the bit-equality tests);
* **process** — one supervised worker process per shard
  (:class:`~repro.shard.supervisor.SupervisedEngine`) over seq-numbered
  framed pipes, with barrier deadlines, heartbeat liveness probes and
  crash/hang recovery by journal replay.

The engine choice follows the runner's
:func:`~repro.experiments.runner.plan_execution` rules (``REPRO_*``
knobs, nested-in-worker, single CPU); any spawn failure — and any
mid-run :class:`~repro.shard.supervisor.SupervisionExhausted` (respawn
budget spent, journal truncated) — degrades to the inline engine, with
the cause recorded per run (:class:`DegradationLog`) and never with a
different simulation result: the inline engine is rebuilt from the
journal (or, when the journal is truncated, by deterministic
recomputation from scratch), so degraded runs stay bit-identical to
undisturbed ones.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..parallel import plan_execution
from .config import ShardConfig
from .host import ShardHost
from .journal import WindowJournal
from .plan import ShardPlan
from .ports import BoundaryMessage
from .supervisor import (
    ShardWorkerError,
    SupervisedEngine,
    SupervisionExhausted,
    SupervisionLog,
)

_log = logging.getLogger(__name__)
#: Degradation causes already *warned* about in this process — log-spam
#: control only (a 100-job sweep should not warn 100 times). Per-run
#: degradation *state* lives in :class:`DegradationLog`, on the result.
_warned_degradations: set[str] = set()


def reset_degradation_warnings() -> None:
    """Forget which degradation causes have already been warned about.

    The warn-once cache is process-wide (log-spam control across
    sweeps); tests that assert on the warning call this instead of
    reaching into module privates. Per-run degradation records
    (``ShardRunResult.supervision["degradations"]``) are unaffected —
    they were never global.
    """
    _warned_degradations.clear()


class DegradationLog:
    """Per-run record of why (if ever) the run left the process engine.

    Replaces the old module-global "logged degradations" set: causes are
    now state of the run they happened in, surfaced via
    ``ShardRunResult.supervision["degradations"]`` and the
    ``supervision.degraded_inline`` counter, while the process-wide
    :func:`reset_degradation_warnings` cache only dedups the *warning*.
    """

    def __init__(self) -> None:
        self.causes: list[str] = []

    def note(self, cause: str) -> None:
        self.causes.append(cause)
        if cause not in _warned_degradations:
            _warned_degradations.add(cause)
            _log.warning(
                "shard workers unavailable (%s); running shards inline", cause
            )


@dataclass
class ShardRunResult:
    """What one sharded run produced, plus how it ran.

    ``results`` holds each shard's ``collect()`` payload in shard order —
    the *simulation* outcome, bit-identical across engines and shard
    layouts. The remaining fields describe the *execution* (wall clock,
    engine, window count, recovery events) and are the only parts
    allowed to differ.

    ``counters`` merges the deterministic router counters (``sent`` /
    ``dropped`` / ``delivered``), the journal accounting and the
    ``supervision.*`` recovery counters. The supervision keys are zero
    on undisturbed runs under every engine; bit-equality checks against
    a disturbed run should compare only the non-``supervision.`` keys.
    """

    results: list
    shards: int
    engine: str
    windows: int
    events: int
    wall_seconds: float
    #: Boundary messages still in flight when the run ended (due at or
    #: after ``duration``; identical across engines).
    undelivered: int
    counters: dict = field(default_factory=dict)
    #: :meth:`~repro.shard.supervisor.SupervisionLog.summary` of the
    #: run's harness recovery events plus the per-run degradation causes
    #: — wall-clock data, never part of any bit-equality artefact.
    supervision: dict = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0


class _InlineEngine:
    """All shard hosts in this process, stepped in shard order."""

    name = "inline"

    def __init__(self, plan, build, build_args, fastpath):
        self.hosts = [
            ShardHost(plan, index, build, build_args=build_args, fastpath=fastpath)
            for index in range(plan.shards)
        ]

    def step(self, until: int, batches: list) -> list:
        outbound = []
        for host, batch in zip(self.hosts, batches):
            host.enqueue(batch)
            outbound.append(host.advance(until))
        return outbound

    def finish(self) -> list:
        return [
            {
                "result": host.collect(),
                "events": host.events,
                "counters": host.router.counters(),
            }
            for host in self.hosts
        ]

    def close(self) -> None:
        pass


def _route(plan: ShardPlan, outbound: list) -> list[list[BoundaryMessage]]:
    """Route every drained message to the shard owning its destination."""
    batches: list[list[BoundaryMessage]] = [[] for _ in range(plan.shards)]
    for shard_out in outbound:
        for message in shard_out:
            batches[plan.shard_of(message.dst)].append(message)
    for batch in batches:
        batch.sort(key=BoundaryMessage.sort_key)
    return batches


def _degrade_to_inline(
    old_engine,
    cause: str,
    plan: ShardPlan,
    build,
    build_args: tuple,
    fastpath: bool,
    journal: WindowJournal,
    windows: int,
    window: int,
    duration: int,
    log: SupervisionLog,
    degradations: DegradationLog,
) -> _InlineEngine:
    """Swap the whole run onto a fresh inline engine, fast-forwarded to
    window ``windows``: from the journal when it is complete, otherwise
    by deterministic recomputation from scratch. Either way the inline
    hosts land bit-identical to a run that was never disturbed."""
    started = time.monotonic()
    degradations.note(cause)
    log.note("degraded-inline", cause=cause)
    old_engine.close()
    engine = _InlineEngine(plan, build, build_args, fastpath)
    if windows:
        if journal.complete:
            for _index, until, batches in journal.replay(upto=windows):
                engine.step(until, batches)
            source = "journal"
        else:
            # The journal lost its oldest windows; recompute the prefix —
            # the same loop as the live run, so the result is identical.
            batches: list[list[BoundaryMessage]] = [[] for _ in range(plan.shards)]
            now = 0
            for _w in range(windows):
                until = min(now + window, duration)
                batches = _route(plan, engine.step(until, batches))
                now = until
            source = "recompute"
        log.note(
            "inline-replay", windows=windows, source=source,
            wall_s=round(time.monotonic() - started, 6),
        )
    return engine


def run_sharded(
    plan: ShardPlan,
    build,
    build_args: tuple = (),
    *,
    duration: int,
    fastpath: bool = True,
    workers: Optional[int] = None,
    config: Optional[ShardConfig] = None,
    fault_hook=None,
) -> ShardRunResult:
    """Run ``build``'s world over ``plan`` for ``duration`` ns.

    ``build(ctx, *build_args)`` is called once per shard (in a worker
    process when the engine is parallel), so it must be a module-level
    picklable callable; per-shard determinism must come from the plan
    and explicit seeds in ``build_args``, never from ambient state.

    ``config`` carries the supervision knobs (barrier deadline,
    heartbeat/probe intervals, respawn budget, journal bound); its
    ``shards``/``window_ns`` fields are *not* consulted here — the plan
    already fixed those. ``fault_hook`` (picklable; see
    :mod:`repro.shard.worker`) is delivered to worker processes only —
    the inline engine never runs hooks, which is what makes a degraded
    run equal to an undisturbed one even under a chaos script.
    """
    config = config or ShardConfig()
    window = plan.window_for(duration)
    if window <= 0:
        raise ValueError(
            "cannot run windows of non-positive width; a zero-latency "
            "cross-cluster link offers no lookahead"
        )
    journal = WindowJournal(plan.shards, limit=config.journal_limit)
    log = SupervisionLog()
    degradations = DegradationLog()
    engine: Any = None
    if plan.shards >= 2:
        effective_workers = workers if workers is not None else config.workers
        exec_plan = plan_execution(plan.shards, max_workers=effective_workers)
        if exec_plan.parallel:
            try:
                engine = SupervisedEngine(
                    plan, build, build_args, fastpath,
                    config=config, journal=journal, log=log,
                    fault_hook=fault_hook,
                )
            except ShardWorkerError:
                raise  # the world itself failed to build; not a pool problem
            except SupervisionExhausted as exc:
                degradations.note(str(exc))
                log.note("degraded-inline", cause=str(exc))
            except Exception as exc:
                degradations.note(f"{type(exc).__name__}: {exc}")
        else:
            degradations.note(exec_plan.reason)
    if engine is None:
        engine = _InlineEngine(plan, build, build_args, fastpath)
    start = time.perf_counter()
    batches: list[list[BoundaryMessage]] = [[] for _ in range(plan.shards)]
    now = 0
    windows = 0
    degrade_args = (plan, build, build_args, fastpath, journal)
    try:
        while now < duration:
            until = min(now + window, duration)
            journal.record(windows, until, batches)
            try:
                outbound = engine.step(until, batches)
            except SupervisionExhausted as exc:
                engine = _degrade_to_inline(
                    engine, str(exc), *degrade_args,
                    windows, window, duration, log, degradations,
                )
                outbound = engine.step(until, batches)
            batches = _route(plan, outbound)
            now = until
            windows += 1
        try:
            shard_results = engine.finish()
        except SupervisionExhausted as exc:
            engine = _degrade_to_inline(
                engine, str(exc), *degrade_args,
                windows, window, duration, log, degradations,
            )
            shard_results = engine.finish()
    finally:
        engine.close()
    wall = time.perf_counter() - start
    counters: dict[str, int] = {}
    for entry in shard_results:
        for key, value in entry["counters"].items():
            counters[key] = counters.get(key, 0) + value
    counters.update(journal.counters())
    counters.update(log.counters())
    supervision = log.summary()
    supervision["degradations"] = list(degradations.causes)
    return ShardRunResult(
        results=[entry["result"] for entry in shard_results],
        shards=plan.shards,
        engine=engine.name,
        windows=windows,
        events=sum(entry["events"] for entry in shard_results),
        wall_seconds=wall,
        undelivered=sum(len(batch) for batch in batches),
        counters=counters,
        supervision=supervision,
    )
