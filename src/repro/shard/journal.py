"""WindowJournal: the bounded record that makes recovery deterministic.

A shard's trajectory is a pure function of ``(topology, build,
build_args)`` plus the sequence of window grants and the routed inbound
boundary batches it received — that is the *entire* input surface of a
shard (the same argument that makes ``shards=N`` bit-identical to
``shards=1``). The coordinator therefore journals exactly that, window
by window: ``(window index, until, one routed batch per shard)``.

When a worker crashes or hangs, the supervisor rebuilds its world from
``(build, build_args)`` and fast-forwards it by replaying the journal —
granting the dead shard's windows again with the very batches it was
fed the first time. The replayed shard lands bit-identical to a
never-crashed one, because nothing else ever influenced it.

The journal is bounded (``limit`` windows, evicting oldest). Once an
entry has been evicted the journal is *truncated*: per-shard replay
from birth is impossible, and recovery falls back to recomputing the
whole run inline from scratch — still deterministic, just without the
shortcut of skipping the routing step.

Entries hold references to the routed batch lists the coordinator
already built; nothing copies and nothing mutates them (hosts ``extend``
their inboxes from a batch, workers receive pickled copies), so
journaling a clean run costs one tuple per window.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from .ports import BoundaryMessage

#: One journal entry: (window index, exclusive end time, routed batches).
JournalEntry = tuple[int, int, list[list[BoundaryMessage]]]


class WindowJournal:
    """Bounded per-run journal of every window grant and routed batch."""

    def __init__(self, shards: int, limit: Optional[int] = None):
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 windows, got {limit}")
        self.shards = shards
        self.limit = limit
        self._entries: deque[JournalEntry] = deque()
        #: Total windows ever recorded (monotone; unaffected by eviction).
        self.windows_recorded = 0
        #: Total boundary messages across every journaled batch.
        self.messages_recorded = 0
        #: Windows evicted to honour ``limit``.
        self.evicted = 0

    # -- recording ------------------------------------------------------------

    def record(
        self, index: int, until: int, batches: list[list[BoundaryMessage]]
    ) -> None:
        """Journal window ``index`` (its grant bound and per-shard routed
        inbound batches) before the window runs, so the journal always
        covers the window a failure interrupts."""
        if index != self.windows_recorded:
            raise ValueError(
                f"journal expected window {self.windows_recorded}, got {index}; "
                "windows must be recorded contiguously from 0"
            )
        if len(batches) != self.shards:
            raise ValueError(
                f"expected one batch per shard ({self.shards}), got {len(batches)}"
            )
        self._entries.append((index, until, batches))
        self.windows_recorded += 1
        self.messages_recorded += sum(len(batch) for batch in batches)
        if self.limit is not None and len(self._entries) > self.limit:
            self._entries.popleft()
            self.evicted += 1

    # -- inspection -----------------------------------------------------------

    @property
    def complete(self) -> bool:
        """Whether the journal still reaches back to window 0 (the
        precondition for replaying a reborn shard from birth)."""
        return self.evicted == 0

    @property
    def first_index(self) -> Optional[int]:
        """Oldest retained window index (None when empty)."""
        return self._entries[0][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    # -- replay ---------------------------------------------------------------

    def replay(
        self, shard: Optional[int] = None, upto: Optional[int] = None
    ) -> Iterator[tuple[int, int, list]]:
        """Yield ``(index, until, batch)`` for journaled windows below
        ``upto`` (default: all), in order.

        With ``shard`` given, ``batch`` is that shard's routed inbound
        batch; with ``shard=None`` it is the full per-shard batch list
        (the inline-degradation replay). Raises :class:`ValueError` when
        the requested range reaches behind the retained window set — the
        caller must fall back to recomputing from scratch.
        """
        if upto is None:
            upto = self.windows_recorded
        if upto == 0:
            return
        if not self._entries or self._entries[0][0] != 0:
            raise ValueError(
                f"journal truncated (oldest retained window: {self.first_index}); "
                "cannot replay from window 0"
            )
        for index, until, batches in self._entries:
            if index >= upto:
                break
            yield index, until, batches if shard is None else batches[shard]

    def counters(self) -> dict[str, int]:
        """Deterministic journal accounting (engine-independent: the
        coordinator journals identically under every engine)."""
        return {
            "supervision.journal_windows": self.windows_recorded,
            "supervision.journal_messages": self.messages_recorded,
            "supervision.journal_evicted": self.evicted,
        }

    def __repr__(self) -> str:
        return (
            f"<WindowJournal windows={self.windows_recorded} "
            f"retained={len(self._entries)} evicted={self.evicted}>"
        )
