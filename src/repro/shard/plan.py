"""ShardPlan: the deterministic cut of a fabric into shards.

The plan is pure topology arithmetic — cluster groups from
:meth:`FabricTopology.partition`, the conservative lookahead from
:meth:`FabricTopology.min_cross_cluster_latency`, and the island/cluster
-> shard maps the router and coordinator consult. It depends only on
``(topology, shards, window_ns)``; worker counts, process placement and
wall-clock scheduling never influence it, which is half of the
determinism contract (the other half is the boundary-message ordering in
:mod:`repro.shard.ports`).
"""

from __future__ import annotations

from typing import Optional

from ..platform.fabric import FabricTopology


class ShardPlan:
    """Cluster groups, lookahead and window width for one sharded run."""

    def __init__(
        self,
        topology: FabricTopology,
        shards: int = 1,
        window_ns: Optional[int] = None,
    ):
        self.topology = topology
        #: Cluster-name groups, one per shard (cluster boundaries only).
        self.groups = topology.partition(shards)
        self.shards = len(self.groups)
        #: The conservative lookahead: min cross-cluster link latency.
        #: None when the fabric has no cross-cluster links (shards would
        #: be fully independent; any window is safe).
        self.lookahead = topology.min_cross_cluster_latency()
        if window_ns is not None:
            if self.lookahead is not None and window_ns > self.lookahead:
                raise ValueError(
                    f"window_ns={window_ns} exceeds the lookahead "
                    f"({self.lookahead} ns): a shard could run past a "
                    "message from its future"
                )
            self.window = window_ns
        else:
            self.window = self.lookahead
        if self.shards > 1 and self.window is None:
            raise ValueError(
                "multi-shard execution over a fabric with no cross-cluster "
                "links needs an explicit window_ns"
            )
        self._shard_of_cluster = {
            name: index for index, group in enumerate(self.groups) for name in group
        }
        self._shard_of_island = {
            island: self._shard_of_cluster[cluster.name]
            for cluster in topology.clusters
            for island in cluster.islands
        }

    # -- lookups ------------------------------------------------------------

    def shard_of(self, island: str) -> int:
        """The shard index owning ``island``; KeyError if unknown."""
        return self._shard_of_island[island]

    def clusters_of(self, shard: int) -> tuple[str, ...]:
        """The cluster names assigned to ``shard``."""
        return self.groups[shard]

    def islands_of(self, shard: int) -> tuple[str, ...]:
        """The islands of ``shard``, in cluster declaration order."""
        members = set(self.groups[shard])
        return tuple(
            island
            for cluster in self.topology.clusters
            if cluster.name in members
            for island in cluster.islands
        )

    def boundary_links(self) -> list[tuple[str, str, int]]:
        """Cross-cluster links whose endpoints land in different shards."""
        return [
            (a, b, latency)
            for a, b, latency in self.topology.cross_cluster_links()
            if self.shard_of(a) != self.shard_of(b)
        ]

    def window_for(self, duration: int) -> int:
        """The window width to run with: the plan's window, or one
        single window spanning the whole run when unbounded."""
        return self.window if self.window is not None else duration

    def __repr__(self) -> str:
        return (
            f"<ShardPlan shards={self.shards} window={self.window} "
            f"groups={[len(g) for g in self.groups]}>"
        )
