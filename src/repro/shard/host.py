"""ShardHost: one shard's simulator, router and world, window by window.

The delivery-ordering contract lives here. For each granted window the
host interleaves kernel progress with boundary deliveries:

* a message due at ``T`` applies after every local event *strictly
  before* ``T`` (``Simulator.run_until(T)``) and before any local event
  at ``T`` or later;
* same-instant deliveries apply in ``(deliver_at, dst, src, seq)``
  order;
* handlers run synchronously with the clock parked at ``T``, so any
  events they schedule are ordered exactly as they would be had the
  sender lived in the same process.

That contract — plus the router's send-side rules — is what makes
``shards=N`` bit-identical to ``shards=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import Simulator
from .plan import ShardPlan
from .ports import BoundaryMessage, BoundaryRouter, BoundaryRoutingError


@dataclass
class ShardContext:
    """What a world-builder gets to build one shard's slice of a fabric.

    ``islands`` is this shard's slice; ``plan.topology`` is the whole
    fabric, so builders can wire boundary handlers toward islands they
    do *not* own (they reach them through ``router.send``).
    """

    sim: Simulator
    router: BoundaryRouter
    plan: ShardPlan
    shard_index: int

    @property
    def islands(self) -> tuple[str, ...]:
        return self.plan.islands_of(self.shard_index)


class ShardHost:
    """One shard: a Simulator plus the world built on it.

    ``build(ctx, *build_args)`` must be a module-level callable (it
    crosses a process boundary in sharded mode) returning a *world*
    object; if the world has a ``collect()`` method its (picklable)
    return value is the shard's result.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shard_index: int,
        build: Callable[..., Any],
        build_args: tuple = (),
        fastpath: bool = True,
    ):
        self.plan = plan
        self.shard_index = shard_index
        self.sim = Simulator(fastpath=fastpath)
        self.router = BoundaryRouter(plan.topology, shard_index)
        ctx = ShardContext(
            sim=self.sim, router=self.router, plan=plan, shard_index=shard_index
        )
        self.world = build(ctx, *build_args)
        self._inbox: list[BoundaryMessage] = []

    def enqueue(self, batch: list[BoundaryMessage]) -> None:
        """Accept routed boundary messages (due now or in any future
        window); the inbox keeps total delivery order."""
        if not batch:
            return
        self._inbox.extend(batch)
        self._inbox.sort(key=BoundaryMessage.sort_key)

    def advance(self, until: int) -> list[BoundaryMessage]:
        """Run the granted window ``[now, until)``; return the outbound
        boundary messages produced during it."""
        inbox = self._inbox
        while inbox and inbox[0].deliver_at < until:
            due = inbox[0].deliver_at
            if due < self.sim.now:
                raise BoundaryRoutingError(
                    f"causality violation: {inbox[0]!r} due at {due} but "
                    f"shard {self.shard_index} is already at {self.sim.now}"
                )
            self.sim.run_until(due)
            while inbox and inbox[0].deliver_at == due:
                self.router.deliver(inbox.pop(0), due)
        self.sim.run_until(until)
        return self.router.drain()

    @property
    def events(self) -> int:
        """Kernel events processed so far (the throughput numerator)."""
        return self.sim.events

    def collect(self) -> Optional[Any]:
        """The world's picklable result, if it offers one."""
        collector = getattr(self.world, "collect", None)
        return collector() if callable(collector) else None

    def __repr__(self) -> str:
        return (
            f"<ShardHost {self.shard_index} now={self.sim.now} "
            f"inbox={len(self._inbox)}>"
        )
