"""Link health across shard boundaries: heartbeats, misses, epochs.

The PR-5 fault idiom (UP -> SUSPECT -> DOWN on consecutive missed
heartbeats, epoch bump on recovery, snapshot replay from the ``on_up``
hook) restated for boundary links. Unlike the prototype's
:class:`~repro.faults.health.FailureDetector` there is no reliable layer
here — boundary pipes are lossless, so the only way heartbeats go
missing is a scripted :class:`~repro.faults.ChannelBlackout` on the
link, which drops them at *send* time. Both endpoints therefore observe
a ``direction="both"`` partition symmetrically and deterministically.

Everything ticks on simulation-time :class:`~repro.sim.PeriodicTask`\\ s
and the transitions list is pure simulation arithmetic: the health
timeline is bit-identical across shard counts and fastpath modes.
"""

from __future__ import annotations

from typing import Any

from ..sim import PeriodicTask, Simulator, ms
from .ports import BoundaryMessage, BoundaryRouter

#: LinkHealth states (mirrors faults.health PEER_* for boundary links).
LINK_UP = "up"
LINK_SUSPECT = "suspect"
LINK_DOWN = "down"

#: Default heartbeat period on a boundary link.
DEFAULT_HEARTBEAT_PERIOD = ms(50)


class LinkHealth:
    """One endpoint's view of one boundary link's liveness.

    ``local`` sends heartbeats to ``peer`` over the boundary router every
    ``period``; a check task counts consecutive silent periods and walks
    the link UP -> SUSPECT (``suspect_misses``) -> DOWN (``down_misses``).
    Recovery (a heartbeat arriving while DOWN) bumps the local ``epoch``
    — the signal for the owning agent to replay its state snapshot on
    top of whatever the peer missed.
    """

    def __init__(
        self,
        sim: Simulator,
        router: BoundaryRouter,
        local: str,
        peer: str,
        period: int = DEFAULT_HEARTBEAT_PERIOD,
        suspect_misses: int = 2,
        down_misses: int = 4,
    ):
        if suspect_misses <= 0 or down_misses < suspect_misses:
            raise ValueError("need 0 < suspect_misses <= down_misses")
        self.sim = sim
        self.router = router
        self.local = local
        self.peer = peer
        self.period = period
        self.suspect_misses = suspect_misses
        self.down_misses = down_misses
        self.state = LINK_UP
        #: Local incarnation; bumped on every DOWN -> UP recovery.
        self.epoch = 0
        #: Highest epoch seen from the peer's heartbeats.
        self.peer_epoch = 0
        #: (time, state, reason) — the deterministic health timeline.
        self.transitions: list[tuple[int, str, str]] = [(sim.now, LINK_UP, "init")]
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self._last_seen = sim.now
        self._on_down: list = []
        self._on_up: list = []
        router.register(local, "heartbeat", self._on_heartbeat, src=peer)
        self._beat_task = PeriodicTask(
            sim, period, self._beat, name=f"link-heartbeat-{local}->{peer}"
        )
        self._check_task = PeriodicTask(
            sim, period, self._check, name=f"link-check-{local}<-{peer}"
        )

    # -- subscriptions ------------------------------------------------------

    @property
    def is_down(self) -> bool:
        return self.state == LINK_DOWN

    def on_down(self, callback) -> None:
        """Run ``callback()`` whenever the link transitions to DOWN."""
        self._on_down.append(callback)

    def on_up(self, callback) -> None:
        """Run ``callback()`` on recovery, after the epoch bump — the
        hook where an aggregator replays its full view to the peer."""
        self._on_up.append(callback)

    # -- periodic tasks -----------------------------------------------------

    def _beat(self) -> None:
        self.heartbeats_sent += 1
        self.router.send(
            self.local, self.peer, "heartbeat",
            {"epoch": self.epoch}, self.sim.now,
        )

    def _check(self) -> None:
        misses = (self.sim.now - self._last_seen) // self.period
        if misses >= self.down_misses:
            self._transition(LINK_DOWN, f"missed {misses} heartbeats")
        elif misses >= self.suspect_misses:
            self._transition(LINK_SUSPECT, f"missed {misses} heartbeats")

    def _on_heartbeat(self, message: BoundaryMessage) -> None:
        self.heartbeats_received += 1
        self._last_seen = self.sim.now
        epoch = message.payload.get("epoch", 0)
        if epoch > self.peer_epoch:
            self.peer_epoch = epoch
        if self.state != LINK_UP:
            self._transition(LINK_UP, "heartbeat-resumed")

    # -- state machine ------------------------------------------------------

    def _transition(self, new_state: str, reason: str) -> None:
        old = self.state
        if old == new_state:
            return
        if new_state == LINK_SUSPECT and old != LINK_UP:
            return  # SUSPECT never downgrades DOWN
        self.state = new_state
        self.transitions.append((self.sim.now, new_state, reason))
        if new_state == LINK_DOWN:
            for callback in self._on_down:
                callback()
        elif new_state == LINK_UP and old == LINK_DOWN:
            self.epoch += 1
            for callback in self._on_up:
                callback()

    def health(self) -> dict[str, Any]:
        """Picklable snapshot for shard result collection."""
        return {
            "state": self.state,
            "epoch": self.epoch,
            "peer_epoch": self.peer_epoch,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_received": self.heartbeats_received,
            "transitions": list(self.transitions),
        }

    def __repr__(self) -> str:
        return f"<LinkHealth {self.local}<-{self.peer} {self.state} epoch={self.epoch}>"
