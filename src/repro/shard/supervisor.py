"""Supervision for shard workers: deadlines, respawn, replay recovery.

:class:`SupervisedEngine` is the process engine of
:func:`~repro.shard.runtime.run_sharded`, wrapped in the reflective
supervise-and-recover loop the coordinator itself was missing: every
frame awaited from a worker carries a wall-clock deadline (the
per-window barrier budget of
:attr:`~repro.shard.config.ShardConfig.barrier_timeout_s`), every worker
proves liveness with heartbeat frames from a side thread, and a worker
that crashes (pipe EOF, process exit) or hangs (deadline or probe
expiry) is killed, respawned with exponential backoff under the run's
respawn budget, rebuilt from ``(build, build_args)`` and fast-forwarded
by replaying the :class:`~repro.shard.journal.WindowJournal` — the
reborn shard is bit-identical to a never-crashed one because the journal
is its complete input.

Two failure classes are deliberately *not* respawned around:

* an ``error`` frame (a Python exception inside the worker) is
  deterministic — replay would reproduce it — so it re-raises as
  :class:`ShardWorkerError` exactly as before supervision existed;
* exhausting the respawn budget (or needing a replay the truncated
  journal cannot serve) raises :class:`SupervisionExhausted`, which the
  coordinator catches to degrade the *whole run* to the inline engine —
  rebuilt from the journal — instead of failing a multi-hour sweep.

Recovery events are counted (``supervision.*`` keys in
``ShardRunResult.counters``) and logged into a :class:`SupervisionLog`,
the harness-side sibling of :class:`~repro.metrics.HealthCollector`:
wall-clock-stamped events, per-kind counts, per-shard timelines and the
total recovery wall time.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Optional

from ..interconnect import (
    HEARTBEAT,
    FramedConnection,
    ShardProtocolError,
)
from .config import ShardConfig
from .journal import WindowJournal
from .plan import ShardPlan
from .worker import shard_worker_main

#: Poll slice (wall seconds) between liveness checks while awaiting a frame.
_POLL_SLICE_S = 0.05
#: Hard cap on one exponential-backoff sleep before a respawn.
_MAX_BACKOFF_S = 2.0


class ShardWorkerError(RuntimeError):
    """A shard worker failed deterministically; carries its traceback."""


class SupervisionExhausted(RuntimeError):
    """Recovery is out of moves (budget spent, or journal truncated);
    the coordinator should degrade the run to the inline engine."""


class _WorkerFailure(Exception):
    """Internal signal: worker ``index`` crashed or hung (``kind``)."""

    def __init__(self, index: int, kind: str, detail: str):
        super().__init__(f"shard {index} {kind}: {detail}")
        self.index = index
        self.kind = kind  # "crash" | "hang"
        self.detail = detail


@dataclass(frozen=True)
class FaultScript:
    """Picklable scripted worker faults for chaos drills.

    Fires inside the worker via the fault-hook protocol (see
    :mod:`repro.shard.worker`): kills are ``os._exit`` (no error frame —
    a real crash, not a Python exception), hangs are ``time.sleep``
    (the heartbeat thread keeps beating, so only the barrier deadline
    catches them). By default a script fires only on ``attempt == 0``,
    so a respawned worker replays clean; ``persistent=True`` keeps
    firing every attempt — the respawn-budget-exhaustion drill.
    """

    #: ``(shard, window)`` pairs to kill at; window may be
    #: :data:`~repro.shard.worker.BUILD_WINDOW` or
    #: :data:`~repro.shard.worker.FINISH_WINDOW`.
    kills: tuple[tuple[int, int], ...] = ()
    #: ``(shard, window, wall_seconds)`` triples to hang at.
    hangs: tuple[tuple[int, int, float], ...] = ()
    #: Fire on every respawn attempt, not just the first life.
    persistent: bool = False
    #: Exit code used for kills (diagnostic only).
    exit_code: int = 43

    def __call__(self, shard: int, window: int, attempt: int) -> None:
        if attempt > 0 and not self.persistent:
            return
        for hang_shard, hang_window, sleep_s in self.hangs:
            if (hang_shard, hang_window) == (shard, window):
                time.sleep(sleep_s)
        if (shard, window) in self.kills:
            os._exit(self.exit_code)


class SupervisionLog:
    """Wall-clock event log + counters for harness recovery events.

    The harness-side sibling of :class:`~repro.metrics.HealthCollector`:
    the simulation collector watches *simulated* failure detectors; this
    log watches the real processes running the simulation. Event kinds:
    ``worker-crash``, ``worker-hang``, ``worker-respawned``,
    ``finish-timeout``, ``journal-truncated``, ``degraded-inline``,
    ``inline-replay``.
    """

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        #: kind -> cumulative count.
        self.counts: Counter[str] = Counter()
        #: (wall-offset seconds, kind, payload), ascending.
        self.events: list[tuple[float, str, dict]] = []
        #: Heartbeat frames observed (counted, never logged: volume).
        self.heartbeats = 0
        #: Windows re-granted to respawned workers (journal fast-forward).
        self.replayed_windows = 0

    def note(self, kind: str, **payload: Any) -> None:
        self.counts[kind] += 1
        self.events.append((time.monotonic() - self._t0, kind, payload))

    # -- derived summaries ----------------------------------------------------

    def timeline(self, shard: int) -> list[tuple[float, str]]:
        """Recovery events touching ``shard``, as (wall-offset, kind)."""
        return [
            (when, kind)
            for when, kind, payload in self.events
            if payload.get("shard") == shard
        ]

    def first_event(self, kind: str) -> Optional[tuple[float, dict]]:
        """Earliest event of ``kind``, or None."""
        for when, event_kind, payload in self.events:
            if event_kind == kind:
                return when, payload
        return None

    @property
    def recovery_seconds(self) -> float:
        """Total wall time spent inside recovery (kill -> caught up)."""
        return sum(
            payload.get("wall_s", 0.0)
            for _when, kind, payload in self.events
            if kind in ("worker-respawned", "inline-replay")
        )

    def totals(self) -> dict[str, int]:
        """Cumulative count per observed kind, sorted by kind."""
        return dict(sorted(self.counts.items()))

    def counters(self) -> dict[str, int]:
        """The stable ``supervision.*`` counter set merged into
        ``ShardRunResult.counters`` (all keys always present, so clean
        runs compare equal across engines)."""
        return {
            "supervision.crashes": self.counts["worker-crash"],
            "supervision.hangs": self.counts["worker-hang"],
            "supervision.respawns": self.counts["worker-respawned"],
            "supervision.replayed_windows": self.replayed_windows,
            "supervision.finish_timeouts": self.counts["finish-timeout"],
            "supervision.degraded_inline": self.counts["degraded-inline"],
        }

    def summary(self) -> dict[str, Any]:
        """One picklable report: counts, events, recovery wall time."""
        return {
            "totals": self.totals(),
            "events": [
                (round(when, 6), kind, dict(payload))
                for when, kind, payload in self.events
            ],
            "heartbeats": self.heartbeats,
            "replayed_windows": self.replayed_windows,
            "recovery_seconds": self.recovery_seconds,
        }

    def __repr__(self) -> str:
        return f"<SupervisionLog events={len(self.events)} {self.totals()}>"


class _WorkerHandle:
    """One supervised worker process and its framed pipe."""

    def __init__(self, proc, link: FramedConnection, index: int, attempt: int):
        self.proc = proc
        self.link = link
        self.index = index
        self.attempt = attempt
        #: monotonic() of the last frame seen from this worker (the
        #: liveness probe reference; heartbeats refresh it).
        self.last_frame = time.monotonic()

    def kill(self) -> None:
        """Tear the worker down unconditionally (SIGKILL, join, close)."""
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5)
        try:
            self.link.close()
        except OSError:
            pass


class SupervisedEngine:
    """One worker process per shard, supervised: barrier deadlines,
    heartbeat probes, kill/respawn/replay recovery."""

    name = "process"

    def __init__(
        self,
        plan: ShardPlan,
        build,
        build_args: tuple,
        fastpath: bool,
        *,
        config: Optional[ShardConfig] = None,
        journal: Optional[WindowJournal] = None,
        log: Optional[SupervisionLog] = None,
        fault_hook=None,
    ):
        self.plan = plan
        self.build = build
        self.build_args = build_args
        self.fastpath = fastpath
        self.config = config if config is not None else ShardConfig(shards=plan.shards)
        # ``is None``, not ``or``: an empty WindowJournal is falsy (len 0)
        # and a bare ``or`` would silently shadow the coordinator's journal.
        self.journal = (
            journal
            if journal is not None
            else WindowJournal(plan.shards, limit=self.config.journal_limit)
        )
        self.log = log if log is not None else SupervisionLog()
        self.fault_hook = fault_hook
        self.respawns_spent = 0
        #: Completed (barriered) windows — the replay horizon.
        self.windows = 0
        self._ctx = multiprocessing.get_context()
        self.workers: list[Optional[_WorkerHandle]] = [None] * plan.shards
        try:
            for index in range(plan.shards):
                self.workers[index] = self._spawn(index, attempt=0)
            for index in range(plan.shards):
                self._until_ready(index)
        except BaseException:
            self.close()
            raise

    # -- process management ---------------------------------------------------

    def _spawn(self, index: int, attempt: int) -> _WorkerHandle:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(
                child, self.plan, index, self.build, self.build_args,
                self.fastpath, attempt, self.config.heartbeat_interval_s,
                self.fault_hook,
            ),
            name=f"shard-{index}.{attempt}",
            daemon=True,
        )
        proc.start()
        child.close()
        return _WorkerHandle(proc, FramedConnection(parent), index, attempt)

    def _until_ready(self, index: int) -> None:
        """Await the ready frame, recovering build-time crashes/hangs."""
        while True:
            try:
                self._await(self.workers[index], ("ready",))
                return
            except _WorkerFailure as failure:
                self._recover(failure, regrant=None)
                return  # _recover already awaited ready + replayed

    def _await(self, handle: _WorkerHandle, kinds: tuple) -> Any:
        """The supervised recv: skip heartbeats, enforce the barrier
        deadline and the liveness probe, detect process death.

        Returns the frame; raises :class:`_WorkerFailure` on crash/hang,
        :class:`ShardWorkerError` on a deterministic error frame.
        """
        barrier = self.config.barrier_timeout_s
        # Without heartbeats a busy worker is legitimately silent for a
        # whole window, so the probe only applies when they are on.
        probe = (
            self.config.probe_timeout_s
            if self.config.heartbeat_interval_s > 0 else None
        )
        deadline = None if barrier is None else time.monotonic() + barrier
        while True:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise _WorkerFailure(
                    handle.index, "hang",
                    f"no {kinds} frame within the {barrier:.1f}s barrier deadline",
                )
            slice_s = _POLL_SLICE_S
            if deadline is not None:
                slice_s = min(slice_s, max(0.0, deadline - now))
            if handle.link.poll(slice_s):
                try:
                    frame = handle.link.recv()
                except (EOFError, OSError) as exc:
                    raise _WorkerFailure(
                        handle.index, "crash",
                        f"pipe closed mid-protocol ({type(exc).__name__})",
                    ) from None
                handle.last_frame = time.monotonic()
                if frame.kind == HEARTBEAT:
                    self.log.heartbeats += 1
                    continue
                if frame.kind == "error":
                    raise ShardWorkerError(
                        f"shard worker failed:\n{frame.payload}"
                    )
                if frame.kind not in kinds:
                    raise ShardProtocolError(
                        f"expected a frame of kind {kinds}, got {frame!r}"
                    )
                return frame
            # Nothing on the pipe this slice: is the process even there?
            if not handle.proc.is_alive() and not handle.link.poll(0):
                raise _WorkerFailure(
                    handle.index, "crash",
                    f"worker exited with code {handle.proc.exitcode}",
                )
            if probe is not None and time.monotonic() - handle.last_frame > probe:
                raise _WorkerFailure(
                    handle.index, "hang",
                    f"no frames (not even heartbeats) for {probe:.1f}s",
                )

    def _send(self, handle: _WorkerHandle, kind: str, payload=None) -> None:
        """Send, converting a torn pipe into a crash signal."""
        try:
            handle.link.send(kind, payload)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise _WorkerFailure(
                handle.index, "crash",
                f"send of {kind!r} failed ({type(exc).__name__})",
            ) from None

    # -- recovery -------------------------------------------------------------

    def _recover(
        self, failure: _WorkerFailure, regrant: Optional[tuple] = None
    ) -> None:
        """Kill the offender, respawn with backoff under the budget,
        rebuild its world, fast-forward it by replaying the journal, and
        (when ``regrant`` is given) re-grant the interrupted window.

        Raises :class:`SupervisionExhausted` when the budget is spent or
        the journal can no longer serve the replay.
        """
        index = failure.index
        started = time.monotonic()
        self.log.note(f"worker-{failure.kind}", shard=index, detail=failure.detail)
        self.workers[index].kill()
        if self.windows and not self.journal.complete:
            self.log.note("journal-truncated", shard=index,
                          oldest=self.journal.first_index)
            raise SupervisionExhausted(
                f"journal truncated (oldest retained window "
                f"{self.journal.first_index}); cannot replay shard {index} "
                f"after {failure}"
            )
        while True:
            if self.respawns_spent >= self.config.max_respawns:
                raise SupervisionExhausted(
                    f"respawn budget ({self.config.max_respawns}) exhausted; "
                    f"last failure: {failure}"
                )
            self.respawns_spent += 1
            attempt = self.workers[index].attempt + 1
            backoff = min(
                _MAX_BACKOFF_S,
                self.config.respawn_backoff_s * (2 ** (attempt - 1)),
            )
            if backoff > 0:
                time.sleep(backoff)
            handle = self._spawn(index, attempt)
            self.workers[index] = handle
            try:
                self._await(handle, ("ready",))
                replayed = 0
                for _w, until, batch in self.journal.replay(
                    shard=index, upto=self.windows
                ):
                    self._send(handle, "grant", (until, batch))
                    self._await(handle, ("done",))
                    replayed += 1
                if regrant is not None:
                    self._send(handle, "grant", regrant)
                self.log.replayed_windows += replayed
                self.log.note(
                    "worker-respawned", shard=index, attempt=attempt,
                    replayed=replayed,
                    wall_s=round(time.monotonic() - started, 6),
                )
                return
            except _WorkerFailure as again:
                self.log.note(f"worker-{again.kind}", shard=index,
                              detail=again.detail)
                handle.kill()
                failure = again

    # -- the engine contract --------------------------------------------------

    def step(self, until: int, batches: list) -> list:
        granted = [False] * self.plan.shards
        for handle, batch in zip(self.workers, batches):
            try:
                self._send(handle, "grant", (until, batch))
                granted[handle.index] = True
            except _WorkerFailure as failure:
                self._recover(failure, regrant=(until, batches[failure.index]))
                granted[failure.index] = True
        outbound: list = [None] * self.plan.shards
        for index in range(self.plan.shards):
            while True:
                try:
                    frame = self._await(self.workers[index], ("done",))
                    outbound[index] = frame.payload[0]
                    break
                except _WorkerFailure as failure:
                    self._recover(failure, regrant=(until, batches[index]))
        self.windows += 1
        return outbound

    def finish(self) -> list:
        results: list = [None] * self.plan.shards
        for index in range(self.plan.shards):
            while True:
                try:
                    self._send(self.workers[index], "finish")
                    frame = self._await(self.workers[index], ("result",))
                    results[index] = frame.payload
                    break
                except _WorkerFailure as failure:
                    self._recover(failure, regrant=None)
        # Result in hand, the worker must actually exit: a still-alive
        # process after the grace period is detected, counted and killed
        # instead of being silently accepted (it used to leak).
        grace = self.config.barrier_timeout_s
        grace = 30.0 if grace is None else min(30.0, grace)
        for index, handle in enumerate(self.workers):
            handle.proc.join(timeout=grace)
            if handle.proc.is_alive():
                self.log.note(
                    "finish-timeout", shard=index,
                    detail=f"worker still alive {grace:.1f}s after its result",
                )
                handle.kill()
        return results

    def close(self) -> None:
        for handle in self.workers:
            if handle is not None:
                handle.kill()

    def __repr__(self) -> str:
        return (
            f"<SupervisedEngine shards={self.plan.shards} "
            f"windows={self.windows} respawns={self.respawns_spent}>"
        )
