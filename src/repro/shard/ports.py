"""Boundary ports: the one road cross-cluster control traffic travels.

Determinism by construction: whether a run uses one shard or eight, a
message between islands of *different clusters* always goes through a
:class:`BoundaryRouter` — buffered at send time, handed to the
coordinator at the window barrier, and applied on the receiving shard at
exactly ``deliver_at = sent_at + link_latency``, in the total order
``(deliver_at, dst, src, seq)``. A shard's trajectory is therefore a
function of the topology, its seeds and the inbound message set — never
of process placement or pipe arrival order.

Send-side rules that keep the two modes bit-identical:

* Messages may only ride *declared* cross-cluster links (that latency is
  what the lookahead was computed from); an undeclared pair raises
  :class:`BoundaryRoutingError` immediately.
* Per-``(src, dst)`` sequence numbers are consumed even for messages a
  blackout drops, so the numbering downstream of a fault window is
  independent of the fault's duration arithmetic elsewhere.
* Blackouts are evaluated at *send* time against the scripted
  :class:`~repro.faults.ChannelBlackout` windows — pure simulation-time
  arithmetic, identical in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..faults.plan import ChannelBlackout


class BoundaryRoutingError(RuntimeError):
    """A boundary send/delivery violated the declared topology."""


@dataclass(frozen=True, slots=True)
class BoundaryMessage:
    """One cross-cluster message in flight between shards.

    ``seq`` is the per-``(src, dst)`` send counter; together with
    ``(deliver_at, dst, src)`` it totally orders deliveries, which is
    what makes the receiving shard's trajectory reproducible.
    """

    src: str
    dst: str
    kind: str
    sent_at: int
    deliver_at: int
    seq: int
    payload: Any = None

    def sort_key(self) -> tuple:
        return (self.deliver_at, self.dst, self.src, self.seq)

    def __repr__(self) -> str:
        return (
            f"BoundaryMessage({self.src}->{self.dst} {self.kind!r} "
            f"#{self.seq} @{self.deliver_at})"
        )


class BoundaryRouter:
    """One shard's gateway onto the cross-cluster links.

    The world built on a shard sends through :meth:`send` and registers
    per-``(island, kind)`` handlers; the shard host drains the outbound
    buffer at each window barrier and applies inbound messages at their
    due time through :meth:`deliver`.
    """

    def __init__(self, topology, shard_index: int = 0):
        self.topology = topology
        self.shard_index = shard_index
        #: latency per declared cross-cluster link, order-insensitive.
        self._latency = {
            frozenset((a, b)): latency
            for a, b, latency in topology.cross_cluster_links()
        }
        self._seq: dict[tuple[str, str], int] = {}
        self._handlers: dict[tuple[str, str, Optional[str]], Callable] = {}
        self._blackouts: list[tuple[frozenset, ChannelBlackout]] = []
        self._outbound: list[BoundaryMessage] = []
        self.sent = 0
        self.dropped = 0
        self.delivered = 0

    # -- wiring -------------------------------------------------------------

    def register(
        self,
        island: str,
        kind: str,
        handler: Callable[[BoundaryMessage], None],
        src: Optional[str] = None,
    ) -> None:
        """Handle inbound ``kind`` messages addressed to ``island``.

        ``src`` narrows the handler to one sender (a per-link listener);
        a ``src=None`` registration is the fallback for the kind.
        """
        key = (island, kind, src)
        if key in self._handlers:
            raise BoundaryRoutingError(f"duplicate handler for {key}")
        self._handlers[key] = handler

    def add_blackout(self, a: str, b: str, blackout: ChannelBlackout) -> None:
        """Script a blackout on the link between ``a`` and ``b``.

        ``blackout.direction`` is ``"both"`` or the name of the blocked
        *sender* (the PR-5 convention). Unknown links raise.
        """
        key = frozenset((a, b))
        if key not in self._latency:
            raise BoundaryRoutingError(
                f"no declared cross-cluster link {a!r}<->{b!r} to black out"
            )
        if blackout.direction not in ("both", a, b):
            raise BoundaryRoutingError(
                f"blackout direction {blackout.direction!r} names neither "
                f"endpoint of {a!r}<->{b!r}"
            )
        self._blackouts.append((key, blackout))

    # -- send side ----------------------------------------------------------

    def link_latency(self, src: str, dst: str) -> int:
        """One-way latency of the declared link; raises if undeclared."""
        try:
            return self._latency[frozenset((src, dst))]
        except KeyError:
            raise BoundaryRoutingError(
                f"no declared cross-cluster link {src!r}<->{dst!r}; "
                "boundary messages must ride links the lookahead was "
                "computed from"
            ) from None

    def send(self, src: str, dst: str, kind: str, payload: Any, now: int) -> Optional[BoundaryMessage]:
        """Queue one message for the window barrier; None when a scripted
        blackout swallowed it (its sequence number is still consumed)."""
        latency = self.link_latency(src, dst)
        key = (src, dst)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        if self._blacked_out(src, dst, now):
            self.dropped += 1
            return None
        message = BoundaryMessage(
            src=src, dst=dst, kind=kind, sent_at=now,
            deliver_at=now + latency, seq=seq, payload=payload,
        )
        self._outbound.append(message)
        self.sent += 1
        return message

    def _blacked_out(self, src: str, dst: str, now: int) -> bool:
        link = frozenset((src, dst))
        for key, blackout in self._blackouts:
            if key != link:
                continue
            if not (blackout.start <= now < blackout.end):
                continue
            if blackout.direction == "both" or blackout.direction == src:
                return True
        return False

    def drain(self) -> list[BoundaryMessage]:
        """Hand the buffered outbound messages to the coordinator."""
        outbound, self._outbound = self._outbound, []
        return outbound

    # -- receive side -------------------------------------------------------

    def deliver(self, message: BoundaryMessage, now: int) -> None:
        """Apply one inbound message at its due time (handler runs
        synchronously, with the shard's clock parked at ``deliver_at``)."""
        if message.deliver_at != now:
            raise BoundaryRoutingError(
                f"delivering {message!r} at {now}, not its due time"
            )
        handler = self._handlers.get((message.dst, message.kind, message.src))
        if handler is None:
            handler = self._handlers.get((message.dst, message.kind, None))
        if handler is None:
            raise BoundaryRoutingError(
                f"no handler for {message.kind!r} at {message.dst!r}"
            )
        self.delivered += 1
        handler(message)

    def counters(self) -> dict[str, int]:
        return {"sent": self.sent, "dropped": self.dropped, "delivered": self.delivered}

    def __repr__(self) -> str:
        return (
            f"<BoundaryRouter shard={self.shard_index} sent={self.sent} "
            f"dropped={self.dropped} delivered={self.delivered}>"
        )
