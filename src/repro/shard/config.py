"""ShardConfig: the sharded-execution knobs on a TestbedConfig.

Mirrors the PR-4 ``ChannelConfig`` pattern — one frozen sub-dataclass
grouping a subsystem's options, validated at construction, defaulting to
the single-process behaviour (``shards=1``) so existing testbeds are
untouched.

Since the supervision layer landed, the config also carries the
self-healing knobs: how long a window barrier may take before a worker
is declared hung (``barrier_timeout_s``), how often workers prove
liveness (``heartbeat_interval_s`` / ``probe_timeout_s``), how many
respawns a run may spend recovering crashed or hung workers
(``max_respawns`` with ``respawn_backoff_s`` exponential backoff), and
how many windows the recovery journal retains (``journal_limit``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ShardConfig:
    """How (and whether) to shard a fabric run across processes.

    ``shards=1`` is the classic single-simulator mode. With more shards
    the topology is cut at cluster boundaries (see
    :meth:`~repro.platform.fabric.FabricTopology.partition`) and each
    shard runs in its own worker process when the host allows it —
    supervised: a worker that crashes or hangs is killed, respawned and
    fast-forwarded by deterministic replay of the window journal (see
    :mod:`repro.shard.supervisor`).
    """

    #: Number of shards to cut the topology into (1 = unsharded).
    shards: int = 1
    #: Worker-process budget for the shard pool; None defers to
    #: ``REPRO_WORKERS`` / the CPU count (the runner's rules).
    workers: Optional[int] = None
    #: Synchronization window override in ns; None uses the topology's
    #: conservative lookahead (min cross-cluster link latency). May only
    #: *shrink* the window — a wider-than-lookahead window would let a
    #: shard run past a message from its future.
    window_ns: Optional[int] = None
    #: Wall-clock budget (seconds) for one window barrier, per awaited
    #: frame. A worker that has not answered by the deadline is declared
    #: hung, killed and respawned. None disables the deadline (the
    #: pre-supervision block-forever behaviour).
    barrier_timeout_s: Optional[float] = 60.0
    #: How often (wall seconds) each worker's heartbeat thread proves the
    #: process is alive on its framed pipe. 0 disables heartbeats.
    heartbeat_interval_s: float = 0.5
    #: A worker whose pipe has carried *no* frame (heartbeat or result)
    #: for this many wall seconds is declared dead even before the
    #: barrier deadline. None disables the probe; must comfortably exceed
    #: ``heartbeat_interval_s``.
    probe_timeout_s: Optional[float] = 10.0
    #: Total respawns one run may spend recovering workers. Exhausting
    #: the budget degrades the whole run to the inline engine (replayed
    #: from the journal) instead of failing.
    max_respawns: int = 2
    #: Base of the exponential respawn backoff: attempt ``n`` sleeps
    #: ``respawn_backoff_s * 2**(n-1)`` wall seconds (capped at 2 s).
    respawn_backoff_s: float = 0.05
    #: Maximum windows the recovery journal retains. Older windows are
    #: evicted (counted); once eviction has happened, per-worker replay
    #: is impossible and any recovery recomputes inline from scratch.
    #: None retains every window.
    journal_limit: Optional[int] = 8192

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.window_ns is not None and self.window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {self.window_ns}")
        if self.barrier_timeout_s is not None and self.barrier_timeout_s <= 0:
            raise ValueError(
                f"barrier_timeout_s must be positive, got {self.barrier_timeout_s}"
            )
        if self.heartbeat_interval_s < 0:
            raise ValueError(
                f"heartbeat_interval_s must be >= 0, got {self.heartbeat_interval_s}"
            )
        if self.probe_timeout_s is not None:
            if self.probe_timeout_s <= 0:
                raise ValueError(
                    f"probe_timeout_s must be positive, got {self.probe_timeout_s}"
                )
            if self.heartbeat_interval_s and (
                self.probe_timeout_s <= self.heartbeat_interval_s
            ):
                raise ValueError(
                    f"probe_timeout_s ({self.probe_timeout_s}) must exceed "
                    f"heartbeat_interval_s ({self.heartbeat_interval_s}); a "
                    "probe shorter than one heartbeat declares live workers dead"
                )
        if self.max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {self.max_respawns}")
        if self.respawn_backoff_s < 0:
            raise ValueError(
                f"respawn_backoff_s must be >= 0, got {self.respawn_backoff_s}"
            )
        if self.journal_limit is not None and self.journal_limit < 1:
            raise ValueError(
                f"journal_limit must be >= 1 windows, got {self.journal_limit}"
            )
