"""ShardConfig: the sharded-execution knobs on a TestbedConfig.

Mirrors the PR-4 ``ChannelConfig`` pattern — one frozen sub-dataclass
grouping a subsystem's options, validated at construction, defaulting to
the single-process behaviour (``shards=1``) so existing testbeds are
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ShardConfig:
    """How (and whether) to shard a fabric run across processes.

    ``shards=1`` is the classic single-simulator mode. With more shards
    the topology is cut at cluster boundaries (see
    :meth:`~repro.platform.fabric.FabricTopology.partition`) and each
    shard runs in its own worker process when the host allows it.
    """

    #: Number of shards to cut the topology into (1 = unsharded).
    shards: int = 1
    #: Worker-process budget for the shard pool; None defers to
    #: ``REPRO_WORKERS`` / the CPU count (the runner's rules).
    workers: Optional[int] = None
    #: Synchronization window override in ns; None uses the topology's
    #: conservative lookahead (min cross-cluster link latency). May only
    #: *shrink* the window — a wider-than-lookahead window would let a
    #: shard run past a message from its future.
    window_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.window_ns is not None and self.window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {self.window_ns}")
